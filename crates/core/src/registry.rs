//! Data-object life-cycle tracking (§5.1).
//!
//! ValueExpert intercepts allocation and deallocation to know, for every
//! address, which *data object* it belongs to — patterns are reported per
//! object, not per raw address. Shared memory has no allocation API, so
//! the whole shared space of a launch is treated as a single pseudo
//! object, exactly as the paper does.

use std::collections::BTreeMap;
use vex_gpu::alloc::{AllocId, AllocationInfo};
use vex_gpu::ir::MemSpace;

/// Identifies the data object an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectKey {
    /// A global-memory allocation.
    Global(AllocId),
    /// The per-block shared memory of a kernel (one pseudo object).
    Shared,
}

impl std::fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectKey::Global(id) => write!(f, "{id}"),
            ObjectKey::Shared => f.write_str("shared"),
        }
    }
}

/// Mirror of the device allocation table, maintained from API events.
#[derive(Debug, Default)]
pub struct ObjectRegistry {
    /// Live objects by start address.
    by_addr: BTreeMap<u64, AllocationInfo>,
    /// All objects ever seen, by id (findings may outlive frees).
    all: BTreeMap<AllocId, AllocationInfo>,
}

impl ObjectRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an allocation (from a `Malloc` API event).
    pub fn on_alloc(&mut self, info: &AllocationInfo) {
        self.by_addr.insert(info.addr, info.clone());
        self.all.insert(info.id, info.clone());
    }

    /// Removes an allocation (from a `Free` API event).
    pub fn on_free(&mut self, info: &AllocationInfo) {
        self.by_addr.remove(&info.addr);
        if let Some(i) = self.all.get_mut(&info.id) {
            i.live = false;
        }
    }

    /// The live object containing `addr` (global space), if any.
    pub fn find(&self, addr: u64) -> Option<&AllocationInfo> {
        let (_, info) = self.by_addr.range(..=addr).next_back()?;
        (addr < info.addr + info.size).then_some(info)
    }

    /// Resolves an access to its object key.
    pub fn key_for(&self, space: MemSpace, addr: u64) -> Option<ObjectKey> {
        match space {
            MemSpace::Shared => Some(ObjectKey::Shared),
            MemSpace::Global => self.find(addr).map(|i| ObjectKey::Global(i.id)),
        }
    }

    /// Metadata for object `id` (live or freed).
    pub fn info(&self, id: AllocId) -> Option<&AllocationInfo> {
        self.all.get(&id)
    }

    /// Display label for an object key.
    pub fn label(&self, key: ObjectKey) -> String {
        match key {
            ObjectKey::Shared => "shared".to_owned(),
            ObjectKey::Global(id) => {
                self.info(id).map(|i| i.label.clone()).unwrap_or_else(|| id.to_string())
            }
        }
    }

    /// Iterates live objects in address order.
    pub fn live(&self) -> impl Iterator<Item = &AllocationInfo> {
        self.by_addr.values()
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.by_addr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_gpu::callpath::CallPathId;

    fn info(id: u64, addr: u64, size: u64, label: &str) -> AllocationInfo {
        AllocationInfo {
            id: AllocId(id),
            addr,
            size,
            label: label.to_owned(),
            context: CallPathId::ROOT,
            live: true,
        }
    }

    #[test]
    fn find_and_key() {
        let mut r = ObjectRegistry::new();
        r.on_alloc(&info(1, 256, 100, "a"));
        r.on_alloc(&info(2, 512, 100, "b"));
        assert_eq!(r.find(300).unwrap().id, AllocId(1));
        assert_eq!(r.find(356), None, "gap between allocations");
        assert_eq!(r.key_for(MemSpace::Global, 512), Some(ObjectKey::Global(AllocId(2))));
        assert_eq!(r.key_for(MemSpace::Shared, 4), Some(ObjectKey::Shared));
        assert_eq!(r.live_count(), 2);
    }

    #[test]
    fn free_keeps_metadata() {
        let mut r = ObjectRegistry::new();
        let i = info(1, 256, 100, "a");
        r.on_alloc(&i);
        r.on_free(&i);
        assert_eq!(r.find(300), None);
        let dead = r.info(AllocId(1)).unwrap();
        assert!(!dead.live);
        assert_eq!(r.label(ObjectKey::Global(AllocId(1))), "a");
    }

    #[test]
    fn label_for_unknown_is_id() {
        let r = ObjectRegistry::new();
        assert_eq!(r.label(ObjectKey::Global(AllocId(9))), "obj9");
        assert_eq!(r.label(ObjectKey::Shared), "shared");
    }
}
