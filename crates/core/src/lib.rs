//! # vex-core — ValueExpert: value patterns and value flows
//!
//! A Rust reproduction of **ValueExpert** (Zhou, Hao, Mellor-Crummey,
//! Meng, Liu — ASPLOS 2022): a value profiler that pinpoints
//! value-related inefficiencies in GPU-accelerated applications.
//!
//! The crate implements the paper's full pipeline on top of the
//! [`vex_gpu`] simulator and the [`vex_trace`] instrumentation engine:
//!
//! * the **eight value patterns** of §3 and their recognizers
//!   ([`patterns`]),
//! * the **coarse-grained analyzer** — value snapshots per GPU API,
//!   redundancy diffing, and SHA-256 duplicate grouping ([`coarse`],
//!   [`snapshot hashing`](sha256)),
//! * the **fine-grained analyzer** — per-access value statistics with
//!   access types recovered by bidirectional slicing ([`fine`],
//!   [`access_type`]),
//! * the **value flow graph** with vertex-slice and important-graph
//!   analyses and DOT export ([`flowgraph`]),
//! * the §6 performance machinery: the **data-parallel interval merge**
//!   ([`interval`]), **adaptive snapshot copy strategies**
//!   ([`copy_strategy`]), and **kernel filtering / hierarchical
//!   sampling** ([`sampling`]),
//! * a **sharded, off-critical-path analysis engine** that runs both
//!   analyzers on worker threads behind bounded channels while producing
//!   byte-identical reports
//!   ([`ProfilerBuilder::analysis_shards`](profiler::ProfilerBuilder::analysis_shards)),
//! * a **profiler front-end** that wires everything onto a runtime
//!   ([`profiler`]) and a report/GUI stand-in ([`report`]), plus an
//!   explicit **overhead model** ([`overhead`]).
//!
//! ## Quick start
//!
//! ```rust
//! use vex_core::prelude::*;
//! use vex_gpu::prelude::*;
//!
//! # fn main() -> Result<(), GpuError> {
//! let mut rt = Runtime::new(DeviceSpec::rtx2080ti());
//! let vex = ValueExpert::builder().coarse(true).fine(true).attach(&mut rt);
//!
//! // A double initialization the profiler should flag:
//! let buf = rt.malloc(1024, "l.output_gpu")?;
//! rt.memset(buf, 0, 1024)?;
//! rt.memset(buf, 0, 1024)?; // redundant
//!
//! let profile = vex.report(&rt);
//! assert!(profile.has_pattern(ValuePattern::RedundantValues));
//! println!("{}", profile.render_text());
//! # Ok(()) }
//! ```

#![deny(missing_docs)]

pub mod access_type;
pub mod cluster;
pub mod coarse;
pub mod copy_strategy;
pub mod diff;
pub mod fine;
pub mod flowgraph;
pub mod interval;
pub mod overhead;
pub mod patterns;
pub(crate) mod pipeline;
pub mod profiler;
pub mod races;
pub mod registry;
pub mod report;
pub mod reuse;
pub mod sampling;
pub mod sha256;

/// Convenient glob import for profiler users.
pub mod prelude {
    pub use crate::cluster::{ClusterReport, ClusterSession};
    pub use crate::coarse::{DuplicateFinding, RedundancyFinding};
    pub use crate::copy_strategy::{AdaptivePolicy, CopyStrategy, ObjectCopyPlan};
    pub use crate::diff::{
        diff_profiles, DeltaCategory, DeltaDirection, DiffOptions, ProfileDiff,
    };
    pub use crate::fine::{Direction, FineFinding};
    pub use crate::flowgraph::{AccessKind, FlowGraph, VertexId, VertexKind};
    pub use crate::interval::Interval;
    pub use crate::overhead::{OverheadModel, OverheadReport};
    pub use crate::patterns::{PatternConfig, PatternHit, ValuePattern};
    pub use crate::profiler::{ProfilerBuilder, Recording, ReplayError, ValueExpert};
    pub use crate::races::{RaceKind, RaceReport};
    pub use crate::report::Profile;
    pub use crate::reuse::{ReuseAnalyzer, ReuseHistogram};
    pub use crate::sampling::{BlockSampler, HierarchicalSampler, KernelNameFilter};
}
