//! The eight value patterns of §3 and their recognizers.
//!
//! Coarse-grained patterns (*redundant values*, *duplicate values*) are
//! detected from value snapshots by the coarse analyzer
//! ([`crate::coarse`]); the six fine-grained patterns are recognized here
//! from per-object access statistics accumulated by the fine analyzer
//! ([`crate::fine`]):
//!
//! * **frequent values** — some value accounts for ≥ threshold of accesses,
//! * **single value** — every accessed value is identical,
//! * **single zero** — every accessed value is zero,
//! * **heavy type** — the declared type is more expressive than the
//!   values stored need,
//! * **structured values** — values are linearly correlated with the
//!   addresses holding them,
//! * **approximate values** — after truncating the float mantissa to `K`
//!   bits, one of the exact fine-grained patterns appears.

use crate::access_type::DecodedValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vex_gpu::ir::{Pc, ScalarType};

/// The eight value patterns of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValuePattern {
    /// A write leaves some/all of an object's elements unchanged (§3.1).
    RedundantValues,
    /// Two objects hold identical values at some GPU API (§3.1).
    DuplicateValues,
    /// One or a few values dominate the accesses (§3.2).
    FrequentValues,
    /// All accessed values are the same (§3.2).
    SingleValue,
    /// All accessed values are zero (§3.2).
    SingleZero,
    /// The data type is wider than the values require (§3.2).
    HeavyType,
    /// Values are linearly correlated with their addresses (§3.2).
    StructuredValues,
    /// A fine-grained pattern appears after mantissa truncation (§3.2).
    ApproximateValues,
}

impl ValuePattern {
    /// All patterns in Table 1 column order.
    pub const ALL: [ValuePattern; 8] = [
        ValuePattern::RedundantValues,
        ValuePattern::DuplicateValues,
        ValuePattern::FrequentValues,
        ValuePattern::SingleValue,
        ValuePattern::SingleZero,
        ValuePattern::HeavyType,
        ValuePattern::StructuredValues,
        ValuePattern::ApproximateValues,
    ];

    /// Whether this is a coarse-grained pattern (detected per GPU API from
    /// snapshots) rather than a fine-grained one (from access streams).
    pub fn is_coarse(self) -> bool {
        matches!(self, ValuePattern::RedundantValues | ValuePattern::DuplicateValues)
    }

    /// The optimization guidance of §3, one line per pattern.
    pub fn guidance(self) -> &'static str {
        match self {
            ValuePattern::RedundantValues => {
                "remove the redundant write (e.g. double initialization) or skip unchanged elements"
            }
            ValuePattern::DuplicateValues => {
                "initialize on the device (cudaMemset) or share one copy instead of transferring duplicates"
            }
            ValuePattern::FrequentValues => {
                "bypass computation conditionally when the frequent value is seen"
            }
            ValuePattern::SingleValue => {
                "contract the vector to a scalar, or use a sparse structure"
            }
            ValuePattern::SingleZero => {
                "skip the computation/initialization entirely; zeros are identity for +/-"
            }
            ValuePattern::HeavyType => "demote the element type to the narrowest sufficient width",
            ValuePattern::StructuredValues => {
                "compute values from indices instead of loading them from memory"
            }
            ValuePattern::ApproximateValues => {
                "if accuracy permits, exploit the pattern that appears after truncation"
            }
        }
    }
}

impl std::fmt::Display for ValuePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ValuePattern::RedundantValues => "redundant values",
            ValuePattern::DuplicateValues => "duplicate values",
            ValuePattern::FrequentValues => "frequent values",
            ValuePattern::SingleValue => "single value",
            ValuePattern::SingleZero => "single zero",
            ValuePattern::HeavyType => "heavy type",
            ValuePattern::StructuredValues => "structured values",
            ValuePattern::ApproximateValues => "approximate values",
        })
    }
}

/// Thresholds of the recognizers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternConfig {
    /// Fraction of accesses one value must reach for *frequent values*
    /// (the paper uses "a predefined percentage threshold 𝒯").
    pub frequent_threshold: f64,
    /// Unchanged-byte fraction for *redundant values* (the paper uses
    /// 33%).
    pub redundancy_threshold: f64,
    /// Mantissa bits kept for *approximate values* (𝒦).
    pub approx_mantissa_bits: u32,
    /// Minimum |Pearson r| for *structured values*.
    pub structured_min_corr: f64,
    /// Minimum distinct addresses before structured detection fires.
    pub structured_min_samples: u64,
    /// Cap on distinct values tracked per object (memory guard).
    pub max_distinct_values: usize,
}

impl Default for PatternConfig {
    fn default() -> Self {
        PatternConfig {
            frequent_threshold: 0.5,
            redundancy_threshold: 0.33,
            approx_mantissa_bits: 8,
            structured_min_corr: 0.999,
            structured_min_samples: 16,
            max_distinct_values: 1 << 16,
        }
    }
}

/// Truncates a float's mantissa to `k` bits (the approximate-values view).
pub fn truncate_mantissa(value: f64, k: u32) -> f64 {
    let keep = 52u32.saturating_sub(k.min(52));
    let bits = value.to_bits();
    let mask = !((1u64 << keep) - 1);
    f64::from_bits(bits & mask)
}

/// Inverse of `ty as u8` over the ten scalar types (declaration order).
fn scalar_type_from_tag(tag: u8) -> ScalarType {
    use ScalarType::*;
    [F32, F64, S8, S16, S32, S64, U8, U16, U32, U64][tag as usize]
}

/// Open-addressing `(type tag, value bits) → count` table.
///
/// Replaces `HashMap` on the hot path: one multiply-shift hash, linear
/// probing over a power-of-two slot array, no per-entry allocation. A
/// slot with `count == 0` is empty (occupied slots always count ≥ 1).
#[derive(Debug, Clone, Default)]
struct ValueTable {
    tags: Vec<u8>,
    bits: Vec<u64>,
    counts: Vec<u64>,
    len: usize,
}

impl ValueTable {
    const INITIAL_CAPACITY: usize = 16;

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn hash(tag: u8, bits: u64) -> u64 {
        let mut h = bits ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tag as u64 + 1);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^ (h >> 33)
    }

    /// Counts one observation of `(tag, bits)` under the distinct-key cap:
    /// existing keys always count, new keys only while `len < cap`.
    /// Returns `false` when the observation was dropped, so the caller can
    /// tally it in an overflow counter.
    fn add(&mut self, tag: u8, bits: u64, cap: usize) -> bool {
        if self.counts.is_empty() {
            if cap == 0 {
                return false;
            }
            self.grow(Self::INITIAL_CAPACITY);
        } else if self.len * 8 >= self.counts.len() * 7 {
            // Keep the load factor under 7/8 so probe chains stay short.
            self.grow(self.counts.len() * 2);
        }
        let mask = self.counts.len() - 1;
        let mut i = (Self::hash(tag, bits) as usize) & mask;
        loop {
            if self.counts[i] == 0 {
                if self.len >= cap {
                    return false;
                }
                self.tags[i] = tag;
                self.bits[i] = bits;
                self.counts[i] = 1;
                self.len += 1;
                return true;
            }
            if self.tags[i] == tag && self.bits[i] == bits {
                self.counts[i] += 1;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self, new_cap: usize) {
        let old_tags = std::mem::replace(&mut self.tags, vec![0; new_cap]);
        let old_bits = std::mem::replace(&mut self.bits, vec![0; new_cap]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; new_cap]);
        let mask = new_cap - 1;
        for ((tag, bits), count) in old_tags.into_iter().zip(old_bits).zip(old_counts) {
            if count == 0 {
                continue;
            }
            let mut i = (Self::hash(tag, bits) as usize) & mask;
            while self.counts[i] != 0 {
                i = (i + 1) & mask;
            }
            self.tags[i] = tag;
            self.bits[i] = bits;
            self.counts[i] = count;
        }
    }

    fn iter(&self) -> impl Iterator<Item = (u8, u64, u64)> + '_ {
        (0..self.counts.len())
            .filter(|&i| self.counts[i] != 0)
            .map(|i| (self.tags[i], self.bits[i], self.counts[i]))
    }

    fn max_count(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

/// One access as fed to [`ValueStats::record_batch`]: address, decoded
/// value, and the PC that issued it.
pub type GroupedAccess = (u64, DecodedValue, Pc);

/// Batch-local regression sums, merged into a [`ValueStats`] once per
/// [`ValueStats::record_batch`] call.
#[derive(Debug, Default)]
struct RegressionAcc {
    n: u64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_yy: f64,
    sum_xy: f64,
}

/// Decodes `bits` exactly like [`DecodedValue::as_f64`] would for the
/// scalar type whose tag is `TAG`, but with the type dispatch resolved at
/// compile time.
#[inline(always)]
fn decode_tagged<const TAG: u8>(bits: u64) -> f64 {
    match TAG {
        0 => f32::from_bits(bits as u32) as f64,
        1 => f64::from_bits(bits),
        2 => bits as u8 as i8 as f64,
        3 => bits as u16 as i16 as f64,
        4 => bits as u32 as i32 as f64,
        5 => bits as i64 as f64,
        6 => (bits & 0xFF) as f64,
        7 => (bits & 0xFFFF) as f64,
        8 => (bits & 0xFFFF_FFFF) as f64,
        _ => bits as f64,
    }
}

/// Zero test matching [`DecodedValue::is_zero`], monomorphized like
/// [`decode_tagged`].
#[inline(always)]
fn is_zero_tagged<const TAG: u8>(bits: u64) -> bool {
    match TAG {
        0 => f32::from_bits(bits as u32) == 0.0,
        1 => f64::from_bits(bits) == 0.0,
        2 | 6 => bits & 0xFF == 0,
        3 | 7 => bits & 0xFFFF == 0,
        4 | 8 => bits & 0xFFFF_FFFF == 0,
        _ => bits == 0,
    }
}

/// Streaming per-object, per-direction value statistics.
///
/// One `ValueStats` accumulates all loads *or* all stores of one data
/// object during one GPU API invocation; [`ValueStats::patterns`]
/// evaluates the fine-grained recognizers at kernel end.
///
/// ```rust
/// use vex_core::access_type::DecodedValue;
/// use vex_core::patterns::{PatternConfig, ValuePattern, ValueStats};
/// use vex_gpu::ir::ScalarType;
///
/// let mut stats = ValueStats::new(PatternConfig::default());
/// for i in 0..64u64 {
///     stats.record(i * 4, DecodedValue::from_bits(ScalarType::F32, 0));
/// }
/// let hits = stats.patterns();
/// assert!(hits.iter().any(|h| h.pattern == ValuePattern::SingleZero));
/// ```
#[derive(Debug, Clone)]
pub struct ValueStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses whose decoded value was zero.
    pub zeros: u64,
    /// Exact-value histogram (bits + type as key) with an overflow guard.
    histogram: ValueTable,
    /// Accesses not individually tracked after the histogram cap hit.
    pub histogram_overflow: u64,
    /// Mantissa-truncated histogram for the approximate view (floats only).
    approx_histogram: ValueTable,
    /// Float accesses the approximate histogram stopped tracking after its
    /// cap hit.
    pub approx_histogram_overflow: u64,
    /// Observed value range (for heavy-type detection).
    pub min_value: f64,
    /// Maximum observed value.
    pub max_value: f64,
    /// Whether every float value seen was exactly representable in f32.
    pub f32_representable: bool,
    /// Whether every value seen was integral (fractional part zero).
    pub integral_only: bool,
    /// The widest scalar type observed at the accesses.
    pub observed_type: Option<ScalarType>,
    /// Static instructions that contributed accesses.
    pub pcs: BTreeSet<Pc>,
    // Linear-regression accumulators for structured detection
    // (x = address, y = value).
    n_xy: u64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_yy: f64,
    sum_xy: f64,
    config: PatternConfig,
}

impl ValueStats {
    /// Creates empty statistics under `config`.
    pub fn new(config: PatternConfig) -> Self {
        ValueStats {
            accesses: 0,
            zeros: 0,
            histogram: ValueTable::default(),
            histogram_overflow: 0,
            approx_histogram: ValueTable::default(),
            approx_histogram_overflow: 0,
            min_value: f64::INFINITY,
            max_value: f64::NEG_INFINITY,
            f32_representable: true,
            integral_only: true,
            observed_type: None,
            pcs: BTreeSet::new(),
            n_xy: 0,
            sum_x: 0.0,
            sum_y: 0.0,
            sum_xx: 0.0,
            sum_yy: 0.0,
            sum_xy: 0.0,
            config,
        }
    }

    /// Feeds one access: decoded value at `addr`, tagged with the
    /// instruction that performed it.
    pub fn record_at(&mut self, addr: u64, value: DecodedValue, pc: Pc) {
        self.pcs.insert(pc);
        self.record(addr, value);
    }

    /// Feeds one access: decoded value at `addr`.
    pub fn record(&mut self, addr: u64, value: DecodedValue) {
        self.accesses += 1;
        let v = value.as_f64();
        if value.is_zero() {
            self.zeros += 1;
        }
        if !self.histogram.add(value.ty as u8, value.bits, self.config.max_distinct_values) {
            self.histogram_overflow += 1;
        }
        if value.ty.is_float() {
            let t = truncate_mantissa(v, self.config.approx_mantissa_bits);
            if !self.approx_histogram.add(0, t.to_bits(), self.config.max_distinct_values) {
                self.approx_histogram_overflow += 1;
            }
            if (v as f32) as f64 != v {
                self.f32_representable = false;
            }
        }
        if v.fract() != 0.0 {
            self.integral_only = false;
        }
        if v < self.min_value {
            self.min_value = v;
        }
        if v > self.max_value {
            self.max_value = v;
        }
        self.observed_type = Some(match self.observed_type {
            None => value.ty,
            Some(t) if t.size_bytes() >= value.ty.size_bytes() => t,
            Some(_) => value.ty,
        });
        // Regression accumulators.
        let x = addr as f64;
        self.n_xy += 1;
        self.sum_x += x;
        self.sum_y += v;
        self.sum_xx += x * x;
        self.sum_yy += v * v;
        self.sum_xy += x * v;
    }

    /// Feeds a batch of accesses through the data-oriented kernel: the
    /// batch is split into runs of one [`ScalarType`] and each run goes
    /// through a monomorphized inner loop with the type dispatch, the
    /// float-only branches, and the regression sums hoisted out of the
    /// per-access path.
    ///
    /// State-equivalent to calling [`ValueStats::record_at`] per element,
    /// except that regression sums accumulate batch-locally and merge
    /// once, so their floating-point totals can differ in the last bits
    /// when several batches of non-exactly-representable sums are fed to
    /// one `ValueStats`.
    pub fn record_batch(&mut self, batch: &[GroupedAccess]) {
        let mut acc = RegressionAcc::default();
        let mut i = 0;
        while i < batch.len() {
            let ty = batch[i].1.ty;
            let mut j = i + 1;
            while j < batch.len() && batch[j].1.ty == ty {
                j += 1;
            }
            let run = &batch[i..j];
            match ty {
                ScalarType::F32 => self.record_run::<0>(run, &mut acc),
                ScalarType::F64 => self.record_run::<1>(run, &mut acc),
                ScalarType::S8 => self.record_run::<2>(run, &mut acc),
                ScalarType::S16 => self.record_run::<3>(run, &mut acc),
                ScalarType::S32 => self.record_run::<4>(run, &mut acc),
                ScalarType::S64 => self.record_run::<5>(run, &mut acc),
                ScalarType::U8 => self.record_run::<6>(run, &mut acc),
                ScalarType::U16 => self.record_run::<7>(run, &mut acc),
                ScalarType::U32 => self.record_run::<8>(run, &mut acc),
                ScalarType::U64 => self.record_run::<9>(run, &mut acc),
            }
            i = j;
        }
        self.n_xy += acc.n;
        self.sum_x += acc.sum_x;
        self.sum_y += acc.sum_y;
        self.sum_xx += acc.sum_xx;
        self.sum_yy += acc.sum_yy;
        self.sum_xy += acc.sum_xy;
    }

    /// The monomorphized inner loop of [`ValueStats::record_batch`]:
    /// every element of `run` has the scalar type whose `ty as u8` tag is
    /// `TAG`, so decode and zero tests compile to straight-line per-type
    /// code. Integer decodes are always integral, so the `fract` check
    /// only runs for the two float tags.
    fn record_run<const TAG: u8>(&mut self, run: &[GroupedAccess], acc: &mut RegressionAcc) {
        let is_float = TAG <= 1;
        let cap = self.config.max_distinct_values;
        let k = self.config.approx_mantissa_bits;
        let ty = scalar_type_from_tag(TAG);
        self.observed_type = Some(match self.observed_type {
            None => ty,
            Some(t) if t.size_bytes() >= ty.size_bytes() => t,
            Some(_) => ty,
        });
        let mut last_pc = None;
        for &(addr, value, pc) in run {
            debug_assert_eq!(value.ty as u8, TAG);
            if last_pc != Some(pc) {
                self.pcs.insert(pc);
                last_pc = Some(pc);
            }
            let bits = value.bits;
            let v = decode_tagged::<TAG>(bits);
            self.accesses += 1;
            if is_zero_tagged::<TAG>(bits) {
                self.zeros += 1;
            }
            if !self.histogram.add(TAG, bits, cap) {
                self.histogram_overflow += 1;
            }
            if is_float {
                let t = truncate_mantissa(v, k);
                if !self.approx_histogram.add(0, t.to_bits(), cap) {
                    self.approx_histogram_overflow += 1;
                }
                if (v as f32) as f64 != v {
                    self.f32_representable = false;
                }
                if v.fract() != 0.0 {
                    self.integral_only = false;
                }
            }
            if v < self.min_value {
                self.min_value = v;
            }
            if v > self.max_value {
                self.max_value = v;
            }
            let x = addr as f64;
            acc.n += 1;
            acc.sum_x += x;
            acc.sum_y += v;
            acc.sum_xx += x * x;
            acc.sum_yy += v * v;
            acc.sum_xy += x * v;
        }
    }

    /// Number of distinct exact values observed (capped).
    pub fn distinct_values(&self) -> usize {
        self.histogram.len()
    }

    /// The most frequent exact value and its count. Ties break fully
    /// deterministically: highest count, then lowest bits, then lowest
    /// type tag.
    pub fn top_value(&self) -> Option<(ScalarType, u64, u64)> {
        let mut best: Option<(u8, u64, u64)> = None;
        for (tag, bits, count) in self.histogram.iter() {
            let better = match best {
                None => true,
                Some((btag, bbits, bcount)) => {
                    count > bcount
                        || (count == bcount && (bits < bbits || (bits == bbits && tag < btag)))
                }
            };
            if better {
                best = Some((tag, bits, count));
            }
        }
        best.map(|(tag, bits, count)| (scalar_type_from_tag(tag), bits, count))
    }

    /// Fraction of accesses hitting the most frequent value.
    pub fn top_fraction(&self) -> f64 {
        match self.top_value() {
            Some((_, _, c)) if self.accesses > 0 => c as f64 / self.accesses as f64,
            _ => 0.0,
        }
    }

    /// Pearson correlation between addresses and values.
    ///
    /// `None` when fewer than two accesses were seen, when addresses or
    /// values are constant, or when the regression accumulators are
    /// non-finite (values overflowed the sums or contained NaNs) — a
    /// correlation computed from such sums is meaningless, and NaN
    /// payloads are codegen-dependent, so surfacing them would break the
    /// scalar/batch bit-equivalence the recognizers rely on.
    pub fn address_value_correlation(&self) -> Option<f64> {
        if self.n_xy < 2 {
            return None;
        }
        let n = self.n_xy as f64;
        let cov = self.sum_xy - self.sum_x * self.sum_y / n;
        let var_x = self.sum_xx - self.sum_x * self.sum_x / n;
        let var_y = self.sum_yy - self.sum_y * self.sum_y / n;
        if !cov.is_finite() || !var_x.is_finite() || !var_y.is_finite() {
            return None; // accumulators overflowed or saw NaN values
        }
        if var_x <= 0.0 || var_y <= 0.0 {
            return None; // constant addresses or constant values
        }
        Some(cov / (var_x.sqrt() * var_y.sqrt()))
    }

    /// The narrowest type that can represent every observed value, given
    /// the declared/observed type — `None` when the current type is
    /// already minimal.
    pub fn demotable_type(&self) -> Option<ScalarType> {
        let ty = self.observed_type?;
        if self.accesses == 0 {
            return None;
        }
        let (lo, hi) = (self.min_value, self.max_value);
        if ty.is_float() {
            if ty == ScalarType::F64 && self.f32_representable {
                return Some(ScalarType::F32);
            }
            return None;
        }
        // Integer demotion: pick the narrowest type holding [lo, hi].
        let candidates: &[(ScalarType, f64, f64)] = &[
            (ScalarType::U8, 0.0, u8::MAX as f64),
            (ScalarType::S8, i8::MIN as f64, i8::MAX as f64),
            (ScalarType::U16, 0.0, u16::MAX as f64),
            (ScalarType::S16, i16::MIN as f64, i16::MAX as f64),
            (ScalarType::U32, 0.0, u32::MAX as f64),
            (ScalarType::S32, i32::MIN as f64, i32::MAX as f64),
        ];
        for &(cand, cl, ch) in candidates {
            if cand.size_bytes() < ty.size_bytes() && lo >= cl && hi <= ch {
                return Some(cand);
            }
        }
        None
    }

    /// Evaluates the fine-grained recognizers.
    pub fn patterns(&self) -> Vec<PatternHit> {
        let mut hits = Vec::new();
        if self.accesses == 0 {
            return hits;
        }
        let exact_distinct = self.distinct_values() + usize::from(self.histogram_overflow > 0);
        let top_frac = self.top_fraction();

        if exact_distinct == 1 {
            if self.zeros == self.accesses {
                hits.push(PatternHit {
                    pattern: ValuePattern::SingleZero,
                    strength: 1.0,
                    detail: format!("{} accesses, all zero", self.accesses),
                });
            } else {
                let (ty, bits, _) = self.top_value().expect("distinct == 1");
                hits.push(PatternHit {
                    pattern: ValuePattern::SingleValue,
                    strength: 1.0,
                    detail: format!(
                        "{} accesses, all {}",
                        self.accesses,
                        DecodedValue::from_bits(ty, bits).as_f64()
                    ),
                });
            }
        } else if top_frac >= self.config.frequent_threshold {
            let (ty, bits, count) = self.top_value().expect("nonempty");
            hits.push(PatternHit {
                pattern: ValuePattern::FrequentValues,
                strength: top_frac,
                detail: format!(
                    "value {} covers {:.1}% of {} accesses",
                    DecodedValue::from_bits(ty, bits).as_f64(),
                    top_frac * 100.0,
                    count.max(self.accesses) // count <= accesses; show total
                ),
            });
        }

        if let Some(demoted) = self.demotable_type() {
            let ty = self.observed_type.expect("demotable implies observed");
            hits.push(PatternHit {
                pattern: ValuePattern::HeavyType,
                strength: 1.0 - demoted.size_bytes() as f64 / ty.size_bytes() as f64,
                detail: format!(
                    "values in [{}, {}] fit {} (declared {})",
                    self.min_value, self.max_value, demoted, ty
                ),
            });
        }

        if self.n_xy >= self.config.structured_min_samples && exact_distinct > 1 {
            if let Some(r) = self.address_value_correlation() {
                if r.abs() >= self.config.structured_min_corr {
                    hits.push(PatternHit {
                        pattern: ValuePattern::StructuredValues,
                        strength: r.abs(),
                        detail: format!("address-value correlation r = {r:.4}"),
                    });
                }
            }
        }

        // Approximate: the truncated view is single/frequent while the
        // exact view is not.
        if self.observed_type.is_some_and(ScalarType::is_float)
            && !self.approx_histogram.is_empty()
        {
            let approx_distinct =
                self.approx_histogram.len() + usize::from(self.approx_histogram_overflow > 0);
            let approx_top = self.approx_histogram.max_count() as f64 / self.accesses as f64;
            let exact_hits_already =
                exact_distinct == 1 || top_frac >= self.config.frequent_threshold;
            if !exact_hits_already
                && (approx_distinct == 1 || approx_top >= self.config.frequent_threshold)
            {
                hits.push(PatternHit {
                    pattern: ValuePattern::ApproximateValues,
                    strength: approx_top,
                    detail: format!(
                        "with {}-bit mantissa: {} distinct values, top covers {:.1}%",
                        self.config.approx_mantissa_bits,
                        approx_distinct,
                        approx_top * 100.0
                    ),
                });
            }
        }

        hits
    }
}

/// One recognized pattern instance with its evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternHit {
    /// The recognized pattern.
    pub pattern: ValuePattern,
    /// Normalized strength in `(0, 1]` (fraction, correlation, or savings
    /// ratio depending on the pattern).
    pub strength: f64,
    /// Human-readable evidence.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(stats: &mut ValueStats, addr: u64, ty: ScalarType, v: f64) {
        let bits = match ty {
            ScalarType::F32 => (v as f32).to_bits() as u64,
            ScalarType::F64 => v.to_bits(),
            _ => v as i64 as u64,
        };
        stats.record(addr, DecodedValue::from_bits(ty, bits));
    }

    fn has(hits: &[PatternHit], p: ValuePattern) -> bool {
        hits.iter().any(|h| h.pattern == p)
    }

    #[test]
    fn single_zero_detected() {
        let mut s = ValueStats::new(PatternConfig::default());
        for i in 0..100 {
            rec(&mut s, i * 4, ScalarType::F32, 0.0);
        }
        let hits = s.patterns();
        assert!(has(&hits, ValuePattern::SingleZero));
        assert!(!has(&hits, ValuePattern::SingleValue));
        assert!(!has(&hits, ValuePattern::FrequentValues));
    }

    #[test]
    fn single_value_detected() {
        let mut s = ValueStats::new(PatternConfig::default());
        for i in 0..100 {
            rec(&mut s, i * 8, ScalarType::F64, 3.25);
        }
        let hits = s.patterns();
        assert!(has(&hits, ValuePattern::SingleValue));
        assert!(!has(&hits, ValuePattern::SingleZero));
    }

    #[test]
    fn frequent_values_detected() {
        let mut s = ValueStats::new(PatternConfig::default());
        for i in 0..100u64 {
            let v = if i % 10 == 0 { i as f64 } else { 7.0 };
            rec(&mut s, i * 4, ScalarType::F32, v);
        }
        let hits = s.patterns();
        assert!(has(&hits, ValuePattern::FrequentValues));
        let hit = hits.iter().find(|h| h.pattern == ValuePattern::FrequentValues).unwrap();
        assert!((hit.strength - 0.9).abs() < 1e-9);
    }

    #[test]
    fn heavy_type_int_demotion() {
        // Values 0..=9 stored as s32 (the Rodinia/bfs g_cost case).
        let mut s = ValueStats::new(PatternConfig::default());
        for i in 0..200u64 {
            rec(&mut s, i * 4, ScalarType::S32, (i % 10) as f64);
        }
        let hits = s.patterns();
        assert!(has(&hits, ValuePattern::HeavyType));
        assert_eq!(s.demotable_type(), Some(ScalarType::U8));
    }

    #[test]
    fn heavy_type_f64_to_f32() {
        // lavaMD's rA: ten values 0.1..1.0 stored as f64. They are not
        // exactly f32-representable... use f32-representable doubles.
        let mut s = ValueStats::new(PatternConfig::default());
        for i in 0..100u64 {
            rec(&mut s, i * 8, ScalarType::F64, (i % 10) as f64 * 0.5);
        }
        assert_eq!(s.demotable_type(), Some(ScalarType::F32));
    }

    #[test]
    fn no_heavy_type_when_range_needs_width() {
        let mut s = ValueStats::new(PatternConfig::default());
        rec(&mut s, 0, ScalarType::S32, -100000.0);
        rec(&mut s, 4, ScalarType::S32, 100000.0);
        assert_eq!(s.demotable_type(), None);
        assert!(!has(&s.patterns(), ValuePattern::HeavyType));
    }

    #[test]
    fn structured_values_detected() {
        // srad_v1's d_iN-style neighbor index arrays: value = f(index).
        let mut s = ValueStats::new(PatternConfig::default());
        for i in 0..128u64 {
            rec(&mut s, 1000 + i * 4, ScalarType::S32, (i as f64) - 1.0);
        }
        let hits = s.patterns();
        assert!(has(&hits, ValuePattern::StructuredValues));
    }

    #[test]
    fn structured_not_detected_for_noise() {
        let mut s = ValueStats::new(PatternConfig::default());
        let mut x = 42u64;
        for i in 0..128u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rec(&mut s, 1000 + i * 4, ScalarType::S32, (x % 1000) as f64);
        }
        assert!(!has(&s.patterns(), ValuePattern::StructuredValues));
    }

    #[test]
    fn approximate_values_detected() {
        // hotspot3D-style: temperatures clustered around 330.0 with tiny
        // perturbations — exact values all distinct, truncated identical.
        let mut s = ValueStats::new(PatternConfig::default());
        for i in 0..256u64 {
            rec(&mut s, i * 8, ScalarType::F64, 330.0 + 1e-9 * i as f64);
        }
        let hits = s.patterns();
        assert!(has(&hits, ValuePattern::ApproximateValues));
        assert!(!has(&hits, ValuePattern::SingleValue));
        assert!(!has(&hits, ValuePattern::FrequentValues));
    }

    #[test]
    fn approximate_suppressed_when_exact_pattern_exists() {
        let mut s = ValueStats::new(PatternConfig::default());
        for i in 0..64u64 {
            rec(&mut s, i * 4, ScalarType::F32, 1.0);
        }
        let hits = s.patterns();
        assert!(has(&hits, ValuePattern::SingleValue));
        assert!(!has(&hits, ValuePattern::ApproximateValues));
    }

    #[test]
    fn truncate_mantissa_behaviour() {
        assert_eq!(truncate_mantissa(1.0, 8), 1.0);
        let a = truncate_mantissa(330.000001, 8);
        let b = truncate_mantissa(330.000002, 8);
        assert_eq!(a, b);
        assert_ne!(truncate_mantissa(330.0, 8), truncate_mantissa(331.0, 8));
        // k >= 52 keeps everything.
        assert_eq!(truncate_mantissa(std::f64::consts::PI, 60), std::f64::consts::PI);
    }

    #[test]
    fn histogram_cap_is_respected() {
        let cfg = PatternConfig { max_distinct_values: 10, ..PatternConfig::default() };
        let mut s = ValueStats::new(cfg);
        for i in 0..100u64 {
            rec(&mut s, i * 4, ScalarType::U32, i as f64);
        }
        assert_eq!(s.distinct_values(), 10);
        assert_eq!(s.histogram_overflow, 90);
        // Overflow means we can no longer claim single-value.
        assert!(!has(&s.patterns(), ValuePattern::SingleValue));
    }

    #[test]
    fn approx_histogram_cap_counts_overflow() {
        let cfg = PatternConfig { max_distinct_values: 4, ..PatternConfig::default() };
        let mut s = ValueStats::new(cfg);
        // Distinct exponents: every truncated value is distinct too.
        for i in 0..32u64 {
            rec(&mut s, i * 8, ScalarType::F64, (1u64 << i) as f64);
        }
        assert_eq!(s.approx_histogram_overflow, 28);
        assert_eq!(s.histogram_overflow, 28);
    }

    #[test]
    fn approx_histogram_overflow_blocks_false_single() {
        // Cap 1: the approximate histogram keeps only the first truncated
        // value, so without overflow accounting the 20 dropped distinct
        // values would masquerade as an approximate single value.
        let cfg = PatternConfig { max_distinct_values: 1, ..PatternConfig::default() };
        let mut s = ValueStats::new(cfg);
        for i in 0..10u64 {
            rec(&mut s, i * 8, ScalarType::F64, 330.0 + 1e-9 * i as f64);
        }
        for i in 0..20u64 {
            rec(&mut s, 80 + i * 8, ScalarType::F64, (1u64 << i) as f64 * 1.5);
        }
        assert_eq!(s.approx_histogram_overflow, 20);
        assert!(!has(&s.patterns(), ValuePattern::ApproximateValues));
    }

    #[test]
    fn top_value_ties_break_deterministically() {
        // Two types sharing one bit pattern with equal counts: the winner
        // is the same whatever the insertion order.
        let a = DecodedValue::from_bits(ScalarType::U32, 7);
        let b = DecodedValue::from_bits(ScalarType::S32, 7);
        let mut s1 = ValueStats::new(PatternConfig::default());
        s1.record(0, a);
        s1.record(4, b);
        let mut s2 = ValueStats::new(PatternConfig::default());
        s2.record(0, b);
        s2.record(4, a);
        assert_eq!(s1.top_value(), s2.top_value());
        // S32 precedes U32 in declaration order, so it wins the tie.
        assert_eq!(s1.top_value(), Some((ScalarType::S32, 7, 1)));
        // Bits still outrank type: the lower bit pattern wins first.
        let mut s3 = ValueStats::new(PatternConfig::default());
        s3.record(0, DecodedValue::from_bits(ScalarType::U32, 3));
        s3.record(4, DecodedValue::from_bits(ScalarType::S32, 9));
        assert_eq!(s3.top_value(), Some((ScalarType::U32, 3, 1)));
    }

    #[test]
    fn scalar_type_tags_match_declaration_order() {
        use ScalarType::*;
        for (i, ty) in [F32, F64, S8, S16, S32, S64, U8, U16, U32, U64].into_iter().enumerate()
        {
            assert_eq!(ty as usize, i);
            assert_eq!(scalar_type_from_tag(ty as u8), ty);
        }
    }

    fn assert_stats_equal(a: &ValueStats, b: &ValueStats) {
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.zeros, b.zeros);
        assert_eq!(a.distinct_values(), b.distinct_values());
        assert_eq!(a.histogram_overflow, b.histogram_overflow);
        assert_eq!(a.approx_histogram_overflow, b.approx_histogram_overflow);
        assert_eq!(a.min_value.to_bits(), b.min_value.to_bits());
        assert_eq!(a.max_value.to_bits(), b.max_value.to_bits());
        assert_eq!(a.f32_representable, b.f32_representable);
        assert_eq!(a.integral_only, b.integral_only);
        assert_eq!(a.observed_type, b.observed_type);
        assert_eq!(a.pcs, b.pcs);
        assert_eq!(a.top_value(), b.top_value());
        assert_eq!(a.top_fraction(), b.top_fraction());
        // Bit compare is safe: non-finite accumulators (NaN inputs or
        // overflowed sums) yield `None` on both sides, and finite sums
        // fold in the same order, so the bits match exactly.
        assert_eq!(
            a.address_value_correlation().map(f64::to_bits),
            b.address_value_correlation().map(f64::to_bits)
        );
        assert_eq!(a.patterns(), b.patterns());
    }

    #[test]
    fn multi_batch_matches_scalar_on_integral_data() {
        let batch: Vec<(u64, DecodedValue, Pc)> = (0..300u64)
            .map(|i| {
                let ty = scalar_type_from_tag((i % 10) as u8);
                let v = i % 7;
                let bits = match ty {
                    ScalarType::F32 => (v as f32).to_bits() as u64,
                    ScalarType::F64 => (v as f64).to_bits(),
                    _ => v,
                };
                (i * 4, DecodedValue::from_bits(ty, bits), Pc((i % 5) as u32))
            })
            .collect();
        let mut scalar = ValueStats::new(PatternConfig::default());
        for &(addr, value, pc) in &batch {
            scalar.record_at(addr, value, pc);
        }
        let mut batched = ValueStats::new(PatternConfig::default());
        for chunk in batch.chunks(70) {
            batched.record_batch(chunk);
        }
        // Small integral inputs: every regression sum is exact, so even
        // across several batches the states match bit-for-bit.
        assert_stats_equal(&scalar, &batched);
    }

    #[test]
    fn empty_stats_no_patterns() {
        let s = ValueStats::new(PatternConfig::default());
        assert!(s.patterns().is_empty());
        assert_eq!(s.top_fraction(), 0.0);
        assert!(s.address_value_correlation().is_none());
    }

    #[test]
    fn pattern_metadata() {
        assert!(ValuePattern::RedundantValues.is_coarse());
        assert!(!ValuePattern::SingleZero.is_coarse());
        assert_eq!(ValuePattern::ALL.len(), 8);
        for p in ValuePattern::ALL {
            assert!(!p.guidance().is_empty());
            assert!(!p.to_string().is_empty());
        }
    }

    proptest! {
        #[test]
        fn prop_single_value_iff_one_distinct(values in prop::collection::vec(0u32..5, 1..200)) {
            let mut s = ValueStats::new(PatternConfig::default());
            for (i, v) in values.iter().enumerate() {
                rec(&mut s, (i * 4) as u64, ScalarType::U32, *v as f64);
            }
            let distinct: std::collections::HashSet<_> = values.iter().collect();
            let hits = s.patterns();
            let single = has(&hits, ValuePattern::SingleValue) || has(&hits, ValuePattern::SingleZero);
            prop_assert_eq!(single, distinct.len() == 1);
        }

        #[test]
        fn prop_zeros_counted(values in prop::collection::vec(0u32..3, 1..100)) {
            let mut s = ValueStats::new(PatternConfig::default());
            for (i, v) in values.iter().enumerate() {
                rec(&mut s, (i * 4) as u64, ScalarType::U32, *v as f64);
            }
            prop_assert_eq!(s.zeros, values.iter().filter(|&&v| v == 0).count() as u64);
            prop_assert_eq!(s.accesses, values.len() as u64);
        }

        #[test]
        fn prop_correlation_bounded(
            pairs in prop::collection::vec((0u64..10_000, -1000i64..1000), 2..100)
        ) {
            let mut s = ValueStats::new(PatternConfig::default());
            for (a, v) in &pairs {
                rec(&mut s, *a, ScalarType::S32, *v as f64);
            }
            if let Some(r) = s.address_value_correlation() {
                prop_assert!((-1.0001..=1.0001).contains(&r));
            }
        }

        #[test]
        fn prop_tagged_kernels_match_decoded_value(tag in 0u8..10, bits in any::<u64>()) {
            let ty = scalar_type_from_tag(tag);
            let value = DecodedValue::from_bits(ty, bits);
            let decoded = match tag {
                0 => decode_tagged::<0>(bits),
                1 => decode_tagged::<1>(bits),
                2 => decode_tagged::<2>(bits),
                3 => decode_tagged::<3>(bits),
                4 => decode_tagged::<4>(bits),
                5 => decode_tagged::<5>(bits),
                6 => decode_tagged::<6>(bits),
                7 => decode_tagged::<7>(bits),
                8 => decode_tagged::<8>(bits),
                _ => decode_tagged::<9>(bits),
            };
            prop_assert_eq!(decoded.to_bits(), value.as_f64().to_bits());
            let zero = match tag {
                0 => is_zero_tagged::<0>(bits),
                1 => is_zero_tagged::<1>(bits),
                2 => is_zero_tagged::<2>(bits),
                3 => is_zero_tagged::<3>(bits),
                4 => is_zero_tagged::<4>(bits),
                5 => is_zero_tagged::<5>(bits),
                6 => is_zero_tagged::<6>(bits),
                7 => is_zero_tagged::<7>(bits),
                8 => is_zero_tagged::<8>(bits),
                _ => is_zero_tagged::<9>(bits),
            };
            prop_assert_eq!(zero, value.is_zero());
        }

        /// One batch into a fresh `ValueStats` is bit-identical to the
        /// scalar path for ANY inputs (including NaNs and denormals):
        /// the batch accumulator folds in the same order and merges into
        /// zeroed sums.
        #[test]
        fn prop_single_batch_matches_scalar(
            accesses in prop::collection::vec(
                (any::<u64>(), 0u8..10, any::<u64>(), 0u32..8), 0..200,
            ),
            cap_index in 0usize..3,
        ) {
            let cap = [1usize, 3, 1 << 16][cap_index];
            let batch: Vec<(u64, DecodedValue, Pc)> = accesses
                .into_iter()
                .map(|(addr, tag, bits, pc)| {
                    (addr, DecodedValue::from_bits(scalar_type_from_tag(tag), bits), Pc(pc))
                })
                .collect();
            let cfg = PatternConfig { max_distinct_values: cap, ..PatternConfig::default() };
            let mut scalar = ValueStats::new(cfg);
            for &(addr, value, pc) in &batch {
                scalar.record_at(addr, value, pc);
            }
            let mut batched = ValueStats::new(cfg);
            batched.record_batch(&batch);
            assert_stats_equal(&scalar, &batched);
        }
    }
}
