//! Interval merging — re-exported from [`vex_trace::interval`].
//!
//! The algorithms moved into `vex-trace` with the canonical event model:
//! the collector's kernel-interval tracking ([`vex_trace::event`]) and the
//! trace container both speak [`Interval`], and `vex-trace` sits below
//! this crate in the dependency graph. The module path
//! `vex_core::interval` is preserved for existing users.

pub use vex_trace::interval::*;
