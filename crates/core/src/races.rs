//! Inter-block data-race detection over the instrumentation stream.
//!
//! The second analysis the paper's conclusion plans to offload onto the
//! fast collection pipeline (alongside reuse distance; cf. the cited
//! CURD race detector). On a real GPU, thread blocks of one kernel
//! execute in an undefined order with no inter-block synchronization, so
//! two accesses to the same address from *different blocks* of the same
//! launch race unless both are reads or both are hardware atomics.
//!
//! The detector consumes the same [`vex_trace::AccessRecord`] stream the
//! value profiler uses, so a single instrumented run yields value
//! patterns *and* race reports.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use vex_gpu::hooks::LaunchInfo;
use vex_gpu::ir::{MemSpace, Pc};
use vex_trace::AccessRecord;

/// The kind of conflict observed on one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RaceKind {
    /// Two blocks wrote the address (write-write).
    WriteWrite,
    /// One block wrote, another read (read-write).
    ReadWrite,
}

impl std::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
        })
    }
}

/// One reported race: an address with conflicting inter-block accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport {
    /// Kernel name.
    pub kernel: String,
    /// Conflict kind (write-write dominates read-write in reports).
    pub kind: RaceKind,
    /// A representative racing address.
    pub addr: u64,
    /// PCs of the two conflicting accesses (first writer, then the other
    /// party).
    pub pcs: (Pc, Pc),
    /// Flat block ids of the two parties.
    pub blocks: (u32, u32),
    /// How many distinct addresses in this kernel raced with the same
    /// `(kind, pcs)` signature — races are usually whole-array, and one
    /// row per address would bury the user.
    pub addresses: u64,
}

/// Per-address state within the current launch.
#[derive(Debug, Clone, Copy)]
struct AddrState {
    /// Last writer (block, pc), if any non-atomic write happened.
    writer: Option<(u32, Pc)>,
    /// Last reader (block, pc), if any non-atomic read happened.
    reader: Option<(u32, Pc)>,
}

/// Streaming inter-block race detector.
///
/// Feed it the launch boundaries and records of an instrumented run; it
/// reports conflicting non-atomic accesses to one address from different
/// thread blocks. See `examples/reuse_and_races.rs` for end-to-end use
/// through [`crate::profiler::ProfilerBuilder::race_detection`].
#[derive(Debug, Default)]
pub struct RaceDetector {
    state: HashMap<u64, AddrState>,
    /// (kind, pc_a, pc_b) -> (representative report, address count)
    found: BTreeMap<(RaceKind, Pc, Pc), (RaceReport, u64)>,
    reports: Vec<RaceReport>,
    current_kernel: Option<String>,
    current_launch: Option<vex_gpu::hooks::LaunchId>,
}

impl RaceDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a launch: inter-block conflicts only matter within one
    /// kernel, so per-address state resets.
    pub fn on_launch_begin(&mut self, info: &LaunchInfo) {
        self.state.clear();
        self.found.clear();
        self.current_kernel = Some(info.kernel_name.clone());
        self.current_launch = Some(info.launch);
    }

    /// Idempotent launch entry used by streaming consumers: begins a new
    /// launch whenever the id changes (closing the previous one).
    pub fn ensure_launch(&mut self, info: &LaunchInfo) {
        if self.current_launch != Some(info.launch) {
            if self.current_launch.is_some() {
                self.on_launch_end();
            }
            self.on_launch_begin(info);
        }
    }

    /// Feeds one record of the current launch.
    pub fn record(&mut self, rec: &AccessRecord) {
        // Shared memory is per-block: cross-block conflicts are impossible,
        // and intra-block ordering is the kernel's responsibility
        // (__syncthreads), which our block-phased execution models.
        if rec.space != MemSpace::Global || rec.is_atomic {
            return;
        }
        let kernel = match &self.current_kernel {
            Some(k) => k.clone(),
            None => return,
        };
        let entry =
            *self.state.entry(rec.addr).or_insert(AddrState { writer: None, reader: None });

        if rec.is_store {
            if let Some((wb, wpc)) = entry.writer {
                if wb != rec.block {
                    self.report(
                        &kernel,
                        RaceKind::WriteWrite,
                        rec.addr,
                        (wpc, rec.pc),
                        (wb, rec.block),
                    );
                }
            }
            if let Some((rb, rpc)) = entry.reader {
                if rb != rec.block {
                    self.report(
                        &kernel,
                        RaceKind::ReadWrite,
                        rec.addr,
                        (rec.pc, rpc),
                        (rec.block, rb),
                    );
                }
            }
            self.state.get_mut(&rec.addr).expect("inserted above").writer =
                Some((rec.block, rec.pc));
        } else {
            if let Some((wb, wpc)) = entry.writer {
                if wb != rec.block {
                    self.report(
                        &kernel,
                        RaceKind::ReadWrite,
                        rec.addr,
                        (wpc, rec.pc),
                        (wb, rec.block),
                    );
                }
            }
            self.state.get_mut(&rec.addr).expect("inserted above").reader =
                Some((rec.block, rec.pc));
        }
    }

    fn report(
        &mut self,
        kernel: &str,
        kind: RaceKind,
        addr: u64,
        pcs: (Pc, Pc),
        blocks: (u32, u32),
    ) {
        let key = (kind, pcs.0, pcs.1);
        match self.found.get_mut(&key) {
            Some((_, count)) => *count += 1,
            None => {
                self.found.insert(
                    key,
                    (
                        RaceReport {
                            kernel: kernel.to_owned(),
                            kind,
                            addr,
                            pcs,
                            blocks,
                            addresses: 1,
                        },
                        1,
                    ),
                );
            }
        }
    }

    /// Ends the launch, folding its aggregated reports into the result
    /// list.
    pub fn on_launch_end(&mut self) {
        for (_, (mut report, count)) in std::mem::take(&mut self.found) {
            report.addresses = count;
            self.reports.push(report);
        }
        self.state.clear();
        self.current_kernel = None;
        self.current_launch = None;
    }

    /// All races found so far (one row per `(kernel launch, kind, pc
    /// pair)` signature).
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Consumes the detector, returning the reports.
    pub fn finish(mut self) -> Vec<RaceReport> {
        self.on_launch_end();
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vex_gpu::callpath::CallPathId;
    use vex_gpu::dim::Dim3;
    use vex_gpu::hooks::LaunchId;
    use vex_gpu::ir::InstrTable;
    use vex_gpu::stream::StreamId;

    fn info(name: &str) -> LaunchInfo {
        LaunchInfo {
            launch: LaunchId(0),
            kernel_name: name.to_owned(),
            grid: Dim3::linear(4),
            block: Dim3::linear(32),
            shared_bytes: 0,
            context: CallPathId::ROOT,
            stream: StreamId::DEFAULT,
            instr_table: Arc::new(InstrTable::new()),
        }
    }

    fn rec(addr: u64, block: u32, is_store: bool, is_atomic: bool, pc: u32) -> AccessRecord {
        AccessRecord {
            pc: Pc(pc),
            addr,
            bits: 0,
            size: 4,
            is_store,
            space: MemSpace::Global,
            block,
            thread: 0,
            is_atomic,
        }
    }

    fn run(records: &[AccessRecord]) -> Vec<RaceReport> {
        let mut d = RaceDetector::new();
        d.on_launch_begin(&info("k"));
        for r in records {
            d.record(r);
        }
        d.finish()
    }

    #[test]
    fn disjoint_blocks_do_not_race() {
        let reports = run(&[
            rec(0, 0, true, false, 0),
            rec(4, 1, true, false, 0),
            rec(8, 2, true, false, 0),
        ]);
        assert!(reports.is_empty());
    }

    #[test]
    fn write_write_across_blocks_races() {
        let reports = run(&[rec(64, 0, true, false, 1), rec(64, 1, true, false, 1)]);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.kind, RaceKind::WriteWrite);
        assert_eq!(r.blocks, (0, 1));
        assert_eq!(r.addr, 64);
    }

    #[test]
    fn read_write_across_blocks_races() {
        let reports = run(&[rec(64, 0, false, false, 2), rec(64, 1, true, false, 3)]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn same_block_conflicts_are_not_races() {
        let reports = run(&[
            rec(64, 0, true, false, 0),
            rec(64, 0, true, false, 1),
            rec(64, 0, false, false, 2),
        ]);
        assert!(reports.is_empty());
    }

    #[test]
    fn atomics_are_exempt() {
        let reports = run(&[
            rec(64, 0, false, true, 0),
            rec(64, 0, true, true, 0),
            rec(64, 1, false, true, 0),
            rec(64, 1, true, true, 0),
        ]);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn atomic_vs_plain_write_still_races() {
        // A plain write racing with a later plain read — atomic accesses
        // in between are ignored, the plain pair still conflicts.
        let reports = run(&[
            rec(64, 0, true, false, 0),
            rec(64, 1, true, true, 1), // atomic, exempt
            rec(64, 2, false, false, 2),
        ]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, RaceKind::ReadWrite);
        assert_eq!(reports[0].blocks, (0, 2));
    }

    #[test]
    fn whole_array_race_aggregates() {
        // 100 addresses each written by two blocks at the same PC pair:
        // one report, 100 addresses.
        let mut records = Vec::new();
        for i in 0..100u64 {
            records.push(rec(i * 4, 0, true, false, 7));
            records.push(rec(i * 4, 1, true, false, 7));
        }
        let reports = run(&records);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].addresses, 100);
    }

    #[test]
    fn state_resets_between_launches() {
        let mut d = RaceDetector::new();
        d.on_launch_begin(&info("a"));
        d.record(&rec(64, 0, true, false, 0));
        d.on_launch_end();
        d.on_launch_begin(&info("b"));
        d.record(&rec(64, 1, true, false, 0)); // different launch: no race
        d.on_launch_end();
        assert!(d.reports().is_empty());
    }

    #[test]
    fn shared_memory_is_ignored() {
        let mut d = RaceDetector::new();
        d.on_launch_begin(&info("k"));
        let mut r = rec(0, 0, true, false, 0);
        r.space = MemSpace::Shared;
        d.record(&r);
        let mut r2 = rec(0, 1, true, false, 0);
        r2.space = MemSpace::Shared;
        d.record(&r2);
        assert!(d.finish().is_empty());
    }
}
