//! The ValueExpert profiler front-end (§4).
//!
//! [`ValueExpert`] wires the coarse analyzer, the fine analyzer, and the
//! trace collector onto a [`vex_gpu::runtime::Runtime`], mirroring the
//! paper's component diagram (Figure 1): the *data collector* overloads
//! GPU APIs and instruments kernels, the *online analyzer* recognizes
//! patterns and builds the value flow graph, and the report machinery in
//! [`crate::report`] stands in for the GUI.
//!
//! ```rust
//! use vex_core::profiler::ValueExpert;
//! use vex_gpu::prelude::*;
//!
//! # fn main() -> Result<(), GpuError> {
//! let mut rt = Runtime::new(DeviceSpec::rtx2080ti());
//! let vex = ValueExpert::builder().coarse(true).fine(true).attach(&mut rt);
//! // ... run the application against `rt` ...
//! let profile = vex.report(&rt);
//! assert_eq!(profile.redundancies.len(), 0);
//! # Ok(()) }
//! ```

use crate::coarse::{CoarseState, CoarseTraffic, KernelIntervals};
use crate::copy_strategy::AdaptivePolicy;
use crate::fine::{FineState, FineTraffic};
use crate::flowgraph::FlowGraph;
use crate::interval::Interval;
use crate::overhead::{OverheadModel, OverheadReport};
use crate::patterns::PatternConfig;
use crate::pipeline::{Pipeline, PipelineSpec};
use crate::races::RaceDetector;
use crate::registry::ObjectRegistry;
use crate::report::Profile;
use crate::reuse::ReuseAnalyzer;
use crate::sampling::{BlockSampler, HierarchicalSampler, KernelNameFilter};
use parking_lot::Mutex;
use std::sync::Arc;
use vex_gpu::exec::LaunchStats;
use vex_gpu::hooks::{
    AccessEvent, ApiEvent, ApiHook, ApiKind, ApiPhase, DeviceView, LaunchInfo, MemAccessHook,
};
use vex_gpu::runtime::Runtime;
use vex_trace::{AccessRecord, Collector, CollectorStats, TraceSink};

/// Configuration for a profiling session; see [`ValueExpert::builder`].
#[derive(Debug, Clone)]
pub struct ProfilerBuilder {
    coarse: bool,
    fine: bool,
    pattern: PatternConfig,
    copy_policy: AdaptivePolicy,
    overhead: OverheadModel,
    buffer_capacity: usize,
    kernel_filter: Option<Vec<String>>,
    kernel_period: u64,
    block_period: u32,
    reuse_line_bytes: Option<u64>,
    race_detection: bool,
    warp_compaction: bool,
    analysis_shards: usize,
    analysis_queue_depth: usize,
}

impl Default for ProfilerBuilder {
    fn default() -> Self {
        ProfilerBuilder {
            coarse: true,
            fine: false,
            pattern: PatternConfig::default(),
            copy_policy: AdaptivePolicy::default(),
            overhead: OverheadModel::default(),
            buffer_capacity: 1 << 16,
            kernel_filter: None,
            kernel_period: 1,
            block_period: 1,
            reuse_line_bytes: None,
            race_detection: false,
            warp_compaction: true,
            analysis_shards: 0,
            analysis_queue_depth: 64,
        }
    }
}

impl ProfilerBuilder {
    /// Enables or disables the coarse-grained pass (default on).
    #[must_use]
    pub fn coarse(mut self, on: bool) -> Self {
        self.coarse = on;
        self
    }

    /// Enables or disables the fine-grained pass (default off).
    #[must_use]
    pub fn fine(mut self, on: bool) -> Self {
        self.fine = on;
        self
    }

    /// Overrides recognizer thresholds.
    #[must_use]
    pub fn pattern_config(mut self, config: PatternConfig) -> Self {
        self.pattern = config;
        self
    }

    /// Overrides the adaptive snapshot-copy policy.
    #[must_use]
    pub fn copy_policy(mut self, policy: AdaptivePolicy) -> Self {
        self.copy_policy = policy;
        self
    }

    /// Overrides the overhead model constants.
    #[must_use]
    pub fn overhead_model(mut self, model: OverheadModel) -> Self {
        self.overhead = model;
        self
    }

    /// Sets the simulated device-buffer capacity in records.
    #[must_use]
    pub fn buffer_capacity(mut self, records: usize) -> Self {
        self.buffer_capacity = records;
        self
    }

    /// Restricts fine-grained analysis to kernels whose name contains one
    /// of `names` (§6.2 filtering).
    #[must_use]
    pub fn filter_kernels<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.kernel_filter = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Sets the kernel sampling period (§6.2; instrument every P-th launch
    /// of each kernel).
    #[must_use]
    pub fn kernel_sampling(mut self, period: u64) -> Self {
        self.kernel_period = period.max(1);
        self
    }

    /// Sets the block sampling period (§6.2; analyze every Q-th block).
    #[must_use]
    pub fn block_sampling(mut self, period: u32) -> Self {
        self.block_period = period.max(1);
        self
    }

    /// Enables reuse-distance analysis at the given cache-line size
    /// (one of the §9 analyses layered on the same record stream;
    /// requires the fine pass).
    ///
    /// # Panics
    ///
    /// `attach` panics if `line_bytes` is not a power of two.
    #[must_use]
    pub fn reuse_distance(mut self, line_bytes: u64) -> Self {
        self.reuse_line_bytes = Some(line_bytes);
        self
    }

    /// Enables inter-block race detection (§9; requires the fine pass).
    /// Block sampling distorts race coverage, so pair this with
    /// `block_sampling(1)` for sound results.
    #[must_use]
    pub fn race_detection(mut self, on: bool) -> Self {
        self.race_detection = on;
        self
    }

    /// Toggles §6.1's warp-level interval compaction (default on; turning
    /// it off exists for the ablation study — every raw access interval
    /// then reaches the merge stage).
    #[must_use]
    pub fn warp_compaction(mut self, on: bool) -> Self {
        self.warp_compaction = on;
        self
    }

    /// Moves analysis off the application's critical path: `shards` fine
    /// analysis workers (work partitioned by data object, so per-object
    /// state never crosses shards), plus a router, a sequential
    /// reuse/race worker, and a coarse replay worker as the enabled
    /// passes require. `0` — the default — keeps the fully synchronous
    /// engine. Reports are **byte-identical** for every shard count; see
    /// [`crate::pipeline`] for the determinism argument.
    #[must_use]
    pub fn analysis_shards(mut self, shards: usize) -> Self {
        self.analysis_shards = shards;
        self
    }

    /// Capacity, in messages, of each bounded pipeline channel (default
    /// 64). Deeper queues decouple the application further from analysis
    /// at the cost of memory; a full queue back-pressures the publisher.
    #[must_use]
    pub fn analysis_queue_depth(mut self, depth: usize) -> Self {
        self.analysis_queue_depth = depth.max(1);
        self
    }

    /// Attaches the profiler to a runtime and returns the session handle.
    pub fn attach(self, rt: &mut Runtime) -> ValueExpert {
        let pipeline = (self.analysis_shards > 0).then(|| {
            Pipeline::spawn(&PipelineSpec {
                shards: self.analysis_shards,
                queue_depth: self.analysis_queue_depth,
                coarse: self.coarse,
                fine: self.fine,
                pattern: self.pattern,
                policy: self.copy_policy,
                reuse_line_bytes: self.reuse_line_bytes.filter(|_| self.fine),
                races: self.race_detection && self.fine,
                warp_compaction: self.warp_compaction,
            })
        });
        let synchronous = pipeline.is_none();

        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                registry: ObjectRegistry::new(),
                coarse: (self.coarse && synchronous)
                    .then(|| CoarseState::new(self.pattern, self.copy_policy)),
                // Block sampling is applied at collection (in the
                // Collector), so the analyzer sees every record it gets.
                fine: (self.fine && synchronous)
                    .then(|| FineState::new(self.pattern, BlockSampler::new(1))),
                reuse: self
                    .reuse_line_bytes
                    .filter(|_| self.fine && synchronous)
                    .map(ReuseAnalyzer::new),
                races: (self.race_detection && self.fine && synchronous)
                    .then(RaceDetector::new),
            }),
            overhead: self.overhead,
            pattern: self.pattern,
            warp_compaction: self.warp_compaction,
        });

        // API interception (registry + coarse analysis or capture).
        match &pipeline {
            None => rt.register_api_hook(Arc::new(ApiGlue(shared.clone()))),
            Some(p) => rt.register_api_hook(Arc::new(PipedApiGlue(p.clone()))),
        }

        // Coarse interval monitoring.
        if self.coarse {
            match &pipeline {
                None => rt.register_access_hook(Arc::new(CoarseGlue(shared.clone()))),
                Some(p) => rt.register_access_hook(Arc::new(PipedCoarseGlue(p.clone()))),
            }
        }

        // Fine collection through the bounded device buffer.
        let collector = if self.fine {
            let sink: Arc<dyn TraceSink> = match &pipeline {
                None => Arc::new(FineGlue(shared.clone())),
                Some(p) => p.fine_sink(),
            };
            let sampler = match &self.kernel_filter {
                Some(names) => HierarchicalSampler::new(self.kernel_period)
                    .with_name_filter(KernelNameFilter::new(names.clone())),
                None => HierarchicalSampler::new(self.kernel_period),
            };
            let collector = Arc::new(
                Collector::new(self.buffer_capacity, sink, Arc::new(sampler))
                    .with_block_period(self.block_period),
            );
            rt.register_access_hook(collector.clone());
            Some(collector)
        } else {
            None
        };

        // The paper's collector serializes concurrent streams.
        rt.serialize_streams(true);

        ValueExpert { shared, collector, pipeline }
    }
}

struct Inner {
    registry: ObjectRegistry,
    coarse: Option<CoarseState>,
    fine: Option<FineState>,
    reuse: Option<ReuseAnalyzer>,
    races: Option<RaceDetector>,
}

struct Shared {
    inner: Mutex<Inner>,
    overhead: OverheadModel,
    pattern: PatternConfig,
    warp_compaction: bool,
}

/// A live profiling session attached to a runtime.
pub struct ValueExpert {
    shared: Arc<Shared>,
    collector: Option<Arc<Collector>>,
    pipeline: Option<Arc<Pipeline>>,
}

impl std::fmt::Debug for ValueExpert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueExpert")
            .field("fine", &self.collector.is_some())
            .field("pipelined", &self.pipeline.is_some())
            .finish()
    }
}

impl Drop for ValueExpert {
    fn drop(&mut self) {
        // Stop and join the analysis workers even when the session ends
        // without a report.
        if let Some(p) = &self.pipeline {
            p.shutdown();
        }
    }
}

impl ValueExpert {
    /// Starts configuring a profiling session.
    pub fn builder() -> ProfilerBuilder {
        ProfilerBuilder::default()
    }

    /// Collector traffic of the fine pass (zeros when fine is disabled).
    pub fn collector_stats(&self) -> CollectorStats {
        self.collector.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Produces the profile: findings, value flow graph, and the overhead
    /// report for the application time accumulated in `rt`'s time report.
    ///
    /// In pipelined mode ([`ProfilerBuilder::analysis_shards`]) this is
    /// the synchronization point: it blocks until every published record
    /// batch and API event is analyzed, then reduces the per-shard state
    /// deterministically. The resulting profile is byte-identical to the
    /// synchronous engine's.
    pub fn report(&self, rt: &Runtime) -> Profile {
        if let Some(p) = &self.pipeline {
            let products = p.flush();
            let (flow, redundancies, duplicates, coarse_traffic) = match products.coarse {
                Some(c) => (c.flow, c.redundancies, c.duplicates, c.traffic),
                None => (FlowGraph::new(), Vec::new(), Vec::new(), CoarseTraffic::default()),
            };
            let (fine_findings, fine_traffic) = match products.fine {
                Some((raw, traffic)) => (crate::fine::merge_findings(&raw), traffic),
                None => (Vec::new(), FineTraffic::default()),
            };
            return self.assemble(
                rt,
                flow,
                redundancies,
                duplicates,
                coarse_traffic,
                fine_findings,
                fine_traffic,
                products.reuse,
                products.races,
            );
        }

        let inner = self.shared.inner.lock();
        let (flow, redundancies, duplicates, coarse_traffic) = match &inner.coarse {
            Some(c) => (
                c.flow_graph().clone(),
                c.redundancies().to_vec(),
                c.duplicates().to_vec(),
                c.traffic(),
            ),
            None => (FlowGraph::new(), Vec::new(), Vec::new(), CoarseTraffic::default()),
        };
        let (fine_findings, fine_traffic) = match &inner.fine {
            Some(f) => (f.merged_findings(), f.traffic()),
            None => (Vec::new(), FineTraffic::default()),
        };
        let reuse = inner.reuse.as_ref().map(|r| r.histogram().clone());
        let races = inner.races.as_ref().map(|r| r.reports().to_vec()).unwrap_or_default();
        drop(inner);
        self.assemble(
            rt,
            flow,
            redundancies,
            duplicates,
            coarse_traffic,
            fine_findings,
            fine_traffic,
            reuse,
            races,
        )
    }

    /// Shared tail of [`Self::report`]: overhead model, context
    /// rendering, and profile assembly. Keeping one implementation for
    /// both engines guarantees the report layouts cannot diverge.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        rt: &Runtime,
        flow: FlowGraph,
        redundancies: Vec<crate::coarse::RedundancyFinding>,
        duplicates: Vec<crate::coarse::DuplicateFinding>,
        coarse_traffic: CoarseTraffic,
        fine_findings: Vec<crate::fine::FineFinding>,
        fine_traffic: FineTraffic,
        reuse: Option<crate::reuse::ReuseHistogram>,
        races: Vec<crate::races::RaceReport>,
    ) -> Profile {
        let collector_stats = self.collector_stats();
        let spec = rt.spec();
        let overhead = OverheadReport {
            fine_us: self.shared.overhead.fine_cost_us(&collector_stats, &fine_traffic, spec),
            coarse_us: self.shared.overhead.coarse_cost_us(&coarse_traffic, spec),
            app_us: rt.time_report().total_us(),
        };
        let contexts = {
            let mut map = std::collections::BTreeMap::new();
            let cp = rt.callpaths();
            let mut record = |id: vex_gpu::callpath::CallPathId| {
                map.entry(id).or_insert_with(|| cp.render(id));
            };
            for r in &redundancies {
                record(r.context);
            }
            for f in &fine_findings {
                record(f.context);
            }
            for v in flow.vertices() {
                record(v.context);
            }
            map
        };
        Profile {
            device: spec.name.clone(),
            flow_graph: flow,
            redundancies,
            duplicates,
            fine_findings,
            reuse,
            races,
            coarse_traffic,
            fine_traffic,
            collector_stats,
            overhead,
            contexts,
            redundancy_threshold: self.shared.pattern.redundancy_threshold,
        }
    }
}

/// API-hook glue: maintains the registry and drives the coarse analyzer.
struct ApiGlue(Arc<Shared>);

impl ApiHook for ApiGlue {
    fn on_api(&self, phase: ApiPhase, event: &ApiEvent, view: &dyn DeviceView) {
        if phase != ApiPhase::After {
            return;
        }
        let mut inner = self.0.inner.lock();
        let inner = &mut *inner;
        if let ApiKind::Malloc { info } = &event.kind {
            inner.registry.on_alloc(info);
        }
        if let Some(coarse) = &mut inner.coarse {
            coarse.on_api_after(event, &inner.registry, view);
        }
        if let ApiKind::Free { info } = &event.kind {
            inner.registry.on_free(info);
        }
    }
}

/// Access-hook glue for the coarse pass: collects access intervals.
struct CoarseGlue(Arc<Shared>);

impl MemAccessHook for CoarseGlue {
    fn on_launch_begin(&self, _info: &LaunchInfo) -> bool {
        let compaction = self.0.warp_compaction;
        let mut inner = self.0.inner.lock();
        if let Some(coarse) = &mut inner.coarse {
            coarse.current_kernel = Some(KernelIntervals::new(compaction));
            true
        } else {
            false
        }
    }

    fn on_access(&self, event: &AccessEvent) {
        // Shared-memory traffic never updates global snapshots.
        if event.space != vex_gpu::ir::MemSpace::Global {
            return;
        }
        let mut inner = self.0.inner.lock();
        if let Some(coarse) = &mut inner.coarse {
            if let Some(k) = &mut coarse.current_kernel {
                let (s, e) = event.interval();
                k.add(event.block, event.thread, Interval::new(s, e), event.is_store);
            }
        }
    }

    fn on_launch_end(
        &self,
        _info: &LaunchInfo,
        _stats: &LaunchStats,
        _instrumented: bool,
        _view: &dyn DeviceView,
    ) {
        // Interval processing happens on the KernelLaunch API-After event,
        // which fires after this callback with the same post-kernel view.
    }
}

/// Trace-sink glue for the fine pass.
struct FineGlue(Arc<Shared>);

impl TraceSink for FineGlue {
    fn on_batch(&self, info: &LaunchInfo, records: &[AccessRecord]) {
        let mut inner = self.0.inner.lock();
        let inner = &mut *inner;
        if let Some(fine) = &mut inner.fine {
            fine.on_batch(info, records, &inner.registry);
        }
        if let Some(reuse) = &mut inner.reuse {
            for rec in records {
                if rec.space == vex_gpu::ir::MemSpace::Global {
                    reuse.record(rec);
                }
            }
        }
        if let Some(races) = &mut inner.races {
            races.ensure_launch(info);
            for rec in records {
                races.record(rec);
            }
        }
    }

    fn on_launch_complete(
        &self,
        info: &LaunchInfo,
        _stats: &LaunchStats,
        _view: &dyn DeviceView,
    ) {
        let mut inner = self.0.inner.lock();
        let inner = &mut *inner;
        if let Some(fine) = &mut inner.fine {
            fine.on_launch_complete(info, &inner.registry);
        }
        if let Some(races) = &mut inner.races {
            races.on_launch_end();
        }
    }
}

/// API-hook glue in pipelined mode: updates the app-side registry,
/// captures the device bytes the deferred coarse replay will read, and
/// publishes the event — no analysis on the critical path.
struct PipedApiGlue(Arc<Pipeline>);

impl ApiHook for PipedApiGlue {
    fn on_api(&self, phase: ApiPhase, event: &ApiEvent, view: &dyn DeviceView) {
        if phase == ApiPhase::After {
            self.0.on_api_after(event, view);
        }
    }
}

/// Access-hook glue in pipelined mode: interval collection only; the
/// merge/split/diff work happens on the coarse worker.
struct PipedCoarseGlue(Arc<Pipeline>);

impl MemAccessHook for PipedCoarseGlue {
    fn on_launch_begin(&self, _info: &LaunchInfo) -> bool {
        if self.0.coarse_enabled() {
            self.0.on_launch_begin();
            true
        } else {
            false
        }
    }

    fn on_access(&self, event: &AccessEvent) {
        // Shared-memory traffic never updates global snapshots.
        if event.space != vex_gpu::ir::MemSpace::Global {
            return;
        }
        let (s, e) = event.interval();
        self.0.on_coarse_access(event.block, event.thread, Interval::new(s, e), event.is_store);
    }

    fn on_launch_end(
        &self,
        _info: &LaunchInfo,
        _stats: &LaunchStats,
        _instrumented: bool,
        _view: &dyn DeviceView,
    ) {
        // Interval publication happens on the KernelLaunch API-After
        // event, which fires after this callback with the same view.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ValuePattern;
    use vex_gpu::dim::Dim3;
    use vex_gpu::ir::{InstrTable, InstrTableBuilder, MemSpace, Pc, ScalarType};
    use vex_gpu::kernel::Kernel;
    use vex_gpu::prelude::*;
    use vex_gpu::timing::DeviceSpec;

    /// fill(out, v): the canonical redundant-initialization kernel.
    struct Fill {
        out: u64,
        n: usize,
        v: f32,
    }
    impl Kernel for Fill {
        fn name(&self) -> &str {
            "fill_kernel"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTableBuilder::new().store(Pc(0), ScalarType::F32, MemSpace::Global).build()
        }
        fn execute(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i < self.n {
                ctx.store::<f32>(Pc(0), self.out + (i * 4) as u64, self.v);
            }
        }
    }

    fn profiled_run() -> (Runtime, ValueExpert) {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let vex = ValueExpert::builder().coarse(true).fine(true).attach(&mut rt);
        let out = rt.with_fn("init", |rt| rt.malloc(256, "out")).unwrap();
        rt.with_fn("forward", |rt| {
            rt.memset(out, 0, 256).unwrap();
            // Kernel rewrites the same zeros: redundant + single-zero.
            rt.launch(
                &Fill { out: out.addr(), n: 64, v: 0.0 },
                Dim3::linear(2),
                Dim3::linear(32),
            )
            .unwrap();
        });
        (rt, vex)
    }

    #[test]
    fn end_to_end_redundancy_and_single_zero() {
        let (rt, vex) = profiled_run();
        let profile = vex.report(&rt);
        assert_eq!(profile.device, "TestGPU");
        // Coarse: the kernel's stores were fully redundant.
        assert!(
            profile.redundancies.iter().any(|r| r.api == "fill_kernel" && r.fraction() == 1.0),
            "findings: {:?}",
            profile.redundancies
        );
        // Fine: the stored values match the single-zero pattern.
        let f = profile
            .fine_findings
            .iter()
            .find(|f| f.kernel == "fill_kernel")
            .expect("fine finding");
        assert!(f.hits.iter().any(|h| h.pattern == ValuePattern::SingleZero));
        // Flow graph has host, alloc, memset, kernel.
        assert_eq!(profile.flow_graph.vertex_count(), 4);
        assert!(profile.flow_graph.edge_count() >= 2);
        // Contexts rendered.
        let ctx = profile.contexts.get(&f.context).unwrap();
        assert!(ctx.contains("forward"), "context: {ctx}");
        // Overhead is positive and finite.
        assert!(profile.overhead.factor() > 1.0);
        assert!(profile.overhead.factor().is_finite());
    }

    #[test]
    fn coarse_only_session_has_no_fine_findings() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let vex = ValueExpert::builder().coarse(true).fine(false).attach(&mut rt);
        let out = rt.malloc(128, "x").unwrap();
        rt.memset(out, 0, 128).unwrap();
        rt.memset(out, 0, 128).unwrap();
        let p = vex.report(&rt);
        assert!(!p.redundancies.is_empty());
        assert!(p.fine_findings.is_empty());
        assert_eq!(p.collector_stats.events, 0);
    }

    #[test]
    fn kernel_filter_limits_fine_analysis() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let vex = ValueExpert::builder()
            .coarse(false)
            .fine(true)
            .filter_kernels(["other"])
            .attach(&mut rt);
        let out = rt.malloc(256, "out").unwrap();
        rt.launch(&Fill { out: out.addr(), n: 64, v: 1.0 }, Dim3::linear(2), Dim3::linear(32))
            .unwrap();
        let p = vex.report(&rt);
        assert!(p.fine_findings.is_empty());
        assert_eq!(p.collector_stats.skipped_launches, 1);
    }

    #[test]
    fn sampling_period_reduces_events() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let vex =
            ValueExpert::builder().coarse(false).fine(true).kernel_sampling(4).attach(&mut rt);
        let out = rt.malloc(256, "out").unwrap();
        for _ in 0..8 {
            rt.launch(
                &Fill { out: out.addr(), n: 64, v: 2.0 },
                Dim3::linear(2),
                Dim3::linear(32),
            )
            .unwrap();
        }
        let s = vex.collector_stats();
        assert_eq!(s.instrumented_launches, 2); // launches 0 and 4
        assert_eq!(s.skipped_launches, 6);
        assert_eq!(s.events, 2 * 64);
    }

    #[test]
    fn overhead_reported_against_app_time() {
        let (rt, vex) = profiled_run();
        let p = vex.report(&rt);
        assert!(p.overhead.app_us > 0.0);
        assert!(p.overhead.coarse_us > 0.0);
        assert!(p.overhead.fine_us > 0.0);
        assert!(p.overhead.factor() >= p.overhead.coarse_factor());
    }
}
