//! The ValueExpert profiler front-end (§4).
//!
//! [`ValueExpert`] attaches one shared [`EventSource`] — the canonical
//! data collector of `vex_trace::event` — to a
//! [`vex_gpu::runtime::Runtime`], mirroring the paper's component diagram
//! (Figure 1): the *data collector* overloads GPU APIs and instruments
//! kernels, the *online analyzer* recognizes patterns and builds the
//! value flow graph, and the report machinery in [`crate::report`] stands
//! in for the GUI.
//!
//! Both analysis engines are [`EventSink`]s over the same stream: the
//! synchronous engine ([`SyncEngine`], zero shards) and the sharded
//! pipeline (`crate::pipeline`, [`ProfilerBuilder::analysis_shards`]).
//! Because the stream is also what `vex_trace::container` persists, a
//! session can be recorded ([`ProfilerBuilder::record`]) and replayed
//! later ([`ProfilerBuilder::replay`]) through either engine with
//! byte-identical reports.
//!
//! ```rust
//! use vex_core::profiler::ValueExpert;
//! use vex_gpu::prelude::*;
//!
//! # fn main() -> Result<(), GpuError> {
//! let mut rt = Runtime::new(DeviceSpec::rtx2080ti());
//! let vex = ValueExpert::builder().coarse(true).fine(true).attach(&mut rt);
//! // ... run the application against `rt` ...
//! let profile = vex.report(&rt);
//! assert_eq!(profile.redundancies.len(), 0);
//! # Ok(()) }
//! ```

use crate::coarse::{
    CoarseState, CoarseTraffic, DuplicateFinding, KernelIntervals, RedundancyFinding,
};
use crate::copy_strategy::{AdaptivePolicy, ObjectCopyPlan};
use crate::fine::{FineFinding, FineState, FineTraffic};
use crate::flowgraph::FlowGraph;
use crate::overhead::{OverheadModel, OverheadReport};
use crate::patterns::PatternConfig;
use crate::pipeline::{Pipeline, PipelineSink, PipelineSpec};
use crate::races::{RaceDetector, RaceReport};
use crate::registry::ObjectRegistry;
use crate::report::Profile;
use crate::reuse::{ReuseAnalyzer, ReuseHistogram};
use crate::sampling::{BlockSampler, HierarchicalSampler, KernelNameFilter};
use parking_lot::Mutex;
use std::sync::Arc;
use vex_gpu::callpath::CallPathId;
use vex_gpu::hooks::ApiKind;
use vex_gpu::ir::MemSpace;
use vex_gpu::runtime::Runtime;
use vex_gpu::timing::DeviceSpec;
use vex_trace::codec::DecodeError;
use vex_trace::container::{DecodeOptions, RecordedTrace, TraceFlags, TraceWriter};
use vex_trace::event::{
    AnalysisPass, ColumnSet, Event, EventSink, EventSource, EventSourceConfig,
};
use vex_trace::{CollectorStats, LaunchFilter};

/// A spawned analysis engine: the sink fed to the [`EventSource`] plus
/// whichever concrete engine backs it (exactly one is `Some`).
type Engine = (Arc<dyn EventSink>, Option<Arc<SyncEngine>>, Option<Arc<Pipeline>>);

/// Configuration for a profiling session; see [`ValueExpert::builder`].
#[derive(Debug, Clone)]
pub struct ProfilerBuilder {
    coarse: bool,
    fine: bool,
    pattern: PatternConfig,
    copy_policy: AdaptivePolicy,
    overhead: OverheadModel,
    buffer_capacity: usize,
    kernel_filter: Option<Vec<String>>,
    kernel_period: u64,
    block_period: u32,
    reuse_line_bytes: Option<u64>,
    race_detection: bool,
    warp_compaction: bool,
    analysis_shards: usize,
    analysis_queue_depth: usize,
    decode_threads: usize,
}

impl Default for ProfilerBuilder {
    fn default() -> Self {
        ProfilerBuilder {
            coarse: true,
            fine: false,
            pattern: PatternConfig::default(),
            copy_policy: AdaptivePolicy::default(),
            overhead: OverheadModel::default(),
            buffer_capacity: 1 << 16,
            kernel_filter: None,
            kernel_period: 1,
            block_period: 1,
            reuse_line_bytes: None,
            race_detection: false,
            warp_compaction: true,
            analysis_shards: 0,
            analysis_queue_depth: 64,
            decode_threads: 1,
        }
    }
}

impl ProfilerBuilder {
    /// Enables or disables the coarse-grained pass (default on).
    #[must_use]
    pub fn coarse(mut self, on: bool) -> Self {
        self.coarse = on;
        self
    }

    /// Enables or disables the fine-grained pass (default off).
    #[must_use]
    pub fn fine(mut self, on: bool) -> Self {
        self.fine = on;
        self
    }

    /// Overrides recognizer thresholds.
    #[must_use]
    pub fn pattern_config(mut self, config: PatternConfig) -> Self {
        self.pattern = config;
        self
    }

    /// Overrides the adaptive snapshot-copy policy.
    #[must_use]
    pub fn copy_policy(mut self, policy: AdaptivePolicy) -> Self {
        self.copy_policy = policy;
        self
    }

    /// Overrides the overhead model constants.
    #[must_use]
    pub fn overhead_model(mut self, model: OverheadModel) -> Self {
        self.overhead = model;
        self
    }

    /// Sets the simulated device-buffer capacity in records.
    #[must_use]
    pub fn buffer_capacity(mut self, records: usize) -> Self {
        self.buffer_capacity = records;
        self
    }

    /// Restricts fine-grained analysis to kernels whose name contains one
    /// of `names` (§6.2 filtering).
    #[must_use]
    pub fn filter_kernels<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.kernel_filter = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Sets the kernel sampling period (§6.2; instrument every P-th launch
    /// of each kernel).
    #[must_use]
    pub fn kernel_sampling(mut self, period: u64) -> Self {
        self.kernel_period = period.max(1);
        self
    }

    /// Sets the block sampling period (§6.2; analyze every Q-th block).
    #[must_use]
    pub fn block_sampling(mut self, period: u32) -> Self {
        self.block_period = period.max(1);
        self
    }

    /// Enables reuse-distance analysis at the given cache-line size
    /// (one of the §9 analyses layered on the same record stream;
    /// requires the fine pass).
    ///
    /// # Panics
    ///
    /// `attach` panics if `line_bytes` is not a power of two.
    #[must_use]
    pub fn reuse_distance(mut self, line_bytes: u64) -> Self {
        self.reuse_line_bytes = Some(line_bytes);
        self
    }

    /// Enables inter-block race detection (§9; requires the fine pass).
    /// Block sampling distorts race coverage, so pair this with
    /// `block_sampling(1)` for sound results.
    #[must_use]
    pub fn race_detection(mut self, on: bool) -> Self {
        self.race_detection = on;
        self
    }

    /// Toggles §6.1's warp-level interval compaction (default on; turning
    /// it off exists for the ablation study — every raw access interval
    /// then reaches the merge stage).
    #[must_use]
    pub fn warp_compaction(mut self, on: bool) -> Self {
        self.warp_compaction = on;
        self
    }

    /// Moves analysis off the application's critical path: `shards` fine
    /// analysis workers (work partitioned by data object, so per-object
    /// state never crosses shards), plus a router, a sequential
    /// reuse/race worker, and a coarse replay worker as the enabled
    /// passes require. `0` — the default — keeps the fully synchronous
    /// engine. Reports are **byte-identical** for every shard count; see
    /// [`crate::pipeline`] for the determinism argument.
    #[must_use]
    pub fn analysis_shards(mut self, shards: usize) -> Self {
        self.analysis_shards = shards;
        self
    }

    /// Capacity, in messages, of each bounded pipeline channel (default
    /// 64). Deeper queues decouple the application further from analysis
    /// at the cost of memory; a full queue back-pressures the publisher.
    #[must_use]
    pub fn analysis_queue_depth(mut self, depth: usize) -> Self {
        self.analysis_queue_depth = depth.max(1);
        self
    }

    /// Worker threads for decoding a recorded trace's columnar batch
    /// frames before replay (`vex replay --decode-threads`). Values ≤ 1
    /// decode on the calling thread. Only consulted through
    /// [`ProfilerBuilder::decode_options`]; [`ProfilerBuilder::replay`]
    /// takes an already-decoded trace.
    #[must_use]
    pub fn decode_threads(mut self, threads: usize) -> Self {
        self.decode_threads = threads.max(1);
        self
    }

    /// Columns of the fine record stream the configured passes read —
    /// what a projected trace decode must materialize so this builder's
    /// replay stays byte-identical to a full decode. Coarse-only
    /// configurations demand no batch columns at all.
    pub fn required_columns(&self) -> ColumnSet {
        PipelineSpec {
            shards: self.analysis_shards.max(1),
            queue_depth: self.analysis_queue_depth,
            coarse: self.coarse,
            fine: self.fine,
            pattern: self.pattern,
            policy: self.copy_policy,
            reuse_line_bytes: self.reuse_line_bytes.filter(|_| self.fine),
            races: self.race_detection && self.fine,
        }
        .required_columns()
    }

    /// The [`DecodeOptions`] this builder implies for reading a trace it
    /// will replay: its decode thread count and its per-pass column
    /// projection.
    pub fn decode_options(&self) -> DecodeOptions {
        DecodeOptions { threads: self.decode_threads, columns: self.required_columns() }
    }

    /// The collector configuration this builder implies. The API stream
    /// is always intercepted: the registry every engine replicates is fed
    /// by in-band alloc/free events.
    fn source_config(&self) -> EventSourceConfig {
        EventSourceConfig {
            api: true,
            coarse: self.coarse,
            fine: self.fine,
            buffer_records: self.buffer_capacity,
            block_period: self.block_period,
            warp_compaction: self.warp_compaction,
        }
    }

    /// The §6.2 launch filter (kernel sampling + optional name filter).
    fn launch_filter(&self) -> Arc<dyn LaunchFilter> {
        match &self.kernel_filter {
            Some(names) => Arc::new(
                HierarchicalSampler::new(self.kernel_period)
                    .with_name_filter(KernelNameFilter::new(names.clone())),
            ),
            None => Arc::new(HierarchicalSampler::new(self.kernel_period)),
        }
    }

    /// Builds the analysis engine for this configuration: either the
    /// synchronous [`SyncEngine`] or the sharded pipeline, both plain
    /// [`EventSink`]s over the canonical stream.
    fn spawn_engine(&self) -> Engine {
        if self.analysis_shards > 0 {
            let pipeline = Pipeline::spawn(&PipelineSpec {
                shards: self.analysis_shards,
                queue_depth: self.analysis_queue_depth,
                coarse: self.coarse,
                fine: self.fine,
                pattern: self.pattern,
                policy: self.copy_policy,
                reuse_line_bytes: self.reuse_line_bytes.filter(|_| self.fine),
                races: self.race_detection && self.fine,
            });
            (Arc::new(PipelineSink::new(pipeline.clone())), None, Some(pipeline))
        } else {
            let sync = Arc::new(SyncEngine {
                inner: Mutex::new(Inner {
                    registry: ObjectRegistry::new(),
                    coarse: self
                        .coarse
                        .then(|| CoarseState::new(self.pattern, self.copy_policy)),
                    // Block sampling is applied at collection (in the
                    // EventSource), so the analyzer sees every record it
                    // gets.
                    fine: self.fine.then(|| FineState::new(self.pattern, BlockSampler::new(1))),
                    reuse: self.reuse_line_bytes.filter(|_| self.fine).map(ReuseAnalyzer::new),
                    races: (self.race_detection && self.fine).then(RaceDetector::new),
                }),
            });
            (sync.clone(), Some(sync), None)
        }
    }

    /// Attaches the profiler to a runtime and returns the session handle.
    pub fn attach(self, rt: &mut Runtime) -> ValueExpert {
        let (sink, sync, pipeline) = self.spawn_engine();
        let source = EventSource::attach(rt, self.source_config(), self.launch_filter(), sink);
        ValueExpert {
            overhead: self.overhead,
            pattern: self.pattern,
            sync,
            pipeline,
            source: Some(source),
        }
    }

    /// Attaches only the trace recorder: the canonical event stream is
    /// persisted into `out` in the `.vex` container format and no
    /// analysis runs. The recorded passes mirror this builder's `coarse`
    /// and `fine` flags; sampling and filter options apply at record time
    /// (they are baked into the trace). Finish the recording with
    /// [`Recording::finish`] after the workload.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if writing the container header fails.
    pub fn record<W: std::io::Write + Send + 'static>(
        self,
        rt: &mut Runtime,
        out: W,
    ) -> std::io::Result<Recording<W>> {
        let flags = TraceFlags { coarse: self.coarse, fine: self.fine };
        let writer = Arc::new(TraceWriter::new(out, rt.spec(), flags)?);
        let source =
            EventSource::attach(rt, self.source_config(), self.launch_filter(), writer.clone());
        Ok(Recording { writer, source })
    }

    /// Replays a recorded trace through the analysis engine this builder
    /// configures (synchronous or sharded) and assembles the profile with
    /// the recording session's device preset, application time, and call
    /// paths — byte-identical to the report a live session with this
    /// configuration would have produced.
    ///
    /// Collection options (`buffer_capacity`, sampling, filters,
    /// `warp_compaction`) have no effect here: they were applied by the
    /// recording session and are baked into the stream.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] when the requested passes were not recorded.
    pub fn replay(self, trace: &RecordedTrace) -> Result<Profile, ReplayError> {
        if self.coarse && !trace.flags.coarse {
            return Err(ReplayError::CoarseNotRecorded);
        }
        if self.fine && !trace.flags.fine {
            return Err(ReplayError::FineNotRecorded);
        }
        // A live coarse-only session reports zero collector traffic; only
        // fine replays surface the recorded counters.
        let stats = if self.fine { trace.stats } else { CollectorStats::default() };
        let (sink, sync, pipeline) = self.spawn_engine();
        trace.dispatch(&*sink);
        let vex = ValueExpert {
            overhead: self.overhead,
            pattern: self.pattern,
            sync,
            pipeline,
            source: None,
        };
        let products = vex.products();
        Ok(vex.assemble(products, stats, &trace.spec, trace.app_us, |id| {
            trace
                .contexts
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("<unrecorded context {}>", id.0))
        }))
    }
}

/// Replaying a trace failed before any analysis ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// Coarse analysis was requested but the trace carries no capture
    /// snapshots.
    CoarseNotRecorded,
    /// A fine-grained analysis was requested but the trace carries no
    /// access records.
    FineNotRecorded,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::CoarseNotRecorded => write!(
                f,
                "this trace has no coarse capture snapshots; re-record without disabling the \
                 coarse pass (it is on by default in `vex record`)"
            ),
            ReplayError::FineNotRecorded => write!(
                f,
                "this trace has no access records; re-record with `vex record --fine` to run \
                 fine-grained analyses"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// A trace recording in progress; created by [`ProfilerBuilder::record`].
pub struct Recording<W: std::io::Write + Send + 'static> {
    writer: Arc<TraceWriter<W>>,
    source: Arc<EventSource>,
}

impl<W: std::io::Write + Send + 'static> std::fmt::Debug for Recording<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recording").field("stats", &self.source.stats()).finish_non_exhaustive()
    }
}

impl<W: std::io::Write + Send + 'static> Recording<W> {
    /// Collector traffic of the recording so far.
    pub fn stats(&self) -> CollectorStats {
        self.source.stats()
    }

    /// Writes the container trailer — every rendered call path, the
    /// collector counters, and the application time — flushes, and
    /// returns the underlying writer. Detaches all hooks from `rt` (the
    /// recorder is expected to be the only attached session).
    ///
    /// # Errors
    ///
    /// [`DecodeError::Io`] if any container write failed.
    ///
    /// # Panics
    ///
    /// Panics if the trace writer is still shared (e.g. it was also
    /// registered with a fan-out sink that outlives the recording).
    pub fn finish(self, rt: &mut Runtime) -> Result<W, DecodeError> {
        rt.clear_hooks();
        let Recording { writer, source } = self;
        let stats = source.stats();
        drop(source); // releases the source's Arc to the writer
        let writer = match Arc::try_unwrap(writer) {
            Ok(w) => w,
            Err(_) => panic!("trace writer still shared; drop other sinks before finish"),
        };
        let cp = rt.callpaths();
        let contexts: Vec<(CallPathId, String)> = (0..cp.path_count())
            .map(|i| {
                let id = CallPathId(i as u32);
                (id, cp.render(id))
            })
            .collect();
        writer.finish(&contexts, &stats, rt.time_report().total_us())
    }
}

/// Per-pass analyzer state of the synchronous engine.
struct Inner {
    registry: ObjectRegistry,
    coarse: Option<CoarseState>,
    fine: Option<FineState>,
    reuse: Option<ReuseAnalyzer>,
    races: Option<RaceDetector>,
}

/// The synchronous analysis engine: one [`EventSink`] running every
/// enabled pass inline, in stream order. The coarse pass analyzes the
/// capture snapshots carried by [`Event::Api`] — the same deferred-replay
/// inputs the pipelined engine and a trace replay consume, which is what
/// makes the three modes byte-identical.
struct SyncEngine {
    inner: Mutex<Inner>,
}

impl EventSink for SyncEngine {
    fn on_event(&self, event: &Event) {
        match event {
            Event::Api { event, kernel, captured } => {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                if let ApiKind::Malloc { info } = &event.kind {
                    inner.registry.on_alloc(info);
                }
                if let Some(coarse) = &mut inner.coarse {
                    if let Some(summary) = kernel {
                        let mut k = KernelIntervals::new(false);
                        k.reads = summary.reads.clone();
                        k.writes = summary.writes.clone();
                        k.raw = summary.raw;
                        coarse.current_kernel = Some(k);
                    }
                    coarse.on_api_after(event, &inner.registry, captured.as_ref());
                }
                if let ApiKind::Free { info } = &event.kind {
                    inner.registry.on_free(info);
                }
            }
            Event::Batch { info, records } => {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                if let Some(fine) = &mut inner.fine {
                    fine.on_batch(info, records, &inner.registry);
                }
                if let Some(reuse) = &mut inner.reuse {
                    for rec in records.iter() {
                        if rec.space == MemSpace::Global {
                            reuse.record(rec);
                        }
                    }
                }
                if let Some(races) = &mut inner.races {
                    races.ensure_launch(info);
                    for rec in records.iter() {
                        races.record(rec);
                    }
                }
            }
            Event::LaunchEnd { info } => {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                if let Some(fine) = &mut inner.fine {
                    fine.on_launch_complete(info, &inner.registry);
                }
                if let Some(races) = &mut inner.races {
                    races.on_launch_end();
                }
            }
            Event::LaunchBegin { .. } | Event::SkippedLaunch { .. } => {}
        }
    }
}

impl AnalysisPass for SyncEngine {
    fn name(&self) -> &'static str {
        "valueexpert"
    }

    fn columns(&self) -> ColumnSet {
        let inner = self.inner.lock();
        let mut cols = ColumnSet::NONE;
        if inner.fine.is_some() {
            cols |= ColumnSet::PC
                | ColumnSet::ADDR
                | ColumnSet::BITS
                | ColumnSet::SIZE
                | ColumnSet::FLAGS
                | ColumnSet::BLOCK;
        }
        if inner.reuse.is_some() {
            cols |= ColumnSet::ADDR | ColumnSet::FLAGS;
        }
        if inner.races.is_some() {
            cols |= ColumnSet::PC | ColumnSet::ADDR | ColumnSet::FLAGS | ColumnSet::BLOCK;
        }
        cols
    }
}

/// Everything an engine produced, gathered for report assembly.
struct EngineProducts {
    flow: FlowGraph,
    redundancies: Vec<RedundancyFinding>,
    duplicates: Vec<DuplicateFinding>,
    copy_plans: Vec<ObjectCopyPlan>,
    coarse_traffic: CoarseTraffic,
    fine_findings: Vec<FineFinding>,
    fine_traffic: FineTraffic,
    reuse: Option<ReuseHistogram>,
    races: Vec<RaceReport>,
}

/// A live profiling session attached to a runtime.
pub struct ValueExpert {
    overhead: OverheadModel,
    pattern: PatternConfig,
    sync: Option<Arc<SyncEngine>>,
    pipeline: Option<Arc<Pipeline>>,
    source: Option<Arc<EventSource>>,
}

impl std::fmt::Debug for ValueExpert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueExpert")
            .field("live", &self.source.is_some())
            .field("pipelined", &self.pipeline.is_some())
            .finish()
    }
}

impl Drop for ValueExpert {
    fn drop(&mut self) {
        // Stop and join the analysis workers even when the session ends
        // without a report.
        if let Some(p) = &self.pipeline {
            p.shutdown();
        }
    }
}

impl ValueExpert {
    /// Starts configuring a profiling session.
    pub fn builder() -> ProfilerBuilder {
        ProfilerBuilder::default()
    }

    /// Collector traffic of the fine pass (zeros when fine is disabled).
    pub fn collector_stats(&self) -> CollectorStats {
        self.source.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Produces the profile: findings, value flow graph, and the overhead
    /// report for the application time accumulated in `rt`'s time report.
    ///
    /// In pipelined mode ([`ProfilerBuilder::analysis_shards`]) this is
    /// the synchronization point: it blocks until every published record
    /// batch and API event is analyzed, then reduces the per-shard state
    /// deterministically. The resulting profile is byte-identical to the
    /// synchronous engine's.
    pub fn report(&self, rt: &Runtime) -> Profile {
        let products = self.products();
        let cp = rt.callpaths();
        self.assemble(
            products,
            self.collector_stats(),
            rt.spec(),
            rt.time_report().total_us(),
            |id| cp.render(id),
        )
    }

    /// Gathers the engine's products (flushing the pipeline when sharded).
    fn products(&self) -> EngineProducts {
        if let Some(p) = &self.pipeline {
            let products = p.flush();
            let (flow, redundancies, duplicates, copy_plans, coarse_traffic) =
                match products.coarse {
                    Some(c) => (c.flow, c.redundancies, c.duplicates, c.copy_plans, c.traffic),
                    None => (
                        FlowGraph::new(),
                        Vec::new(),
                        Vec::new(),
                        Vec::new(),
                        CoarseTraffic::default(),
                    ),
                };
            let (fine_findings, fine_traffic) = match products.fine {
                Some((raw, traffic)) => (crate::fine::merge_findings(&raw), traffic),
                None => (Vec::new(), FineTraffic::default()),
            };
            return EngineProducts {
                flow,
                redundancies,
                duplicates,
                copy_plans,
                coarse_traffic,
                fine_findings,
                fine_traffic,
                reuse: products.reuse,
                races: products.races,
            };
        }

        let inner = self.sync.as_ref().expect("one engine is always built").inner.lock();
        let (flow, redundancies, duplicates, copy_plans, coarse_traffic) = match &inner.coarse {
            Some(c) => (
                c.flow_graph().clone(),
                c.redundancies().to_vec(),
                c.duplicates().to_vec(),
                c.copy_plans(),
                c.traffic(),
            ),
            None => {
                (FlowGraph::new(), Vec::new(), Vec::new(), Vec::new(), CoarseTraffic::default())
            }
        };
        let (fine_findings, fine_traffic) = match &inner.fine {
            Some(f) => (f.merged_findings(), f.traffic()),
            None => (Vec::new(), FineTraffic::default()),
        };
        EngineProducts {
            flow,
            redundancies,
            duplicates,
            copy_plans,
            coarse_traffic,
            fine_findings,
            fine_traffic,
            reuse: inner.reuse.as_ref().map(|r| r.histogram().clone()),
            races: inner.races.as_ref().map(|r| r.reports().to_vec()).unwrap_or_default(),
        }
    }

    /// Shared tail of live reporting and trace replay: overhead model,
    /// context rendering, and profile assembly. Keeping one
    /// implementation for every mode guarantees the report layouts cannot
    /// diverge.
    fn assemble(
        &self,
        products: EngineProducts,
        collector_stats: CollectorStats,
        spec: &DeviceSpec,
        app_us: f64,
        mut render: impl FnMut(CallPathId) -> String,
    ) -> Profile {
        let overhead = OverheadReport {
            fine_us: self.overhead.fine_cost_us(&collector_stats, &products.fine_traffic, spec),
            coarse_us: self.overhead.coarse_cost_us(&products.coarse_traffic, spec),
            app_us,
        };
        let contexts = {
            let mut map = std::collections::BTreeMap::new();
            let mut record = |id: CallPathId| {
                map.entry(id).or_insert_with(|| render(id));
            };
            for r in &products.redundancies {
                record(r.context);
            }
            for f in &products.fine_findings {
                record(f.context);
            }
            for v in products.flow.vertices() {
                record(v.context);
            }
            map
        };
        Profile {
            device: spec.name.clone(),
            flow_graph: products.flow,
            redundancies: products.redundancies,
            duplicates: products.duplicates,
            copy_plans: products.copy_plans,
            fine_findings: products.fine_findings,
            reuse: products.reuse,
            races: products.races,
            coarse_traffic: products.coarse_traffic,
            fine_traffic: products.fine_traffic,
            collector_stats,
            overhead,
            contexts,
            redundancy_threshold: self.pattern.redundancy_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ValuePattern;
    use vex_gpu::dim::Dim3;
    use vex_gpu::ir::{InstrTable, InstrTableBuilder, Pc, ScalarType};
    use vex_gpu::kernel::Kernel;
    use vex_gpu::prelude::*;
    use vex_gpu::timing::DeviceSpec;

    /// fill(out, v): the canonical redundant-initialization kernel.
    struct Fill {
        out: u64,
        n: usize,
        v: f32,
    }
    impl Kernel for Fill {
        fn name(&self) -> &str {
            "fill_kernel"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTableBuilder::new().store(Pc(0), ScalarType::F32, MemSpace::Global).build()
        }
        fn execute(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i < self.n {
                ctx.store::<f32>(Pc(0), self.out + (i * 4) as u64, self.v);
            }
        }
    }

    fn profiled_run() -> (Runtime, ValueExpert) {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let vex = ValueExpert::builder().coarse(true).fine(true).attach(&mut rt);
        let out = rt.with_fn("init", |rt| rt.malloc(256, "out")).unwrap();
        rt.with_fn("forward", |rt| {
            rt.memset(out, 0, 256).unwrap();
            // Kernel rewrites the same zeros: redundant + single-zero.
            rt.launch(
                &Fill { out: out.addr(), n: 64, v: 0.0 },
                Dim3::linear(2),
                Dim3::linear(32),
            )
            .unwrap();
        });
        (rt, vex)
    }

    #[test]
    fn end_to_end_redundancy_and_single_zero() {
        let (rt, vex) = profiled_run();
        let profile = vex.report(&rt);
        assert_eq!(profile.device, "TestGPU");
        // Coarse: the kernel's stores were fully redundant.
        assert!(
            profile.redundancies.iter().any(|r| r.api == "fill_kernel" && r.fraction() == 1.0),
            "findings: {:?}",
            profile.redundancies
        );
        // Fine: the stored values match the single-zero pattern.
        let f = profile
            .fine_findings
            .iter()
            .find(|f| f.kernel == "fill_kernel")
            .expect("fine finding");
        assert!(f.hits.iter().any(|h| h.pattern == ValuePattern::SingleZero));
        // Flow graph has host, alloc, memset, kernel.
        assert_eq!(profile.flow_graph.vertex_count(), 4);
        assert!(profile.flow_graph.edge_count() >= 2);
        // Contexts rendered.
        let ctx = profile.contexts.get(&f.context).unwrap();
        assert!(ctx.contains("forward"), "context: {ctx}");
        // Overhead is positive and finite.
        assert!(profile.overhead.factor() > 1.0);
        assert!(profile.overhead.factor().is_finite());
    }

    #[test]
    fn coarse_only_session_has_no_fine_findings() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let vex = ValueExpert::builder().coarse(true).fine(false).attach(&mut rt);
        let out = rt.malloc(128, "x").unwrap();
        rt.memset(out, 0, 128).unwrap();
        rt.memset(out, 0, 128).unwrap();
        let p = vex.report(&rt);
        assert!(!p.redundancies.is_empty());
        assert!(p.fine_findings.is_empty());
        assert_eq!(p.collector_stats.events, 0);
    }

    #[test]
    fn kernel_filter_limits_fine_analysis() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let vex = ValueExpert::builder()
            .coarse(false)
            .fine(true)
            .filter_kernels(["other"])
            .attach(&mut rt);
        let out = rt.malloc(256, "out").unwrap();
        rt.launch(&Fill { out: out.addr(), n: 64, v: 1.0 }, Dim3::linear(2), Dim3::linear(32))
            .unwrap();
        let p = vex.report(&rt);
        assert!(p.fine_findings.is_empty());
        assert_eq!(p.collector_stats.skipped_launches, 1);
    }

    #[test]
    fn sampling_period_reduces_events() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let vex =
            ValueExpert::builder().coarse(false).fine(true).kernel_sampling(4).attach(&mut rt);
        let out = rt.malloc(256, "out").unwrap();
        for _ in 0..8 {
            rt.launch(
                &Fill { out: out.addr(), n: 64, v: 2.0 },
                Dim3::linear(2),
                Dim3::linear(32),
            )
            .unwrap();
        }
        let s = vex.collector_stats();
        assert_eq!(s.instrumented_launches, 2); // launches 0 and 4
        assert_eq!(s.skipped_launches, 6);
        assert_eq!(s.events, 2 * 64);
    }

    #[test]
    fn overhead_reported_against_app_time() {
        let (rt, vex) = profiled_run();
        let p = vex.report(&rt);
        assert!(p.overhead.app_us > 0.0);
        assert!(p.overhead.coarse_us > 0.0);
        assert!(p.overhead.fine_us > 0.0);
        assert!(p.overhead.factor() >= p.overhead.coarse_factor());
    }

    /// Runs the `profiled_run` workload under a recorder instead of a
    /// live analysis.
    fn recorded_run() -> Vec<u8> {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let rec = ValueExpert::builder()
            .coarse(true)
            .fine(true)
            .record(&mut rt, Vec::new())
            .expect("header written");
        let out = rt.with_fn("init", |rt| rt.malloc(256, "out")).unwrap();
        rt.with_fn("forward", |rt| {
            rt.memset(out, 0, 256).unwrap();
            rt.launch(
                &Fill { out: out.addr(), n: 64, v: 0.0 },
                Dim3::linear(2),
                Dim3::linear(32),
            )
            .unwrap();
        });
        rec.finish(&mut rt).expect("trailer written")
    }

    /// Renders every report surface; byte-equality of these is the
    /// replay contract.
    fn rendered(profile: &Profile) -> (String, String, String) {
        (
            profile.render_text(),
            profile.to_json().expect("profile serializes"),
            profile.flow_graph.to_dot(profile.redundancy_threshold),
        )
    }

    #[test]
    fn replay_matches_live_report() {
        let (rt, vex) = profiled_run();
        let live = vex.report(&rt);
        let bytes = recorded_run();
        let trace = vex_trace::container::read_trace(&bytes).expect("trace decodes");
        let replayed = ValueExpert::builder()
            .coarse(true)
            .fine(true)
            .replay(&trace)
            .expect("replay succeeds");
        assert_eq!(rendered(&live), rendered(&replayed));
    }

    #[test]
    fn replay_validates_recorded_passes() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let rec = ValueExpert::builder()
            .coarse(true)
            .fine(false)
            .record(&mut rt, Vec::new())
            .expect("header written");
        rt.malloc(64, "x").unwrap();
        let bytes = rec.finish(&mut rt).expect("trailer written");
        let trace = vex_trace::container::read_trace(&bytes).expect("trace decodes");
        let err = ValueExpert::builder().fine(true).replay(&trace).unwrap_err();
        assert_eq!(err, ReplayError::FineNotRecorded);
        assert!(err.to_string().contains("--fine"), "{err}");
        // The recorded pass still replays fine.
        let profile =
            ValueExpert::builder().coarse(true).replay(&trace).expect("coarse replay");
        assert_eq!(profile.collector_stats, CollectorStats::default());
    }
}
