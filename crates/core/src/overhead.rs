//! The measurement-overhead model (Figure 6, Table 5).
//!
//! On real hardware, profiling overhead comes from (a) the per-access
//! instrumentation callback, (b) shipping measurement data across PCIe,
//! (c) flush synchronization, and (d) analysis work. Our simulator does
//! not execute instrumentation callbacks on a GPU, so the overhead is
//! *modeled*: the collectors count exactly the quantities that cost time
//! ([`vex_trace::CollectorStats`], [`crate::coarse::CoarseTraffic`],
//! [`crate::fine::FineTraffic`]) and this module converts them to
//! simulated microseconds with explicit per-unit costs.
//!
//! The default constants were calibrated so the *shape* of Figure 6
//! holds: coarse analysis lands in the low single-digit ×, fine analysis
//! with sampling lands near the paper's ~4× median (7-8× for both
//! passes summed), and an unreduced GVProf-style pipeline lands an order
//! of magnitude higher (Table 5's 47.3× vs 7.8× geomean gap).

use crate::coarse::CoarseTraffic;
use crate::fine::FineTraffic;
use serde::{Deserialize, Serialize};
use vex_gpu::timing::DeviceSpec;
use vex_trace::CollectorStats;

/// Per-unit costs of measurement and analysis, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Cost of one fine-grained instrumentation callback that *records*
    /// (captures PC, address, value; writes the device buffer).
    pub fine_event_us: f64,
    /// Cost of one callback that is *skipped* by block sampling (the
    /// branch still executes on every access).
    pub fine_check_us: f64,
    /// Cost of one coarse-grained callback (interval tracking only).
    pub coarse_event_us: f64,
    /// Fixed cost of one device-buffer flush (synchronization).
    pub flush_fixed_us: f64,
    /// CPU-side analysis cost per fine record (decode + histogram).
    pub analyze_record_us: f64,
    /// CPU-side cost per byte hashed (SHA-256).
    pub hash_byte_us: f64,
    /// CPU-side cost per byte compared (snapshot diff).
    pub compare_byte_us: f64,
    /// Fixed cost per snapshot copy call.
    pub copy_call_us: f64,
    /// On-device merge cost per interval *reaching the merge stage*
    /// (post warp-compaction) — the data-parallel sort/scan of Figure 4.
    /// Disabling compaction multiplies this term by the compression
    /// ratio, which is the ablation's point.
    pub merge_interval_us: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            fine_event_us: 0.004,
            fine_check_us: 0.0001,
            coarse_event_us: 0.00005,
            flush_fixed_us: 12.0,
            analyze_record_us: 0.003,
            hash_byte_us: 0.000002,
            compare_byte_us: 0.0000005,
            copy_call_us: 6.0,
            merge_interval_us: 0.0005,
        }
    }
}

/// A computed overhead report for one profiled run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Simulated cost of fine-grained measurement + analysis, µs.
    pub fine_us: f64,
    /// Simulated cost of coarse-grained measurement + analysis, µs.
    pub coarse_us: f64,
    /// Unprofiled application time, µs.
    pub app_us: f64,
}

impl OverheadReport {
    /// Total profiling cost, µs.
    pub fn total_us(&self) -> f64 {
        self.fine_us + self.coarse_us
    }

    /// Overhead factor `(app + cost) / app`, the y-axis of Figure 6.
    pub fn factor(&self) -> f64 {
        if self.app_us <= 0.0 {
            return 1.0;
        }
        (self.app_us + self.total_us()) / self.app_us
    }

    /// Overhead factor for the coarse pass alone.
    pub fn coarse_factor(&self) -> f64 {
        if self.app_us <= 0.0 {
            return 1.0;
        }
        (self.app_us + self.coarse_us) / self.app_us
    }

    /// Overhead factor for the fine pass alone.
    pub fn fine_factor(&self) -> f64 {
        if self.app_us <= 0.0 {
            return 1.0;
        }
        (self.app_us + self.fine_us) / self.app_us
    }
}

impl OverheadModel {
    /// Cost of the fine-grained pass: instrumentation callbacks, device
    /// buffer flushes over PCIe, and per-record analysis.
    pub fn fine_cost_us(
        &self,
        collector: &CollectorStats,
        fine: &FineTraffic,
        spec: &DeviceSpec,
    ) -> f64 {
        let checked = collector.events_checked.saturating_sub(collector.events) as f64
            * self.fine_check_us;
        let events = collector.events as f64 * self.fine_event_us;
        let flushes = collector.flushes as f64 * self.flush_fixed_us
            + spec.pcie_time_us(collector.bytes_flushed);
        let analysis = fine.records_analyzed as f64 * self.analyze_record_us;
        checked + events + flushes + analysis
    }

    /// Cost of the coarse-grained pass: interval callbacks, the on-device
    /// merge, adaptive snapshot copies, diffing, and hashing.
    pub fn coarse_cost_us(&self, traffic: &CoarseTraffic, spec: &DeviceSpec) -> f64 {
        let events = traffic.raw_intervals as f64 * self.coarse_event_us;
        let merge = traffic.compacted_intervals as f64 * self.merge_interval_us;
        let copies = traffic.snapshot_calls as f64 * self.copy_call_us
            + spec.pcie_time_us(traffic.snapshot_bytes);
        let cpu = traffic.bytes_hashed as f64 * self.hash_byte_us
            + traffic.bytes_compared as f64 * self.compare_byte_us;
        events + merge + copies + cpu
    }

    /// The part of [`Self::fine_cost_us`] that is bound to the
    /// application's critical path no matter what: instrumentation
    /// callbacks, sampling checks, and device-buffer flushes. The
    /// remainder — per-record analysis — is what the sharded pipeline
    /// ([`crate::profiler::ProfilerBuilder::analysis_shards`]) moves onto
    /// worker threads.
    pub fn fine_collection_us(&self, collector: &CollectorStats, spec: &DeviceSpec) -> f64 {
        let checked = collector.events_checked.saturating_sub(collector.events) as f64
            * self.fine_check_us;
        let events = collector.events as f64 * self.fine_event_us;
        let flushes = collector.flushes as f64 * self.flush_fixed_us
            + spec.pcie_time_us(collector.bytes_flushed);
        checked + events + flushes
    }

    /// The deferrable part of [`Self::fine_cost_us`]: per-record decode
    /// and pattern analysis. `fine_collection_us + fine_analysis_us ==
    /// fine_cost_us` by construction.
    pub fn fine_analysis_us(&self, fine: &FineTraffic) -> f64 {
        fine.records_analyzed as f64 * self.analyze_record_us
    }

    /// The part of [`Self::coarse_cost_us`] bound to the critical path:
    /// interval callbacks, the on-device merge, and snapshot copies (the
    /// pipelined engine still captures the same byte ranges on the
    /// application thread before publishing).
    pub fn coarse_collection_us(&self, traffic: &CoarseTraffic, spec: &DeviceSpec) -> f64 {
        let events = traffic.raw_intervals as f64 * self.coarse_event_us;
        let merge = traffic.compacted_intervals as f64 * self.merge_interval_us;
        let copies = traffic.snapshot_calls as f64 * self.copy_call_us
            + spec.pcie_time_us(traffic.snapshot_bytes);
        events + merge + copies
    }

    /// The deferrable part of [`Self::coarse_cost_us`]: snapshot diffing
    /// and SHA-256 hashing. `coarse_collection_us + coarse_analysis_us ==
    /// coarse_cost_us` by construction.
    pub fn coarse_analysis_us(&self, traffic: &CoarseTraffic) -> f64 {
        traffic.bytes_hashed as f64 * self.hash_byte_us
            + traffic.bytes_compared as f64 * self.compare_byte_us
    }

    /// Modeled critical-path cost when analysis runs off-path on the
    /// sharded pipeline: only the collection terms remain. The serialized
    /// [`OverheadReport`] deliberately keeps the *full* cost in both
    /// modes — the work still happens, on worker threads — which is also
    /// what keeps serial and pipelined profiles byte-identical; this
    /// helper exists for capacity planning and the scaling benchmark's
    /// interpretation, not for the report.
    pub fn pipelined_critical_path_us(
        &self,
        collector: &CollectorStats,
        coarse: &CoarseTraffic,
        spec: &DeviceSpec,
    ) -> f64 {
        self.fine_collection_us(collector, spec) + self.coarse_collection_us(coarse, spec)
    }

    /// Cost of a *GVProf-style* fine pass for comparison (Table 5): every
    /// record crosses PCIe unreduced, flushes are frequent and
    /// synchronous, and all analysis happens on the CPU at a much higher
    /// per-record cost (no data-parallel preprocessing).
    pub fn gvprof_cost_us(&self, collector: &CollectorStats, spec: &DeviceSpec) -> f64 {
        let events = collector.events as f64 * self.fine_event_us;
        // GVProf synchronizes on every flush and analyzes on the CPU.
        let flushes = collector.flushes as f64 * (self.flush_fixed_us * 2.0)
            + spec.pcie_time_us(collector.bytes_flushed);
        let analysis = collector.events as f64 * (self.analyze_record_us * 2.0);
        events + flushes + analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::rtx2080ti()
    }

    #[test]
    fn factors_behave() {
        let r = OverheadReport { fine_us: 300.0, coarse_us: 100.0, app_us: 100.0 };
        assert_eq!(r.total_us(), 400.0);
        assert_eq!(r.factor(), 5.0);
        assert_eq!(r.coarse_factor(), 2.0);
        assert_eq!(r.fine_factor(), 4.0);
        let zero = OverheadReport::default();
        assert_eq!(zero.factor(), 1.0);
    }

    #[test]
    fn gvprof_costs_more_than_valueexpert() {
        let m = OverheadModel::default();
        // The Table 5 configuration: ValueExpert block-samples at period
        // 20, so it records 1/20 of the events GVProf ships to the host.
        let gv_stats = CollectorStats {
            events: 1_000_000,
            events_checked: 1_000_000,
            flushes: 250,
            bytes_flushed: 32_000_000,
            instrumented_launches: 10,
            skipped_launches: 0,
        };
        let ve_stats = CollectorStats {
            events: 50_000,
            events_checked: 1_000_000,
            flushes: 1,
            bytes_flushed: 1_600_000,
            instrumented_launches: 10,
            skipped_launches: 0,
        };
        let f = FineTraffic { records_analyzed: 50_000, records_skipped: 0, launches: 10 };
        let ve = m.fine_cost_us(&ve_stats, &f, &spec());
        let gv = m.gvprof_cost_us(&gv_stats, &spec());
        assert!(gv > ve * 6.0, "gvprof {gv} vs valueexpert {ve}");
    }

    #[test]
    fn sampling_reduces_fine_cost() {
        let m = OverheadModel::default();
        let full = CollectorStats {
            events: 1_000_000,
            events_checked: 1_000_000,
            flushes: 100,
            bytes_flushed: 32_000_000,
            instrumented_launches: 100,
            skipped_launches: 0,
        };
        let sampled = CollectorStats {
            events: 50_000,
            events_checked: 50_000,
            flushes: 5,
            bytes_flushed: 1_600_000,
            instrumented_launches: 5,
            skipped_launches: 95,
        };
        let f_full = FineTraffic { records_analyzed: 1_000_000, ..Default::default() };
        let f_samp = FineTraffic { records_analyzed: 50_000, ..Default::default() };
        assert!(
            m.fine_cost_us(&sampled, &f_samp, &spec())
                < m.fine_cost_us(&full, &f_full, &spec()) / 10.0
        );
    }

    #[test]
    fn collection_analysis_split_sums_to_full_cost() {
        let m = OverheadModel::default();
        let collector = CollectorStats {
            events: 200_000,
            events_checked: 800_000,
            flushes: 12,
            bytes_flushed: 6_400_000,
            instrumented_launches: 8,
            skipped_launches: 24,
        };
        let fine = FineTraffic { records_analyzed: 200_000, records_skipped: 0, launches: 8 };
        let coarse = CoarseTraffic {
            raw_intervals: 500_000,
            compacted_intervals: 20_000,
            snapshot_calls: 40,
            snapshot_bytes: 16 << 20,
            bytes_hashed: 16 << 20,
            bytes_compared: 16 << 20,
            ..Default::default()
        };
        let s = spec();
        let fine_sum = m.fine_collection_us(&collector, &s) + m.fine_analysis_us(&fine);
        assert!((fine_sum - m.fine_cost_us(&collector, &fine, &s)).abs() < 1e-9);
        let coarse_sum = m.coarse_collection_us(&coarse, &s) + m.coarse_analysis_us(&coarse);
        assert!((coarse_sum - m.coarse_cost_us(&coarse, &s)).abs() < 1e-9);
        // Deferring analysis strictly shrinks the modeled critical path.
        let path = m.pipelined_critical_path_us(&collector, &coarse, &s);
        assert!(path < m.fine_cost_us(&collector, &fine, &s) + m.coarse_cost_us(&coarse, &s));
    }

    #[test]
    fn coarse_cost_scales_with_traffic() {
        let m = OverheadModel::default();
        let small = CoarseTraffic {
            raw_intervals: 1000,
            snapshot_bytes: 4096,
            snapshot_calls: 4,
            bytes_hashed: 4096,
            bytes_compared: 4096,
            ..Default::default()
        };
        let big = CoarseTraffic {
            raw_intervals: 1_000_000,
            snapshot_bytes: 64 << 20,
            snapshot_calls: 400,
            bytes_hashed: 64 << 20,
            bytes_compared: 64 << 20,
            ..Default::default()
        };
        assert!(m.coarse_cost_us(&big, &spec()) > m.coarse_cost_us(&small, &spec()) * 100.0);
    }
}
