//! Access-type inference by bidirectional def-use slicing (§5.1).
//!
//! Raw bits captured at a memory instruction can only be interpreted once
//! its *access type* is known: an 8-byte store may be one `f64` or two
//! `f32`s. ValueExpert (following GVProf) derives unknown access types by
//! slicing along def-use chains in both directions: a load whose result
//! feeds an `FADD.F64` is an `f64` load; a store whose operand was
//! produced by an `IMAD.S32` is an `s32` store; a `CVT` changes the type
//! across itself.
//!
//! The slicer runs over [`vex_gpu::ir::InstrTable`], our miniature-SASS
//! stand-in, and produces an [`AccessTypeMap`] the online analyzer uses to
//! decode raw bits into typed values.

use std::collections::{BTreeMap, HashMap, VecDeque};
use vex_gpu::ir::{InstrTable, Opcode, Pc, Reg, ScalarType};

/// Resolved access types per memory instruction PC.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessTypeMap {
    types: BTreeMap<Pc, ResolvedAccess>,
}

/// The resolved interpretation of one memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedAccess {
    /// The scalar type of each element.
    pub ty: ScalarType,
    /// Number of scalar elements per access.
    pub vector: u8,
    /// True if the type was declared in the "binary"; false if the slicer
    /// inferred it.
    pub inferred: bool,
}

impl AccessTypeMap {
    /// The resolved access at `pc`, if `pc` is a memory instruction.
    pub fn get(&self, pc: Pc) -> Option<ResolvedAccess> {
        self.types.get(&pc).copied()
    }

    /// Decodes the raw bits of an access at `pc` into a lossless `f64`
    /// *magnitude view* used by the pattern recognizers (integers map to
    /// their numeric value, floats to themselves; unknown PCs fall back to
    /// unsigned interpretation of the bits).
    pub fn decode(&self, pc: Pc, bits: u64, size: u8) -> DecodedValue {
        match self.get(pc) {
            Some(r) => DecodedValue::from_bits(r.ty, bits),
            None => DecodedValue::from_bits(fallback_type(size), bits),
        }
    }

    /// Iterates resolved accesses in PC order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, ResolvedAccess)> + '_ {
        self.types.iter().map(|(pc, r)| (*pc, *r))
    }

    /// Number of memory instructions with a resolved type.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether no access types are known.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

/// Default interpretation when no type information exists: unsigned
/// integer of the access width.
pub fn fallback_type(size: u8) -> ScalarType {
    match size {
        1 => ScalarType::U8,
        2 => ScalarType::U16,
        8 => ScalarType::U64,
        _ => ScalarType::U32,
    }
}

/// A typed value decoded from raw bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedValue {
    /// The type used to decode.
    pub ty: ScalarType,
    /// The raw bits (low `ty.size_bytes()` bytes significant).
    pub bits: u64,
}

impl DecodedValue {
    /// Decodes `bits` as `ty`.
    pub fn from_bits(ty: ScalarType, bits: u64) -> Self {
        DecodedValue { ty, bits }
    }

    /// Numeric magnitude as `f64` (lossless for floats and for integers up
    /// to 2^53; adequate for range analysis).
    pub fn as_f64(&self) -> f64 {
        match self.ty {
            ScalarType::F32 => f32::from_bits(self.bits as u32) as f64,
            ScalarType::F64 => f64::from_bits(self.bits),
            ScalarType::S8 => self.bits as u8 as i8 as f64,
            ScalarType::S16 => self.bits as u16 as i16 as f64,
            ScalarType::S32 => self.bits as u32 as i32 as f64,
            ScalarType::S64 => self.bits as i64 as f64,
            ScalarType::U8 => (self.bits & 0xFF) as f64,
            ScalarType::U16 => (self.bits & 0xFFFF) as f64,
            ScalarType::U32 => (self.bits & 0xFFFF_FFFF) as f64,
            ScalarType::U64 => self.bits as f64,
        }
    }

    /// Whether the decoded value is exactly zero (for floats, +0.0 or
    /// -0.0).
    pub fn is_zero(&self) -> bool {
        match self.ty {
            ScalarType::F32 => f32::from_bits(self.bits as u32) == 0.0,
            ScalarType::F64 => f64::from_bits(self.bits) == 0.0,
            _ => {
                let mask = match self.ty.size_bytes() {
                    1 => 0xFF,
                    2 => 0xFFFF,
                    4 => 0xFFFF_FFFF,
                    _ => u64::MAX,
                };
                self.bits & mask == 0
            }
        }
    }
}

/// Runs bidirectional slicing over `table` and resolves every memory
/// instruction's access type.
///
/// Algorithm: seed a per-register type lattice from (a) declared memory
/// access types and (b) arithmetic opcodes' operand types, then propagate
/// along def-use edges forwards (def → uses) and backwards (use → def)
/// until a fixed point, treating `Mov`/`Lop` as transparent and `Cvt` as a
/// type boundary. Memory instructions whose register never receives a
/// type keep the unsigned fallback of their width.
pub fn infer_access_types(table: &InstrTable) -> AccessTypeMap {
    // reg -> known type
    let mut reg_ty: HashMap<Reg, ScalarType> = HashMap::new();
    // Transparent adjacency: registers connected by type-preserving
    // instructions (Mov, Lop, Ld dst<->"the memory slot", St src).
    let mut adj: HashMap<Reg, Vec<Reg>> = HashMap::new();
    let mut queue: VecDeque<Reg> = VecDeque::new();

    let seed = |reg: Reg,
                ty: ScalarType,
                reg_ty: &mut HashMap<Reg, ScalarType>,
                queue: &mut VecDeque<Reg>| {
        if reg_ty.insert(reg, ty).is_none() {
            queue.push_back(reg);
        }
    };

    for instr in table.iter() {
        match (&instr.op, instr.access) {
            (Opcode::Ld, Some(acc)) | (Opcode::St, Some(acc)) => {
                // The register carrying the value: dst for loads, first
                // src for stores.
                let value_reg =
                    if acc.is_store { instr.srcs.first().copied() } else { instr.dst };
                if let (Some(reg), Some(ty)) = (value_reg, acc.ty) {
                    seed(reg, ty, &mut reg_ty, &mut queue);
                }
            }
            (Opcode::Cvt { from, to }, _) => {
                // Cvt is a boundary that *originates* both types.
                if let Some(dst) = instr.dst {
                    seed(dst, *to, &mut reg_ty, &mut queue);
                }
                for src in &instr.srcs {
                    seed(*src, *from, &mut reg_ty, &mut queue);
                }
            }
            (op, _) => {
                if let Some(ty) = op.operand_type() {
                    if let Some(dst) = instr.dst {
                        seed(dst, ty, &mut reg_ty, &mut queue);
                    }
                    for src in &instr.srcs {
                        seed(*src, ty, &mut reg_ty, &mut queue);
                    }
                } else if matches!(op, Opcode::Mov | Opcode::Lop) {
                    // Transparent: connect dst and srcs bidirectionally.
                    if let Some(dst) = instr.dst {
                        for src in &instr.srcs {
                            adj.entry(dst).or_default().push(*src);
                            adj.entry(*src).or_default().push(dst);
                        }
                    }
                }
            }
        }
    }

    // Propagate types through transparent edges (both directions — this
    // is the "bidirectional" part: forward def→use and backward use→def).
    while let Some(reg) = queue.pop_front() {
        let ty = reg_ty[&reg];
        if let Some(neighbors) = adj.get(&reg) {
            for n in neighbors.clone() {
                if let std::collections::hash_map::Entry::Vacant(e) = reg_ty.entry(n) {
                    e.insert(ty);
                    queue.push_back(n);
                }
            }
        }
    }

    // Resolve each memory instruction.
    let mut out = AccessTypeMap::default();
    for instr in table.memory_instrs() {
        let acc = instr.access.expect("memory_instrs yields accesses");
        let value_reg = if acc.is_store { instr.srcs.first().copied() } else { instr.dst };
        let (ty, inferred) = match acc.ty {
            Some(t) => (t, false),
            None => match value_reg.and_then(|r| reg_ty.get(&r)) {
                Some(t) => (*t, true),
                None => (fallback_type(elem_width(acc.width_bytes, acc.vector)), true),
            },
        };
        let vector = if acc.vector > 1 {
            acc.vector
        } else {
            // A wide access with a narrower inferred type is a vector
            // access (e.g. STG.64 of f32 values = 2 lanes).
            (acc.width_bytes / ty.size_bytes()).max(1)
        };
        out.types.insert(instr.pc, ResolvedAccess { ty, vector, inferred });
    }
    out
}

fn elem_width(width: u8, vector: u8) -> u8 {
    (width / vector.max(1)).max(1)
}

/// Convenience: resolves the instruction at `pc` of `table` directly.
pub fn resolve_one(table: &InstrTable, pc: Pc) -> Option<ResolvedAccess> {
    infer_access_types(table).get(pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_gpu::ir::{
        AccessDecl, FloatWidth, InstrTableBuilder, Instruction, IntWidth, MemSpace,
    };

    fn mem_instr(
        pc: u32,
        is_store: bool,
        width: u8,
        ty: Option<ScalarType>,
        reg: u16,
    ) -> Instruction {
        Instruction {
            pc: Pc(pc),
            op: if is_store { Opcode::St } else { Opcode::Ld },
            dst: if is_store { None } else { Some(Reg(reg)) },
            srcs: if is_store { vec![Reg(reg)] } else { vec![] },
            access: Some(AccessDecl {
                width_bytes: width,
                space: MemSpace::Global,
                is_store,
                ty,
                vector: 1,
            }),
            line: None,
        }
    }

    fn arith(pc: u32, op: Opcode, dst: u16, srcs: &[u16]) -> Instruction {
        Instruction {
            pc: Pc(pc),
            op,
            dst: Some(Reg(dst)),
            srcs: srcs.iter().map(|&r| Reg(r)).collect(),
            access: None,
            line: None,
        }
    }

    #[test]
    fn declared_types_pass_through() {
        let t = InstrTableBuilder::new()
            .load(Pc(0), ScalarType::F32, MemSpace::Global)
            .store(Pc(1), ScalarType::S32, MemSpace::Global)
            .build();
        let m = infer_access_types(&t);
        assert_eq!(m.get(Pc(0)).unwrap().ty, ScalarType::F32);
        assert!(!m.get(Pc(0)).unwrap().inferred);
        assert_eq!(m.get(Pc(1)).unwrap().ty, ScalarType::S32);
    }

    #[test]
    fn forward_slice_load_feeds_fadd() {
        // r0 = LDG.64 [?]; r1 = FADD.F64 r0 -> the load is f64.
        let t = InstrTableBuilder::new()
            .instr(mem_instr(0, false, 8, None, 0))
            .instr(arith(1, Opcode::FAdd(FloatWidth::F64), 1, &[0]))
            .build();
        let r = infer_access_types(&t).get(Pc(0)).unwrap();
        assert_eq!(r.ty, ScalarType::F64);
        assert!(r.inferred);
        assert_eq!(r.vector, 1);
    }

    #[test]
    fn backward_slice_store_operand_from_imad() {
        // r2 = IMAD.S32 ...; STG.32 [?], r2 -> the store is s32.
        let t = InstrTableBuilder::new()
            .instr(arith(0, Opcode::IMad(IntWidth::I32), 2, &[3, 4]))
            .instr(mem_instr(1, true, 4, None, 2))
            .build();
        let r = infer_access_types(&t).get(Pc(1)).unwrap();
        assert_eq!(r.ty, ScalarType::S32);
        assert!(r.inferred);
    }

    #[test]
    fn mov_is_transparent() {
        // r0 = LDG.32 [?]; r1 = MOV r0; r2 = FMUL.F32 r1 -> load is f32.
        let t = InstrTableBuilder::new()
            .instr(mem_instr(0, false, 4, None, 0))
            .instr(arith(1, Opcode::Mov, 1, &[0]))
            .instr(arith(2, Opcode::FMul(FloatWidth::F32), 1, &[1]))
            .build();
        // FMul seeds r1 (both dst and srcs of arithmetic get the type),
        // Mov connects r1 <-> r0.
        let r = infer_access_types(&t).get(Pc(0)).unwrap();
        assert_eq!(r.ty, ScalarType::F32);
    }

    #[test]
    fn vectorized_store_inferred() {
        // STG.64 whose operand is f32 -> 2-lane f32 vector store.
        let t = InstrTableBuilder::new()
            .instr(arith(0, Opcode::FAdd(FloatWidth::F32), 5, &[6]))
            .instr(mem_instr(1, true, 8, None, 5))
            .build();
        let r = infer_access_types(&t).get(Pc(1)).unwrap();
        assert_eq!(r.ty, ScalarType::F32);
        assert_eq!(r.vector, 2);
    }

    #[test]
    fn cvt_is_a_type_boundary() {
        // r0 = LDG.32 [?]; r1 = CVT s32->f32 r0; store r1 as 4 bytes.
        let t = InstrTableBuilder::new()
            .instr(mem_instr(0, false, 4, None, 0))
            .instr(Instruction {
                pc: Pc(1),
                op: Opcode::Cvt { from: ScalarType::S32, to: ScalarType::F32 },
                dst: Some(Reg(1)),
                srcs: vec![Reg(0)],
                access: None,
                line: None,
            })
            .instr(mem_instr(2, true, 4, None, 1))
            .build();
        let m = infer_access_types(&t);
        assert_eq!(m.get(Pc(0)).unwrap().ty, ScalarType::S32, "load side of cvt");
        assert_eq!(m.get(Pc(2)).unwrap().ty, ScalarType::F32, "store side of cvt");
    }

    #[test]
    fn unknown_falls_back_to_unsigned() {
        let t = InstrTableBuilder::new().load_untyped(Pc(0), 4, MemSpace::Global).build();
        let r = infer_access_types(&t).get(Pc(0)).unwrap();
        assert_eq!(r.ty, ScalarType::U32);
        assert!(r.inferred);
    }

    #[test]
    fn decoded_values() {
        let v = DecodedValue::from_bits(ScalarType::F32, (1.5f32).to_bits() as u64);
        assert_eq!(v.as_f64(), 1.5);
        assert!(!v.is_zero());
        let z = DecodedValue::from_bits(ScalarType::F64, (-0.0f64).to_bits());
        assert!(z.is_zero());
        let n = DecodedValue::from_bits(ScalarType::S8, 0xFF);
        assert_eq!(n.as_f64(), -1.0);
        let u = DecodedValue::from_bits(ScalarType::U16, 0xFFFF);
        assert_eq!(u.as_f64(), 65535.0);
    }

    #[test]
    fn decode_uses_map_or_fallback() {
        let t = InstrTableBuilder::new().load(Pc(0), ScalarType::F32, MemSpace::Global).build();
        let m = infer_access_types(&t);
        let d = m.decode(Pc(0), (2.0f32).to_bits() as u64, 4);
        assert_eq!(d.as_f64(), 2.0);
        // Unknown pc: fallback unsigned.
        let d = m.decode(Pc(99), 7, 4);
        assert_eq!(d.ty, ScalarType::U32);
        assert_eq!(d.as_f64(), 7.0);
    }
}
