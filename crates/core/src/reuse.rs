//! Reuse-distance analysis over the instrumentation stream.
//!
//! The paper's conclusion names reuse distance as the next analysis to
//! offload onto the same fast collection pipeline ("we intend to offload
//! other important program analyses, such as reuse distance and race
//! detection, to GPUs"). This module implements the analysis side: a
//! classic LRU stack-distance computation over [`vex_trace::AccessRecord`]
//! streams, producing per-object histograms and cache miss-ratio
//! estimates.
//!
//! Algorithm: for each access, the reuse distance is the number of
//! *distinct* cache lines touched since the previous access to the same
//! line (∞ for first touches). We keep, per line, the timestamp of its
//! last access, and a Fenwick tree over timestamps marking which ones are
//! the *most recent* access of their line; the distance is then a prefix
//! sum — `O(log N)` per access.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vex_trace::AccessRecord;

/// Binary-indexed tree over access timestamps, growing by doubling.
/// A shadow value array keeps growth simple: on resize the tree is
/// rebuilt from the values (amortized O(1) per insert).
#[derive(Debug)]
struct Fenwick {
    tree: Vec<i64>,
    vals: Vec<i64>,
}

impl Fenwick {
    fn new() -> Self {
        Fenwick { tree: vec![0; 2], vals: vec![0; 2] }
    }

    fn grow_to(&mut self, i: usize) {
        if i < self.vals.len() {
            return;
        }
        let new_len = (i + 1).next_power_of_two().max(self.vals.len() * 2);
        self.vals.resize(new_len, 0);
        self.tree = vec![0; new_len];
        for idx in 1..new_len {
            if self.vals[idx] != 0 {
                self.add_inner(idx, self.vals[idx]);
            }
        }
    }

    fn add_inner(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Adds `delta` at index `i` (1-based), growing as needed.
    fn add(&mut self, i: usize, delta: i64) {
        self.grow_to(i);
        self.vals[i] += delta;
        self.add_inner(i, delta);
    }

    /// Sum of `[1, i]`.
    fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0i64;
        i = i.min(self.tree.len() - 1);
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of `(i, end]`.
    fn suffix_after(&self, i: usize) -> u64 {
        (self.prefix(self.tree.len() - 1) - self.prefix(i)).max(0) as u64
    }
}

/// Power-of-two bucketed reuse-distance histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    /// `buckets[k]` counts accesses with distance in
    /// `[2^k - 1, 2^(k+1) - 2]`, i.e. `floor(log2(d + 1)) == k`; bucket 0
    /// holds exactly distance 0.
    pub buckets: Vec<u64>,
    /// First touches (infinite distance).
    pub cold: u64,
    /// Total accesses.
    pub total: u64,
}

impl ReuseHistogram {
    /// Bucket index for a distance: `floor(log2(d + 1))`, so bucket 0
    /// holds exactly distance 0 (the only distance that always hits).
    fn bucket_of(distance: u64) -> usize {
        (63 - (distance + 1).leading_zeros()) as usize
    }

    /// Inclusive distance range `[lo, hi]` of bucket `k`.
    fn bucket_range(k: usize) -> (u64, u64) {
        ((1u64 << k) - 1, (1u64 << (k + 1)) - 2)
    }

    fn record(&mut self, distance: u64) {
        self.total += 1;
        let bucket = Self::bucket_of(distance);
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    fn record_cold(&mut self) {
        self.total += 1;
        self.cold += 1;
    }

    /// Estimated miss ratio of a fully associative LRU cache holding
    /// `lines` cache lines: accesses with distance ≥ `lines` (plus cold
    /// misses) miss. Buckets straddling the cache size are apportioned
    /// linearly.
    pub fn miss_ratio(&self, lines: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut misses = self.cold as f64;
        for (k, &count) in self.buckets.iter().enumerate() {
            let (lo, hi) = Self::bucket_range(k);
            if lo >= lines {
                misses += count as f64;
            } else if hi >= lines {
                // Distances lines..=hi of this bucket miss.
                let frac = (hi - lines + 1) as f64 / (hi - lo + 1) as f64;
                misses += count as f64 * frac;
            }
        }
        misses / self.total as f64
    }

    /// Fraction of accesses that were first touches.
    pub fn cold_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cold as f64 / self.total as f64
        }
    }
}

/// Streaming reuse-distance analyzer at cache-line granularity.
///
/// ```rust
/// use vex_core::reuse::ReuseAnalyzer;
/// let mut a = ReuseAnalyzer::new(64);
/// for pass in 0..2 {
///     let _ = pass;
///     for line in 0..8u64 {
///         a.access(line * 64);
///     }
/// }
/// let h = a.finish();
/// assert_eq!(h.cold, 8);                     // first pass
/// assert_eq!(h.miss_ratio(16), 0.5);         // second pass hits in 16 lines
/// ```
#[derive(Debug)]
pub struct ReuseAnalyzer {
    line_bytes: u64,
    /// line -> timestamp of last access (1-based).
    last_access: HashMap<u64, usize>,
    /// Marks timestamps that are the latest access of their line.
    live: Fenwick,
    clock: usize,
    histogram: ReuseHistogram,
}

impl ReuseAnalyzer {
    /// Creates an analyzer with the given cache-line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero or not a power of two.
    pub fn new(line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "cache line size must be a nonzero power of two");
        ReuseAnalyzer {
            line_bytes,
            last_access: HashMap::new(),
            live: Fenwick::new(),
            clock: 0,
            histogram: ReuseHistogram::default(),
        }
    }

    /// Feeds one address (any access width within one line).
    pub fn access(&mut self, addr: u64) {
        let line = addr / self.line_bytes;
        self.clock += 1;
        let t = self.clock;
        match self.last_access.insert(line, t) {
            None => {
                self.histogram.record_cold();
            }
            Some(prev) => {
                // Distinct lines touched since prev = live marks in (prev, t).
                let distance = self.live.suffix_after(prev);
                self.histogram.record(distance);
                self.live.add(prev, -1);
            }
        }
        self.live.add(t, 1);
    }

    /// Feeds one instrumentation record.
    pub fn record(&mut self, rec: &AccessRecord) {
        self.access(rec.addr);
    }

    /// The accumulated histogram.
    pub fn histogram(&self) -> &ReuseHistogram {
        &self.histogram
    }

    /// Distinct lines observed.
    pub fn footprint_lines(&self) -> usize {
        self.last_access.len()
    }

    /// Consumes the analyzer, returning the histogram.
    pub fn finish(self) -> ReuseHistogram {
        self.histogram
    }
}

/// Reference implementation: naive O(N²) stack distance, used by tests.
#[cfg(test)]
fn naive_distances(lines: &[u64]) -> Vec<Option<u64>> {
    let mut out = Vec::with_capacity(lines.len());
    for (i, &l) in lines.iter().enumerate() {
        let prev = lines[..i].iter().rposition(|&p| p == l);
        match prev {
            None => out.push(None),
            Some(p) => {
                let distinct: std::collections::HashSet<u64> =
                    lines[p + 1..i].iter().copied().collect();
                out.push(Some(distinct.len() as u64));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn distances(addrs: &[u64]) -> (ReuseHistogram, Vec<Option<u64>>) {
        let mut a = ReuseAnalyzer::new(1);
        for &x in addrs {
            a.access(x);
        }
        (a.finish(), naive_distances(addrs))
    }

    #[test]
    fn sequential_scan_is_all_cold() {
        let addrs: Vec<u64> = (0..100).collect();
        let (h, _) = distances(&addrs);
        assert_eq!(h.cold, 100);
        assert_eq!(h.total, 100);
        assert_eq!(h.cold_ratio(), 1.0);
        assert_eq!(h.miss_ratio(1024), 1.0);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let (h, _) = distances(&[5, 5, 5, 5]);
        assert_eq!(h.cold, 1);
        assert_eq!(h.buckets[0], 3); // distance 0 → bucket 0
        assert_eq!(h.miss_ratio(1), 0.25, "only the cold miss");
    }

    #[test]
    fn cyclic_scan_distance_equals_working_set() {
        // Repeating 0..8 twice: second round distances are all 7.
        let addrs: Vec<u64> = (0..8).chain(0..8).collect();
        let mut a = ReuseAnalyzer::new(1);
        for &x in &addrs {
            a.access(x);
        }
        let h = a.finish();
        assert_eq!(h.cold, 8);
        // distance 7 → bucket 3 (d+1 = 8).
        assert_eq!(h.buckets[3], 8);
        // A cache of 8 lines captures the cycle; 4 lines does not.
        assert!(h.miss_ratio(8) < h.miss_ratio(4));
        assert_eq!(h.miss_ratio(4), 1.0);
        assert_eq!(h.miss_ratio(16), 0.5, "only the 8 cold misses");
    }

    #[test]
    fn line_granularity_coalesces() {
        let mut a = ReuseAnalyzer::new(64);
        a.access(0);
        a.access(4); // same 64B line: distance 0
        a.access(100); // new line
        a.access(32); // line 0 again, distance 1
        let h = a.histogram().clone();
        assert_eq!(h.cold, 2);
        assert_eq!(a.footprint_lines(), 2);
        assert_eq!(h.buckets[0], 1); // the distance-0 access
        assert_eq!(h.buckets[1], 1); // the distance-1 access (d+1 = 2)
    }

    #[test]
    fn bucketing_is_power_of_two() {
        let mut h = ReuseHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(7);
        h.record(8);
        assert_eq!(h.buckets[0], 1); // {0}
        assert_eq!(h.buckets[1], 2); // {1, 2}
        assert_eq!(h.buckets[2], 2); // {3..6}: 3, 4
        assert_eq!(h.buckets[3], 2); // {7..14}: 7, 8
    }

    proptest! {
        #[test]
        fn prop_matches_naive_reference(addrs in prop::collection::vec(0u64..64, 1..300)) {
            let mut fast = ReuseAnalyzer::new(1);
            for &a in &addrs {
                fast.access(a);
            }
            let h = fast.finish();
            let naive = naive_distances(&addrs);
            let naive_cold = naive.iter().filter(|d| d.is_none()).count() as u64;
            prop_assert_eq!(h.cold, naive_cold);
            // Compare bucketed counts.
            let mut ref_hist = ReuseHistogram::default();
            for d in naive.iter().flatten() {
                ref_hist.record(*d);
            }
            prop_assert_eq!(h.buckets, ref_hist.buckets);
        }

        #[test]
        fn prop_miss_ratio_monotone_in_cache_size(
            addrs in prop::collection::vec(0u64..128, 1..200)
        ) {
            let mut a = ReuseAnalyzer::new(1);
            for &x in &addrs {
                a.access(x);
            }
            let h = a.finish();
            let mut prev = 1.0f64;
            for lines in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
                let m = h.miss_ratio(lines);
                prop_assert!(m <= prev + 1e-9, "miss ratio must not grow with cache size");
                prop_assert!((0.0..=1.0).contains(&m));
                prev = m;
            }
        }
    }
}
