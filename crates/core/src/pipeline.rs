//! The sharded, off-critical-path analysis engine.
//!
//! In the synchronous profiler (`crate::profiler` with zero analysis
//! shards) every analysis step — record decoding, pattern recognition,
//! snapshot diffing, SHA-256 hashing — runs inside the shared
//! [`vex_trace::event::EventSource`]'s callbacks, on the application's
//! critical path. This module moves that work onto worker threads,
//! mirroring the paper's design goal of keeping the collector fast and
//! deferring analysis (§4): [`PipelineSink`] — the engine's
//! [`EventSink`] over the canonical event stream — only clones the
//! `Arc`-shared event payloads into bounded [`crossbeam::channel`]s.
//!
//! # Topology
//!
//! ```text
//! EventSource ──Api events (+ captured bytes)──────────▶ coarse worker
//!     │                                                  (snapshot diff,
//!     │ record batches (Arc clone + send)                 SHA-256, flow graph)
//!     ▼
//!  router ──per-shard sub-batches──▶ fine shard 0..N-1   (decode, ValueStats,
//!     │                                                   recognizers)
//!     └────full batches (Arc)──────▶ aux worker          (reuse distance,
//!                                                         race detection)
//! ```
//!
//! * **Fine shards** partition work by [`ObjectKey`]: every record of one
//!   `(object, direction)` stream is routed to the same shard, so the
//!   order-sensitive per-key `ValueStats` accumulation is identical to
//!   the serial engine's. The router owns a registry replica (fed by
//!   in-band alloc/free events) to attribute addresses to keys.
//! * The **aux worker** runs the globally order-sensitive analyses (reuse
//!   distance, race detection) sequentially over the unsharded stream.
//! * The **coarse worker** replays `CoarseState::on_api_after` against
//!   the [`CapturedView`] carried by each API event: device memory is
//!   only valid during the hook callback, so the `EventSource` captures
//!   exactly the byte ranges the replay will read (the same ranges the
//!   serial engine reads — capture cost equals the serial snapshot cost;
//!   the diff, hash, and graph bookkeeping move off-path).
//!
//! # Determinism
//!
//! Reports are **byte-identical** to the serial engine's regardless of
//! worker count: key routing preserves per-key record order, every
//! channel is FIFO, the coarse replay is a faithful re-execution with
//! identical inputs, and the flush barrier reassembles shard findings in
//! the serial order — launches in launch order, objects in key order
//! within each launch (`tagged_findings`). The equivalence suite in
//! `tests/pipeline_equivalence.rs` locks this in for every bundled
//! workload under 1, 2, and 8 shards.

use crate::coarse::{CoarseState, CoarseTraffic, KernelIntervals};
use crate::coarse::{DuplicateFinding, RedundancyFinding};
use crate::copy_strategy::{AdaptivePolicy, ObjectCopyPlan};
use crate::fine::{FineFinding, FineState, FineTraffic};
use crate::flowgraph::FlowGraph;
use crate::patterns::PatternConfig;
use crate::races::{RaceDetector, RaceReport};
use crate::registry::{ObjectKey, ObjectRegistry};
use crate::reuse::{ReuseAnalyzer, ReuseHistogram};
use crate::sampling::BlockSampler;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use vex_gpu::alloc::{AllocId, AllocationInfo};
use vex_gpu::hooks::{ApiEvent, ApiKind, CapturedView, LaunchInfo};
use vex_trace::event::{ColumnSet, Event, EventSink, KernelSummary};
use vex_trace::AccessRecord;

/// Static configuration of a pipelined session, filled in by
/// `ProfilerBuilder::attach`.
pub(crate) struct PipelineSpec {
    /// Number of fine analysis shards (≥ 1).
    pub shards: usize,
    /// Capacity of each bounded channel, in messages.
    pub queue_depth: usize,
    /// Coarse pass enabled.
    pub coarse: bool,
    /// Fine pass enabled.
    pub fine: bool,
    /// Recognizer thresholds.
    pub pattern: PatternConfig,
    /// Snapshot copy policy of the coarse pass.
    pub policy: AdaptivePolicy,
    /// Reuse-distance line size, if enabled.
    pub reuse_line_bytes: Option<u64>,
    /// Race detection enabled.
    pub races: bool,
}

impl PipelineSpec {
    /// Columns of the fine record stream the pipeline's workers read —
    /// the union of the demands of every enabled pass. A replay decode
    /// projected onto this set feeds the pipeline byte-identically.
    ///
    /// The fine shards read pc/value/size for type decoding, addresses
    /// for object attribution, the flags byte for direction and space,
    /// and block ids for sampling; reuse distance needs only addresses
    /// (plus flags for the global-space filter); race detection adds
    /// pcs and block ids. Thread ids are never consulted. The router
    /// itself shards on `(space, addr)`, covered by the fine demand.
    pub fn required_columns(&self) -> ColumnSet {
        let mut cols = ColumnSet::NONE;
        if self.fine {
            cols |= ColumnSet::PC
                | ColumnSet::ADDR
                | ColumnSet::BITS
                | ColumnSet::SIZE
                | ColumnSet::FLAGS
                | ColumnSet::BLOCK;
        }
        if self.reuse_line_bytes.is_some() {
            cols |= ColumnSet::ADDR | ColumnSet::FLAGS;
        }
        if self.races {
            cols |= ColumnSet::PC | ColumnSet::ADDR | ColumnSet::FLAGS | ColumnSet::BLOCK;
        }
        cols
    }
}

/// Messages consumed by the router thread. Trace events and registry
/// events share one FIFO channel so the router's registry replica is
/// always consistent with the batch being routed.
enum RouterMsg {
    /// An allocation went live.
    Alloc(AllocationInfo),
    /// An allocation was freed.
    Free(AllocationInfo),
    /// A record batch flushed by the collector.
    Batch { info: Arc<LaunchInfo>, records: Arc<Vec<AccessRecord>> },
    /// An instrumented launch finished.
    LaunchComplete { info: Arc<LaunchInfo> },
    /// Barrier: forward to downstream workers, which reply directly.
    Flush { fine_reply: Sender<FineSnapshot>, aux_reply: Sender<AuxSnapshot> },
    /// Drain and exit (forwarded downstream).
    Shutdown,
}

/// Messages consumed by one fine analysis shard.
enum ShardMsg {
    Alloc(AllocationInfo),
    Free(AllocationInfo),
    /// The subset of a batch whose object keys route to this shard.
    Batch {
        info: Arc<LaunchInfo>,
        records: Vec<AccessRecord>,
    },
    LaunchComplete {
        info: Arc<LaunchInfo>,
    },
    Flush {
        reply: Sender<FineSnapshot>,
    },
    Shutdown,
}

/// Messages consumed by the sequential reuse/race worker.
enum AuxMsg {
    Batch { info: Arc<LaunchInfo>, records: Arc<Vec<AccessRecord>> },
    LaunchComplete,
    Flush { reply: Sender<AuxSnapshot> },
    Shutdown,
}

/// Messages consumed by the coarse worker.
enum CoarseMsg {
    /// One API event with everything its deferred replay needs: the
    /// kernel's collected intervals (for `KernelLaunch`) and the device
    /// bytes the replay will read, exactly as the `EventSource` packaged
    /// them in [`Event::Api`].
    Event {
        event: ApiEvent,
        /// Interval summary of the finished kernel.
        kernel: Option<KernelSummary>,
        captured: Arc<CapturedView>,
    },
    Flush {
        reply: Sender<CoarseSnapshot>,
    },
    Shutdown,
}

/// One shard's contribution at a flush barrier.
pub(crate) struct FineSnapshot {
    /// Raw findings tagged with their object key.
    tagged: Vec<(ObjectKey, FineFinding)>,
    /// This shard's traffic counters.
    traffic: FineTraffic,
}

/// The aux worker's products at a flush barrier.
pub(crate) struct AuxSnapshot {
    reuse: Option<ReuseHistogram>,
    races: Vec<RaceReport>,
}

/// The coarse worker's products at a flush barrier.
pub(crate) struct CoarseSnapshot {
    /// The value flow graph.
    pub flow: FlowGraph,
    /// Redundant-write findings.
    pub redundancies: Vec<RedundancyFinding>,
    /// Duplicate-object findings.
    pub duplicates: Vec<DuplicateFinding>,
    /// Per-object copy-strategy tallies.
    pub copy_plans: Vec<ObjectCopyPlan>,
    /// Measurement traffic counters.
    pub traffic: CoarseTraffic,
}

/// Everything the profiler needs to assemble a [`crate::report::Profile`],
/// gathered at a flush barrier.
pub(crate) struct PipelineProducts {
    /// Coarse products (`None` when the coarse pass is off).
    pub coarse: Option<CoarseSnapshot>,
    /// Raw fine findings in serial order, plus merged traffic (`None`
    /// when the fine pass is off).
    pub fine: Option<(Vec<FineFinding>, FineTraffic)>,
    /// Reuse-distance histogram, if enabled.
    pub reuse: Option<ReuseHistogram>,
    /// Race reports (empty when detection is off).
    pub races: Vec<RaceReport>,
}

/// A running sharded analysis engine. Owned by the profiler session;
/// the [`PipelineSink`] holds an `Arc` clone.
pub(crate) struct Pipeline {
    router_tx: Option<Sender<RouterMsg>>,
    coarse_tx: Option<Sender<CoarseMsg>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shards: usize,
    has_aux: bool,
}

/// The pipeline's adapter onto the canonical event stream: clones each
/// event's `Arc`-shared payloads into the worker channels. This is the
/// engine's entire critical-path cost in pipelined mode.
pub(crate) struct PipelineSink(Arc<Pipeline>);

impl PipelineSink {
    /// Wraps a spawned pipeline as an [`EventSink`].
    pub(crate) fn new(pipeline: Arc<Pipeline>) -> Self {
        PipelineSink(pipeline)
    }
}

impl EventSink for PipelineSink {
    fn on_event(&self, event: &Event) {
        let p = &self.0;
        match event {
            Event::Api { event, kernel, captured } => {
                // Mirror the serial engine's ordering: the router's
                // registry replica must see the alloc before any batch of
                // it and the free only after.
                if let ApiKind::Malloc { info } = &event.kind {
                    if let Some(tx) = &p.router_tx {
                        let _ = tx.send(RouterMsg::Alloc(info.clone()));
                    }
                }
                if let Some(tx) = &p.coarse_tx {
                    let _ = tx.send(CoarseMsg::Event {
                        event: event.clone(),
                        kernel: kernel.clone(),
                        captured: captured.clone(),
                    });
                }
                if let ApiKind::Free { info } = &event.kind {
                    if let Some(tx) = &p.router_tx {
                        let _ = tx.send(RouterMsg::Free(info.clone()));
                    }
                }
            }
            Event::Batch { info, records } => {
                if let Some(tx) = &p.router_tx {
                    let _ = tx.send(RouterMsg::Batch {
                        info: info.clone(),
                        records: records.clone(),
                    });
                }
            }
            Event::LaunchEnd { info } => {
                if let Some(tx) = &p.router_tx {
                    let _ = tx.send(RouterMsg::LaunchComplete { info: info.clone() });
                }
            }
            Event::LaunchBegin { .. } | Event::SkippedLaunch { .. } => {}
        }
    }
}

/// Deterministic shard routing: splitmix64 over the object key. The
/// specific function is irrelevant for correctness (any key-stable map
/// works); it just has to be stable across runs and processes.
fn shard_of(key: ObjectKey, shards: usize) -> usize {
    let seed = match key {
        ObjectKey::Global(AllocId(id)) => id,
        ObjectKey::Shared => u64::MAX,
    };
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

impl Pipeline {
    /// Spawns the worker topology for `spec` and returns the handle.
    pub(crate) fn spawn(spec: &PipelineSpec) -> Arc<Pipeline> {
        assert!(spec.shards >= 1, "pipelined sessions need at least one shard");
        let depth = spec.queue_depth.max(1);
        let mut workers = Vec::new();

        let coarse_tx = spec.coarse.then(|| {
            let (tx, rx) = bounded(depth);
            let pattern = spec.pattern;
            let policy = spec.policy;
            workers.push(
                std::thread::Builder::new()
                    .name("vex-coarse".into())
                    .spawn(move || coarse_worker(rx, pattern, policy))
                    .expect("spawn coarse worker"),
            );
            tx
        });

        let has_aux = spec.fine && (spec.reuse_line_bytes.is_some() || spec.races);
        let router_tx = spec.fine.then(|| {
            let mut shard_txs = Vec::with_capacity(spec.shards);
            for i in 0..spec.shards {
                let (tx, rx) = bounded(depth);
                let pattern = spec.pattern;
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("vex-fine-{i}"))
                        .spawn(move || fine_shard_worker(rx, pattern))
                        .expect("spawn fine shard"),
                );
                shard_txs.push(tx);
            }
            let aux_tx = has_aux.then(|| {
                let (tx, rx) = bounded(depth);
                let reuse = spec.reuse_line_bytes;
                let races = spec.races;
                workers.push(
                    std::thread::Builder::new()
                        .name("vex-aux".into())
                        .spawn(move || aux_worker(rx, reuse, races))
                        .expect("spawn aux worker"),
                );
                tx
            });
            let (tx, rx) = bounded(depth);
            workers.push(
                std::thread::Builder::new()
                    .name("vex-router".into())
                    .spawn(move || router_worker(rx, shard_txs, aux_tx))
                    .expect("spawn router"),
            );
            tx
        });

        Arc::new(Pipeline {
            router_tx,
            coarse_tx,
            workers: Mutex::new(workers),
            shards: spec.shards,
            has_aux,
        })
    }

    /// Flush barrier: waits until every published message is analyzed and
    /// gathers the products. FIFO channels guarantee that a flush marker
    /// sent after the last real message is processed after it.
    pub(crate) fn flush(&self) -> PipelineProducts {
        // Kick off both barriers before waiting on either.
        let coarse_rx = self.coarse_tx.as_ref().map(|tx| {
            let (reply, rx) = bounded(1);
            tx.send(CoarseMsg::Flush { reply }).expect("coarse worker alive");
            rx
        });
        let fine_rx = self.router_tx.as_ref().map(|tx| {
            let (fine_reply, fine_rx) = bounded(self.shards);
            let (aux_reply, aux_rx) = bounded(1);
            tx.send(RouterMsg::Flush { fine_reply, aux_reply }).expect("router alive");
            (fine_rx, aux_rx)
        });

        let coarse = coarse_rx.map(|rx| rx.recv().expect("coarse snapshot"));
        let mut fine = None;
        let mut reuse = None;
        let mut races = Vec::new();
        if let Some((fine_rx, aux_rx)) = fine_rx {
            let mut tagged: Vec<(ObjectKey, FineFinding)> = Vec::new();
            let mut traffic = FineTraffic::default();
            for i in 0..self.shards {
                let snap = fine_rx.recv().expect("fine shard snapshot");
                traffic.records_analyzed += snap.traffic.records_analyzed;
                traffic.records_skipped += snap.traffic.records_skipped;
                // Every shard sees every launch-complete, so `launches`
                // is replicated, not partitioned.
                if i == 0 {
                    traffic.launches = snap.traffic.launches;
                }
                tagged.extend(snap.tagged);
            }
            // Reassemble the serial finding order: launches in launch
            // order, objects in (key, direction) order within a launch —
            // exactly how FineState drains its per-launch BTreeMap.
            tagged.sort_by(|(ka, fa), (kb, fb)| {
                (fa.launch, *ka, fa.direction).cmp(&(fb.launch, *kb, fb.direction))
            });
            let findings: Vec<FineFinding> = tagged.into_iter().map(|(_, f)| f).collect();
            fine = Some((findings, traffic));
            if self.has_aux {
                let snap = aux_rx.recv().expect("aux snapshot");
                reuse = snap.reuse;
                races = snap.races;
            }
        }

        PipelineProducts { coarse, fine, reuse, races }
    }

    /// Stops every worker and joins it. Idempotent; called on session
    /// drop. Messages published after shutdown are discarded.
    pub(crate) fn shutdown(&self) {
        if let Some(tx) = &self.router_tx {
            let _ = tx.send(RouterMsg::Shutdown);
        }
        if let Some(tx) = &self.coarse_tx {
            let _ = tx.send(CoarseMsg::Shutdown);
        }
        let handles = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// The router: owns a registry replica and splits each batch by object
/// key into per-shard sub-batches, forwarding full batches to the aux
/// worker untouched.
fn router_worker(
    rx: Receiver<RouterMsg>,
    shard_txs: Vec<Sender<ShardMsg>>,
    aux_tx: Option<Sender<AuxMsg>>,
) {
    let shards = shard_txs.len();
    let mut registry = ObjectRegistry::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            RouterMsg::Alloc(info) => {
                registry.on_alloc(&info);
                for tx in &shard_txs {
                    let _ = tx.send(ShardMsg::Alloc(info.clone()));
                }
            }
            RouterMsg::Free(info) => {
                registry.on_free(&info);
                for tx in &shard_txs {
                    let _ = tx.send(ShardMsg::Free(info.clone()));
                }
            }
            RouterMsg::Batch { info, records } => {
                if let Some(aux) = &aux_tx {
                    let _ = aux
                        .send(AuxMsg::Batch { info: info.clone(), records: records.clone() });
                }
                let mut per: Vec<Vec<AccessRecord>> = vec![Vec::new(); shards];
                for rec in records.iter() {
                    // Unattributable records go to shard 0 so its traffic
                    // counters see them exactly as the serial engine does.
                    let idx = registry
                        .key_for(rec.space, rec.addr)
                        .map_or(0, |k| shard_of(k, shards));
                    per[idx].push(*rec);
                }
                for (idx, recs) in per.into_iter().enumerate() {
                    if !recs.is_empty() {
                        let _ = shard_txs[idx]
                            .send(ShardMsg::Batch { info: info.clone(), records: recs });
                    }
                }
            }
            RouterMsg::LaunchComplete { info } => {
                for tx in &shard_txs {
                    let _ = tx.send(ShardMsg::LaunchComplete { info: info.clone() });
                }
                if let Some(aux) = &aux_tx {
                    let _ = aux.send(AuxMsg::LaunchComplete);
                }
            }
            RouterMsg::Flush { fine_reply, aux_reply } => {
                for tx in &shard_txs {
                    let _ = tx.send(ShardMsg::Flush { reply: fine_reply.clone() });
                }
                if let Some(aux) = &aux_tx {
                    let _ = aux.send(AuxMsg::Flush { reply: aux_reply.clone() });
                }
            }
            RouterMsg::Shutdown => {
                for tx in &shard_txs {
                    let _ = tx.send(ShardMsg::Shutdown);
                }
                if let Some(aux) = &aux_tx {
                    let _ = aux.send(AuxMsg::Shutdown);
                }
                return;
            }
        }
    }
}

/// One fine analysis shard: a plain [`FineState`] over the subset of
/// object keys routed here, plus a registry replica for attribution.
fn fine_shard_worker(rx: Receiver<ShardMsg>, pattern: PatternConfig) {
    // Block sampling already happened at collection; analyze every record.
    let mut fine = FineState::new(pattern, BlockSampler::new(1));
    let mut registry = ObjectRegistry::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Alloc(info) => registry.on_alloc(&info),
            ShardMsg::Free(info) => registry.on_free(&info),
            ShardMsg::Batch { info, records } => fine.on_batch(&info, &records, &registry),
            ShardMsg::LaunchComplete { info } => fine.on_launch_complete(&info, &registry),
            ShardMsg::Flush { reply } => {
                let _ = reply.send(FineSnapshot {
                    tagged: fine.tagged_findings(),
                    traffic: fine.traffic(),
                });
            }
            ShardMsg::Shutdown => return,
        }
    }
}

/// The sequential worker for globally order-sensitive analyses.
fn aux_worker(rx: Receiver<AuxMsg>, reuse_line_bytes: Option<u64>, races_on: bool) {
    let mut reuse = reuse_line_bytes.map(ReuseAnalyzer::new);
    let mut races = races_on.then(RaceDetector::new);
    while let Ok(msg) = rx.recv() {
        match msg {
            AuxMsg::Batch { info, records } => {
                if let Some(r) = &mut reuse {
                    for rec in records.iter() {
                        if rec.space == vex_gpu::ir::MemSpace::Global {
                            r.record(rec);
                        }
                    }
                }
                if let Some(d) = &mut races {
                    d.ensure_launch(&info);
                    for rec in records.iter() {
                        d.record(rec);
                    }
                }
            }
            AuxMsg::LaunchComplete => {
                if let Some(d) = &mut races {
                    d.on_launch_end();
                }
            }
            AuxMsg::Flush { reply } => {
                let _ = reply.send(AuxSnapshot {
                    reuse: reuse.as_ref().map(|r| r.histogram().clone()),
                    races: races.as_ref().map(|d| d.reports().to_vec()).unwrap_or_default(),
                });
            }
            AuxMsg::Shutdown => return,
        }
    }
}

/// The coarse worker: replays each API event against a registry replica
/// and the bytes captured on the application thread. The replay runs the
/// unmodified serial `CoarseState` code, so its products are identical.
fn coarse_worker(rx: Receiver<CoarseMsg>, pattern: PatternConfig, policy: AdaptivePolicy) {
    let mut coarse = CoarseState::new(pattern, policy);
    let mut registry = ObjectRegistry::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            CoarseMsg::Event { event, kernel, captured } => {
                // Mirror the serial engine's ordering: alloc before
                // analysis, free after.
                if let ApiKind::Malloc { info } = &event.kind {
                    registry.on_alloc(info);
                }
                if let Some(summary) = kernel {
                    let mut k = KernelIntervals::new(false);
                    k.reads = summary.reads;
                    k.writes = summary.writes;
                    k.raw = summary.raw;
                    coarse.current_kernel = Some(k);
                }
                coarse.on_api_after(&event, &registry, captured.as_ref());
                if let ApiKind::Free { info } = &event.kind {
                    registry.on_free(info);
                }
            }
            CoarseMsg::Flush { reply } => {
                let _ = reply.send(CoarseSnapshot {
                    flow: coarse.flow_graph().clone(),
                    redundancies: coarse.redundancies().to_vec(),
                    duplicates: coarse.duplicates().to_vec(),
                    copy_plans: coarse.copy_plans(),
                    traffic: coarse.traffic(),
                });
            }
            CoarseMsg::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for id in 0..64u64 {
                let k = ObjectKey::Global(AllocId(id));
                let a = shard_of(k, shards);
                let b = shard_of(k, shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
            assert!(shard_of(ObjectKey::Shared, shards) < shards);
        }
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        assert_eq!(shard_of(ObjectKey::Shared, 1), 0);
        assert_eq!(shard_of(ObjectKey::Global(AllocId(42)), 1), 0);
    }

    #[test]
    fn spawn_flush_shutdown_with_no_traffic() {
        let spec = PipelineSpec {
            shards: 2,
            queue_depth: 4,
            coarse: true,
            fine: true,
            pattern: PatternConfig::default(),
            policy: AdaptivePolicy::default(),
            reuse_line_bytes: Some(32),
            races: true,
        };
        let p = Pipeline::spawn(&spec);
        let products = p.flush();
        let c = products.coarse.expect("coarse snapshot");
        assert!(c.redundancies.is_empty());
        let (findings, traffic) = products.fine.expect("fine snapshot");
        assert!(findings.is_empty());
        assert_eq!(traffic.launches, 0);
        assert_eq!(products.reuse.expect("reuse on").total, 0);
        assert!(products.races.is_empty());
        p.shutdown();
        p.shutdown(); // idempotent
    }
}
