//! Kernel filtering and hierarchical sampling (§6.2).
//!
//! Fine-grained analysis is expensive, so ValueExpert supports:
//!
//! * **filtering** — instrument only user-specified kernels (by name),
//!   typically the hot kernels found by a cheap first pass;
//! * **hierarchical sampling** — instrument every *P*-th launch of each
//!   kernel (kernel sampling period), and within an instrumented launch
//!   analyze every *Q*-th thread block (block sampling period), exploiting
//!   the observation that value patterns repeat across iterations and
//!   blocks.
//!
//! Both plug into [`vex_trace::LaunchFilter`]; block sampling is a
//! predicate on access records applied by the analyzers.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use vex_gpu::hooks::LaunchInfo;
use vex_trace::LaunchFilter;

/// Instruments only kernels whose name contains one of the given
/// substrings (CUDA kernel names are mangled, so substring matching is
/// the practical interface real tools expose).
#[derive(Debug)]
pub struct KernelNameFilter {
    needles: Vec<String>,
}

impl KernelNameFilter {
    /// Creates a filter matching any of `names` as substrings.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        KernelNameFilter { needles: names.into_iter().map(Into::into).collect() }
    }

    /// Whether `kernel_name` matches the filter.
    pub fn matches(&self, kernel_name: &str) -> bool {
        self.needles.iter().any(|n| kernel_name.contains(n.as_str()))
    }
}

impl LaunchFilter for KernelNameFilter {
    fn accept(&self, info: &LaunchInfo) -> bool {
        self.matches(&info.kernel_name)
    }
}

/// Hierarchical sampler: accepts launch number 0, P, 2P, … of each kernel
/// independently (per-kernel counters), optionally composed with a name
/// filter.
///
/// ```rust
/// use vex_core::sampling::{HierarchicalSampler, KernelNameFilter};
/// let sampler = HierarchicalSampler::new(20)
///     .with_name_filter(KernelNameFilter::new(["gemm"]));
/// assert_eq!(sampler.kernel_period(), 20);
/// ```
#[derive(Debug)]
pub struct HierarchicalSampler {
    kernel_period: u64,
    counters: Mutex<HashMap<String, u64>>,
    name_filter: Option<KernelNameFilter>,
}

impl HierarchicalSampler {
    /// Creates a sampler instrumenting every `kernel_period`-th launch of
    /// each kernel.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_period` is zero.
    pub fn new(kernel_period: u64) -> Self {
        assert!(kernel_period > 0, "kernel sampling period must be nonzero");
        HierarchicalSampler {
            kernel_period,
            counters: Mutex::new(HashMap::new()),
            name_filter: None,
        }
    }

    /// Restricts sampling to kernels matching `filter`.
    #[must_use]
    pub fn with_name_filter(mut self, filter: KernelNameFilter) -> Self {
        self.name_filter = Some(filter);
        self
    }

    /// The sampling period.
    pub fn kernel_period(&self) -> u64 {
        self.kernel_period
    }
}

impl LaunchFilter for HierarchicalSampler {
    fn accept(&self, info: &LaunchInfo) -> bool {
        if let Some(f) = &self.name_filter {
            if !f.matches(&info.kernel_name) {
                return false;
            }
        }
        let mut counters = self.counters.lock();
        let c = counters.entry(info.kernel_name.clone()).or_insert(0);
        let accept = (*c).is_multiple_of(self.kernel_period);
        *c += 1;
        accept
    }
}

/// Block-level sampling predicate: analyze blocks `0, Q, 2Q, …`.
#[derive(Debug, Clone, Copy)]
pub struct BlockSampler {
    period: u32,
}

impl BlockSampler {
    /// Creates a block sampler with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u32) -> Self {
        assert!(period > 0, "block sampling period must be nonzero");
        BlockSampler { period }
    }

    /// Whether records from `block` are analyzed.
    pub fn keep(&self, block: u32) -> bool {
        block.is_multiple_of(self.period)
    }

    /// The sampling period.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Fraction of blocks analyzed for a grid of `blocks` blocks.
    pub fn coverage(&self, blocks: u32) -> f64 {
        if blocks == 0 {
            return 0.0;
        }
        let kept = blocks.div_ceil(self.period);
        kept as f64 / blocks as f64
    }
}

impl Default for BlockSampler {
    fn default() -> Self {
        BlockSampler { period: 1 }
    }
}

/// Accepts kernels by exact names collected during a discovery pass; used
/// by the recommended workflow (coarse pass first, then fine on the hot
/// kernels).
#[derive(Debug, Default)]
pub struct KernelSet {
    names: HashSet<String>,
}

impl KernelSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kernel name.
    pub fn insert(&mut self, name: impl Into<String>) {
        self.names.insert(name.into());
    }

    /// Number of kernels in the set.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl LaunchFilter for KernelSet {
    fn accept(&self, info: &LaunchInfo) -> bool {
        self.names.contains(&info.kernel_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vex_gpu::callpath::CallPathId;
    use vex_gpu::dim::Dim3;
    use vex_gpu::hooks::LaunchId;
    use vex_gpu::ir::InstrTable;
    use vex_gpu::stream::StreamId;

    fn info(name: &str) -> LaunchInfo {
        LaunchInfo {
            launch: LaunchId(0),
            kernel_name: name.to_owned(),
            grid: Dim3::linear(1),
            block: Dim3::linear(1),
            shared_bytes: 0,
            context: CallPathId::ROOT,
            stream: StreamId::DEFAULT,
            instr_table: Arc::new(InstrTable::new()),
        }
    }

    #[test]
    fn name_filter_substring_match() {
        let f = KernelNameFilter::new(["gemm", "conv"]);
        assert!(f.accept(&info("volta_sgemm_128x64")));
        assert!(f.accept(&info("conv2d_forward")));
        assert!(!f.accept(&info("fill_kernel")));
    }

    #[test]
    fn sampler_period() {
        let s = HierarchicalSampler::new(3);
        let pattern: Vec<bool> = (0..9).map(|_| s.accept(&info("k"))).collect();
        assert_eq!(pattern, vec![true, false, false, true, false, false, true, false, false]);
    }

    #[test]
    fn sampler_counts_per_kernel() {
        let s = HierarchicalSampler::new(2);
        assert!(s.accept(&info("a"))); // a#0
        assert!(s.accept(&info("b"))); // b#0 — independent counter
        assert!(!s.accept(&info("a"))); // a#1
        assert!(!s.accept(&info("b"))); // b#1
        assert!(s.accept(&info("a"))); // a#2
    }

    #[test]
    fn sampler_with_name_filter() {
        let s = HierarchicalSampler::new(1).with_name_filter(KernelNameFilter::new(["hot"]));
        assert!(s.accept(&info("hot_kernel")));
        assert!(!s.accept(&info("cold_kernel")));
    }

    #[test]
    fn block_sampler() {
        let b = BlockSampler::new(20);
        assert!(b.keep(0));
        assert!(!b.keep(1));
        assert!(b.keep(40));
        assert!((b.coverage(100) - 0.05).abs() < 1e-9);
        assert_eq!(BlockSampler::default().period(), 1);
        assert!(BlockSampler::default().keep(7));
    }

    #[test]
    fn kernel_set() {
        let mut s = KernelSet::new();
        assert!(s.is_empty());
        s.insert("histo_kernel");
        assert_eq!(s.len(), 1);
        assert!(s.accept(&info("histo_kernel")));
        assert!(!s.accept(&info("histo")));
    }
}
