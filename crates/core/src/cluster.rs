//! Multi-GPU profiling sessions.
//!
//! The paper deploys ValueExpert on "commodity Linux clusters … with
//! multiple GPUs per node" (§1.3): one profiler instance attaches per
//! GPU and the per-device profiles are aggregated postmortem. This
//! module provides that aggregation for simulated multi-GPU runs: a
//! [`ClusterSession`] owns one [`Runtime`] + [`ValueExpert`] pair per
//! device, the application shards its work across them, and
//! [`ClusterSession::report`] merges the results into a
//! [`ClusterReport`].

use crate::profiler::{ProfilerBuilder, ValueExpert};
use crate::report::Profile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vex_gpu::runtime::Runtime;
use vex_gpu::timing::DeviceSpec;

/// One device's slot in a cluster session.
#[derive(Debug)]
pub struct GpuSlot {
    /// The device's runtime; the application runs its shard against it.
    pub runtime: Runtime,
    vex: ValueExpert,
    index: usize,
}

impl GpuSlot {
    /// The device index within the session.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// A profiling session spanning several (simulated) GPUs.
///
/// ```rust
/// use vex_core::cluster::ClusterSession;
/// use vex_core::prelude::*;
/// use vex_gpu::timing::DeviceSpec;
///
/// # fn main() -> Result<(), vex_gpu::error::GpuError> {
/// let mut cluster = ClusterSession::new(
///     &DeviceSpec::a100(),
///     2,
///     &ValueExpert::builder().coarse(true),
/// );
/// cluster.for_each_gpu(|_gpu, rt| {
///     let p = rt.malloc(256, "shard")?;
///     rt.memset(p, 0, 256)?;
///     rt.memset(p, 0, 256)?; // redundant on every device
///     Ok::<_, vex_gpu::error::GpuError>(())
/// })?;
/// let report = cluster.report();
/// assert_eq!(report.total_redundancies(), 2);
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct ClusterSession {
    slots: Vec<GpuSlot>,
}

impl ClusterSession {
    /// Creates `gpus` runtimes of the given spec, each with a profiler
    /// configured by `builder` attached.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn new(spec: &DeviceSpec, gpus: usize, builder: &ProfilerBuilder) -> Self {
        assert!(gpus > 0, "a cluster needs at least one GPU");
        let slots = (0..gpus)
            .map(|index| {
                let mut runtime = Runtime::new(spec.clone());
                let vex = builder.clone().attach(&mut runtime);
                GpuSlot { runtime, vex, index }
            })
            .collect();
        ClusterSession { slots }
    }

    /// Number of devices.
    pub fn gpus(&self) -> usize {
        self.slots.len()
    }

    /// Mutable access to one device slot.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn slot(&mut self, index: usize) -> &mut GpuSlot {
        &mut self.slots[index]
    }

    /// Runs `shard` once per device (the data-parallel idiom: the closure
    /// receives the device index and its runtime).
    ///
    /// # Errors
    ///
    /// Propagates the first shard error.
    pub fn for_each_gpu<E>(
        &mut self,
        mut shard: impl FnMut(usize, &mut Runtime) -> Result<(), E>,
    ) -> Result<(), E> {
        for slot in &mut self.slots {
            shard(slot.index, &mut slot.runtime)?;
        }
        Ok(())
    }

    /// Collects per-device profiles and the aggregate view.
    pub fn report(&self) -> ClusterReport {
        let per_gpu: Vec<Profile> =
            self.slots.iter().map(|s| s.vex.report(&s.runtime)).collect();
        ClusterReport { per_gpu }
    }
}

/// Aggregated multi-GPU profiling results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// One profile per device, in device order.
    pub per_gpu: Vec<Profile>,
}

impl ClusterReport {
    /// Patterns detected on *any* device.
    pub fn detected_patterns(&self) -> BTreeSet<crate::patterns::ValuePattern> {
        self.per_gpu.iter().flat_map(|p| p.detected_patterns()).collect()
    }

    /// Total redundant bytes across devices.
    pub fn total_redundant_bytes(&self) -> u64 {
        self.per_gpu.iter().map(|p| p.flow_graph.total_redundant_bytes()).sum()
    }

    /// Total redundancy findings across devices.
    pub fn total_redundancies(&self) -> usize {
        self.per_gpu.iter().map(|p| p.redundancies.len()).sum()
    }

    /// The worst per-device overhead factor (the pass gating wall-clock in
    /// a synchronized data-parallel run).
    pub fn worst_overhead_factor(&self) -> f64 {
        self.per_gpu.iter().map(|p| p.overhead.factor()).fold(1.0, f64::max)
    }

    /// Devices whose findings differ from device 0 — load-imbalance or
    /// shard-dependent behaviour the per-GPU view exposes.
    pub fn divergent_devices(&self) -> Vec<usize> {
        let Some(first) = self.per_gpu.first() else {
            return Vec::new();
        };
        let reference = first.detected_patterns();
        self.per_gpu
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, p)| p.detected_patterns() != reference)
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders a cluster-level summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "=== cluster profile: {} GPUs ===", self.per_gpu.len());
        for (i, p) in self.per_gpu.iter().enumerate() {
            let _ = writeln!(
                s,
                "  gpu{}: {} patterns, {} redundancy findings, overhead {:.2}x",
                i,
                p.detected_patterns().len(),
                p.redundancies.len(),
                p.overhead.factor()
            );
        }
        let _ = writeln!(
            s,
            "aggregate: {:?}; {} redundant bytes; worst overhead {:.2}x",
            self.detected_patterns(),
            self.total_redundant_bytes(),
            self.worst_overhead_factor()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ValuePattern;
    use vex_gpu::error::GpuError;

    fn double_init_shard(
        shift: u64,
    ) -> impl FnMut(usize, &mut Runtime) -> Result<(), GpuError> {
        move |gpu, rt| {
            let p = rt.malloc(1024 + shift * gpu as u64, "shard")?;
            rt.memset(p, 0, 1024)?;
            rt.memset(p, 0, 1024)?; // redundant on every device
            Ok(())
        }
    }

    #[test]
    fn aggregates_across_gpus() {
        let mut cluster = ClusterSession::new(
            &DeviceSpec::test_small(),
            4,
            &ValueExpert::builder().coarse(true).fine(false),
        );
        cluster.for_each_gpu(double_init_shard(0)).unwrap();
        let report = cluster.report();
        assert_eq!(report.per_gpu.len(), 4);
        assert_eq!(report.total_redundancies(), 4);
        assert!(report.detected_patterns().contains(&ValuePattern::RedundantValues));
        assert_eq!(report.total_redundant_bytes(), 4 * 1024);
        assert!(report.divergent_devices().is_empty());
        assert!(report.worst_overhead_factor() >= 1.0);
        let text = report.render_text();
        assert!(text.contains("4 GPUs"), "{text}");
    }

    #[test]
    fn divergent_shards_are_visible() {
        let mut cluster = ClusterSession::new(
            &DeviceSpec::test_small(),
            3,
            &ValueExpert::builder().coarse(true).fine(false),
        );
        cluster
            .for_each_gpu(|gpu, rt| -> Result<(), GpuError> {
                let p = rt.malloc(1024, "shard")?;
                rt.memset(p, 0, 1024)?;
                if gpu == 2 {
                    // Only device 2 double-initializes.
                    rt.memset(p, 0, 1024)?;
                }
                Ok(())
            })
            .unwrap();
        let report = cluster.report();
        assert_eq!(report.total_redundancies(), 1);
        assert_eq!(report.divergent_devices(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = ClusterSession::new(&DeviceSpec::test_small(), 0, &ValueExpert::builder());
    }
}
