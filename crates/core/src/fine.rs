//! The fine-grained analyzer (§5.1).
//!
//! Consumes the per-access record batches produced by the
//! [`vex_trace::Collector`], attributes each record to a data object,
//! decodes its raw bits using the access types recovered by
//! [`crate::access_type`], and accumulates [`crate::patterns::ValueStats`]
//! per `(object, direction)`. At kernel end the recognizers of
//! [`crate::patterns`] run and produce [`FineFinding`]s.

use crate::access_type::{infer_access_types, AccessTypeMap};
use crate::patterns::{GroupedAccess, PatternConfig, PatternHit, ValueStats};
use crate::registry::{ObjectKey, ObjectRegistry};
use crate::sampling::BlockSampler;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use vex_gpu::callpath::CallPathId;
use vex_gpu::hooks::{LaunchId, LaunchInfo};
use vex_gpu::ir::MemSpace;
use vex_trace::codec::{ColumnSet, DecodedBatch, FLAG_SHARED, FLAG_STORE};
use vex_trace::AccessRecord;

/// Load or store side of an object's accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Values read from the object.
    Load,
    /// Values written to the object.
    Store,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Direction::Load => "load",
            Direction::Store => "store",
        })
    }
}

/// Fine-grained pattern findings for one object at one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineFinding {
    /// Kernel name.
    pub kernel: String,
    /// Launch calling context.
    pub context: CallPathId,
    /// Launch id the finding came from.
    pub launch: LaunchId,
    /// The data object.
    pub object: String,
    /// Access direction.
    pub direction: Direction,
    /// Accesses analyzed.
    pub accesses: u64,
    /// Distinct values observed (capped).
    pub distinct_values: u64,
    /// Source lines of the contributing instructions, when the "binary"
    /// carries line mapping (§4's offline analyzer output).
    pub lines: Vec<u32>,
    /// Recognized patterns with evidence.
    pub hits: Vec<PatternHit>,
}

/// Analysis-side counters (the overhead model charges per analyzed record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FineTraffic {
    /// Records decoded and accumulated.
    pub records_analyzed: u64,
    /// Records dropped by block sampling.
    pub records_skipped: u64,
    /// Kernel launches analyzed.
    pub launches: u64,
}

/// The fine-grained analyzer state. Driven by the profiler front-end.
#[derive(Debug)]
pub struct FineState {
    config: PatternConfig,
    block_sampler: BlockSampler,
    type_maps: HashMap<String, AccessTypeMap>,
    current: BTreeMap<(ObjectKey, Direction), ValueStats>,
    findings: Vec<FineFinding>,
    /// Object key of each entry in `findings`, index-aligned. Keys are not
    /// part of the reported finding (which names objects by label), but the
    /// sharded pipeline needs them to reassemble the serial finding order
    /// deterministically.
    finding_keys: Vec<ObjectKey>,
    traffic: FineTraffic,
}

impl FineState {
    /// Creates an empty fine analyzer.
    pub fn new(config: PatternConfig, block_sampler: BlockSampler) -> Self {
        FineState {
            config,
            block_sampler,
            type_maps: HashMap::new(),
            current: BTreeMap::new(),
            findings: Vec::new(),
            finding_keys: Vec::new(),
            traffic: FineTraffic::default(),
        }
    }

    /// Findings accumulated so far.
    pub fn findings(&self) -> &[FineFinding] {
        &self.findings
    }

    /// Analysis traffic counters.
    pub fn traffic(&self) -> FineTraffic {
        self.traffic
    }

    /// Consumes the analyzer, returning findings and traffic.
    pub fn into_parts(self) -> (Vec<FineFinding>, FineTraffic) {
        (self.findings, self.traffic)
    }

    /// Ingests one record batch of an instrumented launch.
    pub fn on_batch(
        &mut self,
        info: &LaunchInfo,
        records: &[AccessRecord],
        registry: &ObjectRegistry,
    ) {
        let types = self
            .type_maps
            .entry(info.kernel_name.clone())
            .or_insert_with(|| infer_access_types(&info.instr_table))
            .clone();
        // Group the batch per (object, direction) in record order, then
        // feed each group through the batched stats kernel. Every engine
        // (sync, pipeline shard, replay) sees the same groups per batch,
        // so accumulated stats stay bit-identical across them.
        let mut groups: BTreeMap<(ObjectKey, Direction), Vec<GroupedAccess>> = BTreeMap::new();
        for rec in records {
            if !self.block_sampler.keep(rec.block) {
                self.traffic.records_skipped += 1;
                continue;
            }
            let Some(key) = registry.key_for(rec.space, rec.addr) else {
                continue; // not attributable to a live object
            };
            self.traffic.records_analyzed += 1;
            let value = types.decode(rec.pc, rec.bits, rec.size);
            let dir = if rec.is_store { Direction::Store } else { Direction::Load };
            groups.entry((key, dir)).or_default().push((rec.addr, value, rec.pc));
        }
        for ((key, dir), accesses) in groups {
            self.current
                .entry((key, dir))
                .or_insert_with(|| ValueStats::new(self.config))
                .record_batch(&accesses);
        }
    }

    /// Columns of the record stream the fine pass reads (thread ids are
    /// never consulted).
    pub const COLUMNS: ColumnSet = ColumnSet::PC
        .union(ColumnSet::ADDR)
        .union(ColumnSet::BITS)
        .union(ColumnSet::SIZE)
        .union(ColumnSet::FLAGS)
        .union(ColumnSet::BLOCK);

    /// Ingests one decoded batch column-at-a-time through its
    /// structure-of-arrays surface, skipping row assembly entirely.
    /// Groups and accumulated stats are identical to
    /// [`FineState::on_batch`] over the row form of the same batch.
    ///
    /// # Panics
    ///
    /// If `batch` was not decoded with (at least) [`FineState::COLUMNS`].
    pub fn on_decoded_batch(
        &mut self,
        info: &LaunchInfo,
        batch: &DecodedBatch,
        registry: &ObjectRegistry,
    ) {
        assert!(
            batch.columns.contains(Self::COLUMNS),
            "fine pass needs {:?}, batch decoded {:?}",
            Self::COLUMNS,
            batch.columns
        );
        let types = self
            .type_maps
            .entry(info.kernel_name.clone())
            .or_insert_with(|| infer_access_types(&info.instr_table))
            .clone();
        let count = batch.count;
        // Every demanded column proved it holds exactly `count` values,
        // so the column walk below runs without bounds checks.
        let pcs = &batch.pcs[..count];
        let addrs = &batch.addrs[..count];
        let bits = &batch.bits[..count];
        let sizes = &batch.sizes[..count];
        let flags = &batch.flags[..count];
        let blocks = &batch.blocks[..count];
        let mut groups: BTreeMap<(ObjectKey, Direction), Vec<GroupedAccess>> = BTreeMap::new();
        for i in 0..count {
            if !self.block_sampler.keep(blocks[i]) {
                self.traffic.records_skipped += 1;
                continue;
            }
            let f = flags[i];
            let space = if f & FLAG_SHARED != 0 { MemSpace::Shared } else { MemSpace::Global };
            let Some(key) = registry.key_for(space, addrs[i]) else {
                continue; // not attributable to a live object
            };
            self.traffic.records_analyzed += 1;
            let value = types.decode(pcs[i], bits[i], sizes[i]);
            let dir = if f & FLAG_STORE != 0 { Direction::Store } else { Direction::Load };
            groups.entry((key, dir)).or_default().push((addrs[i], value, pcs[i]));
        }
        for ((key, dir), accesses) in groups {
            self.current
                .entry((key, dir))
                .or_insert_with(|| ValueStats::new(self.config))
                .record_batch(&accesses);
        }
    }

    /// Finishes a launch: runs the recognizers and stores findings,
    /// resolving contributing PCs to source lines through the kernel's
    /// instruction table.
    pub fn on_launch_complete(&mut self, info: &LaunchInfo, registry: &ObjectRegistry) {
        self.traffic.launches += 1;
        let accumulated = std::mem::take(&mut self.current);
        for ((key, dir), stats) in accumulated {
            let hits = stats.patterns();
            if hits.is_empty() {
                continue;
            }
            let mut lines: Vec<u32> = stats
                .pcs
                .iter()
                .filter_map(|pc| info.instr_table.get(*pc).and_then(|i| i.line))
                .collect();
            lines.sort_unstable();
            lines.dedup();
            self.finding_keys.push(key);
            self.findings.push(FineFinding {
                kernel: info.kernel_name.clone(),
                context: info.context,
                launch: info.launch,
                object: registry.label(key),
                direction: dir,
                accesses: stats.accesses,
                distinct_values: stats.distinct_values() as u64,
                lines,
                hits,
            });
        }
    }

    /// Findings merged by `(kernel, context, object, direction)`, summing
    /// access counts and keeping each pattern's strongest hit — the
    /// per-GPU-API view the paper reports.
    pub fn merged_findings(&self) -> Vec<FineFinding> {
        merge_findings(&self.findings)
    }

    /// Findings paired with the object key they were accumulated under,
    /// for the sharded pipeline's deterministic reduction.
    pub(crate) fn tagged_findings(&self) -> Vec<(ObjectKey, FineFinding)> {
        self.finding_keys.iter().copied().zip(self.findings.iter().cloned()).collect()
    }
}

/// Merges raw findings by `(kernel, context, object, direction)`, summing
/// access counts and keeping each pattern's strongest hit. Ties between
/// equal-strength hits keep the earlier finding's hit, so callers that
/// need byte-identical output must present findings in a deterministic
/// order ([`FineState`] produces them launch by launch, objects in key
/// order within each launch).
pub fn merge_findings(findings: &[FineFinding]) -> Vec<FineFinding> {
    let mut merged: BTreeMap<(String, CallPathId, String, Direction), FineFinding> =
        BTreeMap::new();
    for f in findings {
        let key = (f.kernel.clone(), f.context, f.object.clone(), f.direction);
        match merged.get_mut(&key) {
            None => {
                merged.insert(key, f.clone());
            }
            Some(m) => {
                m.accesses += f.accesses;
                m.distinct_values = m.distinct_values.max(f.distinct_values);
                for line in &f.lines {
                    if !m.lines.contains(line) {
                        m.lines.push(*line);
                    }
                }
                m.lines.sort_unstable();
                for hit in &f.hits {
                    match m.hits.iter_mut().find(|h| h.pattern == hit.pattern) {
                        Some(existing) => {
                            if hit.strength > existing.strength {
                                *existing = hit.clone();
                            }
                        }
                        None => m.hits.push(hit.clone()),
                    }
                }
            }
        }
    }
    merged.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ValuePattern;
    use std::sync::Arc;
    use vex_gpu::alloc::{AllocId, AllocationInfo};
    use vex_gpu::dim::Dim3;
    use vex_gpu::ir::{InstrTable, InstrTableBuilder, MemSpace, Pc, ScalarType};
    use vex_gpu::stream::StreamId;

    fn launch_info(name: &str, table: InstrTable) -> LaunchInfo {
        LaunchInfo {
            launch: LaunchId(0),
            kernel_name: name.to_owned(),
            grid: Dim3::linear(1),
            block: Dim3::linear(32),
            shared_bytes: 0,
            context: CallPathId(1),
            stream: StreamId::DEFAULT,
            instr_table: Arc::new(table),
        }
    }

    fn registry_with(addr: u64, size: u64, label: &str) -> ObjectRegistry {
        let mut r = ObjectRegistry::new();
        r.on_alloc(&AllocationInfo {
            id: AllocId(1),
            addr,
            size,
            label: label.to_owned(),
            context: CallPathId::ROOT,
            live: true,
        });
        r
    }

    fn store_rec(pc: u32, addr: u64, bits: u64, size: u8, block: u32) -> AccessRecord {
        AccessRecord {
            pc: Pc(pc),
            addr,
            bits,
            size,
            is_store: true,
            space: MemSpace::Global,
            block,
            thread: 0,
            is_atomic: false,
        }
    }

    #[test]
    fn single_zero_finding_end_to_end() {
        let table =
            InstrTableBuilder::new().store(Pc(0), ScalarType::F32, MemSpace::Global).build();
        let info = launch_info("fill", table);
        let reg = registry_with(256, 4096, "out");
        let mut fine = FineState::new(PatternConfig::default(), BlockSampler::default());
        let records: Vec<AccessRecord> =
            (0..64).map(|i| store_rec(0, 256 + i * 4, 0, 4, 0)).collect();
        fine.on_batch(&info, &records, &reg);
        fine.on_launch_complete(&info, &reg);
        assert_eq!(fine.findings().len(), 1);
        let f = &fine.findings()[0];
        assert_eq!(f.object, "out");
        assert_eq!(f.direction, Direction::Store);
        assert_eq!(f.accesses, 64);
        assert!(f.hits.iter().any(|h| h.pattern == ValuePattern::SingleZero));
    }

    #[test]
    fn block_sampling_drops_records() {
        let table =
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build();
        let info = launch_info("k", table);
        let reg = registry_with(256, 4096, "o");
        let mut fine = FineState::new(PatternConfig::default(), BlockSampler::new(2));
        let records: Vec<AccessRecord> =
            (0..10u32).map(|b| store_rec(0, 256 + b as u64 * 4, 1, 4, b)).collect();
        fine.on_batch(&info, &records, &reg);
        let t = fine.traffic();
        assert_eq!(t.records_analyzed, 5);
        assert_eq!(t.records_skipped, 5);
    }

    #[test]
    fn type_inference_decodes_untyped_store() {
        // Untyped 4-byte store whose operand comes from FADD.F32 — fine
        // analysis must see float values, not garbage integers.
        use vex_gpu::ir::{FloatWidth, Instruction, Opcode, Reg};
        let table = InstrTableBuilder::new()
            .instr(Instruction {
                pc: Pc(0),
                op: Opcode::FAdd(FloatWidth::F32),
                dst: Some(Reg(0)),
                srcs: vec![],
                access: None,
                line: None,
            })
            .instr(Instruction {
                pc: Pc(1),
                op: Opcode::St,
                dst: None,
                srcs: vec![Reg(0)],
                access: Some(vex_gpu::ir::AccessDecl {
                    width_bytes: 4,
                    space: MemSpace::Global,
                    is_store: true,
                    ty: None,
                    vector: 1,
                }),
                line: None,
            })
            .build();
        let info = launch_info("untyped", table);
        let reg = registry_with(256, 4096, "o");
        let mut fine = FineState::new(PatternConfig::default(), BlockSampler::default());
        let bits = (2.5f32).to_bits() as u64;
        let records: Vec<AccessRecord> =
            (0..32).map(|i| store_rec(1, 256 + i * 4, bits, 4, 0)).collect();
        fine.on_batch(&info, &records, &reg);
        fine.on_launch_complete(&info, &reg);
        let f = &fine.findings()[0];
        let hit = f.hits.iter().find(|h| h.pattern == ValuePattern::SingleValue).unwrap();
        assert!(hit.detail.contains("2.5"), "decoded as float: {}", hit.detail);
    }

    #[test]
    fn decoded_batch_path_matches_row_path() {
        // A mixed batch — loads and stores, shared and global space,
        // blocks that sampling drops — must accumulate the exact same
        // findings and traffic through the column-at-a-time surface as
        // through the row iterator.
        let build_table = || {
            InstrTableBuilder::new()
                .store(Pc(0), ScalarType::F32, MemSpace::Global)
                .load(Pc(1), ScalarType::U32, MemSpace::Global)
                .store(Pc(2), ScalarType::U32, MemSpace::Shared)
                .build()
        };
        let reg = registry_with(256, 4096, "o");
        let records: Vec<AccessRecord> = (0..96u64)
            .map(|i| AccessRecord {
                pc: Pc((i % 3) as u32),
                addr: 256 + (i % 24) * 8,
                bits: if i.is_multiple_of(4) { 0 } else { (1.5f32).to_bits() as u64 },
                size: 4,
                is_store: !i.is_multiple_of(3),
                space: if i % 3 == 2 { MemSpace::Shared } else { MemSpace::Global },
                block: (i % 5) as u32,
                thread: (i % 32) as u32,
                is_atomic: false,
            })
            .collect();

        let mut rows = FineState::new(PatternConfig::default(), BlockSampler::new(2));
        let info = launch_info("k", build_table());
        rows.on_batch(&info, &records, &reg);
        rows.on_launch_complete(&info, &reg);

        let mut cols = FineState::new(PatternConfig::default(), BlockSampler::new(2));
        let info = launch_info("k", build_table());
        let batch = DecodedBatch::from_records(&records);
        assert!(batch.columns.contains(FineState::COLUMNS));
        cols.on_decoded_batch(&info, &batch, &reg);
        cols.on_launch_complete(&info, &reg);

        assert_eq!(rows.traffic(), cols.traffic());
        assert_eq!(format!("{:?}", rows.findings()), format!("{:?}", cols.findings()));
        assert!(!rows.findings().is_empty(), "fixture produces findings");
    }

    #[test]
    #[should_panic(expected = "fine pass needs")]
    fn decoded_batch_rejects_missing_columns() {
        let reg = registry_with(256, 4096, "o");
        let info = launch_info(
            "k",
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build(),
        );
        let mut fine = FineState::new(PatternConfig::default(), BlockSampler::default());
        let mut batch = DecodedBatch::from_records(&[store_rec(0, 256, 1, 4, 0)]);
        batch.columns = ColumnSet::ADDR; // pretend only addresses were decoded
        fine.on_decoded_batch(&info, &batch, &reg);
    }

    #[test]
    fn merged_findings_aggregate_launches() {
        let table =
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build();
        let reg = registry_with(256, 4096, "o");
        let mut fine = FineState::new(PatternConfig::default(), BlockSampler::default());
        for launch in 0..3u64 {
            let mut info = launch_info(
                "k",
                InstrTableBuilder::new()
                    .store(Pc(0), ScalarType::U32, MemSpace::Global)
                    .build(),
            );
            info.launch = LaunchId(launch);
            let records: Vec<AccessRecord> =
                (0..8).map(|i| store_rec(0, 256 + i * 4, 5, 4, 0)).collect();
            fine.on_batch(&info, &records, &reg);
            fine.on_launch_complete(&info, &reg);
        }
        let _ = table;
        assert_eq!(fine.findings().len(), 3);
        let merged = fine.merged_findings();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].accesses, 24);
    }

    #[test]
    fn unattributable_records_ignored() {
        let table =
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build();
        let info = launch_info("k", table);
        let reg = ObjectRegistry::new(); // nothing allocated
        let mut fine = FineState::new(PatternConfig::default(), BlockSampler::default());
        fine.on_batch(&info, &[store_rec(0, 999, 1, 4, 0)], &reg);
        fine.on_launch_complete(&info, &reg);
        assert!(fine.findings().is_empty());
        assert_eq!(fine.traffic().records_analyzed, 0);
    }

    #[test]
    fn shared_memory_is_one_object() {
        let table =
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Shared).build();
        let info = launch_info("k", table);
        let reg = ObjectRegistry::new();
        let mut fine = FineState::new(PatternConfig::default(), BlockSampler::default());
        let mut rec = store_rec(0, 0, 7, 4, 0);
        rec.space = MemSpace::Shared;
        let records = vec![rec; 40];
        fine.on_batch(&info, &records, &reg);
        fine.on_launch_complete(&info, &reg);
        assert_eq!(fine.findings().len(), 1);
        assert_eq!(fine.findings()[0].object, "shared");
    }
}
