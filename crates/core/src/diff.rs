//! Differential profiling — structural comparison of two [`Profile`]s.
//!
//! A production profiling fleet rarely asks "what is slow?" once; it asks
//! "what *changed* since the last build?". This module compares two
//! profiles structurally rather than textually: data objects are matched
//! across traces by allocation label + allocation callpath, kernels by
//! name, and each matched pair is reduced to a set of typed deltas —
//! patterns appearing or disappearing, redundancy/dead-store byte swings,
//! duplicate-byte swings, per-(kernel, direction) access-count swings,
//! and adaptive copy-strategy recommendation changes — ranked by
//! estimated byte cost. Unmatched (new/removed) objects and kernels get
//! their own sections.
//!
//! The comparison is *oriented*: `diff(before, after)` classifies a
//! disappearing inefficiency as an improvement and an appearing one as a
//! regression, so the same engine drives both the interactive `vex diff`
//! report and the CI gate (`--ci`: exit 1 when any regression survives
//! the thresholds).
//!
//! Like every other rendered surface, the diff has exactly one text and
//! one JSON entry point ([`ProfileDiff::render_text_document`],
//! [`ProfileDiff::render_json_document`]); the CLI and `vex serve` both
//! call them, so their outputs are byte-identical by construction.

use crate::copy_strategy::ObjectCopyPlan;
use crate::fine::Direction;
use crate::flowgraph::VertexKind;
use crate::patterns::ValuePattern;
use crate::report::{human_bytes, Profile};
use serde::{Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Metric family of one delta. Categories are the unit of CI gating:
/// each can carry its own significance threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaCategory {
    /// A fine-grained value pattern appeared or disappeared on an
    /// object.
    Pattern,
    /// Redundant-write bytes of an object changed.
    Redundancy,
    /// Dead-store bytes (writes that left *every* byte unchanged)
    /// changed.
    DeadStore,
    /// Duplicated bytes of an object changed.
    Duplicate,
    /// Analyzed access count of one (kernel, object, direction) changed.
    Access,
    /// The recommended adaptive copy strategy of an object changed.
    CopyStrategy,
    /// A kernel's invocation count changed.
    Invocations,
    /// A trace-global traffic counter changed.
    Traffic,
    /// An object exists in only one of the two profiles.
    ObjectSet,
    /// A kernel exists in only one of the two profiles.
    KernelSet,
}

impl DeltaCategory {
    /// Every category, in rendering order.
    pub const ALL: [DeltaCategory; 10] = [
        DeltaCategory::Pattern,
        DeltaCategory::Redundancy,
        DeltaCategory::DeadStore,
        DeltaCategory::Duplicate,
        DeltaCategory::Access,
        DeltaCategory::CopyStrategy,
        DeltaCategory::Invocations,
        DeltaCategory::Traffic,
        DeltaCategory::ObjectSet,
        DeltaCategory::KernelSet,
    ];

    /// Stable kebab-case name (JSON value and CLI `--ci-threshold` key).
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaCategory::Pattern => "pattern",
            DeltaCategory::Redundancy => "redundancy",
            DeltaCategory::DeadStore => "dead-store",
            DeltaCategory::Duplicate => "duplicate",
            DeltaCategory::Access => "access",
            DeltaCategory::CopyStrategy => "copy-strategy",
            DeltaCategory::Invocations => "invocations",
            DeltaCategory::Traffic => "traffic",
            DeltaCategory::ObjectSet => "object-set",
            DeltaCategory::KernelSet => "kernel-set",
        }
    }

    /// Parses a kebab-case category name.
    pub fn parse(s: &str) -> Option<DeltaCategory> {
        DeltaCategory::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl std::fmt::Display for DeltaCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for DeltaCategory {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

/// Whether a delta moves the profile toward or away from the paper's
/// recommendations — the CI gate trips on regressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaDirection {
    /// An inefficiency shrank or vanished.
    Improvement,
    /// An inefficiency grew or appeared.
    Regression,
    /// A structural change with no inherent sign.
    Info,
}

impl DeltaDirection {
    /// Stable lowercase name (JSON value and text tag).
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaDirection::Improvement => "improvement",
            DeltaDirection::Regression => "regression",
            DeltaDirection::Info => "info",
        }
    }
}

impl std::fmt::Display for DeltaDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for DeltaDirection {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

/// One significant change, attributed to an object, kernel, or the
/// whole trace.
#[derive(Debug, Clone, Serialize)]
pub struct Delta {
    /// Metric family.
    pub category: DeltaCategory,
    /// Improvement / regression / informational.
    pub direction: DeltaDirection,
    /// Human-readable description of the change.
    pub detail: String,
    /// Metric value in the first (before) profile.
    pub before: u64,
    /// Metric value in the second (after) profile.
    pub after: u64,
    /// Estimated bytes at stake — the ranking key.
    pub cost: u64,
}

/// All significant deltas of one object matched across both profiles.
#[derive(Debug, Clone, Serialize)]
pub struct ObjectDelta {
    /// Allocation label.
    pub label: String,
    /// Rendered allocation callpath (the match key's second half).
    pub context: String,
    /// Total estimated cost (sum of delta costs) — the ranking key.
    pub cost: u64,
    /// Significant deltas, ranked by cost.
    pub deltas: Vec<Delta>,
}

/// All significant deltas of one kernel matched across both profiles.
#[derive(Debug, Clone, Serialize)]
pub struct KernelDelta {
    /// Kernel name (the match key).
    pub name: String,
    /// Total estimated cost — the ranking key.
    pub cost: u64,
    /// Significant deltas, ranked by cost.
    pub deltas: Vec<Delta>,
}

/// An object present in only one of the two profiles.
#[derive(Debug, Clone, Serialize)]
pub struct UnmatchedObject {
    /// Allocation label.
    pub label: String,
    /// Rendered allocation callpath.
    pub context: String,
    /// Regression when a *new* object carries findings, improvement when
    /// a *removed* object carried findings, info otherwise.
    pub direction: DeltaDirection,
    /// Fine-grained patterns the object's accesses exhibited.
    pub patterns: Vec<String>,
    /// Redundant-write bytes attributed to the object.
    pub redundant_bytes: u64,
    /// Analyzed accesses touching the object.
    pub accesses: u64,
    /// Estimated bytes at stake.
    pub cost: u64,
}

/// A kernel present in only one of the two profiles.
#[derive(Debug, Clone, Serialize)]
pub struct UnmatchedKernel {
    /// Kernel name.
    pub name: String,
    /// Launch count in the profile that has it.
    pub invocations: u64,
    /// Bytes accessed in the profile that has it.
    pub bytes: u64,
}

/// Roll-up counts over every section.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DiffSummary {
    /// Deltas classified as improvements.
    pub improvements: u64,
    /// Deltas classified as regressions — the CI gate trips when > 0.
    pub regressions: u64,
    /// Informational deltas.
    pub infos: u64,
    /// Categories with at least one regression, sorted.
    pub regression_categories: Vec<String>,
}

/// The structural difference between two profiles — `vex diff`'s data
/// model and the JSON schema of `GET /traces/{a}/diff/{b}?format=json`.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileDiff {
    /// Global significance threshold (relative change) applied where no
    /// per-category override was given.
    pub threshold: f64,
    /// Roll-up counts.
    pub summary: DiffSummary,
    /// Matched objects with significant deltas, ranked by cost.
    pub objects: Vec<ObjectDelta>,
    /// Matched kernels with significant deltas, ranked by cost.
    pub kernels: Vec<KernelDelta>,
    /// Objects only in the second profile.
    pub new_objects: Vec<UnmatchedObject>,
    /// Objects only in the first profile.
    pub removed_objects: Vec<UnmatchedObject>,
    /// Kernels only in the second profile.
    pub new_kernels: Vec<UnmatchedKernel>,
    /// Kernels only in the first profile.
    pub removed_kernels: Vec<UnmatchedKernel>,
    /// Trace-global traffic deltas (informational).
    pub traffic: Vec<Delta>,
}

/// Tuning of [`diff_profiles`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative-change significance threshold in `[0, 1]`: a metric
    /// delta below it is noise and dropped. Presence changes (patterns,
    /// strategy recommendations, object/kernel sets) ignore it.
    pub threshold: f64,
    /// Per-category overrides of `threshold` (CI gating knobs).
    pub category_thresholds: BTreeMap<DeltaCategory, f64>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { threshold: 0.10, category_thresholds: BTreeMap::new() }
    }
}

impl DiffOptions {
    fn threshold_for(&self, category: DeltaCategory) -> f64 {
        self.category_thresholds.get(&category).copied().unwrap_or(self.threshold)
    }
}

/// One profile reduced to diffable per-object / per-kernel views.
struct SideView {
    /// (label, rendered allocation context) → object view.
    objects: BTreeMap<(String, String), ObjectView>,
    /// kernel name → view.
    kernels: BTreeMap<String, KernelView>,
    /// Trace-global counters, in fixed order.
    traffic: Vec<(&'static str, u64)>,
}

#[derive(Default)]
struct ObjectView {
    /// (kernel, direction, pattern) → analyzed accesses of the finding.
    patterns: BTreeMap<(String, Direction, ValuePattern), u64>,
    /// (kernel, direction) → analyzed accesses.
    accesses: BTreeMap<(String, Direction), u64>,
    /// Redundant (unchanged) write bytes, summed over findings.
    redundant: u64,
    /// Bytes of writes that left every byte unchanged.
    dead_store: u64,
    /// Duplicated bytes, summed over duplicate findings.
    duplicate: u64,
    /// Copy-strategy tally, when the coarse pass ran.
    copy: Option<ObjectCopyPlan>,
}

struct KernelView {
    invocations: u64,
    bytes: u64,
}

fn side_view(p: &Profile) -> SideView {
    // Object inventory and match keys come from Alloc vertices: label +
    // rendered allocation callpath. Labels are unique per application in
    // practice; a duplicated label under a different callpath is a
    // distinct object.
    let mut alloc_context: BTreeMap<String, String> = BTreeMap::new();
    let mut kernels: BTreeMap<String, KernelView> = BTreeMap::new();
    for v in p.flow_graph.vertices() {
        match v.kind {
            VertexKind::Alloc => {
                let ctx = p.contexts.get(&v.context).cloned().unwrap_or_default();
                alloc_context.entry(v.name.clone()).or_insert(ctx);
            }
            VertexKind::Kernel => {
                let k = kernels
                    .entry(v.name.clone())
                    .or_insert(KernelView { invocations: 0, bytes: 0 });
                k.invocations += v.invocations;
                k.bytes += v.bytes;
            }
            _ => {}
        }
    }
    let key_of = |label: &str| -> (String, String) {
        (label.to_owned(), alloc_context.get(label).cloned().unwrap_or_default())
    };

    let mut objects: BTreeMap<(String, String), ObjectView> = BTreeMap::new();
    for label in alloc_context.keys() {
        objects.entry(key_of(label)).or_default();
    }
    for f in &p.fine_findings {
        let view = objects.entry(key_of(&f.object)).or_default();
        *view.accesses.entry((f.kernel.clone(), f.direction)).or_insert(0) += f.accesses;
        for h in &f.hits {
            let slot =
                view.patterns.entry((f.kernel.clone(), f.direction, h.pattern)).or_insert(0);
            *slot = (*slot).max(f.accesses);
        }
    }
    for r in &p.redundancies {
        let view = objects.entry(key_of(&r.object_label)).or_default();
        view.redundant += r.unchanged_bytes;
        if r.unchanged_bytes == r.written_bytes {
            view.dead_store += r.written_bytes;
        }
    }
    for d in &p.duplicates {
        for label in [&d.labels.0, &d.labels.1] {
            objects.entry(key_of(label)).or_default().duplicate += d.bytes;
        }
    }
    for plan in &p.copy_plans {
        objects.entry(key_of(&plan.label)).or_default().copy = Some(plan.clone());
    }

    let traffic = vec![
        ("raw access intervals", p.coarse_traffic.raw_intervals),
        ("snapshot bytes", p.coarse_traffic.snapshot_bytes),
        ("snapshot copy calls", p.coarse_traffic.snapshot_calls),
        ("bytes hashed", p.coarse_traffic.bytes_hashed),
        ("bytes compared", p.coarse_traffic.bytes_compared),
        ("fine records analyzed", p.fine_traffic.records_analyzed),
        ("instrumented launches", p.fine_traffic.launches),
    ];
    SideView { objects, kernels, traffic }
}

/// Relative change of a metric: `|a - b| / max(a, b)`; 0 when equal.
fn relative_change(a: u64, b: u64) -> f64 {
    if a == b {
        return 0.0;
    }
    let hi = a.max(b) as f64;
    (a.abs_diff(b)) as f64 / hi
}

/// Renders `before -> after` with a signed percentage.
fn change_detail(what: &str, before: u64, after: u64, bytes: bool) -> String {
    let render = |v: u64| if bytes { human_bytes(v) } else { v.to_string() };
    let pct = if before == 0 {
        "new".to_owned()
    } else {
        format!("{:+.1}%", (after as f64 - before as f64) / before as f64 * 100.0)
    };
    format!("{what}: {} -> {} ({pct})", render(before), render(after))
}

/// Improvement when the metric shrank, regression when it grew.
fn shrink_is_good(before: u64, after: u64) -> DeltaDirection {
    if after < before {
        DeltaDirection::Improvement
    } else {
        DeltaDirection::Regression
    }
}

/// Pushes a counter delta when it clears the category's threshold.
#[allow(clippy::too_many_arguments)]
fn push_metric_delta(
    deltas: &mut Vec<Delta>,
    opts: &DiffOptions,
    category: DeltaCategory,
    what: &str,
    before: u64,
    after: u64,
    bytes: bool,
    direction: Option<DeltaDirection>,
) {
    if relative_change(before, after) < opts.threshold_for(category) || before == after {
        return;
    }
    let cost = if bytes { before.abs_diff(after) } else { before.abs_diff(after) * 4 };
    deltas.push(Delta {
        category,
        direction: direction.unwrap_or_else(|| shrink_is_good(before, after)),
        detail: change_detail(what, before, after, bytes),
        before,
        after,
        cost,
    });
}

fn object_deltas(opts: &DiffOptions, a: &ObjectView, b: &ObjectView) -> Vec<Delta> {
    let mut deltas = Vec::new();

    // Patterns appearing / disappearing per (kernel, direction).
    let keys: BTreeSet<_> = a.patterns.keys().chain(b.patterns.keys()).cloned().collect();
    for key in keys {
        let (kernel, direction, pattern) = &key;
        match (a.patterns.get(&key), b.patterns.get(&key)) {
            (Some(&acc), None) => deltas.push(Delta {
                category: DeltaCategory::Pattern,
                direction: DeltaDirection::Improvement,
                detail: format!("{pattern} ({direction} in {kernel}) disappeared"),
                before: 1,
                after: 0,
                cost: acc.saturating_mul(4),
            }),
            (None, Some(&acc)) => deltas.push(Delta {
                category: DeltaCategory::Pattern,
                direction: DeltaDirection::Regression,
                detail: format!("{pattern} ({direction} in {kernel}) appeared"),
                before: 0,
                after: 1,
                cost: acc.saturating_mul(4),
            }),
            _ => {}
        }
    }

    push_metric_delta(
        &mut deltas,
        opts,
        DeltaCategory::Redundancy,
        "redundant write bytes",
        a.redundant,
        b.redundant,
        true,
        None,
    );
    push_metric_delta(
        &mut deltas,
        opts,
        DeltaCategory::DeadStore,
        "dead-store bytes",
        a.dead_store,
        b.dead_store,
        true,
        None,
    );
    push_metric_delta(
        &mut deltas,
        opts,
        DeltaCategory::Duplicate,
        "duplicated bytes",
        a.duplicate,
        b.duplicate,
        true,
        None,
    );

    // Access-count swings per (kernel, direction), only where both sides
    // observed the tuple (one-sided tuples surface as pattern deltas).
    for (key, &before) in &a.accesses {
        let Some(&after) = b.accesses.get(key) else { continue };
        let (kernel, direction) = key;
        push_metric_delta(
            &mut deltas,
            opts,
            DeltaCategory::Access,
            &format!("accesses ({direction} in {kernel})"),
            before,
            after,
            false,
            None,
        );
    }

    // Copy-strategy recommendation changes (structural: threshold-free).
    if let (Some(pa), Some(pb)) = (&a.copy, &b.copy) {
        let (ra, rb) = (pa.recommended(), pb.recommended());
        if ra != rb {
            deltas.push(Delta {
                category: DeltaCategory::CopyStrategy,
                direction: DeltaDirection::Info,
                detail: format!(
                    "recommended snapshot copy strategy changed: {ra} -> {rb} \
                     ({} of {} updates -> {} of {})",
                    strategy_count(pa, ra),
                    pa.updates(),
                    strategy_count(pb, rb),
                    pb.updates()
                ),
                before: pa.bytes,
                after: pb.bytes,
                cost: pa.bytes.max(pb.bytes),
            });
        }
    }

    deltas.sort_by(|x, y| y.cost.cmp(&x.cost).then_with(|| x.detail.cmp(&y.detail)));
    deltas
}

fn strategy_count(p: &ObjectCopyPlan, s: crate::copy_strategy::CopyStrategy) -> u64 {
    match s {
        crate::copy_strategy::CopyStrategy::Direct => p.direct,
        crate::copy_strategy::CopyStrategy::MinMax => p.min_max,
        crate::copy_strategy::CopyStrategy::Segment => p.segment,
    }
}

fn unmatched_object(
    key: &(String, String),
    view: &ObjectView,
    removed: bool,
) -> UnmatchedObject {
    let patterns: BTreeSet<String> =
        view.patterns.keys().map(|(_, _, p)| p.to_string()).collect();
    let accesses: u64 = view.accesses.values().sum();
    let has_findings = !patterns.is_empty() || view.redundant > 0 || view.duplicate > 0;
    let direction = match (has_findings, removed) {
        (false, _) => DeltaDirection::Info,
        (true, true) => DeltaDirection::Improvement,
        (true, false) => DeltaDirection::Regression,
    };
    UnmatchedObject {
        label: key.0.clone(),
        context: key.1.clone(),
        direction,
        patterns: patterns.into_iter().collect(),
        redundant_bytes: view.redundant,
        accesses,
        cost: view.redundant + view.duplicate + accesses.saturating_mul(4),
    }
}

/// Compares two profiles structurally. `a` is the "before" side and `b`
/// the "after": inefficiencies present only in `a` count as
/// improvements, only in `b` as regressions.
pub fn diff_profiles(a: &Profile, b: &Profile, opts: &DiffOptions) -> ProfileDiff {
    let va = side_view(a);
    let vb = side_view(b);

    let mut objects = Vec::new();
    let mut new_objects = Vec::new();
    let mut removed_objects = Vec::new();
    let object_keys: BTreeSet<_> = va.objects.keys().chain(vb.objects.keys()).collect();
    for key in object_keys {
        match (va.objects.get(key), vb.objects.get(key)) {
            (Some(oa), Some(ob)) => {
                let deltas = object_deltas(opts, oa, ob);
                if !deltas.is_empty() {
                    objects.push(ObjectDelta {
                        label: key.0.clone(),
                        context: key.1.clone(),
                        cost: deltas.iter().map(|d| d.cost).sum(),
                        deltas,
                    });
                }
            }
            (Some(oa), None) => removed_objects.push(unmatched_object(key, oa, true)),
            (None, Some(ob)) => new_objects.push(unmatched_object(key, ob, false)),
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    objects.sort_by(|x, y| {
        y.cost.cmp(&x.cost).then_with(|| (&x.label, &x.context).cmp(&(&y.label, &y.context)))
    });
    for list in [&mut new_objects, &mut removed_objects] {
        list.sort_by(|x, y| {
            y.cost
                .cmp(&x.cost)
                .then_with(|| (&x.label, &x.context).cmp(&(&y.label, &y.context)))
        });
    }

    let mut kernels = Vec::new();
    let mut new_kernels = Vec::new();
    let mut removed_kernels = Vec::new();
    let kernel_names: BTreeSet<_> = va.kernels.keys().chain(vb.kernels.keys()).collect();
    for name in kernel_names {
        match (va.kernels.get(name), vb.kernels.get(name)) {
            (Some(ka), Some(kb)) => {
                let mut deltas = Vec::new();
                push_metric_delta(
                    &mut deltas,
                    opts,
                    DeltaCategory::Invocations,
                    "invocations",
                    ka.invocations,
                    kb.invocations,
                    false,
                    Some(DeltaDirection::Info),
                );
                push_metric_delta(
                    &mut deltas,
                    opts,
                    DeltaCategory::Traffic,
                    "bytes accessed",
                    ka.bytes,
                    kb.bytes,
                    true,
                    Some(DeltaDirection::Info),
                );
                if !deltas.is_empty() {
                    kernels.push(KernelDelta {
                        name: name.clone(),
                        cost: deltas.iter().map(|d| d.cost).sum(),
                        deltas,
                    });
                }
            }
            (Some(ka), None) => removed_kernels.push(UnmatchedKernel {
                name: name.clone(),
                invocations: ka.invocations,
                bytes: ka.bytes,
            }),
            (None, Some(kb)) => new_kernels.push(UnmatchedKernel {
                name: name.clone(),
                invocations: kb.invocations,
                bytes: kb.bytes,
            }),
            (None, None) => unreachable!("name came from one of the maps"),
        }
    }
    kernels.sort_by(|x, y| y.cost.cmp(&x.cost).then_with(|| x.name.cmp(&y.name)));

    let mut traffic = Vec::new();
    for ((name, before), (_, after)) in va.traffic.iter().zip(vb.traffic.iter()) {
        let bytes = name.contains("bytes");
        push_metric_delta(
            &mut traffic,
            opts,
            DeltaCategory::Traffic,
            name,
            *before,
            *after,
            bytes,
            Some(DeltaDirection::Info),
        );
    }

    let mut summary = DiffSummary::default();
    let mut regression_categories: BTreeSet<&'static str> = BTreeSet::new();
    {
        let mut count = |direction: DeltaDirection, category: DeltaCategory| match direction {
            DeltaDirection::Improvement => summary.improvements += 1,
            DeltaDirection::Regression => {
                summary.regressions += 1;
                regression_categories.insert(category.as_str());
            }
            DeltaDirection::Info => summary.infos += 1,
        };
        for o in &objects {
            for d in &o.deltas {
                count(d.direction, d.category);
            }
        }
        for k in &kernels {
            for d in &k.deltas {
                count(d.direction, d.category);
            }
        }
        for o in &new_objects {
            count(o.direction, DeltaCategory::ObjectSet);
        }
        for o in &removed_objects {
            count(o.direction, DeltaCategory::ObjectSet);
        }
        for _ in &new_kernels {
            count(DeltaDirection::Info, DeltaCategory::KernelSet);
        }
        for _ in &removed_kernels {
            count(DeltaDirection::Info, DeltaCategory::KernelSet);
        }
        for d in &traffic {
            count(d.direction, d.category);
        }
    }
    summary.regression_categories =
        regression_categories.into_iter().map(str::to_owned).collect();

    ProfileDiff {
        threshold: opts.threshold,
        summary,
        objects,
        kernels,
        new_objects,
        removed_objects,
        new_kernels,
        removed_kernels,
        traffic,
    }
}

impl ProfileDiff {
    /// No significant change anywhere — `diff(a, a)` must satisfy this.
    pub fn is_empty(&self) -> bool {
        self.summary.improvements == 0
            && self.summary.regressions == 0
            && self.summary.infos == 0
    }

    /// Whether the CI gate trips (exit code 1).
    pub fn has_regressions(&self) -> bool {
        self.summary.regressions > 0
    }

    /// The canonical text diff document — exactly the bytes `vex diff`
    /// writes and `GET /traces/{a}/diff/{b}` returns. One entry point,
    /// so the surfaces cannot diverge.
    pub fn render_text_document(&self) -> String {
        let mut s = self.render_text();
        s.push('\n');
        s
    }

    /// The canonical JSON diff document (pretty, newline-terminated) —
    /// shared by `vex diff --format json` and the server's
    /// `format=json`.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if serialization fails (it cannot
    /// for this type in practice).
    pub fn render_json_document(&self) -> Result<String, serde_json::Error> {
        let mut s = serde_json::to_string_pretty(self)?;
        s.push('\n');
        Ok(s)
    }

    /// Renders the human-readable diff report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ =
            writeln!(s, "=== ValueExpert diff (threshold {:.0}%) ===", self.threshold * 100.0);
        let _ = writeln!(
            s,
            "summary: {} improvement(s), {} regression(s), {} informational",
            self.summary.improvements, self.summary.regressions, self.summary.infos
        );
        if self.is_empty() {
            let _ = writeln!(s, "\nno significant differences");
            return s;
        }
        if !self.objects.is_empty() {
            let _ = writeln!(s, "\nchanged objects ({}):", self.objects.len());
            for o in &self.objects {
                let _ = writeln!(
                    s,
                    "  '{}' @ {} — cost {}",
                    o.label,
                    if o.context.is_empty() { "<unknown>" } else { &o.context },
                    human_bytes(o.cost)
                );
                for d in &o.deltas {
                    let _ = writeln!(
                        s,
                        "    ~ [{}] {}: {} — cost {}",
                        d.direction,
                        d.category,
                        d.detail,
                        human_bytes(d.cost)
                    );
                }
            }
        }
        if !self.kernels.is_empty() {
            let _ = writeln!(s, "\nchanged kernels ({}):", self.kernels.len());
            for k in &self.kernels {
                let _ = writeln!(s, "  {} — cost {}", k.name, human_bytes(k.cost));
                for d in &k.deltas {
                    let _ = writeln!(
                        s,
                        "    ~ [{}] {}: {} — cost {}",
                        d.direction,
                        d.category,
                        d.detail,
                        human_bytes(d.cost)
                    );
                }
            }
        }
        let mut object_section = |title: &str, sign: char, list: &[UnmatchedObject]| {
            if list.is_empty() {
                return;
            }
            let _ = writeln!(s, "\n{title} ({}):", list.len());
            for o in list {
                let tail = if o.patterns.is_empty() {
                    String::new()
                } else {
                    format!(" patterns: {}", o.patterns.join(", "))
                };
                let _ = writeln!(
                    s,
                    "  {sign} '{}' @ {} [{}]{tail} ({} redundant, {} accesses)",
                    o.label,
                    if o.context.is_empty() { "<unknown>" } else { &o.context },
                    o.direction,
                    human_bytes(o.redundant_bytes),
                    o.accesses
                );
            }
        };
        object_section("new objects", '+', &self.new_objects);
        object_section("removed objects", '-', &self.removed_objects);
        let mut kernel_section = |title: &str, sign: char, list: &[UnmatchedKernel]| {
            if list.is_empty() {
                return;
            }
            let _ = writeln!(s, "\n{title} ({}):", list.len());
            for k in list {
                let _ = writeln!(
                    s,
                    "  {sign} {} ({} invocation(s), {})",
                    k.name,
                    k.invocations,
                    human_bytes(k.bytes)
                );
            }
        };
        kernel_section("new kernels", '+', &self.new_kernels);
        kernel_section("removed kernels", '-', &self.removed_kernels);
        if !self.traffic.is_empty() {
            let _ = writeln!(s, "\ntraffic:");
            for d in &self.traffic {
                let _ = writeln!(s, "  ~ [{}] {}", d.direction, d.detail);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use vex_gpu::runtime::Runtime;
    use vex_gpu::timing::DeviceSpec;

    fn profile_session(redundant: bool) -> Profile {
        let mut rt = Runtime::new(DeviceSpec::rtx2080ti());
        let vex = ValueExpert::builder().coarse(true).attach(&mut rt);
        let buf = rt.malloc(1024, "buf").expect("malloc");
        rt.memset(buf, 0, 1024).expect("memset");
        if redundant {
            rt.memset(buf, 0, 1024).expect("memset");
        } else {
            rt.memset(buf, 1, 1024).expect("memset");
        }
        vex.report(&rt)
    }

    #[test]
    fn self_diff_is_empty_and_clean() {
        let p = profile_session(true);
        let d = diff_profiles(&p, &p, &DiffOptions::default());
        assert!(d.is_empty(), "{}", d.render_text());
        assert!(!d.has_regressions());
        assert!(d.render_text().contains("no significant differences"));
    }

    #[test]
    fn removed_redundancy_is_an_improvement_and_reverse_a_regression() {
        let bad = profile_session(true);
        let good = profile_session(false);
        let fwd = diff_profiles(&bad, &good, &DiffOptions::default());
        assert!(fwd.summary.improvements > 0, "{}", fwd.render_text());
        let rev = diff_profiles(&good, &bad, &DiffOptions::default());
        assert!(rev.has_regressions(), "{}", rev.render_text());
        assert!(rev
            .summary
            .regression_categories
            .iter()
            .any(|c| c == "redundancy" || c == "dead-store"));
    }

    #[test]
    fn category_threshold_overrides_global() {
        let bad = profile_session(true);
        let good = profile_session(false);
        let mut opts = DiffOptions::default();
        // Impossible thresholds silence the byte-metric categories.
        for c in [DeltaCategory::Redundancy, DeltaCategory::DeadStore, DeltaCategory::Traffic] {
            opts.category_thresholds.insert(c, 2.0);
        }
        let d = diff_profiles(&good, &bad, &opts);
        assert!(
            !d.summary.regression_categories.iter().any(|c| c == "redundancy"),
            "{}",
            d.render_text()
        );
    }

    #[test]
    fn document_entry_point_appends_newline() {
        let p = profile_session(true);
        let d = diff_profiles(&p, &p, &DiffOptions::default());
        assert_eq!(d.render_text_document(), format!("{}\n", d.render_text()));
        let json = d.render_json_document().expect("serializes");
        assert!(json.ends_with('\n'));
        assert!(json.contains("\"summary\""));
    }

    #[test]
    fn category_names_roundtrip() {
        for c in DeltaCategory::ALL {
            assert_eq!(DeltaCategory::parse(c.as_str()), Some(c));
        }
        assert_eq!(DeltaCategory::parse("nope"), None);
    }
}
