//! The value flow graph (§5.2, Definitions 5.1–5.3).
//!
//! Vertices are GPU API invocations (allocation, memory copy, memory set,
//! kernel launch) merged by calling context; a distinguished *host* vertex
//! stands for any host memory operation. An edge `(i → j, k)` says: vertex
//! *j* read or wrote data object *k*, and vertex *i* was the last writer of
//! *k* before *j*. Edges carry byte counts and redundancy, which the GUI
//! (and our DOT export) renders as thickness and color.
//!
//! Two analyses make large graphs explorable:
//!
//! * [`FlowGraph::vertex_slice`] (Def 5.2) — the subgraph of value flows
//!   that reach, or are reached by, one vertex of interest;
//! * [`FlowGraph::important`] (Def 5.3) — the subgraph of edges/vertices
//!   whose importance metric exceeds thresholds.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use vex_gpu::alloc::AllocId;
use vex_gpu::callpath::CallPathId;

/// Identifier of one flow-graph vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What kind of GPU API a vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexKind {
    /// Data allocation (rectangle in the paper's figures).
    Alloc,
    /// Memory copy (circle).
    Memcpy,
    /// Memory set (circle).
    Memset,
    /// Kernel launch (oval).
    Kernel,
    /// The host pseudo-vertex.
    Host,
}

impl VertexKind {
    fn dot_shape(self) -> &'static str {
        match self {
            VertexKind::Alloc => "box",
            VertexKind::Memcpy | VertexKind::Memset => "circle",
            VertexKind::Kernel => "ellipse",
            VertexKind::Host => "diamond",
        }
    }
}

/// One vertex of the value flow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vertex {
    /// Stable identifier.
    pub id: VertexId,
    /// API kind.
    pub kind: VertexKind,
    /// Display name (kernel name, allocation label, or API tag).
    pub name: String,
    /// Calling context; vertices with equal `(kind, name, context)` merge.
    pub context: CallPathId,
    /// Number of API invocations merged into this vertex (node size).
    pub invocations: u64,
    /// Total bytes accessed across invocations.
    pub bytes: u64,
}

/// Whether an edge records reads or writes by its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Destination vertex reads the object.
    Read,
    /// Destination vertex writes the object.
    Write,
}

/// Aggregated payload of one `(from, to, object)` edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EdgeData {
    /// Read operations recorded on this edge.
    pub reads: u64,
    /// Write operations recorded on this edge.
    pub writes: u64,
    /// Bytes accessed.
    pub bytes: u64,
    /// Bytes written whose value did not change (redundant).
    pub redundant_bytes: u64,
}

impl EdgeData {
    /// Fraction of accessed bytes that were redundant writes.
    pub fn redundancy(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.redundant_bytes as f64 / self.bytes as f64
        }
    }
}

type EdgeKey = (VertexId, VertexId, AllocId);

/// The value flow graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(into = "FlowGraphSer", from = "FlowGraphSer")]
pub struct FlowGraph {
    vertices: BTreeMap<VertexId, Vertex>,
    edges: BTreeMap<EdgeKey, EdgeData>,
    /// Interning map for vertex merging.
    intern: HashMap<(VertexKind, String, CallPathId), VertexId>,
    /// Last writer per object (None before first write — the alloc vertex
    /// is installed as initial writer at allocation).
    last_writer: HashMap<AllocId, VertexId>,
    host: VertexId,
    next: u32,
}

/// Flat serialization form (JSON maps require string keys).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FlowGraphSer {
    vertices: Vec<Vertex>,
    edges: Vec<(VertexId, VertexId, AllocId, EdgeData)>,
    host: VertexId,
    next: u32,
}

impl From<FlowGraph> for FlowGraphSer {
    fn from(g: FlowGraph) -> Self {
        FlowGraphSer {
            vertices: g.vertices.into_values().collect(),
            edges: g.edges.into_iter().map(|((f, t, o), d)| (f, t, o, d)).collect(),
            host: g.host,
            next: g.next,
        }
    }
}

impl From<FlowGraphSer> for FlowGraph {
    fn from(s: FlowGraphSer) -> Self {
        let vertices: BTreeMap<VertexId, Vertex> =
            s.vertices.into_iter().map(|v| (v.id, v)).collect();
        let intern =
            vertices.values().map(|v| ((v.kind, v.name.clone(), v.context), v.id)).collect();
        FlowGraph {
            vertices,
            edges: s.edges.into_iter().map(|(f, t, o, d)| ((f, t, o), d)).collect(),
            intern,
            last_writer: HashMap::new(),
            host: s.host,
            next: s.next,
        }
    }
}

impl Default for FlowGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowGraph {
    /// Creates an empty graph containing only the host vertex.
    pub fn new() -> Self {
        let mut g = FlowGraph {
            vertices: BTreeMap::new(),
            edges: BTreeMap::new(),
            intern: HashMap::new(),
            last_writer: HashMap::new(),
            host: VertexId(0),
            next: 0,
        };
        let host = g.intern_vertex(VertexKind::Host, "host", CallPathId::ROOT);
        g.host = host;
        g
    }

    /// The host pseudo-vertex.
    pub fn host_vertex(&self) -> VertexId {
        self.host
    }

    /// Interns (or retrieves) the vertex for `(kind, name, context)` and
    /// counts one invocation.
    pub fn intern_vertex(
        &mut self,
        kind: VertexKind,
        name: &str,
        context: CallPathId,
    ) -> VertexId {
        let key = (kind, name.to_owned(), context);
        if let Some(&id) = self.intern.get(&key) {
            self.vertices.get_mut(&id).expect("interned vertex exists").invocations += 1;
            return id;
        }
        let id = VertexId(self.next);
        self.next += 1;
        self.intern.insert(key, id);
        self.vertices.insert(
            id,
            Vertex { id, kind, name: name.to_owned(), context, invocations: 1, bytes: 0 },
        );
        id
    }

    /// Declares `vertex` (normally an [`VertexKind::Alloc`] vertex) as the
    /// initial writer of `object`.
    pub fn set_initial_writer(&mut self, object: AllocId, vertex: VertexId) {
        self.last_writer.insert(object, vertex);
    }

    /// The current last writer of `object`, if known.
    pub fn last_writer(&self, object: AllocId) -> Option<VertexId> {
        self.last_writer.get(&object).copied()
    }

    /// Records that `vertex` accessed `object`. A [`AccessKind::Write`]
    /// makes `vertex` the new last writer. `redundant_bytes` only applies
    /// to writes.
    pub fn record_access(
        &mut self,
        vertex: VertexId,
        object: AllocId,
        kind: AccessKind,
        bytes: u64,
        redundant_bytes: u64,
    ) {
        let from = self.last_writer.get(&object).copied().unwrap_or(self.host);
        let e = self.edges.entry((from, vertex, object)).or_default();
        match kind {
            AccessKind::Read => {
                e.reads += 1;
                debug_assert_eq!(redundant_bytes, 0, "reads cannot be redundant writes");
            }
            AccessKind::Write => {
                e.writes += 1;
                e.redundant_bytes += redundant_bytes;
            }
        }
        e.bytes += bytes;
        if let Some(v) = self.vertices.get_mut(&vertex) {
            v.bytes += bytes;
        }
        if kind == AccessKind::Write {
            self.last_writer.insert(object, vertex);
        }
    }

    /// Records a host→device source edge for `object` into `vertex`
    /// (Def 5.1's `e_{host,i,k}`).
    pub fn record_host_source(&mut self, vertex: VertexId, object: AllocId, bytes: u64) {
        let e = self.edges.entry((self.host, vertex, object)).or_default();
        e.reads += 1;
        e.bytes += bytes;
    }

    /// Records a device→host sink edge for `object` out of `vertex`
    /// (Def 5.1's `e_{i,host,k}`).
    pub fn record_host_sink(&mut self, vertex: VertexId, object: AllocId, bytes: u64) {
        let e = self.edges.entry((vertex, self.host, object)).or_default();
        e.reads += 1;
        e.bytes += bytes;
    }

    /// Number of vertices (including host).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of `(from, to, object)` edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates vertices in id order.
    pub fn vertices(&self) -> impl Iterator<Item = &Vertex> {
        self.vertices.values()
    }

    /// Looks up one vertex.
    pub fn vertex(&self, id: VertexId) -> Option<&Vertex> {
        self.vertices.get(&id)
    }

    /// Iterates edges in key order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, AllocId, &EdgeData)> {
        self.edges.iter().map(|(&(f, t, o), d)| (f, t, o, d))
    }

    /// Finds a vertex by display name (first match in id order).
    pub fn find_by_name(&self, name: &str) -> Option<VertexId> {
        self.vertices.values().find(|v| v.name == name).map(|v| v.id)
    }

    /// Total redundant bytes across all edges.
    pub fn total_redundant_bytes(&self) -> u64 {
        self.edges.values().map(|e| e.redundant_bytes).sum()
    }

    // -----------------------------------------------------------------
    // Def 5.2 — vertex slice graph
    // -----------------------------------------------------------------

    /// Computes the vertex slice graph `G_B(v_u)`: the subgraph of value
    /// flows, over the objects `v_u` touches, that reach `v_u` or that
    /// `v_u` reaches (Definition 5.2).
    pub fn vertex_slice(&self, v_u: VertexId) -> FlowGraph {
        // Objects v_u touches.
        let objects: BTreeSet<AllocId> = self
            .edges
            .iter()
            .filter(|(&(f, t, _), _)| f == v_u || t == v_u)
            .map(|(&(_, _, o), _)| o)
            .collect();

        let mut kept: BTreeMap<EdgeKey, EdgeData> = BTreeMap::new();
        for &obj in &objects {
            // Adjacency restricted to this object's edges.
            let mut fwd: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
            let mut bwd: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
            for &(f, t, o) in self.edges.keys() {
                if o == obj {
                    fwd.entry(f).or_default().push(t);
                    bwd.entry(t).or_default().push(f);
                }
            }
            let reach_from = bfs(v_u, &fwd); // v_u reaches these
            let reach_to = bfs(v_u, &bwd); // these reach v_u
            for (&(f, t, o), d) in &self.edges {
                if o != obj {
                    continue;
                }
                let on_path_to = reach_to.contains(&t); // edge ends on a path into v_u
                let on_path_from = reach_from.contains(&f); // edge starts on a path out of v_u
                if on_path_to || on_path_from {
                    kept.insert((f, t, o), *d);
                }
            }
        }
        self.subgraph_with_edges(kept, BTreeSet::new())
    }

    // -----------------------------------------------------------------
    // Def 5.3 — important graph
    // -----------------------------------------------------------------

    /// Computes the important graph: keep edges with `bytes >= min_edge_bytes`
    /// and vertices that lie on a kept edge or have
    /// `invocations >= min_vertex_invocations` (Definition 5.3 with
    /// `I(e) = accessed bytes`, `I(v) = invocations`).
    pub fn important(&self, min_edge_bytes: u64, min_vertex_invocations: u64) -> FlowGraph {
        let kept: BTreeMap<EdgeKey, EdgeData> = self
            .edges
            .iter()
            .filter(|(_, d)| d.bytes >= min_edge_bytes)
            .map(|(&k, &d)| (k, d))
            .collect();
        let extra: BTreeSet<VertexId> = self
            .vertices
            .values()
            .filter(|v| v.invocations >= min_vertex_invocations && v.kind != VertexKind::Host)
            .map(|v| v.id)
            .collect();
        self.subgraph_with_edges(kept, extra)
    }

    fn subgraph_with_edges(
        &self,
        edges: BTreeMap<EdgeKey, EdgeData>,
        extra_vertices: BTreeSet<VertexId>,
    ) -> FlowGraph {
        let mut used: BTreeSet<VertexId> = extra_vertices;
        for &(f, t, _) in edges.keys() {
            used.insert(f);
            used.insert(t);
        }
        used.insert(self.host);
        let vertices: BTreeMap<VertexId, Vertex> = self
            .vertices
            .iter()
            .filter(|(id, _)| used.contains(id))
            .map(|(&id, v)| (id, v.clone()))
            .collect();
        FlowGraph {
            vertices,
            edges,
            intern: HashMap::new(),
            last_writer: HashMap::new(),
            host: self.host,
            next: self.next,
        }
    }

    // -----------------------------------------------------------------
    // DOT export (the GUI stand-in)
    // -----------------------------------------------------------------

    /// Renders the graph in Graphviz DOT, reproducing the paper's visual
    /// conventions: rectangles for allocations, circles for memory APIs,
    /// ovals for kernels; red edges for redundancy above
    /// `redundancy_threshold`, green otherwise; edge pen width scaled by
    /// bytes; node size scaled by invocations.
    pub fn to_dot(&self, redundancy_threshold: f64) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "digraph value_flow {{").expect("write to String");
        writeln!(s, "  rankdir=LR;").expect("write to String");
        for v in self.vertices.values() {
            let size = 0.5 + (v.invocations as f64).log10().max(0.0) * 0.4;
            writeln!(
                s,
                "  {} [label=\"{}\\n{} ({})\" shape={} width={:.2}];",
                v.id.0,
                v.id.0,
                escape(&v.name),
                v.invocations,
                v.kind.dot_shape(),
                size
            )
            .expect("write to String");
        }
        for (&(f, t, o), d) in &self.edges {
            let color = if d.writes > 0 && d.redundancy() >= redundancy_threshold {
                "red"
            } else {
                "green"
            };
            let width = 1.0 + (d.bytes.max(1) as f64).log10() * 0.6;
            let label = format!(
                "{} {}B{}",
                o,
                d.bytes,
                if d.redundant_bytes > 0 {
                    format!(" ({:.0}% red.)", d.redundancy() * 100.0)
                } else {
                    String::new()
                }
            );
            writeln!(
                s,
                "  {} -> {} [color={color} penwidth={width:.2} label=\"{}\"];",
                f.0,
                t.0,
                escape(&label)
            )
            .expect("write to String");
        }
        writeln!(s, "}}").expect("write to String");
        s
    }
}

fn bfs(start: VertexId, adj: &HashMap<VertexId, Vec<VertexId>>) -> BTreeSet<VertexId> {
    let mut seen = BTreeSet::new();
    seen.insert(start);
    let mut q = VecDeque::from([start]);
    while let Some(v) = q.pop_front() {
        if let Some(ns) = adj.get(&v) {
            for &n in ns {
                if seen.insert(n) {
                    q.push_back(n);
                }
            }
        }
    }
    seen
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the 7-line example program of Figure 3:
    /// ```text
    /// 1: A_dev = malloc        2: B_dev = malloc
    /// 3: memset(A_dev, 0)      4: memset(B_dev, 0)
    /// 5: kernel writes A_dev   6: kernel writes B_dev
    /// 7: kernel reads A_dev, writes B_dev
    /// ```
    fn figure3_graph() -> (FlowGraph, Vec<VertexId>, AllocId, AllocId) {
        let a = AllocId(1);
        let b = AllocId(2);
        let mut g = FlowGraph::new();
        let ctx = |i: u32| CallPathId(i);
        let v1 = g.intern_vertex(VertexKind::Alloc, "A_dev", ctx(1));
        let v2 = g.intern_vertex(VertexKind::Alloc, "B_dev", ctx(2));
        g.set_initial_writer(a, v1);
        g.set_initial_writer(b, v2);
        let v3 = g.intern_vertex(VertexKind::Memset, "memset", ctx(3));
        g.record_access(v3, a, AccessKind::Write, 64, 0);
        let v4 = g.intern_vertex(VertexKind::Memset, "memset", ctx(4));
        g.record_access(v4, b, AccessKind::Write, 64, 0);
        let v5 = g.intern_vertex(VertexKind::Kernel, "write_a", ctx(5));
        g.record_access(v5, a, AccessKind::Write, 64, 64); // writes zeros onto zeros
        let v6 = g.intern_vertex(VertexKind::Kernel, "write_b", ctx(6));
        g.record_access(v6, b, AccessKind::Write, 64, 64);
        let v7 = g.intern_vertex(VertexKind::Kernel, "combine", ctx(7));
        g.record_access(v7, a, AccessKind::Read, 64, 0);
        g.record_access(v7, b, AccessKind::Write, 64, 0);
        (g, vec![v1, v2, v3, v4, v5, v6, v7], a, b)
    }

    #[test]
    fn figure3_construction() {
        let (g, v, a, b) = figure3_graph();
        // host + 7 program vertices.
        assert_eq!(g.vertex_count(), 8);
        // Edges: 1->3(a), 2->4(b), 3->5(a), 4->6(b), 5->7(a read), 6->7(b write).
        assert_eq!(g.edge_count(), 6);
        let edges: Vec<_> = g.edges().collect();
        assert!(edges
            .iter()
            .any(|&(f, t, o, d)| f == v[0] && t == v[2] && o == a && d.writes == 1));
        assert!(edges
            .iter()
            .any(|&(f, t, o, d)| f == v[4] && t == v[6] && o == a && d.reads == 1));
        // last writer of b is vertex 7.
        assert_eq!(g.last_writer(b), Some(v[6]));
    }

    #[test]
    fn redundancy_marks_edges() {
        let (g, v, a, _) = figure3_graph();
        let (_, _, _, d) = g
            .edges()
            .find(|&(f, t, o, _)| f == v[2] && t == v[4] && o == a)
            .expect("3->5 edge");
        assert_eq!(d.redundancy(), 1.0);
    }

    #[test]
    fn vertex_merging_by_context() {
        let mut g = FlowGraph::new();
        let v1 = g.intern_vertex(VertexKind::Kernel, "k", CallPathId(1));
        let v2 = g.intern_vertex(VertexKind::Kernel, "k", CallPathId(1));
        let v3 = g.intern_vertex(VertexKind::Kernel, "k", CallPathId(2));
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
        assert_eq!(g.vertex(v1).unwrap().invocations, 2);
    }

    #[test]
    fn vertex_slice_of_figure3d() {
        // Slicing on vertex 6 keeps only B's chain: 2->4->6->7, per the
        // paper's Figure 3d.
        let (g, v, _, b) = figure3_graph();
        let slice = g.vertex_slice(v[5]); // vertex "6" (write_b)
        let kept: Vec<_> = slice.edges().collect();
        assert!(kept.iter().all(|&(_, _, o, _)| o == b));
        assert_eq!(kept.len(), 3); // 2->4, 4->6, 6->7
        assert!(slice.vertex(v[0]).is_none(), "A's alloc is eliminated");
        assert!(slice.vertex(v[4]).is_none(), "write_a is eliminated");
        assert!(slice.vertex(v[6]).is_some(), "downstream consumer kept");
    }

    #[test]
    fn important_graph_prunes() {
        let mut g = FlowGraph::new();
        let a = AllocId(1);
        let big = g.intern_vertex(VertexKind::Alloc, "big", CallPathId(1));
        g.set_initial_writer(a, big);
        let hot = g.intern_vertex(VertexKind::Kernel, "hot", CallPathId(2));
        g.record_access(hot, a, AccessKind::Write, 1_000_000, 0);
        let cold = g.intern_vertex(VertexKind::Kernel, "cold", CallPathId(3));
        g.record_access(cold, a, AccessKind::Read, 10, 0);
        let pruned = g.important(1000, u64::MAX);
        assert!(pruned.vertex(hot).is_some());
        assert!(pruned.vertex(cold).is_none());
        assert_eq!(pruned.edge_count(), 1);
        // Low vertex threshold keeps isolated vertices too.
        let pruned2 = g.important(u64::MAX, 1);
        assert_eq!(pruned2.edge_count(), 0);
        assert!(pruned2.vertex(cold).is_some());
    }

    #[test]
    fn host_edges() {
        let mut g = FlowGraph::new();
        let a = AllocId(1);
        let alloc = g.intern_vertex(VertexKind::Alloc, "x", CallPathId(1));
        g.set_initial_writer(a, alloc);
        let h2d = g.intern_vertex(VertexKind::Memcpy, "h2d", CallPathId(2));
        g.record_host_source(h2d, a, 128);
        g.record_access(h2d, a, AccessKind::Write, 128, 0);
        let d2h = g.intern_vertex(VertexKind::Memcpy, "d2h", CallPathId(3));
        g.record_access(d2h, a, AccessKind::Read, 128, 0);
        g.record_host_sink(d2h, a, 128);
        let host = g.host_vertex();
        assert!(g.edges().any(|(f, t, _, _)| f == host && t == h2d));
        assert!(g.edges().any(|(f, t, _, _)| f == d2h && t == host));
    }

    #[test]
    fn dot_output_contains_conventions() {
        let (g, _, _, _) = figure3_graph();
        let dot = g.to_dot(0.33);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=box"), "alloc rectangles");
        assert!(dot.contains("shape=ellipse"), "kernel ovals");
        assert!(dot.contains("color=red"), "redundant edges");
        assert!(dot.contains("color=green"), "benign edges");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn total_redundant_bytes() {
        let (g, _, _, _) = figure3_graph();
        assert_eq!(g.total_redundant_bytes(), 128);
    }
}
