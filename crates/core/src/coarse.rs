//! The coarse-grained analyzer (§5.1).
//!
//! At every GPU API invocation, ValueExpert captures a *value snapshot*
//! of the data objects the API touched, maintained CPU-side to spare GPU
//! memory. Comparing the snapshot before and after the API yields the
//! **redundant values** pattern; a SHA-256 hash of each post-API snapshot
//! groups objects for the **duplicate values** pattern. For kernel
//! launches, the touched addresses come from the interval monitor: raw
//! access intervals are compacted warp-by-warp, merged with the parallel
//! algorithm of §6.1, and only the merged ranges are copied (with the
//! adaptive strategy of Figure 5) to update snapshots.
//!
//! The same pass constructs the value flow graph of §5.2.

use crate::copy_strategy::{plan_adaptive, AdaptivePolicy, CopyPlan, ObjectCopyPlan};
use crate::flowgraph::{AccessKind, FlowGraph, VertexId, VertexKind};
use crate::interval::{merge_parallel, Interval};
// The warp-level interval monitor now lives with the canonical event model
// (`vex_trace::event`), where the shared `EventSource` runs it once for
// every engine; the coarse analyzer only consumes its output.
use crate::patterns::PatternConfig;
use crate::registry::ObjectRegistry;
use crate::sha256::{sha256, Digest};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use vex_gpu::alloc::AllocId;
use vex_gpu::callpath::CallPathId;
use vex_gpu::hooks::{ApiEvent, ApiKind, DeviceView};
use vex_gpu::memory::DevicePtr;
pub(crate) use vex_trace::event::KernelIntervals;

/// A redundant-values finding: a write that left ≥ threshold of its bytes
/// unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundancyFinding {
    /// Flow-graph vertex of the offending API.
    pub vertex: VertexId,
    /// API tag or kernel name.
    pub api: String,
    /// Calling context of the API.
    pub context: CallPathId,
    /// The written object.
    pub object: AllocId,
    /// The object's allocation label.
    pub object_label: String,
    /// Bytes the API wrote.
    pub written_bytes: u64,
    /// Bytes whose value did not change.
    pub unchanged_bytes: u64,
}

impl RedundancyFinding {
    /// Unchanged fraction of the written bytes.
    pub fn fraction(&self) -> f64 {
        if self.written_bytes == 0 {
            0.0
        } else {
            self.unchanged_bytes as f64 / self.written_bytes as f64
        }
    }
}

/// A duplicate-values finding: two objects with identical snapshots after
/// some API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DuplicateFinding {
    /// Vertex of the API after which the duplication held.
    pub vertex: VertexId,
    /// The two objects (ordered by id).
    pub objects: (AllocId, AllocId),
    /// Their allocation labels.
    pub labels: (String, String),
    /// Snapshot size in bytes.
    pub bytes: u64,
}

/// Measurement traffic of the coarse pass, input to the overhead model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoarseTraffic {
    /// Raw access intervals observed in kernels.
    pub raw_intervals: u64,
    /// Intervals after warp compaction.
    pub compacted_intervals: u64,
    /// Intervals after the full parallel merge.
    pub merged_intervals: u64,
    /// Bytes copied GPU→CPU to update snapshots.
    pub snapshot_bytes: u64,
    /// Snapshot copy API calls.
    pub snapshot_calls: u64,
    /// Bytes hashed for duplicate detection.
    pub bytes_hashed: u64,
    /// Bytes compared for redundancy detection.
    pub bytes_compared: u64,
}

/// Per-object CPU-side state.
#[derive(Debug)]
struct ObjectState {
    shadow: Vec<u8>,
    hash: Option<Digest>,
    label: String,
}

/// The coarse-grained analyzer state. Driven by the profiler front-end
/// (`crate::profiler`), which owns the hook glue.
#[derive(Debug)]
pub struct CoarseState {
    config: PatternConfig,
    policy: AdaptivePolicy,
    flow: FlowGraph,
    objects: HashMap<AllocId, ObjectState>,
    alloc_vertex: HashMap<AllocId, VertexId>,
    redundancies: Vec<RedundancyFinding>,
    duplicates: Vec<DuplicateFinding>,
    seen_duplicates: BTreeSet<(AllocId, AllocId, VertexId)>,
    copy_plans: BTreeMap<String, ObjectCopyPlan>,
    traffic: CoarseTraffic,
    /// Intervals of the in-flight kernel (if any).
    pub(crate) current_kernel: Option<KernelIntervals>,
}

impl CoarseState {
    /// Creates an empty coarse analyzer.
    pub fn new(config: PatternConfig, policy: AdaptivePolicy) -> Self {
        CoarseState {
            config,
            policy,
            flow: FlowGraph::new(),
            objects: HashMap::new(),
            alloc_vertex: HashMap::new(),
            redundancies: Vec::new(),
            duplicates: Vec::new(),
            seen_duplicates: BTreeSet::new(),
            copy_plans: BTreeMap::new(),
            traffic: CoarseTraffic::default(),
            current_kernel: None,
        }
    }

    /// The value flow graph built so far.
    pub fn flow_graph(&self) -> &FlowGraph {
        &self.flow
    }

    /// Redundant-values findings.
    pub fn redundancies(&self) -> &[RedundancyFinding] {
        &self.redundancies
    }

    /// Duplicate-values findings.
    pub fn duplicates(&self) -> &[DuplicateFinding] {
        &self.duplicates
    }

    /// Per-object copy-strategy tallies, sorted by allocation label.
    pub fn copy_plans(&self) -> Vec<ObjectCopyPlan> {
        self.copy_plans.values().cloned().collect()
    }

    /// Measurement traffic counters.
    pub fn traffic(&self) -> CoarseTraffic {
        self.traffic
    }

    /// Consumes the analyzer, returning its products.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        FlowGraph,
        Vec<RedundancyFinding>,
        Vec<DuplicateFinding>,
        Vec<ObjectCopyPlan>,
        CoarseTraffic,
    ) {
        let plans = self.copy_plans.into_values().collect();
        (self.flow, self.redundancies, self.duplicates, plans, self.traffic)
    }

    /// Handles one API event (after execution).
    pub fn on_api_after(
        &mut self,
        event: &ApiEvent,
        registry: &ObjectRegistry,
        view: &dyn DeviceView,
    ) {
        match &event.kind {
            ApiKind::Malloc { info } => {
                let v = self.flow.intern_vertex(VertexKind::Alloc, &info.label, event.context);
                self.alloc_vertex.insert(info.id, v);
                self.flow.set_initial_writer(info.id, v);
                let shadow = view.read_vec(info.addr, info.size).expect("allocation readable");
                self.objects.insert(
                    info.id,
                    ObjectState { shadow, hash: None, label: info.label.clone() },
                );
            }
            ApiKind::Free { info } => {
                self.objects.remove(&info.id);
            }
            ApiKind::Memset { dst, bytes, .. } => {
                let v = self.flow.intern_vertex(VertexKind::Memset, "memset", event.context);
                self.write_range(v, "memset", event.context, *dst, *bytes, registry, view);
            }
            ApiKind::MemcpyH2D { dst, bytes } => {
                let v =
                    self.flow.intern_vertex(VertexKind::Memcpy, "memcpy_h2d", event.context);
                if let Some(obj) = registry.find(dst.addr()) {
                    self.flow.record_host_source(v, obj.id, *bytes);
                }
                self.write_range(v, "memcpy_h2d", event.context, *dst, *bytes, registry, view);
            }
            ApiKind::MemcpyD2H { src, bytes } => {
                let v =
                    self.flow.intern_vertex(VertexKind::Memcpy, "memcpy_d2h", event.context);
                if let Some(obj) = registry.find(src.addr()) {
                    self.flow.record_access(v, obj.id, AccessKind::Read, *bytes, 0);
                    self.flow.record_host_sink(v, obj.id, *bytes);
                }
            }
            ApiKind::MemcpyD2D { dst, src, bytes } => {
                let v =
                    self.flow.intern_vertex(VertexKind::Memcpy, "memcpy_d2d", event.context);
                if let Some(obj) = registry.find(src.addr()) {
                    self.flow.record_access(v, obj.id, AccessKind::Read, *bytes, 0);
                }
                self.write_range(v, "memcpy_d2d", event.context, *dst, *bytes, registry, view);
            }
            ApiKind::KernelLaunch { name, .. } => {
                let v = self.flow.intern_vertex(VertexKind::Kernel, name, event.context);
                if let Some(collected) = self.current_kernel.take() {
                    let (reads, writes, raw, compacted) = collected.finish();
                    self.traffic.raw_intervals += raw;
                    self.traffic.compacted_intervals += compacted;
                    self.kernel_intervals(
                        v,
                        name,
                        event.context,
                        reads,
                        writes,
                        registry,
                        view,
                    );
                }
            }
            _ => {}
        }
    }

    /// Processes a contiguous write `[dst, dst+bytes)` by API `v`.
    #[allow(clippy::too_many_arguments)] // mirrors diff_and_update's shape
    fn write_range(
        &mut self,
        v: VertexId,
        api: &str,
        context: CallPathId,
        dst: DevicePtr,
        bytes: u64,
        registry: &ObjectRegistry,
        view: &dyn DeviceView,
    ) {
        let Some(obj) = registry.find(dst.addr()).cloned() else {
            return;
        };
        let end = (dst.addr() + bytes).min(obj.addr + obj.size);
        if end <= dst.addr() {
            return;
        }
        let intervals = vec![Interval::new(dst.addr(), end)];
        self.diff_and_update(v, api, context, obj.id, &obj.label, obj.addr, &intervals, view);
    }

    /// Processes merged kernel intervals against all overlapped objects.
    #[allow(clippy::too_many_arguments)]
    fn kernel_intervals(
        &mut self,
        v: VertexId,
        name: &str,
        context: CallPathId,
        reads: Vec<Interval>,
        writes: Vec<Interval>,
        registry: &ObjectRegistry,
        view: &dyn DeviceView,
    ) {
        let merged_reads = merge_parallel(&reads);
        let merged_writes = merge_parallel(&writes);
        self.traffic.merged_intervals += (merged_reads.len() + merged_writes.len()) as u64;

        // Reads: record flow edges per object.
        for (obj, ivs) in split_by_object(&merged_reads, registry) {
            let bytes: u64 = ivs.iter().map(Interval::len).sum();
            self.flow.record_access(v, obj, AccessKind::Read, bytes, 0);
        }
        // Writes: snapshot diff per object.
        for (obj, ivs) in split_by_object(&merged_writes, registry) {
            let info = registry.info(obj).expect("split_by_object yields known objects");
            let (addr, label) = (info.addr, info.label.clone());
            self.diff_and_update(v, name, context, obj, &label, addr, &ivs, view);
        }
    }

    /// Diffs shadow vs device over `intervals` of one object, records the
    /// write edge, emits a redundancy finding when warranted, updates the
    /// shadow, and refreshes the duplicate hash.
    #[allow(clippy::too_many_arguments)]
    fn diff_and_update(
        &mut self,
        v: VertexId,
        api: &str,
        context: CallPathId,
        obj: AllocId,
        label: &str,
        obj_addr: u64,
        intervals: &[Interval],
        view: &dyn DeviceView,
    ) {
        let Some(state) = self.objects.get_mut(&obj) else {
            return;
        };
        let plan: CopyPlan = plan_adaptive(intervals, state.shadow.len() as u64, &self.policy);
        self.traffic.snapshot_bytes += plan.bytes;
        self.traffic.snapshot_calls += plan.calls;
        self.copy_plans
            .entry(label.to_owned())
            .or_insert_with(|| ObjectCopyPlan::new(label))
            .tally(&plan);

        let mut written = 0u64;
        let mut unchanged = 0u64;
        for iv in intervals {
            let off = (iv.start - obj_addr) as usize;
            let len = iv.len() as usize;
            let new = view.read_vec(iv.start, iv.len()).expect("interval within device memory");
            let old = &state.shadow[off..off + len];
            unchanged += unchanged_bytes(old, &new, iv.start);
            written += len as u64;
            state.shadow[off..off + len].copy_from_slice(&new);
        }
        self.traffic.bytes_compared += written;

        self.flow.record_access(v, obj, AccessKind::Write, written, unchanged);

        if written > 0 && unchanged as f64 / written as f64 >= self.config.redundancy_threshold
        {
            self.redundancies.push(RedundancyFinding {
                vertex: v,
                api: api.to_owned(),
                context,
                object: obj,
                object_label: label.to_owned(),
                written_bytes: written,
                unchanged_bytes: unchanged,
            });
        }

        // Duplicate detection: rehash this object and compare with others.
        let digest = sha256(&state.shadow);
        self.traffic.bytes_hashed += state.shadow.len() as u64;
        state.hash = Some(digest);
        let size = state.shadow.len() as u64;
        let mut dups: Vec<AllocId> = Vec::new();
        for (&other, other_state) in &self.objects {
            if other != obj && other_state.hash == Some(digest) {
                dups.push(other);
            }
        }
        // `objects` is a HashMap; sort so finding order does not depend on
        // its per-process iteration order.
        dups.sort_unstable();
        for other in dups {
            let key = if obj < other { (obj, other, v) } else { (other, obj, v) };
            if self.seen_duplicates.insert(key) {
                let other_label =
                    self.objects.get(&other).map(|s| s.label.clone()).unwrap_or_default();
                self.duplicates.push(DuplicateFinding {
                    vertex: v,
                    objects: (key.0, key.1),
                    labels: if obj < other {
                        (label.to_owned(), other_label)
                    } else {
                        (other_label, label.to_owned())
                    },
                    bytes: size,
                });
            }
        }
    }
}

/// Counts unchanged bytes between two snapshots of the same range.
///
/// Comparison runs at aligned 32-bit-word granularity (a word counts as
/// unchanged only if all four bytes match), falling back to bytes at
/// unaligned edges. Element-level comparison avoids crediting partial
/// matches inside a changed value — e.g. storing `1.0f32` over `0.0f32`
/// leaves two of four bytes equal but is not a redundant write.
fn unchanged_bytes(old: &[u8], new: &[u8], start_addr: u64) -> u64 {
    debug_assert_eq!(old.len(), new.len());
    let mut unchanged = 0u64;
    let mut i = 0usize;
    // Unaligned head.
    while i < old.len() && !(start_addr + i as u64).is_multiple_of(4) {
        unchanged += u64::from(old[i] == new[i]);
        i += 1;
    }
    // Aligned words.
    while i + 4 <= old.len() {
        if old[i..i + 4] == new[i..i + 4] {
            unchanged += 4;
        }
        i += 4;
    }
    // Tail bytes.
    while i < old.len() {
        unchanged += u64::from(old[i] == new[i]);
        i += 1;
    }
    unchanged
}

/// Splits disjoint sorted intervals by the object containing them,
/// clipping at object bounds. Addresses outside any live object are
/// dropped (they cannot be attributed to a data object).
///
/// Shared with the pipelined engine (`crate::pipeline`), which runs the
/// same split on the application thread to decide which byte ranges to
/// capture for deferred replay.
pub(crate) fn split_by_object(
    intervals: &[Interval],
    registry: &ObjectRegistry,
) -> BTreeMap<AllocId, Vec<Interval>> {
    let mut out: BTreeMap<AllocId, Vec<Interval>> = BTreeMap::new();
    for iv in intervals {
        let mut cursor = iv.start;
        while cursor < iv.end {
            match registry.find(cursor) {
                Some(info) => {
                    let end = iv.end.min(info.addr + info.size);
                    out.entry(info.id).or_default().push(Interval::new(cursor, end));
                    cursor = end;
                }
                None => {
                    // Skip to the next byte; gaps between allocations are
                    // at most the alignment padding, so this loop is short.
                    cursor += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_gpu::alloc::AllocationInfo;
    use vex_gpu::stream::StreamId;

    struct FakeView {
        mem: Vec<u8>,
    }
    impl DeviceView for FakeView {
        fn read(&self, addr: u64, dst: &mut [u8]) -> Result<(), vex_gpu::error::GpuError> {
            dst.copy_from_slice(&self.mem[addr as usize..addr as usize + dst.len()]);
            Ok(())
        }
        fn find_allocation(&self, _addr: u64) -> Option<AllocationInfo> {
            None
        }
        fn live_allocations(&self) -> Vec<AllocationInfo> {
            Vec::new()
        }
    }

    fn alloc_info(id: u64, addr: u64, size: u64, label: &str) -> AllocationInfo {
        AllocationInfo {
            id: AllocId(id),
            addr,
            size,
            label: label.to_owned(),
            context: CallPathId::ROOT,
            live: true,
        }
    }

    fn ev(seq: u64, kind: ApiKind) -> ApiEvent {
        ApiEvent { seq, kind, context: CallPathId(seq as u32), stream: StreamId::DEFAULT }
    }

    fn setup() -> (CoarseState, ObjectRegistry, FakeView) {
        (
            CoarseState::new(PatternConfig::default(), AdaptivePolicy::default()),
            ObjectRegistry::new(),
            FakeView { mem: vec![0u8; 4096] },
        )
    }

    #[test]
    fn memset_onto_zeros_is_redundant() {
        let (mut c, mut reg, mut view) = setup();
        let info = alloc_info(1, 256, 64, "buf");
        reg.on_alloc(&info);
        view.mem[256..320].fill(0xCD); // poison
        c.on_api_after(&ev(0, ApiKind::Malloc { info: info.clone() }), &reg, &view);

        // First memset 0: changes poison -> zeros, not redundant.
        view.mem[256..320].fill(0);
        c.on_api_after(
            &ev(1, ApiKind::Memset { dst: DevicePtr(256), value: 0, bytes: 64 }),
            &reg,
            &view,
        );
        assert!(c.redundancies().is_empty());

        // Second memset 0: fully redundant.
        c.on_api_after(
            &ev(2, ApiKind::Memset { dst: DevicePtr(256), value: 0, bytes: 64 }),
            &reg,
            &view,
        );
        assert_eq!(c.redundancies().len(), 1);
        let f = &c.redundancies()[0];
        assert_eq!(f.fraction(), 1.0);
        assert_eq!(f.object, AllocId(1));
        assert_eq!(f.object_label, "buf");
    }

    #[test]
    fn h2d_copy_of_identical_bytes_is_redundant() {
        let (mut c, mut reg, mut view) = setup();
        let info = alloc_info(1, 256, 16, "w");
        reg.on_alloc(&info);
        view.mem[256..272].fill(7);
        c.on_api_after(&ev(0, ApiKind::Malloc { info }), &reg, &view);
        // Shadow captured 7s; the "copy" left the same 7s in memory.
        c.on_api_after(
            &ev(1, ApiKind::MemcpyH2D { dst: DevicePtr(256), bytes: 16 }),
            &reg,
            &view,
        );
        assert_eq!(c.redundancies().len(), 1);
        // Host source edge exists.
        let host = c.flow_graph().host_vertex();
        assert!(c.flow_graph().edges().any(|(f, _, _, _)| f == host));
    }

    #[test]
    fn duplicates_detected_via_hash() {
        let (mut c, mut reg, mut view) = setup();
        for (id, addr, label) in [(1, 256, "a"), (2, 512, "b")] {
            let info = alloc_info(id, addr, 32, label);
            reg.on_alloc(&info);
            view.mem[addr as usize..addr as usize + 32].fill(0xCD);
            c.on_api_after(&ev(id, ApiKind::Malloc { info }), &reg, &view);
        }
        // Write identical content into both via memset.
        view.mem[256..288].fill(3);
        c.on_api_after(
            &ev(10, ApiKind::Memset { dst: DevicePtr(256), value: 3, bytes: 32 }),
            &reg,
            &view,
        );
        assert!(c.duplicates().is_empty(), "only one object hashed so far");
        view.mem[512..544].fill(3);
        c.on_api_after(
            &ev(11, ApiKind::Memset { dst: DevicePtr(512), value: 3, bytes: 32 }),
            &reg,
            &view,
        );
        assert_eq!(c.duplicates().len(), 1);
        let d = &c.duplicates()[0];
        assert_eq!(d.objects, (AllocId(1), AllocId(2)));
        assert_eq!(d.bytes, 32);
    }

    #[test]
    fn kernel_intervals_drive_redundancy() {
        let (mut c, mut reg, mut view) = setup();
        let info = alloc_info(1, 256, 128, "data");
        reg.on_alloc(&info);
        c.on_api_after(&ev(0, ApiKind::Malloc { info }), &reg, &view);
        // Shadow currently zeros (mem zeros). Kernel "writes" the first 64
        // bytes but leaves memory unchanged -> fully redundant.
        let mut k = KernelIntervals::default();
        for t in 0..16u32 {
            k.add(0, t, Interval::new(256 + t as u64 * 4, 260 + t as u64 * 4), true);
        }
        c.current_kernel = Some(k);
        c.on_api_after(
            &ev(
                1,
                ApiKind::KernelLaunch {
                    launch: vex_gpu::hooks::LaunchId(0),
                    name: "fill".into(),
                },
            ),
            &reg,
            &view,
        );
        assert_eq!(c.redundancies().len(), 1);
        assert_eq!(c.redundancies()[0].written_bytes, 64);
        let t = c.traffic();
        assert_eq!(t.raw_intervals, 16);
        assert!(t.compacted_intervals < 16, "warp compaction collapsed coalesced accesses");
        assert_eq!(t.merged_intervals, 1);

        // Now the kernel writes different values -> not redundant.
        view.mem[256..320].fill(9);
        let mut k = KernelIntervals::default();
        k.add(0, 0, Interval::new(256, 320), true);
        c.current_kernel = Some(k);
        c.on_api_after(
            &ev(
                2,
                ApiKind::KernelLaunch {
                    launch: vex_gpu::hooks::LaunchId(1),
                    name: "fill".into(),
                },
            ),
            &reg,
            &view,
        );
        assert_eq!(c.redundancies().len(), 1, "no new finding");
    }

    #[test]
    fn kernel_reads_create_read_edges() {
        let (mut c, mut reg, view) = setup();
        let info = alloc_info(1, 256, 64, "in");
        reg.on_alloc(&info);
        c.on_api_after(&ev(0, ApiKind::Malloc { info }), &reg, &view);
        let mut k = KernelIntervals::default();
        k.add(0, 0, Interval::new(256, 320), false);
        c.current_kernel = Some(k);
        c.on_api_after(
            &ev(
                1,
                ApiKind::KernelLaunch {
                    launch: vex_gpu::hooks::LaunchId(0),
                    name: "consume".into(),
                },
            ),
            &reg,
            &view,
        );
        assert!(c.redundancies().is_empty());
        let g = c.flow_graph();
        let kernel = g.find_by_name("consume").unwrap();
        let (_, _, _, d) = g.edges().find(|&(_, t, _, _)| t == kernel).unwrap();
        assert_eq!(d.reads, 1);
        assert_eq!(d.bytes, 64);
    }

    #[test]
    fn split_by_object_clips_and_drops_gaps() {
        let mut reg = ObjectRegistry::new();
        reg.on_alloc(&alloc_info(1, 256, 64, "a"));
        reg.on_alloc(&alloc_info(2, 512, 64, "b"));
        let ivs = vec![Interval::new(300, 530)]; // spans a's tail, the gap, b's head
        let split = split_by_object(&ivs, &reg);
        assert_eq!(split[&AllocId(1)], vec![Interval::new(300, 320)]);
        assert_eq!(split[&AllocId(2)], vec![Interval::new(512, 530)]);
    }

    #[test]
    fn freed_objects_are_ignored() {
        let (mut c, mut reg, view) = setup();
        let info = alloc_info(1, 256, 64, "a");
        reg.on_alloc(&info);
        c.on_api_after(&ev(0, ApiKind::Malloc { info: info.clone() }), &reg, &view);
        c.on_api_after(&ev(1, ApiKind::Free { info: info.clone() }), &reg, &view);
        reg.on_free(&info);
        // Writing at the stale address produces no finding and no panic.
        c.on_api_after(
            &ev(2, ApiKind::Memset { dst: DevicePtr(256), value: 0, bytes: 64 }),
            &reg,
            &view,
        );
        assert!(c.redundancies().is_empty());
    }
}
