//! Profile output — the GUI stand-in.
//!
//! A [`Profile`] bundles everything a ValueExpert session produced:
//! coarse and fine findings, the value flow graph, traffic counters, the
//! overhead report, and rendered calling contexts. It serializes to JSON
//! (for the experiment harness) and renders a human-readable text report
//! (for the examples).

use crate::coarse::{CoarseTraffic, DuplicateFinding, RedundancyFinding};
use crate::copy_strategy::ObjectCopyPlan;
use crate::fine::{FineFinding, FineTraffic};
use crate::flowgraph::FlowGraph;
use crate::overhead::OverheadReport;
use crate::patterns::ValuePattern;
use crate::races::RaceReport;
use crate::reuse::ReuseHistogram;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use vex_gpu::callpath::CallPathId;
use vex_trace::CollectorStats;

/// Collector stats mirror that serializes (vex-trace keeps serde out of
/// its public deps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectorStatsOut {
    /// Access events recorded.
    pub events: u64,
    /// Access events inspected (including block-sampled-out).
    pub events_checked: u64,
    /// Device-buffer flushes.
    pub flushes: u64,
    /// Bytes flushed device→host.
    pub bytes_flushed: u64,
    /// Instrumented launches.
    pub instrumented_launches: u64,
    /// Skipped launches.
    pub skipped_launches: u64,
}

impl From<CollectorStats> for CollectorStatsOut {
    fn from(s: CollectorStats) -> Self {
        CollectorStatsOut {
            events: s.events,
            events_checked: s.events_checked,
            flushes: s.flushes,
            bytes_flushed: s.bytes_flushed,
            instrumented_launches: s.instrumented_launches,
            skipped_launches: s.skipped_launches,
        }
    }
}

/// The complete output of one profiling session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Profile {
    /// Device the application ran on.
    pub device: String,
    /// The value flow graph (Def 5.1).
    pub flow_graph: FlowGraph,
    /// Redundant-values findings (coarse).
    pub redundancies: Vec<RedundancyFinding>,
    /// Duplicate-values findings (coarse).
    pub duplicates: Vec<DuplicateFinding>,
    /// Per-object adaptive copy-strategy tallies (coarse), sorted by
    /// allocation label. The dominant choice is the object's recommended
    /// strategy; `vex diff` flags recommendation changes across builds.
    #[serde(default)]
    pub copy_plans: Vec<ObjectCopyPlan>,
    /// Fine-grained findings, merged per GPU API.
    pub fine_findings: Vec<FineFinding>,
    /// Reuse-distance histogram, when the analysis was enabled (§9).
    #[serde(default)]
    pub reuse: Option<ReuseHistogram>,
    /// Inter-block race reports, when the analysis was enabled (§9).
    #[serde(default)]
    pub races: Vec<RaceReport>,
    /// Coarse measurement traffic.
    pub coarse_traffic: CoarseTraffic,
    /// Fine analysis traffic.
    pub fine_traffic: FineTraffic,
    /// Collector traffic.
    #[serde(serialize_with = "ser_collector", deserialize_with = "de_collector")]
    pub collector_stats: CollectorStats,
    /// Modeled profiling overhead.
    pub overhead: OverheadReport,
    /// Rendered calling contexts referenced by findings and vertices.
    #[serde(serialize_with = "ser_contexts", deserialize_with = "de_contexts")]
    pub contexts: BTreeMap<CallPathId, String>,
    /// The redundancy threshold used (for DOT coloring).
    pub redundancy_threshold: f64,
}

fn ser_collector<S: serde::Serializer>(s: &CollectorStats, ser: S) -> Result<S::Ok, S::Error> {
    CollectorStatsOut::from(*s).serialize(ser)
}

fn ser_contexts<S: serde::Serializer>(
    m: &BTreeMap<CallPathId, String>,
    ser: S,
) -> Result<S::Ok, S::Error> {
    // JSON object keys must be strings; flatten to (id, rendering) pairs.
    let v: Vec<(CallPathId, &String)> = m.iter().map(|(k, s)| (*k, s)).collect();
    v.serialize(ser)
}

fn de_contexts<'de, D: serde::Deserializer<'de>>(
    de: D,
) -> Result<BTreeMap<CallPathId, String>, D::Error> {
    let v: Vec<(CallPathId, String)> = Vec::deserialize(de)?;
    Ok(v.into_iter().collect())
}

fn de_collector<'de, D: serde::Deserializer<'de>>(de: D) -> Result<CollectorStats, D::Error> {
    let o = CollectorStatsOut::deserialize(de)?;
    Ok(CollectorStats {
        events: o.events,
        events_checked: o.events_checked,
        flushes: o.flushes,
        bytes_flushed: o.bytes_flushed,
        instrumented_launches: o.instrumented_launches,
        skipped_launches: o.skipped_launches,
    })
}

impl Profile {
    /// The set of value patterns this profile detected — the row of
    /// Table 1 for the profiled application.
    ///
    /// Following §3.2 ("the single value and single zero patterns are
    /// special cases of the frequent values pattern"), a detected
    /// single-zero implies single-value, and a detected single-value
    /// implies frequent-values.
    pub fn detected_patterns(&self) -> BTreeSet<ValuePattern> {
        let mut set = BTreeSet::new();
        if !self.redundancies.is_empty() {
            set.insert(ValuePattern::RedundantValues);
        }
        if !self.duplicates.is_empty() {
            set.insert(ValuePattern::DuplicateValues);
        }
        for f in &self.fine_findings {
            for h in &f.hits {
                set.insert(h.pattern);
            }
        }
        if set.contains(&ValuePattern::SingleZero) {
            set.insert(ValuePattern::SingleValue);
        }
        if set.contains(&ValuePattern::SingleValue) {
            set.insert(ValuePattern::FrequentValues);
        }
        set
    }

    /// Whether `pattern` was detected anywhere.
    pub fn has_pattern(&self, pattern: ValuePattern) -> bool {
        self.detected_patterns().contains(&pattern)
    }

    /// Redundancy findings sorted by redundant bytes, largest first — the
    /// "thick red edges first" ordering the paper recommends.
    pub fn top_redundancies(&self) -> Vec<&RedundancyFinding> {
        let mut v: Vec<&RedundancyFinding> = self.redundancies.iter().collect();
        v.sort_by_key(|r| std::cmp::Reverse(r.unchanged_bytes));
        v
    }

    /// Serializes the profile to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if serialization fails (it cannot for
    /// this type in practice).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// The canonical text report document: [`Profile::render_text`]
    /// terminated by a newline — exactly the bytes `vex profile` and
    /// `vex replay` write to stdout, and the body `vex serve` returns
    /// from `GET /traces/{id}/report`. Every consumer goes through this
    /// one entry point so the surfaces cannot diverge.
    pub fn render_text_document(&self) -> String {
        let mut s = self.render_text();
        s.push('\n');
        s
    }

    /// The canonical flow-graph DOT document: the value flow graph
    /// rendered at `threshold` (defaulting to the profile's own
    /// redundancy threshold) — exactly the bytes `vex replay --dot`
    /// writes and `vex serve` returns from
    /// `GET /traces/{id}/flowgraph?format=dot`.
    pub fn render_dot_document(&self, threshold: Option<f64>) -> String {
        self.flow_graph.to_dot(threshold.unwrap_or(self.redundancy_threshold))
    }

    /// Renders a human-readable text report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "=== ValueExpert profile ({}) ===", self.device);
        let _ = writeln!(
            s,
            "value flow graph: {} nodes, {} edges",
            self.flow_graph.vertex_count(),
            self.flow_graph.edge_count()
        );
        let _ = writeln!(
            s,
            "overhead: total {:.2}x (coarse {:.2}x, fine {:.2}x) over {:.1} us app time",
            self.overhead.factor(),
            self.overhead.coarse_factor(),
            self.overhead.fine_factor(),
            self.overhead.app_us
        );

        let patterns = self.detected_patterns();
        let _ = writeln!(s, "\ndetected patterns ({}):", patterns.len());
        for p in &patterns {
            let _ = writeln!(s, "  - {p}: {}", p.guidance());
        }

        if !self.redundancies.is_empty() {
            let _ = writeln!(s, "\nredundant values ({} findings):", self.redundancies.len());
            for r in self.top_redundancies().iter().take(10) {
                let ctx =
                    self.contexts.get(&r.context).map(String::as_str).unwrap_or("<unknown>");
                let _ = writeln!(
                    s,
                    "  [{}] {} wrote {} of '{}' unchanged ({:.0}%) at {}",
                    r.vertex,
                    r.api,
                    human_bytes(r.unchanged_bytes),
                    r.object_label,
                    r.fraction() * 100.0,
                    ctx
                );
            }
        }
        if !self.duplicates.is_empty() {
            let _ = writeln!(s, "\nduplicate values ({} findings):", self.duplicates.len());
            for d in self.duplicates.iter().take(10) {
                let _ = writeln!(
                    s,
                    "  [{}] '{}' == '{}' ({})",
                    d.vertex,
                    d.labels.0,
                    d.labels.1,
                    human_bytes(d.bytes)
                );
            }
        }
        if let Some(reuse) = &self.reuse {
            let _ = writeln!(
                s,
                "\nreuse distance: {} accesses, {:.1}% cold; est. miss ratio @4096 lines: {:.1}%",
                reuse.total,
                reuse.cold_ratio() * 100.0,
                reuse.miss_ratio(4096) * 100.0
            );
        }
        if !self.races.is_empty() {
            let _ = writeln!(s, "\ninter-block races ({}):", self.races.len());
            for r in self.races.iter().take(10) {
                let _ = writeln!(
                    s,
                    "  {} in {}: {} addresses (e.g. {:#x}), blocks {} vs {}",
                    r.kind, r.kernel, r.addresses, r.addr, r.blocks.0, r.blocks.1
                );
            }
        }
        if !self.fine_findings.is_empty() {
            let _ = writeln!(s, "\nfine-grained findings ({}):", self.fine_findings.len());
            for f in self.fine_findings.iter().take(20) {
                let at = if f.lines.is_empty() {
                    String::new()
                } else {
                    format!(
                        " [line{} {}]",
                        if f.lines.len() > 1 { "s" } else { "" },
                        f.lines.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
                    )
                };
                for h in &f.hits {
                    let _ = writeln!(
                        s,
                        "  {} / '{}' ({}){}: {} — {}",
                        f.kernel, f.object, f.direction, at, h.pattern, h.detail
                    );
                }
            }
        }
        s
    }

    /// Renders the profile as a Markdown report (CI-comment friendly).
    pub fn render_markdown(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "## ValueExpert profile — {}\n", self.device);
        let _ = writeln!(
            s,
            "- value flow graph: **{} nodes / {} edges**",
            self.flow_graph.vertex_count(),
            self.flow_graph.edge_count()
        );
        let _ = writeln!(
            s,
            "- overhead: **{:.2}×** (coarse {:.2}×, fine {:.2}×)",
            self.overhead.factor(),
            self.overhead.coarse_factor(),
            self.overhead.fine_factor()
        );
        let patterns = self.detected_patterns();
        let _ = writeln!(
            s,
            "- patterns: {}\n",
            if patterns.is_empty() {
                "none".to_owned()
            } else {
                patterns.iter().map(|p| format!("`{p}`")).collect::<Vec<_>>().join(", ")
            }
        );
        if !self.redundancies.is_empty() {
            let _ = writeln!(s, "### Redundant values\n");
            let _ = writeln!(s, "| API | object | unchanged | of written | context |");
            let _ = writeln!(s, "|---|---|---|---|---|");
            for r in self.top_redundancies().iter().take(15) {
                let ctx = self.contexts.get(&r.context).map(String::as_str).unwrap_or("?");
                let _ = writeln!(
                    s,
                    "| `{}` | `{}` | {} | {:.0}% | {} |",
                    r.api,
                    r.object_label,
                    human_bytes(r.unchanged_bytes),
                    r.fraction() * 100.0,
                    ctx
                );
            }
            let _ = writeln!(s);
        }
        if !self.duplicates.is_empty() {
            let _ = writeln!(s, "### Duplicate values\n");
            for d in self.duplicates.iter().take(10) {
                let _ = writeln!(
                    s,
                    "- `{}` == `{}` ({})",
                    d.labels.0,
                    d.labels.1,
                    human_bytes(d.bytes)
                );
            }
            let _ = writeln!(s);
        }
        if !self.fine_findings.is_empty() {
            let _ = writeln!(s, "### Fine-grained patterns\n");
            let _ = writeln!(s, "| kernel | object | dir | pattern | evidence |");
            let _ = writeln!(s, "|---|---|---|---|---|");
            for f in self.fine_findings.iter().take(25) {
                for h in &f.hits {
                    let _ = writeln!(
                        s,
                        "| `{}` | `{}` | {} | {} | {} |",
                        f.kernel, f.object, f.direction, h.pattern, h.detail
                    );
                }
            }
            let _ = writeln!(s);
        }
        if !self.races.is_empty() {
            let _ = writeln!(s, "### Inter-block races\n");
            for r in self.races.iter().take(10) {
                let _ = writeln!(
                    s,
                    "- **{}** in `{}`: {} addresses (blocks {} vs {})",
                    r.kind, r.kernel, r.addresses, r.blocks.0, r.blocks.1
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod markdown_tests {
    use super::*;
    use crate::flowgraph::VertexId;

    #[test]
    fn markdown_contains_sections_and_tables() {
        let p = Profile {
            device: "TestGPU".into(),
            flow_graph: FlowGraph::new(),
            redundancies: vec![RedundancyFinding {
                vertex: VertexId(1),
                api: "memset".into(),
                context: CallPathId(1),
                object: vex_gpu::alloc::AllocId(1),
                object_label: "out".into(),
                written_bytes: 2048,
                unchanged_bytes: 2048,
            }],
            duplicates: Vec::new(),
            copy_plans: Vec::new(),
            fine_findings: Vec::new(),
            reuse: None,
            races: Vec::new(),
            coarse_traffic: CoarseTraffic::default(),
            fine_traffic: FineTraffic::default(),
            collector_stats: CollectorStats::default(),
            overhead: OverheadReport { fine_us: 0.0, coarse_us: 5.0, app_us: 5.0 },
            contexts: BTreeMap::from([(CallPathId(1), "main -> init".to_owned())]),
            redundancy_threshold: 0.33,
        };
        let md = p.render_markdown();
        assert!(md.starts_with("## ValueExpert profile — TestGPU"));
        assert!(md.contains("### Redundant values"));
        assert!(md.contains("| `memset` | `out` |"));
        assert!(md.contains("100%"));
        assert!(md.contains("`redundant values`"));
    }
}

/// Renders a byte count with a binary-prefix unit.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{:.1} {}", v, UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowgraph::VertexId;

    fn sample_profile() -> Profile {
        Profile {
            device: "TestGPU".into(),
            flow_graph: FlowGraph::new(),
            redundancies: vec![RedundancyFinding {
                vertex: VertexId(1),
                api: "memset".into(),
                context: CallPathId(1),
                object: vex_gpu::alloc::AllocId(1),
                object_label: "out".into(),
                written_bytes: 1024,
                unchanged_bytes: 1024,
            }],
            duplicates: Vec::new(),
            copy_plans: Vec::new(),
            fine_findings: Vec::new(),
            reuse: None,
            races: Vec::new(),
            coarse_traffic: CoarseTraffic::default(),
            fine_traffic: FineTraffic::default(),
            collector_stats: CollectorStats::default(),
            overhead: OverheadReport { fine_us: 0.0, coarse_us: 10.0, app_us: 10.0 },
            contexts: BTreeMap::from([(CallPathId(1), "main -> init".to_owned())]),
            redundancy_threshold: 0.33,
        }
    }

    #[test]
    fn detected_patterns_from_findings() {
        let p = sample_profile();
        assert!(p.has_pattern(ValuePattern::RedundantValues));
        assert!(!p.has_pattern(ValuePattern::SingleZero));
        assert_eq!(p.detected_patterns().len(), 1);
    }

    #[test]
    fn document_entry_points_match_their_parts() {
        let p = sample_profile();
        assert_eq!(p.render_text_document(), format!("{}\n", p.render_text()));
        assert_eq!(p.render_dot_document(None), p.flow_graph.to_dot(p.redundancy_threshold));
        assert_eq!(p.render_dot_document(Some(0.5)), p.flow_graph.to_dot(0.5));
    }

    #[test]
    fn text_render_mentions_finding() {
        let p = sample_profile();
        let text = p.render_text();
        assert!(text.contains("redundant values"));
        assert!(text.contains("main -> init"));
        assert!(text.contains("2.00x") || text.contains("overhead"));
    }

    #[test]
    fn json_roundtrip() {
        let p = sample_profile();
        let json = p.to_json().unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.device, "TestGPU");
        assert_eq!(back.redundancies.len(), 1);
        assert_eq!(back.collector_stats, CollectorStats::default());
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(14 * 1024 * 1024 + 256 * 1024), "14.2 MiB");
    }

    #[test]
    fn top_redundancies_sorted() {
        let mut p = sample_profile();
        p.redundancies.push(RedundancyFinding {
            vertex: VertexId(2),
            api: "k".into(),
            context: CallPathId(1),
            object: vex_gpu::alloc::AllocId(2),
            object_label: "big".into(),
            written_bytes: 10_000,
            unchanged_bytes: 9_000,
        });
        let top = p.top_redundancies();
        assert_eq!(top[0].object_label, "big");
    }
}
