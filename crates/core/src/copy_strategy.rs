//! Adaptive GPU→CPU snapshot copy strategies (§6.1, Figure 5).
//!
//! After merging the intervals a GPU API touched, ValueExpert must bring
//! the touched *values* to the CPU to update the object's shadow snapshot.
//! Three strategies trade per-call overhead against wasted bytes:
//!
//! * **direct** — copy the whole object: one call, possibly many untouched
//!   bytes;
//! * **min–max** — copy `[min(starts), max(ends))`: one call, fewer wasted
//!   bytes when accesses cluster;
//! * **segment** — one call per merged interval: zero wasted bytes, many
//!   calls.
//!
//! [`choose_strategy`] implements the paper's adaptive policy: segment
//! copy when the interval distribution is sparse and the interval count is
//! small; min–max when it is dense or the count is large.

use crate::interval::{covered_bytes, Interval};
use serde::{Deserialize, Serialize};

/// One of the three copy strategies of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyStrategy {
    /// Copy the entire object.
    Direct,
    /// Copy the span from the lowest accessed address to the highest.
    MinMax,
    /// Copy each merged interval separately.
    Segment,
}

impl std::fmt::Display for CopyStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CopyStrategy::Direct => "direct",
            CopyStrategy::MinMax => "min-max",
            CopyStrategy::Segment => "segment",
        })
    }
}

/// Cost accounting for one snapshot update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CopyPlan {
    /// Strategy chosen.
    pub strategy: CopyStrategy,
    /// Number of copy API invocations.
    pub calls: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Bytes transferred that no access touched (waste).
    pub wasted_bytes: u64,
}

impl CopyPlan {
    /// Simulated time of this plan: per-call fixed overhead plus PCIe
    /// streaming time.
    pub fn time_us(&self, per_call_us: f64, pcie_gbps: f64) -> f64 {
        self.calls as f64 * per_call_us + self.bytes as f64 / (pcie_gbps * 1e3)
    }
}

/// Per-object tally of the adaptive policy's choices across a session:
/// how many snapshot updates picked each strategy and what the transfers
/// cost. The dominant choice is the object's *recommended* copy strategy
/// — the knob a user would bake into a custom capture config — and the
/// quantity `vex diff` compares across builds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectCopyPlan {
    /// Allocation label of the object.
    pub label: String,
    /// Updates that chose the direct strategy.
    pub direct: u64,
    /// Updates that chose the min–max strategy.
    pub min_max: u64,
    /// Updates that chose the segment strategy.
    pub segment: u64,
    /// Bytes transferred across all updates.
    pub bytes: u64,
    /// Transferred bytes no access touched.
    pub wasted_bytes: u64,
}

impl ObjectCopyPlan {
    /// An empty tally for `label`.
    pub fn new(label: &str) -> Self {
        ObjectCopyPlan { label: label.to_owned(), ..ObjectCopyPlan::default() }
    }

    /// Records one executed plan.
    pub fn tally(&mut self, plan: &CopyPlan) {
        match plan.strategy {
            CopyStrategy::Direct => self.direct += 1,
            CopyStrategy::MinMax => self.min_max += 1,
            CopyStrategy::Segment => self.segment += 1,
        }
        self.bytes += plan.bytes;
        self.wasted_bytes += plan.wasted_bytes;
    }

    /// Total snapshot updates tallied.
    pub fn updates(&self) -> u64 {
        self.direct + self.min_max + self.segment
    }

    /// The dominant strategy. Ties prefer the fewer-calls option, in
    /// `Direct` < `MinMax` < `Segment` order, so the recommendation is
    /// deterministic.
    pub fn recommended(&self) -> CopyStrategy {
        let mut best = (CopyStrategy::Direct, self.direct);
        if self.min_max > best.1 {
            best = (CopyStrategy::MinMax, self.min_max);
        }
        if self.segment > best.1 {
            best = (CopyStrategy::Segment, self.segment);
        }
        best.0
    }
}

/// Tuning knobs of the adaptive policy.
///
/// The policy realizes the paper's rule — "segment copy when the
/// distribution of accessed intervals is sparse and the number of
/// intervals is small; min–max when dense or numerous" — by pricing both
/// candidates with the copy cost model and picking the cheaper one.
/// `max_segments` is a hard cap: beyond it the per-call bookkeeping on
/// the host side becomes the bottleneck regardless of modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Hard cap on segment-copy calls.
    pub max_segments: u64,
    /// Fixed cost per copy call, microseconds.
    pub per_call_us: f64,
    /// Interconnect bandwidth, GB/s.
    pub pcie_gbps: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy { max_segments: 4096, per_call_us: 6.0, pcie_gbps: 12.0 }
    }
}

/// Builds the plan for one strategy over disjoint sorted `merged`
/// intervals within an object of `object_bytes`.
///
/// # Panics
///
/// Panics if `merged` is empty — a snapshot update with no touched bytes
/// is a caller bug.
pub fn plan(strategy: CopyStrategy, merged: &[Interval], object_bytes: u64) -> CopyPlan {
    assert!(!merged.is_empty(), "no intervals to copy");
    let touched = covered_bytes(merged);
    match strategy {
        CopyStrategy::Direct => CopyPlan {
            strategy,
            calls: 1,
            bytes: object_bytes,
            wasted_bytes: object_bytes - touched,
        },
        CopyStrategy::MinMax => {
            let span = merged.last().expect("nonempty").end - merged[0].start;
            CopyPlan { strategy, calls: 1, bytes: span, wasted_bytes: span - touched }
        }
        CopyStrategy::Segment => {
            CopyPlan { strategy, calls: merged.len() as u64, bytes: touched, wasted_bytes: 0 }
        }
    }
}

/// The adaptive policy: segment copy when the intervals are sparse and
/// few enough that its per-call overhead beats streaming the gaps;
/// min–max otherwise. (Min–max always dominates direct copy: one call,
/// never more bytes.)
///
/// ```rust
/// use vex_core::copy_strategy::{choose_strategy, AdaptivePolicy, CopyStrategy};
/// use vex_core::interval::Interval;
/// let policy = AdaptivePolicy::default();
/// // Two touches a megabyte apart: copy the pieces, not the gap.
/// let sparse = [Interval::new(0, 64), Interval::new(1 << 20, (1 << 20) + 64)];
/// assert_eq!(choose_strategy(&sparse, &policy), CopyStrategy::Segment);
/// // Dense coverage: one spanning copy wins.
/// let dense = [Interval::new(0, 4096)];
/// assert_eq!(choose_strategy(&dense, &policy), CopyStrategy::MinMax);
/// ```
pub fn choose_strategy(merged: &[Interval], policy: &AdaptivePolicy) -> CopyStrategy {
    if merged.is_empty() {
        return CopyStrategy::Segment;
    }
    if merged.len() as u64 > policy.max_segments {
        return CopyStrategy::MinMax;
    }
    let touched = covered_bytes(merged);
    let span = merged.last().expect("nonempty").end - merged[0].start;
    let seg_us =
        merged.len() as f64 * policy.per_call_us + touched as f64 / (policy.pcie_gbps * 1e3);
    let mm_us = policy.per_call_us + span as f64 / (policy.pcie_gbps * 1e3);
    if seg_us < mm_us {
        CopyStrategy::Segment
    } else {
        CopyStrategy::MinMax
    }
}

/// Plans a snapshot update with the adaptive policy.
///
/// # Panics
///
/// Panics if `merged` is empty.
pub fn plan_adaptive(
    merged: &[Interval],
    object_bytes: u64,
    policy: &AdaptivePolicy,
) -> CopyPlan {
    plan(choose_strategy(merged, policy), merged, object_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn direct_copies_everything() {
        let p = plan(CopyStrategy::Direct, &[iv(10, 20)], 100);
        assert_eq!(p.calls, 1);
        assert_eq!(p.bytes, 100);
        assert_eq!(p.wasted_bytes, 90);
    }

    #[test]
    fn minmax_copies_span() {
        let p = plan(CopyStrategy::MinMax, &[iv(10, 20), iv(80, 90)], 100);
        assert_eq!(p.calls, 1);
        assert_eq!(p.bytes, 80);
        assert_eq!(p.wasted_bytes, 60);
    }

    #[test]
    fn segment_copies_exactly() {
        let p = plan(CopyStrategy::Segment, &[iv(10, 20), iv(80, 90)], 100);
        assert_eq!(p.calls, 2);
        assert_eq!(p.bytes, 20);
        assert_eq!(p.wasted_bytes, 0);
    }

    #[test]
    fn adaptive_prefers_segment_for_sparse_few() {
        // Two touches a megabyte apart: streaming the gap would cost
        // ~85us; two copy calls cost 12us.
        let merged = vec![iv(0, 64), iv(1 << 20, (1 << 20) + 64)];
        assert_eq!(choose_strategy(&merged, &AdaptivePolicy::default()), CopyStrategy::Segment);
    }

    #[test]
    fn adaptive_prefers_minmax_for_dense() {
        // Small gaps: the per-call overhead of segment copy exceeds the
        // few wasted bytes min-max streams.
        let merged = vec![iv(0, 8), iv(1000, 1008)];
        assert_eq!(choose_strategy(&merged, &AdaptivePolicy::default()), CopyStrategy::MinMax);
    }

    #[test]
    fn adaptive_prefers_minmax_for_many_segments() {
        // 10k tiny intervals over a modest span: per-call overheads for
        // segment copy dwarf the streamed gap bytes.
        let merged: Vec<Interval> =
            (0..10_000u64).map(|i| iv(i * 1000, i * 1000 + 4)).collect();
        assert_eq!(choose_strategy(&merged, &AdaptivePolicy::default()), CopyStrategy::MinMax);
    }

    #[test]
    fn adaptive_picks_the_modeled_winner() {
        // The adaptive choice must never be costlier than the alternative
        // under its own cost model.
        let policy = AdaptivePolicy::default();
        for gap_kb in [0u64, 1, 8, 64, 512, 4096] {
            let gap = gap_kb * 1024;
            let merged = vec![iv(0, 256), iv(256 + gap, 512 + gap)];
            let chosen = choose_strategy(&merged, &policy);
            let t = |s| plan(s, &merged, 1 << 30).time_us(policy.per_call_us, policy.pcie_gbps);
            assert!(
                t(chosen) <= t(CopyStrategy::MinMax).min(t(CopyStrategy::Segment)) + 1e-9,
                "gap {gap_kb} KiB: chose {chosen}"
            );
        }
    }

    #[test]
    fn plan_time_tradeoff_is_visible() {
        // Sparse case: segment is cheaper despite two calls.
        let merged = vec![iv(0, 64), iv(1_000_000, 1_000_064)];
        let seg = plan(CopyStrategy::Segment, &merged, 2_000_000).time_us(5.0, 12.0);
        let mm = plan(CopyStrategy::MinMax, &merged, 2_000_000).time_us(5.0, 12.0);
        assert!(seg < mm);
        // Dense case: min-max is cheaper than many segment calls.
        let dense: Vec<Interval> = (0..500u64).map(|i| iv(i * 8, i * 8 + 4)).collect();
        let seg = plan(CopyStrategy::Segment, &dense, 8000).time_us(5.0, 12.0);
        let mm = plan(CopyStrategy::MinMax, &dense, 8000).time_us(5.0, 12.0);
        assert!(mm < seg);
    }

    proptest! {
        #[test]
        fn prop_plans_are_consistent(
            raw in prop::collection::vec((0u64..10_000, 1u64..100), 1..50)
        ) {
            // Build disjoint sorted intervals by merging raw input.
            let ivs: Vec<Interval> =
                raw.iter().map(|&(s, l)| iv(s, s + l)).collect();
            let merged = crate::interval::merge_sequential(&ivs);
            let object_bytes = merged.last().unwrap().end + 128;
            let touched = covered_bytes(&merged);

            let d = plan(CopyStrategy::Direct, &merged, object_bytes);
            let m = plan(CopyStrategy::MinMax, &merged, object_bytes);
            let s = plan(CopyStrategy::Segment, &merged, object_bytes);

            // Bytes ordering: segment <= minmax <= direct.
            prop_assert!(s.bytes <= m.bytes);
            prop_assert!(m.bytes <= d.bytes);
            // Calls ordering: direct == minmax == 1 <= segment.
            prop_assert_eq!(d.calls, 1);
            prop_assert_eq!(m.calls, 1);
            prop_assert!(s.calls >= 1);
            // Waste accounting: bytes = touched + wasted.
            for p in [d, m, s] {
                prop_assert_eq!(p.bytes, touched + p.wasted_bytes);
            }
            // Adaptive never picks Direct and always returns a valid plan.
            let a = plan_adaptive(&merged, object_bytes, &AdaptivePolicy::default());
            prop_assert!(a.strategy != CopyStrategy::Direct);
        }
    }
}
