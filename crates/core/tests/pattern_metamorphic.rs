//! Metamorphic properties of the pattern recognizers: transformations of
//! the access stream that must (or must not) change the detected
//! patterns.

use proptest::prelude::*;
use vex_core::access_type::DecodedValue;
use vex_core::patterns::{PatternConfig, PatternHit, ValuePattern, ValueStats};
use vex_gpu::ir::ScalarType;

fn stats_of(pairs: &[(u64, f64)], ty: ScalarType) -> Vec<PatternHit> {
    let mut s = ValueStats::new(PatternConfig::default());
    for &(addr, v) in pairs {
        let bits = match ty {
            ScalarType::F32 => (v as f32).to_bits() as u64,
            ScalarType::F64 => v.to_bits(),
            _ => v as i64 as u64,
        };
        s.record(addr, DecodedValue::from_bits(ty, bits));
    }
    s.patterns()
}

fn names(hits: &[PatternHit]) -> Vec<ValuePattern> {
    let mut v: Vec<ValuePattern> = hits.iter().map(|h| h.pattern).collect();
    v.sort_unstable();
    v
}

proptest! {
    /// Permutation invariance: recognizers see a multiset of
    /// (address, value) pairs — stream order must not matter.
    #[test]
    fn order_does_not_matter(
        mut pairs in prop::collection::vec((0u64..4096, -50i64..50), 1..200),
        seed in any::<u64>(),
    ) {
        let base: Vec<(u64, f64)> =
            pairs.iter().map(|&(a, v)| (a, v as f64)).collect();
        // Deterministic shuffle.
        let mut x = seed | 1;
        for i in (1..pairs.len()).rev() {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            pairs.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let shuffled: Vec<(u64, f64)> =
            pairs.iter().map(|&(a, v)| (a, v as f64)).collect();
        prop_assert_eq!(
            names(&stats_of(&base, ScalarType::S32)),
            names(&stats_of(&shuffled, ScalarType::S32))
        );
    }

    /// Translation invariance of structured detection: adding a constant
    /// to every address preserves perfect linear correlation.
    #[test]
    fn structured_survives_address_translation(offset in 0u64..1_000_000) {
        let affine: Vec<(u64, f64)> =
            (0..64u64).map(|i| (i * 4, i as f64 * 3.0 + 7.0)).collect();
        let translated: Vec<(u64, f64)> =
            affine.iter().map(|&(a, v)| (a + offset, v)).collect();
        let a = names(&stats_of(&affine, ScalarType::S32));
        let b = names(&stats_of(&translated, ScalarType::S32));
        prop_assert!(a.contains(&ValuePattern::StructuredValues));
        prop_assert_eq!(a, b);
    }

    /// Negating the slope keeps structured detection (|r| is used).
    #[test]
    fn structured_sign_insensitive(slope in 1i64..100) {
        let up: Vec<(u64, f64)> =
            (0..64u64).map(|i| (i * 8, (i as i64 * slope) as f64)).collect();
        let down: Vec<(u64, f64)> =
            (0..64u64).map(|i| (i * 8, (-(i as i64) * slope) as f64)).collect();
        prop_assert!(names(&stats_of(&up, ScalarType::S32))
            .contains(&ValuePattern::StructuredValues));
        prop_assert!(names(&stats_of(&down, ScalarType::S32))
            .contains(&ValuePattern::StructuredValues));
    }

    /// Duplicating the whole stream never changes the verdicts (fractions
    /// and distinct counts are scale-free).
    #[test]
    fn duplication_is_idempotent(
        pairs in prop::collection::vec((0u64..512, 0i64..8), 1..100)
    ) {
        let base: Vec<(u64, f64)> =
            pairs.iter().map(|&(a, v)| (a, v as f64)).collect();
        let mut doubled = base.clone();
        doubled.extend_from_slice(&base);
        prop_assert_eq!(
            names(&stats_of(&base, ScalarType::U32)),
            names(&stats_of(&doubled, ScalarType::U32))
        );
    }

    /// Heavy-type detection is threshold-exact: values up to the u8 max
    /// stay demotable; one value beyond it kills the u8 verdict.
    #[test]
    fn heavy_type_boundary(extra in 256i64..100_000) {
        let small: Vec<(u64, f64)> =
            (0..64u64).map(|i| (i * 4, (i % 200) as f64)).collect();
        let hits = stats_of(&small, ScalarType::S32);
        prop_assert!(names(&hits).contains(&ValuePattern::HeavyType));

        let mut with_big = small.clone();
        with_big.push((4096, extra as f64));
        let hits2 = stats_of(&with_big, ScalarType::S32);
        // Might still demote to u16/s16 for extra < 32768 — but never u8.
        for h in &hits2 {
            if h.pattern == ValuePattern::HeavyType {
                prop_assert!(!h.detail.contains("fit u8"), "{}", h.detail);
            }
        }
    }

    /// Zeroing every value turns any stream into single-zero.
    #[test]
    fn zeroing_forces_single_zero(
        addrs in prop::collection::vec(0u64..4096, 1..100)
    ) {
        let zeroed: Vec<(u64, f64)> = addrs.iter().map(|&a| (a, 0.0)).collect();
        let hits = stats_of(&zeroed, ScalarType::F32);
        prop_assert!(names(&hits).contains(&ValuePattern::SingleZero));
        prop_assert!(!names(&hits).contains(&ValuePattern::FrequentValues));
    }
}
