//! Property-based tests over the value flow graph: construction
//! invariants under arbitrary access sequences, and the closure
//! properties of the Def 5.2 / Def 5.3 subgraph analyses.

use proptest::prelude::*;
use vex_core::flowgraph::{AccessKind, FlowGraph, VertexKind};
use vex_gpu::alloc::AllocId;
use vex_gpu::callpath::CallPathId;

/// One step of a random graph-construction trace.
#[derive(Debug, Clone)]
enum Step {
    /// Allocate object `o` at a fresh alloc vertex.
    Alloc(u8),
    /// API `v` reads object `o`.
    Read(u8, u8),
    /// API `v` writes object `o` (with some redundant bytes).
    Write(u8, u8, u16),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..6).prop_map(Step::Alloc),
        (0u8..8, 0u8..6).prop_map(|(v, o)| Step::Read(v, o)),
        (0u8..8, 0u8..6, 0u16..512).prop_map(|(v, o, r)| Step::Write(v, o, r)),
    ]
}

fn build(steps: &[Step]) -> FlowGraph {
    let mut g = FlowGraph::new();
    let mut allocated = [false; 6];
    for s in steps {
        match *s {
            Step::Alloc(o) => {
                if !allocated[o as usize] {
                    let v = g.intern_vertex(
                        VertexKind::Alloc,
                        &format!("obj{o}"),
                        CallPathId(100 + o as u32),
                    );
                    g.set_initial_writer(AllocId(o as u64), v);
                    allocated[o as usize] = true;
                }
            }
            Step::Read(v, o) => {
                if allocated[o as usize] {
                    let vid = g.intern_vertex(
                        VertexKind::Kernel,
                        &format!("k{v}"),
                        CallPathId(v as u32),
                    );
                    g.record_access(vid, AllocId(o as u64), AccessKind::Read, 1024, 0);
                }
            }
            Step::Write(v, o, red) => {
                if allocated[o as usize] {
                    let vid = g.intern_vertex(
                        VertexKind::Kernel,
                        &format!("k{v}"),
                        CallPathId(v as u32),
                    );
                    g.record_access(
                        vid,
                        AllocId(o as u64),
                        AccessKind::Write,
                        1024,
                        red as u64,
                    );
                }
            }
        }
    }
    g
}

proptest! {
    /// Every edge endpoint is a vertex of the graph; redundancy never
    /// exceeds accessed bytes; edge counts are consistent.
    #[test]
    fn construction_invariants(steps in prop::collection::vec(step(), 0..80)) {
        let g = build(&steps);
        for (from, to, _obj, data) in g.edges() {
            prop_assert!(g.vertex(from).is_some(), "dangling source {from}");
            prop_assert!(g.vertex(to).is_some(), "dangling target {to}");
            prop_assert!(data.redundant_bytes <= data.bytes);
            prop_assert!(data.reads + data.writes >= 1);
            prop_assert!((0.0..=1.0).contains(&data.redundancy()));
        }
        // The host vertex always exists.
        prop_assert!(g.vertex(g.host_vertex()).is_some());
    }

    /// A vertex slice is a subgraph: its vertices/edges all exist in the
    /// full graph, every kept edge is on a path through the slice target's
    /// objects, and slicing is idempotent in size.
    #[test]
    fn vertex_slice_is_a_subgraph(steps in prop::collection::vec(step(), 0..80)) {
        let g = build(&steps);
        for v in g.vertices().map(|v| v.id).collect::<Vec<_>>() {
            let slice = g.vertex_slice(v);
            prop_assert!(slice.vertex_count() <= g.vertex_count());
            prop_assert!(slice.edge_count() <= g.edge_count());
            let full_edges: Vec<_> = g.edges().map(|(f, t, o, _)| (f, t, o)).collect();
            for (f, t, o, _) in slice.edges() {
                prop_assert!(full_edges.contains(&(f, t, o)), "invented edge");
            }
        }
    }

    /// Important-graph thresholds are monotone: raising the edge threshold
    /// never adds edges, and threshold 0 keeps everything.
    #[test]
    fn important_graph_monotone(steps in prop::collection::vec(step(), 0..80)) {
        let g = build(&steps);
        let all = g.important(0, u64::MAX);
        prop_assert_eq!(all.edge_count(), g.edge_count());
        let mut prev = usize::MAX;
        for threshold in [0u64, 512, 1024, 4096, 1 << 20] {
            let pruned = g.important(threshold, u64::MAX);
            prop_assert!(pruned.edge_count() <= prev);
            prev = pruned.edge_count();
            // Every kept edge meets the threshold.
            for (_, _, _, d) in pruned.edges() {
                prop_assert!(d.bytes >= threshold);
            }
        }
    }

    /// Last-writer chaining: after any trace, an object's last writer is
    /// the most recent writer (or its alloc vertex if never written).
    #[test]
    fn last_writer_tracks_most_recent_write(steps in prop::collection::vec(step(), 0..80)) {
        let g = build(&steps);
        // Recompute expected last writers by replaying the trace.
        let mut expected: std::collections::HashMap<u8, String> = Default::default();
        let mut allocated = [false; 6];
        for s in &steps {
            match *s {
                Step::Alloc(o) if !allocated[o as usize] => {
                    allocated[o as usize] = true;
                    expected.insert(o, format!("obj{o}"));
                }
                Step::Write(v, o, _) if allocated[o as usize] => {
                    expected.insert(o, format!("k{v}"));
                }
                _ => {}
            }
        }
        for (o, name) in expected {
            let writer = g.last_writer(AllocId(o as u64)).expect("allocated object");
            prop_assert_eq!(&g.vertex(writer).unwrap().name, &name);
        }
    }

    /// DOT export is syntactically sane for arbitrary graphs.
    #[test]
    fn dot_always_wellformed(steps in prop::collection::vec(step(), 0..60)) {
        let g = build(&steps);
        let dot = g.to_dot(0.33);
        prop_assert!(dot.starts_with("digraph"));
        let ends_with_brace = dot.trim_end().ends_with('}');
        prop_assert!(ends_with_brace);
        let opens = dot.matches('[').count();
        let closes = dot.matches(']').count();
        prop_assert_eq!(opens, closes);
        // One node line per vertex, one edge line per edge.
        prop_assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    }
}
