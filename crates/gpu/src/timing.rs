//! Analytic timing model with presets for the paper's two platforms.
//!
//! The paper evaluates on an RTX 2080 Ti (GDDR6, weak FP64) and an A100
//! (HBM2, strong FP64) — Table 2. Speedup *shapes* in Tables 3 and 4 hinge
//! on exactly the first-order characteristics an analytic roofline model
//! captures:
//!
//! * memory-bound kernels scale with memory bandwidth, so removing loads
//!   and stores helps the 2080 Ti (616 GB/s) more than the A100
//!   (1555 GB/s);
//! * FP64-heavy kernels are crippled on the 2080 Ti (1:32 FP64 ratio), so
//!   bypassing FP64 computation (backprop's single-zero optimization)
//!   yields a far larger speedup there than on the A100 (1:2);
//! * CPU↔GPU transfers ride PCIe, two orders of magnitude slower than
//!   device memory, so eliminating copies dominates "memory time".
//!
//! Times are simulated microseconds (`f64`); no wall-clock is consulted.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hardware description used by the timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors (Table 2: 72 / 108).
    pub num_sms: u32,
    /// Device memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// FP32 throughput in GFLOP/s.
    pub fp32_gflops: f64,
    /// FP64 throughput in GFLOP/s.
    pub fp64_gflops: f64,
    /// Integer throughput in GOP/s.
    pub int_gops: f64,
    /// Host↔device interconnect bandwidth in GB/s (PCIe).
    pub pcie_gbps: f64,
    /// Fixed overhead per kernel launch, microseconds.
    pub launch_overhead_us: f64,
    /// Fixed overhead per memory API call (alloc/copy/set), microseconds.
    pub memop_overhead_us: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
}

impl DeviceSpec {
    /// The RTX 2080 Ti platform of the paper (Table 2): 72 SMs, 11 GB
    /// GDDR6 at ~616 GB/s, FP64 at 1/32 of FP32, PCIe 3.0.
    pub fn rtx2080ti() -> Self {
        DeviceSpec {
            name: "RTX 2080 Ti".to_owned(),
            num_sms: 72,
            mem_bandwidth_gbps: 616.0,
            fp32_gflops: 13_450.0,
            fp64_gflops: 420.0,
            int_gops: 13_450.0,
            pcie_gbps: 12.0,
            launch_overhead_us: 0.5,
            memop_overhead_us: 1.0,
            memory_bytes: 11 * (1 << 30),
            max_threads_per_block: 1024,
        }
    }

    /// The A100 platform of the paper (Table 2): 108 SMs, 40 GB HBM2 at
    /// ~1555 GB/s, FP64 at 1/2 of FP32, PCIe 4.0.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100".to_owned(),
            num_sms: 108,
            mem_bandwidth_gbps: 1555.0,
            fp32_gflops: 19_500.0,
            fp64_gflops: 9_700.0,
            int_gops: 19_500.0,
            pcie_gbps: 22.0,
            launch_overhead_us: 0.5,
            memop_overhead_us: 1.0,
            memory_bytes: 40 * (1 << 30),
            max_threads_per_block: 1024,
        }
    }

    /// A small test device: 1 MiB of memory, round-number throughputs.
    /// Used by unit tests so failures produce easy numbers.
    pub fn test_small() -> Self {
        DeviceSpec {
            name: "TestGPU".to_owned(),
            num_sms: 4,
            mem_bandwidth_gbps: 100.0,
            fp32_gflops: 1000.0,
            fp64_gflops: 100.0,
            int_gops: 1000.0,
            pcie_gbps: 10.0,
            launch_overhead_us: 1.0,
            memop_overhead_us: 1.0,
            memory_bytes: 1 << 20,
            max_threads_per_block: 1024,
        }
    }

    /// Time to move `bytes` across PCIe, in microseconds (excluding the
    /// fixed per-call overhead).
    pub fn pcie_time_us(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.pcie_gbps * 1e3)
    }

    /// Time to stream `bytes` through device memory, in microseconds.
    pub fn devmem_time_us(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.mem_bandwidth_gbps * 1e3)
    }
}

/// Work counters of one kernel launch used to derive its simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelWork {
    /// Bytes loaded from global memory.
    pub bytes_loaded: u64,
    /// Bytes stored to global memory.
    pub bytes_stored: u64,
    /// Single-precision floating operations.
    pub flops_f32: u64,
    /// Double-precision floating operations.
    pub flops_f64: u64,
    /// Integer operations.
    pub int_ops: u64,
}

impl KernelWork {
    /// Total global memory traffic.
    pub fn bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }
}

/// Computes simulated times from work counters against a [`DeviceSpec`].
#[derive(Debug, Clone)]
pub struct TimeModel {
    spec: DeviceSpec,
}

impl TimeModel {
    /// Creates a model for `spec`.
    pub fn new(spec: DeviceSpec) -> Self {
        TimeModel { spec }
    }

    /// The underlying device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Roofline kernel time: `max(memory streaming, compute) + launch
    /// overhead`, microseconds.
    pub fn kernel_time_us(&self, work: &KernelWork) -> f64 {
        let mem = self.spec.devmem_time_us(work.bytes());
        let compute = work.flops_f32 as f64 / (self.spec.fp32_gflops * 1e3)
            + work.flops_f64 as f64 / (self.spec.fp64_gflops * 1e3)
            + work.int_ops as f64 / (self.spec.int_gops * 1e3);
        mem.max(compute) + self.spec.launch_overhead_us
    }

    /// Host-to-device or device-to-host copy time, microseconds.
    pub fn pcie_copy_time_us(&self, bytes: u64) -> f64 {
        self.spec.pcie_time_us(bytes) + self.spec.memop_overhead_us
    }

    /// Device-to-device copy time (read + write device memory).
    pub fn d2d_copy_time_us(&self, bytes: u64) -> f64 {
        self.spec.devmem_time_us(bytes * 2) + self.spec.memop_overhead_us
    }

    /// Memset time (write-only device traffic).
    pub fn memset_time_us(&self, bytes: u64) -> f64 {
        self.spec.devmem_time_us(bytes) + self.spec.memop_overhead_us
    }

    /// Allocation / free bookkeeping time.
    pub fn alloc_time_us(&self) -> f64 {
        self.spec.memop_overhead_us
    }
}

/// Accumulated simulated time, split the way Table 3 reports it:
/// per-kernel execution time and aggregate "memory time" (allocation,
/// copy, and set).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeReport {
    /// Total simulated kernel time per kernel name, microseconds.
    pub kernel_time_us: BTreeMap<String, f64>,
    /// Number of launches per kernel name.
    pub kernel_launches: BTreeMap<String, u64>,
    /// Total memory-operation time (alloc + copy + set), microseconds.
    pub memory_time_us: f64,
    /// Number of memory API invocations.
    pub memory_ops: u64,
}

impl TimeReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one kernel launch.
    pub fn add_kernel(&mut self, name: &str, time_us: f64) {
        *self.kernel_time_us.entry(name.to_owned()).or_default() += time_us;
        *self.kernel_launches.entry(name.to_owned()).or_default() += 1;
    }

    /// Records one memory operation.
    pub fn add_memory_op(&mut self, time_us: f64) {
        self.memory_time_us += time_us;
        self.memory_ops += 1;
    }

    /// Total kernel time over all kernels, microseconds.
    pub fn total_kernel_time_us(&self) -> f64 {
        self.kernel_time_us.values().sum()
    }

    /// Kernel time for one kernel name (0.0 if never launched).
    pub fn kernel_us(&self, name: &str) -> f64 {
        self.kernel_time_us.get(name).copied().unwrap_or(0.0)
    }

    /// Total simulated application time (kernels + memory ops).
    pub fn total_us(&self) -> f64 {
        self.total_kernel_time_us() + self.memory_time_us
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &TimeReport) {
        for (k, v) in &other.kernel_time_us {
            *self.kernel_time_us.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.kernel_launches {
            *self.kernel_launches.entry(k.clone()).or_default() += v;
        }
        self.memory_time_us += other.memory_time_us;
        self.memory_ops += other.memory_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_kernel_scales_with_bandwidth() {
        let w = KernelWork { bytes_loaded: 1 << 30, ..Default::default() };
        let t_2080 = TimeModel::new(DeviceSpec::rtx2080ti()).kernel_time_us(&w);
        let t_a100 = TimeModel::new(DeviceSpec::a100()).kernel_time_us(&w);
        assert!(t_2080 > t_a100 * 2.0, "2080Ti ({t_2080}) vs A100 ({t_a100})");
    }

    #[test]
    fn fp64_penalty_on_2080ti() {
        let w = KernelWork { flops_f64: 1 << 30, ..Default::default() };
        let t_2080 = TimeModel::new(DeviceSpec::rtx2080ti()).kernel_time_us(&w);
        let t_a100 = TimeModel::new(DeviceSpec::a100()).kernel_time_us(&w);
        // FP64 ratio 420 vs 9700 GFLOPs -> ~23x gap.
        assert!(t_2080 > t_a100 * 10.0);
    }

    #[test]
    fn pcie_much_slower_than_devmem() {
        let spec = DeviceSpec::a100();
        assert!(spec.pcie_time_us(1 << 20) > spec.devmem_time_us(1 << 20) * 10.0);
    }

    #[test]
    fn report_accumulates_and_merges() {
        let mut r = TimeReport::new();
        r.add_kernel("k", 10.0);
        r.add_kernel("k", 5.0);
        r.add_memory_op(3.0);
        assert_eq!(r.kernel_us("k"), 15.0);
        assert_eq!(r.kernel_launches["k"], 2);
        assert_eq!(r.total_us(), 18.0);

        let mut r2 = TimeReport::new();
        r2.add_kernel("k", 1.0);
        r2.add_kernel("j", 2.0);
        r2.merge(&r);
        assert_eq!(r2.kernel_us("k"), 16.0);
        assert_eq!(r2.kernel_us("j"), 2.0);
        assert_eq!(r2.memory_ops, 1);
    }

    #[test]
    fn roofline_takes_max() {
        let m = TimeModel::new(DeviceSpec::test_small());
        // Pure compute: 1e9 fp32 ops at 1000 GFLOPs = 1000 us (+1 launch).
        let w = KernelWork { flops_f32: 1_000_000_000, ..Default::default() };
        assert!((m.kernel_time_us(&w) - 1001.0).abs() < 1e-6);
        // Adding a tiny memory load does not change the max.
        let w2 = KernelWork { bytes_loaded: 1000, ..w };
        assert_eq!(m.kernel_time_us(&w), m.kernel_time_us(&w2));
    }
}
