//! GPU streams.
//!
//! The simulator executes operations synchronously in issue order, but
//! records the stream each operation was enqueued on. ValueExpert
//! *serializes concurrent GPU streams* during measurement (§4 of the
//! paper); [`StreamTable::serialized`] reports whether a profiler has
//! requested that mode so the timing model can charge the serialization
//! penalty (no copy/compute overlap).

use serde::{Deserialize, Serialize};

/// Identifier of one stream. Stream 0 is the default stream.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The default stream.
    pub const DEFAULT: StreamId = StreamId(0);
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Tracks created streams and the serialization flag.
#[derive(Debug, Clone)]
pub struct StreamTable {
    next: u32,
    serialized: bool,
    /// Per-stream count of enqueued operations (diagnostics).
    op_counts: Vec<u64>,
}

impl Default for StreamTable {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamTable {
    /// Creates a table containing only the default stream.
    pub fn new() -> Self {
        StreamTable { next: 1, serialized: false, op_counts: vec![0] }
    }

    /// Creates a new stream.
    pub fn create(&mut self) -> StreamId {
        let id = StreamId(self.next);
        self.next += 1;
        self.op_counts.push(0);
        id
    }

    /// Number of streams (including the default stream).
    pub fn count(&self) -> u32 {
        self.next
    }

    /// Records one operation enqueued on `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `stream` was not created by this table.
    pub fn record_op(&mut self, stream: StreamId) {
        self.op_counts[stream.0 as usize] += 1;
    }

    /// Operations enqueued on `stream` so far.
    pub fn ops(&self, stream: StreamId) -> u64 {
        self.op_counts.get(stream.0 as usize).copied().unwrap_or(0)
    }

    /// Enables or disables profiler-requested stream serialization.
    pub fn set_serialized(&mut self, on: bool) {
        self.serialized = on;
    }

    /// Whether streams are serialized (profiling mode).
    pub fn serialized(&self) -> bool {
        self.serialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_exists() {
        let t = StreamTable::new();
        assert_eq!(t.count(), 1);
        assert_eq!(StreamId::default(), StreamId::DEFAULT);
    }

    #[test]
    fn create_and_record() {
        let mut t = StreamTable::new();
        let s1 = t.create();
        let s2 = t.create();
        assert_ne!(s1, s2);
        t.record_op(s1);
        t.record_op(s1);
        t.record_op(StreamId::DEFAULT);
        assert_eq!(t.ops(s1), 2);
        assert_eq!(t.ops(s2), 0);
        assert_eq!(t.ops(StreamId::DEFAULT), 1);
    }

    #[test]
    fn serialization_flag() {
        let mut t = StreamTable::new();
        assert!(!t.serialized());
        t.set_serialized(true);
        assert!(t.serialized());
    }
}
