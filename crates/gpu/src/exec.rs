//! SIMT execution engine: grids, blocks, threads, and instrumented memory
//! access.
//!
//! Execution is deterministic: blocks run in ascending flat-block order and
//! threads within a block in ascending flat-thread order. Every global or
//! shared load/store funnels through [`ThreadCtx`], which performs the
//! memory operation, updates the launch's work counters, and — when the
//! launch is instrumented — emits an [`AccessEvent`] to every registered
//! [`MemAccessHook`].

use crate::dim::Dim3;
use crate::hooks::{AccessEvent, LaunchId, MemAccessHook};
use crate::host::Pod;
use crate::ir::{MemSpace, Pc, ScalarType};
use crate::kernel::Kernel;
use crate::memory::GlobalMemory;
use crate::timing::KernelWork;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Floating-point precision classes for work accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit float operations.
    F32,
    /// 64-bit float operations.
    F64,
    /// Integer operations.
    Int,
}

/// Work and traffic counters accumulated over one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Threads executed.
    pub threads: u64,
    /// Global loads executed.
    pub loads: u64,
    /// Global stores executed.
    pub stores: u64,
    /// Bytes loaded from global memory.
    pub bytes_loaded: u64,
    /// Bytes stored to global memory.
    pub bytes_stored: u64,
    /// Shared-memory loads executed.
    pub shared_loads: u64,
    /// Shared-memory stores executed.
    pub shared_stores: u64,
    /// FP32 operations.
    pub flops_f32: u64,
    /// FP64 operations.
    pub flops_f64: u64,
    /// Integer operations.
    pub int_ops: u64,
}

impl LaunchStats {
    /// Work summary consumed by the timing model.
    pub fn work(&self) -> KernelWork {
        KernelWork {
            bytes_loaded: self.bytes_loaded,
            bytes_stored: self.bytes_stored,
            flops_f32: self.flops_f32,
            flops_f64: self.flops_f64,
            int_ops: self.int_ops,
        }
    }

    /// Total global memory accesses (loads + stores).
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Scalar types kernels may load and store.
///
/// This trait is sealed via [`Pod`]; it is implemented exactly for the
/// fixed-width numeric primitives.
pub trait DeviceScalar: Pod {
    /// The IR-level scalar type tag.
    const TYPE: ScalarType;
    /// Reconstructs the value from little-endian raw bits.
    fn from_bits(bits: u64) -> Self;
    /// Raw little-endian bits (zero-extended to 64).
    fn to_bits(self) -> u64;
}

macro_rules! impl_scalar_int {
    ($t:ty, $tag:expr) => {
        impl DeviceScalar for $t {
            const TYPE: ScalarType = $tag;
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
            fn to_bits(self) -> u64 {
                // Cast through the unsigned same-width type to avoid sign
                // extension surprises, then widen.
                self as u64 & (u64::MAX >> (64 - 8 * std::mem::size_of::<$t>()))
            }
        }
    };
}

impl_scalar_int!(u8, ScalarType::U8);
impl_scalar_int!(i8, ScalarType::S8);
impl_scalar_int!(u16, ScalarType::U16);
impl_scalar_int!(i16, ScalarType::S16);
impl_scalar_int!(u32, ScalarType::U32);
impl_scalar_int!(i32, ScalarType::S32);

impl DeviceScalar for u64 {
    const TYPE: ScalarType = ScalarType::U64;
    fn from_bits(bits: u64) -> Self {
        bits
    }
    fn to_bits(self) -> u64 {
        self
    }
}

impl DeviceScalar for i64 {
    const TYPE: ScalarType = ScalarType::S64;
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
    fn to_bits(self) -> u64 {
        self as u64
    }
}

impl DeviceScalar for f32 {
    const TYPE: ScalarType = ScalarType::F32;
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    fn to_bits(self) -> u64 {
        self.to_bits() as u64
    }
}

impl DeviceScalar for f64 {
    const TYPE: ScalarType = ScalarType::F64;
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
}

/// Per-block execution context; hands out [`ThreadCtx`]s.
pub struct BlockCtx<'a> {
    memory: &'a mut GlobalMemory,
    shared: Vec<u8>,
    hooks: &'a [Arc<dyn MemAccessHook>],
    instrument: bool,
    stats: &'a mut LaunchStats,
    launch: LaunchId,
    grid: Dim3,
    block_dim: Dim3,
    block_flat: u32,
}

impl std::fmt::Debug for BlockCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCtx")
            .field("block_flat", &self.block_flat)
            .field("block_dim", &self.block_dim)
            .finish()
    }
}

impl BlockCtx<'_> {
    /// Flat index of this block within the grid.
    pub fn block_flat(&self) -> u32 {
        self.block_flat
    }

    /// Block (x, y, z) coordinate within the grid.
    pub fn block_coord(&self) -> (u32, u32, u32) {
        self.grid.unflatten(self.block_flat as usize)
    }

    /// Grid dimensions of the launch.
    pub fn grid_dim(&self) -> Dim3 {
        self.grid
    }

    /// Block dimensions of the launch.
    pub fn block_dim(&self) -> Dim3 {
        self.block_dim
    }

    /// Runs `f` once for every thread of the block in ascending flat-thread
    /// order. May be called repeatedly to express `__syncthreads()` phases.
    pub fn for_each_thread(&mut self, mut f: impl FnMut(&mut ThreadCtx<'_>)) {
        for t in 0..self.block_dim.count() {
            let mut ctx = ThreadCtx {
                memory: self.memory,
                shared: &mut self.shared,
                hooks: self.hooks,
                instrument: self.instrument,
                stats: self.stats,
                launch: self.launch,
                grid: self.grid,
                block_dim: self.block_dim,
                block_flat: self.block_flat,
                thread_flat: t as u32,
            };
            f(&mut ctx);
        }
    }
}

/// Per-thread execution context: identity, memory access, work accounting.
pub struct ThreadCtx<'a> {
    memory: &'a mut GlobalMemory,
    shared: &'a mut Vec<u8>,
    hooks: &'a [Arc<dyn MemAccessHook>],
    instrument: bool,
    stats: &'a mut LaunchStats,
    launch: LaunchId,
    grid: Dim3,
    block_dim: Dim3,
    block_flat: u32,
    thread_flat: u32,
}

impl std::fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("block", &self.block_flat)
            .field("thread", &self.thread_flat)
            .finish()
    }
}

impl ThreadCtx<'_> {
    /// Flat block index within the grid (`blockIdx` flattened).
    pub fn block_flat(&self) -> u32 {
        self.block_flat
    }

    /// Block (x, y, z) coordinate.
    pub fn block_coord(&self) -> (u32, u32, u32) {
        self.grid.unflatten(self.block_flat as usize)
    }

    /// Flat thread index within the block (`threadIdx` flattened).
    pub fn thread_flat(&self) -> u32 {
        self.thread_flat
    }

    /// Thread (x, y, z) coordinate within the block.
    pub fn thread_coord(&self) -> (u32, u32, u32) {
        self.block_dim.unflatten(self.thread_flat as usize)
    }

    /// Grid dimensions of the launch.
    pub fn grid_dim(&self) -> Dim3 {
        self.grid
    }

    /// Block dimensions of the launch.
    pub fn block_dim(&self) -> Dim3 {
        self.block_dim
    }

    /// Globally flat thread id: `block_flat * block_size + thread_flat`.
    pub fn global_thread_id(&self) -> usize {
        self.block_flat as usize * self.block_dim.count() + self.thread_flat as usize
    }

    fn emit(
        &mut self,
        pc: Pc,
        space: MemSpace,
        addr: u64,
        size: u8,
        is_store: bool,
        bits: u64,
    ) {
        self.emit_full(pc, space, addr, size, is_store, bits, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_full(
        &mut self,
        pc: Pc,
        space: MemSpace,
        addr: u64,
        size: u8,
        is_store: bool,
        bits: u64,
        is_atomic: bool,
    ) {
        if !self.instrument {
            return;
        }
        let ev = AccessEvent {
            launch: self.launch,
            pc,
            space,
            addr,
            size,
            is_store,
            bits,
            block: self.block_flat,
            thread: self.thread_flat,
            is_atomic,
        };
        for h in self.hooks {
            h.on_access(&ev);
        }
    }

    /// Loads one scalar from global memory.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds address — an out-of-bounds access in a
    /// kernel is a bug in the workload, and the simulator fails loudly with
    /// kernel coordinates in the message.
    pub fn load<T: DeviceScalar>(&mut self, pc: Pc, addr: u64) -> T {
        let size = std::mem::size_of::<T>() as u8;
        let bits = self.memory.read_bits(addr, size).unwrap_or_else(|e| {
            panic!(
                "global load fault at {pc}, block {}, thread {}: {e}",
                self.block_flat, self.thread_flat
            )
        });
        self.stats.loads += 1;
        self.stats.bytes_loaded += size as u64;
        self.emit(pc, MemSpace::Global, addr, size, false, bits);
        T::from_bits(bits)
    }

    /// Stores one scalar to global memory.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds address (see [`ThreadCtx::load`]).
    pub fn store<T: DeviceScalar>(&mut self, pc: Pc, addr: u64, value: T) {
        let size = std::mem::size_of::<T>() as u8;
        let bits = value.to_bits();
        self.memory.write_bits(addr, size, bits).unwrap_or_else(|e| {
            panic!(
                "global store fault at {pc}, block {}, thread {}: {e}",
                self.block_flat, self.thread_flat
            )
        });
        self.stats.stores += 1;
        self.stats.bytes_stored += size as u64;
        self.emit(pc, MemSpace::Global, addr, size, true, bits);
    }

    /// Atomic read-modify-write add on global memory; returns the old
    /// value. Emits a load event followed by a store event at the same PC,
    /// the way binary instrumentation sees a hardware atomic.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds address.
    pub fn atomic_add<T>(&mut self, pc: Pc, addr: u64, value: T) -> T
    where
        T: DeviceScalar + std::ops::Add<Output = T>,
    {
        let size = std::mem::size_of::<T>() as u8;
        let bits = self.memory.read_bits(addr, size).unwrap_or_else(|e| {
            panic!(
                "atomic load fault at {pc}, block {}, thread {}: {e}",
                self.block_flat, self.thread_flat
            )
        });
        self.stats.loads += 1;
        self.stats.bytes_loaded += size as u64;
        self.emit_full(pc, MemSpace::Global, addr, size, false, bits, true);
        let old = T::from_bits(bits);
        let new = old + value;
        let new_bits = new.to_bits();
        self.memory.write_bits(addr, size, new_bits).unwrap_or_else(|e| {
            panic!(
                "atomic store fault at {pc}, block {}, thread {}: {e}",
                self.block_flat, self.thread_flat
            )
        });
        self.stats.stores += 1;
        self.stats.bytes_stored += size as u64;
        self.emit_full(pc, MemSpace::Global, addr, size, true, new_bits, true);
        old
    }

    /// Loads one scalar from this block's shared memory at byte offset
    /// `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access exceeds the kernel's declared shared size.
    pub fn shared_load<T: DeviceScalar>(&mut self, pc: Pc, offset: u64) -> T {
        let size = std::mem::size_of::<T>();
        let end = offset as usize + size;
        assert!(
            end <= self.shared.len(),
            "shared load fault at {pc}: [{offset}, {end}) beyond {} bytes",
            self.shared.len()
        );
        let mut buf = [0u8; 8];
        buf[..size].copy_from_slice(&self.shared[offset as usize..end]);
        let bits = u64::from_le_bytes(buf);
        self.stats.shared_loads += 1;
        self.emit(pc, MemSpace::Shared, offset, size as u8, false, bits);
        T::from_bits(bits)
    }

    /// Stores one scalar to this block's shared memory at byte offset
    /// `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access exceeds the kernel's declared shared size.
    pub fn shared_store<T: DeviceScalar>(&mut self, pc: Pc, offset: u64, value: T) {
        let size = std::mem::size_of::<T>();
        let end = offset as usize + size;
        assert!(
            end <= self.shared.len(),
            "shared store fault at {pc}: [{offset}, {end}) beyond {} bytes",
            self.shared.len()
        );
        let bits = value.to_bits();
        self.shared[offset as usize..end].copy_from_slice(&bits.to_le_bytes()[..size]);
        self.stats.shared_stores += 1;
        self.emit(pc, MemSpace::Shared, offset, size as u8, true, bits);
    }

    /// Accounts `n` arithmetic operations of the given precision.
    pub fn flops(&mut self, precision: Precision, n: u64) {
        match precision {
            Precision::F32 => self.stats.flops_f32 += n,
            Precision::F64 => self.stats.flops_f64 += n,
            Precision::Int => self.stats.int_ops += n,
        }
    }
}

/// Executes one launch over `memory`, firing `hooks` when `instrument` is
/// true. Returns the accumulated work counters.
///
/// This is the low-level entry point; applications normally go through
/// [`crate::runtime::Runtime::launch`], which also handles API hooks,
/// timing, and launch ids.
pub fn run_launch(
    kernel: &dyn Kernel,
    grid: Dim3,
    block: Dim3,
    memory: &mut GlobalMemory,
    hooks: &[Arc<dyn MemAccessHook>],
    instrument: bool,
    launch: LaunchId,
) -> LaunchStats {
    let mut stats = LaunchStats::default();
    let shared_bytes = kernel.shared_bytes();
    for b in 0..grid.count() {
        let mut blk = BlockCtx {
            memory,
            shared: vec![0u8; shared_bytes as usize],
            hooks,
            instrument,
            stats: &mut stats,
            launch,
            grid,
            block_dim: block,
            block_flat: b as u32,
        };
        kernel.execute_block(&mut blk);
    }
    stats.threads = (grid.count() * block.count()) as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{InstrTable, InstrTableBuilder};
    use parking_lot::Mutex;

    struct Recorder(Mutex<Vec<AccessEvent>>);
    impl MemAccessHook for Recorder {
        fn on_access(&self, event: &AccessEvent) {
            self.0.lock().push(*event);
        }
    }

    struct AddOne {
        base: u64,
        n: usize,
    }
    impl Kernel for AddOne {
        fn name(&self) -> &str {
            "add_one"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTableBuilder::new()
                .load(Pc(0), ScalarType::F32, MemSpace::Global)
                .store(Pc(1), ScalarType::F32, MemSpace::Global)
                .build()
        }
        fn execute(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i < self.n {
                let addr = self.base + (i * 4) as u64;
                let v: f32 = ctx.load(Pc(0), addr);
                ctx.flops(Precision::F32, 1);
                ctx.store(Pc(1), addr, v + 1.0);
            }
        }
    }

    #[test]
    fn executes_and_counts() {
        let mut mem = GlobalMemory::new(4096);
        for i in 0..10u64 {
            mem.write_bits(256 + i * 4, 4, (i as f32).to_bits() as u64).unwrap();
        }
        let k = AddOne { base: 256, n: 10 };
        let stats = run_launch(
            &k,
            Dim3::linear(1),
            Dim3::linear(32),
            &mut mem,
            &[],
            false,
            LaunchId(1),
        );
        assert_eq!(stats.threads, 32);
        assert_eq!(stats.loads, 10);
        assert_eq!(stats.stores, 10);
        assert_eq!(stats.bytes_loaded, 40);
        assert_eq!(stats.flops_f32, 10);
        assert_eq!(f32::from_bits(mem.read_bits(256, 4).unwrap() as u32), 1.0);
    }

    #[test]
    fn hooks_receive_all_events_when_instrumented() {
        let mut mem = GlobalMemory::new(4096);
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let hooks: Vec<Arc<dyn MemAccessHook>> = vec![rec.clone()];
        let k = AddOne { base: 256, n: 4 };
        run_launch(&k, Dim3::linear(1), Dim3::linear(8), &mut mem, &hooks, true, LaunchId(7));
        let evs = rec.0.lock();
        assert_eq!(evs.len(), 8); // 4 loads + 4 stores
        assert!(evs.iter().all(|e| e.launch == LaunchId(7)));
        let stores: Vec<_> = evs.iter().filter(|e| e.is_store).collect();
        assert_eq!(stores.len(), 4);
        // First store writes 0.0 + 1.0 = 1.0
        assert_eq!(f32::from_bits(stores[0].bits as u32), 1.0);
    }

    #[test]
    fn hooks_silent_when_not_instrumented() {
        let mut mem = GlobalMemory::new(4096);
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let hooks: Vec<Arc<dyn MemAccessHook>> = vec![rec.clone()];
        run_launch(
            &AddOne { base: 256, n: 4 },
            Dim3::linear(1),
            Dim3::linear(8),
            &mut mem,
            &hooks,
            false,
            LaunchId(0),
        );
        assert!(rec.0.lock().is_empty());
    }

    struct SharedPhases;
    impl Kernel for SharedPhases {
        fn name(&self) -> &str {
            "shared_phases"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTableBuilder::new()
                .store(Pc(0), ScalarType::U32, MemSpace::Shared)
                .load(Pc(1), ScalarType::U32, MemSpace::Shared)
                .store(Pc(2), ScalarType::U32, MemSpace::Global)
                .build()
        }
        fn shared_bytes(&self) -> u64 {
            4 * 8
        }
        fn execute(&self, _ctx: &mut ThreadCtx<'_>) {
            unreachable!("block-phased kernel");
        }
        // Phase 1: every thread writes shared[t] = t.
        // (sync) Phase 2: every thread reads its *neighbor's* slot —
        // only correct because execute_block separates the phases.
        fn execute_block(&self, blk: &mut BlockCtx<'_>) {
            blk.for_each_thread(|ctx| {
                let t = ctx.thread_flat() as u64;
                ctx.shared_store::<u32>(Pc(0), t * 4, t as u32);
            });
            blk.for_each_thread(|ctx| {
                let t = ctx.thread_flat() as u64;
                let neighbor = (t + 1) % 8;
                let v: u32 = ctx.shared_load(Pc(1), neighbor * 4);
                ctx.store::<u32>(Pc(2), 256 + t * 4, v);
            });
        }
    }

    #[test]
    fn block_phases_model_syncthreads() {
        let mut mem = GlobalMemory::new(4096);
        let stats = run_launch(
            &SharedPhases,
            Dim3::linear(1),
            Dim3::linear(8),
            &mut mem,
            &[],
            false,
            LaunchId(0),
        );
        assert_eq!(stats.shared_stores, 8);
        assert_eq!(stats.shared_loads, 8);
        // Thread 0 read neighbor 1's value even though thread 1 runs later
        // in a naive serialization — the phase split makes it correct.
        assert_eq!(mem.read_bits(256, 4).unwrap(), 1);
        assert_eq!(mem.read_bits(256 + 7 * 4, 4).unwrap(), 0);
    }

    #[test]
    fn atomic_add_emits_load_and_store() {
        let mut mem = GlobalMemory::new(4096);
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let hooks: Vec<Arc<dyn MemAccessHook>> = vec![rec.clone()];

        struct Histo;
        impl Kernel for Histo {
            fn name(&self) -> &str {
                "histo"
            }
            fn instr_table(&self) -> InstrTable {
                InstrTableBuilder::new().load(Pc(0), ScalarType::U32, MemSpace::Global).build()
            }
            fn execute(&self, ctx: &mut ThreadCtx<'_>) {
                ctx.atomic_add::<u32>(Pc(0), 256, 1);
            }
        }
        run_launch(
            &Histo,
            Dim3::linear(1),
            Dim3::linear(4),
            &mut mem,
            &hooks,
            true,
            LaunchId(0),
        );
        assert_eq!(mem.read_bits(256, 4).unwrap(), 4);
        let evs = rec.0.lock();
        assert_eq!(evs.len(), 8);
        assert_eq!(evs.iter().filter(|e| e.is_store).count(), 4);
    }

    #[test]
    fn scalar_bit_roundtrips() {
        assert_eq!(<i32 as DeviceScalar>::from_bits((-5i32).to_bits()), -5);
        assert_eq!(<f64 as DeviceScalar>::from_bits((2.5f64).to_bits()), 2.5);
        assert_eq!(<u8 as DeviceScalar>::from_bits(300u64 & 0xFF) as u32, 44);
        assert_eq!((-1i8).to_bits(), 0xFF);
        assert_eq!((-1i16).to_bits(), 0xFFFF);
    }
}
