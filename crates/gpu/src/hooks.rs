//! Observation interfaces: API interception and per-access instrumentation.
//!
//! Two hook families mirror the paper's two collection mechanisms:
//!
//! * [`ApiHook`] — invoked before and after every runtime API call
//!   (allocation, memory copy, memory set, kernel launch), with a read-only
//!   [`DeviceView`] of device memory and the allocation table. This is the
//!   equivalent of overloading the `cudaMemcpy`/`cudaMemset`/launch entry
//!   points, and is what the *coarse-grained* collector uses to capture
//!   value snapshots.
//! * [`MemAccessHook`] — invoked on every memory load and store executed by
//!   a kernel, carrying PC, address, width, raw bits, and thread
//!   coordinates. This is the equivalent of the Sanitizer API's
//!   per-instruction callbacks, used by the *fine-grained* collector.
//!
//! Hooks take `&self`; implementations use interior mutability so a single
//! hook object can be registered for both roles and shared with the
//! analysis side.

use crate::alloc::AllocationInfo;
use crate::callpath::CallPathId;
use crate::dim::Dim3;
use crate::exec::LaunchStats;
use crate::ir::{InstrTable, MemSpace, Pc};
use crate::memory::DevicePtr;
use crate::stream::StreamId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of one kernel launch (monotonic per runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LaunchId(pub u64);

impl std::fmt::Display for LaunchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "launch{}", self.0)
    }
}

/// Read-only view of device state offered to hooks.
pub trait DeviceView {
    /// Reads `dst.len()` bytes of device memory at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::GpuError::OutOfBounds`] for invalid ranges.
    fn read(&self, addr: u64, dst: &mut [u8]) -> Result<(), crate::error::GpuError>;

    /// Copies `[addr, addr+len)` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::GpuError::OutOfBounds`] for invalid ranges.
    fn read_vec(&self, addr: u64, len: u64) -> Result<Vec<u8>, crate::error::GpuError> {
        let mut v = vec![0u8; usize::try_from(len).expect("read too large")];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// The live allocation containing `addr`, if any.
    fn find_allocation(&self, addr: u64) -> Option<AllocationInfo>;

    /// All live allocations, in address order.
    fn live_allocations(&self) -> Vec<AllocationInfo>;
}

/// A [`DeviceView`] over byte ranges captured earlier from a live view.
///
/// Device memory is only valid inside a hook callback; an analyzer that
/// defers its work to another thread must copy the ranges it will read
/// *during* the callback and replay against the capture. `capture` takes
/// the synchronous snapshot; `read` serves any range fully contained in
/// one captured segment.
///
/// `find_allocation`/`live_allocations` intentionally report nothing: a
/// capture preserves bytes, not the allocation table — consumers replay
/// against their own registry replica.
#[derive(Debug, Clone, Default)]
pub struct CapturedView {
    /// Captured `(start_addr, bytes)` segments, sorted by start address.
    segments: Vec<(u64, Vec<u8>)>,
}

impl CapturedView {
    /// Creates an empty capture (all reads fail).
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `[addr, addr+len)` out of `view` into the capture.
    ///
    /// # Errors
    ///
    /// Propagates the live view's error for invalid ranges.
    pub fn capture(
        &mut self,
        view: &dyn DeviceView,
        addr: u64,
        len: u64,
    ) -> Result<(), crate::error::GpuError> {
        let bytes = view.read_vec(addr, len)?;
        let at = self.segments.partition_point(|(s, _)| *s < addr);
        self.segments.insert(at, (addr, bytes));
        Ok(())
    }

    /// Number of captured segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total captured bytes.
    pub fn captured_bytes(&self) -> u64 {
        self.segments.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// The captured `(start_addr, bytes)` segments, sorted by start.
    ///
    /// Exposed so captures can be serialized (trace recording) and
    /// reconstructed with [`CapturedView::from_segments`].
    pub fn segments(&self) -> &[(u64, Vec<u8>)] {
        &self.segments
    }

    /// Rebuilds a capture from previously serialized segments.
    ///
    /// Segments are re-sorted by start address, restoring the invariant
    /// `capture` maintains; overlap semantics are the caller's concern,
    /// exactly as with repeated `capture` calls.
    pub fn from_segments(mut segments: Vec<(u64, Vec<u8>)>) -> Self {
        segments.sort_by_key(|(s, _)| *s);
        CapturedView { segments }
    }
}

impl DeviceView for CapturedView {
    fn read(&self, addr: u64, dst: &mut [u8]) -> Result<(), crate::error::GpuError> {
        let len = dst.len() as u64;
        // Last segment starting at or before `addr`.
        let idx = self.segments.partition_point(|(s, _)| *s <= addr);
        let mut limit = 0;
        if idx > 0 {
            let (start, bytes) = &self.segments[idx - 1];
            let end = start + bytes.len() as u64;
            if addr + len <= end {
                let off = (addr - start) as usize;
                dst.copy_from_slice(&bytes[off..off + dst.len()]);
                return Ok(());
            }
            limit = end;
        }
        Err(crate::error::GpuError::OutOfBounds { addr, len, limit })
    }

    fn find_allocation(&self, _addr: u64) -> Option<AllocationInfo> {
        None
    }

    fn live_allocations(&self) -> Vec<AllocationInfo> {
        Vec::new()
    }
}

/// What a runtime API invocation did. Pointers and sizes are the arguments
/// the application passed; allocation identities can be recovered through
/// the [`DeviceView`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ApiKind {
    /// `cudaMalloc`-equivalent; carries the resulting allocation.
    Malloc {
        /// The new allocation.
        info: AllocationInfo,
    },
    /// `cudaFree`-equivalent.
    Free {
        /// The allocation being released.
        info: AllocationInfo,
    },
    /// Host-to-device copy.
    MemcpyH2D {
        /// Destination device pointer.
        dst: DevicePtr,
        /// Bytes copied.
        bytes: u64,
    },
    /// Device-to-host copy.
    MemcpyD2H {
        /// Source device pointer.
        src: DevicePtr,
        /// Bytes copied.
        bytes: u64,
    },
    /// Device-to-device copy.
    MemcpyD2D {
        /// Destination device pointer.
        dst: DevicePtr,
        /// Source device pointer.
        src: DevicePtr,
        /// Bytes copied.
        bytes: u64,
    },
    /// `cudaMemset`-equivalent.
    Memset {
        /// Destination device pointer.
        dst: DevicePtr,
        /// Fill byte.
        value: u8,
        /// Bytes set.
        bytes: u64,
    },
    /// Kernel launch; detailed configuration is in the associated
    /// [`LaunchInfo`] delivered to [`MemAccessHook::on_launch_begin`].
    KernelLaunch {
        /// Launch identifier.
        launch: LaunchId,
        /// Kernel name.
        name: String,
    },
}

impl ApiKind {
    /// Short lowercase tag for display ("malloc", "memcpy_h2d", ...).
    pub fn tag(&self) -> &'static str {
        match self {
            ApiKind::Malloc { .. } => "malloc",
            ApiKind::Free { .. } => "free",
            ApiKind::MemcpyH2D { .. } => "memcpy_h2d",
            ApiKind::MemcpyD2H { .. } => "memcpy_d2h",
            ApiKind::MemcpyD2D { .. } => "memcpy_d2d",
            ApiKind::Memset { .. } => "memset",
            ApiKind::KernelLaunch { .. } => "kernel",
        }
    }
}

/// One intercepted API invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiEvent {
    /// Monotonic sequence number over all API calls of the runtime.
    pub seq: u64,
    /// What the call did.
    pub kind: ApiKind,
    /// Interned CPU calling context of the call site.
    pub context: CallPathId,
    /// Stream the operation was enqueued on.
    pub stream: StreamId,
}

/// Whether a hook is being called before or after the API executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApiPhase {
    /// The API has not executed yet (device state is the "before" state).
    Before,
    /// The API has completed (device state is the "after" state).
    After,
}

/// Observer of runtime API invocations.
pub trait ApiHook: Send + Sync {
    /// Called before and after each API invocation.
    fn on_api(&self, phase: ApiPhase, event: &ApiEvent, view: &dyn DeviceView);
}

/// One memory access executed by a kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// Launch this access belongs to.
    pub launch: LaunchId,
    /// Static program counter of the instruction.
    pub pc: Pc,
    /// Address space.
    pub space: MemSpace,
    /// Address (global address for [`MemSpace::Global`]; byte offset within
    /// the block's shared memory for [`MemSpace::Shared`]).
    pub addr: u64,
    /// Access width in bytes (1..=8).
    pub size: u8,
    /// True for stores.
    pub is_store: bool,
    /// Raw value bits, little-endian in the low `size` bytes. For loads the
    /// value read; for stores the value written.
    pub bits: u64,
    /// Flat block index within the grid.
    pub block: u32,
    /// Flat thread index within the block.
    pub thread: u32,
    /// True when the access is one half of a hardware atomic
    /// read-modify-write (race detectors must not flag atomics).
    pub is_atomic: bool,
}

impl AccessEvent {
    /// Warp index of the accessing thread within its block (32 threads per
    /// warp, as on all NVIDIA GPUs this tool targets).
    pub fn warp(&self) -> u32 {
        self.thread / 32
    }

    /// Lane of the accessing thread within its warp.
    pub fn lane(&self) -> u32 {
        self.thread % 32
    }

    /// Half-open address interval `[addr, addr+size)` touched.
    pub fn interval(&self) -> (u64, u64) {
        (self.addr, self.addr + self.size as u64)
    }
}

/// Static configuration of one kernel launch, delivered to access hooks.
#[derive(Debug, Clone)]
pub struct LaunchInfo {
    /// Launch identifier.
    pub launch: LaunchId,
    /// Kernel name.
    pub kernel_name: String,
    /// Grid dimensions.
    pub grid: Dim3,
    /// Block dimensions.
    pub block: Dim3,
    /// Shared memory bytes per block.
    pub shared_bytes: u64,
    /// Calling context of the launch site.
    pub context: CallPathId,
    /// Stream of the launch.
    pub stream: StreamId,
    /// The kernel's instruction table (mini-SASS) for offline analysis.
    pub instr_table: Arc<InstrTable>,
}

/// Observer of kernel memory traffic, the Sanitizer-API equivalent.
///
/// `on_launch_begin` may return `false` to decline instrumentation of this
/// launch entirely (kernel filtering / sampling); in that case no
/// `on_access` callbacks fire for it, and `on_launch_end` still fires with
/// `instrumented = false`.
pub trait MemAccessHook: Send + Sync {
    /// A kernel is about to run. Return `false` to skip instrumenting it.
    fn on_launch_begin(&self, _info: &LaunchInfo) -> bool {
        true
    }

    /// One memory access was executed.
    fn on_access(&self, event: &AccessEvent);

    /// The kernel finished. `view` shows post-kernel device memory.
    fn on_launch_end(
        &self,
        _info: &LaunchInfo,
        _stats: &LaunchStats,
        _instrumented: bool,
        _view: &dyn DeviceView,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_and_lane() {
        let ev = AccessEvent {
            launch: LaunchId(0),
            pc: Pc(0),
            space: MemSpace::Global,
            addr: 256,
            size: 4,
            is_store: false,
            bits: 0,
            block: 0,
            thread: 70,
            is_atomic: false,
        };
        assert_eq!(ev.warp(), 2);
        assert_eq!(ev.lane(), 6);
        assert_eq!(ev.interval(), (256, 260));
    }

    struct SliceView(Vec<u8>);
    impl DeviceView for SliceView {
        fn read(&self, addr: u64, dst: &mut [u8]) -> Result<(), crate::error::GpuError> {
            let a = addr as usize;
            dst.copy_from_slice(&self.0[a..a + dst.len()]);
            Ok(())
        }
        fn find_allocation(&self, _addr: u64) -> Option<AllocationInfo> {
            None
        }
        fn live_allocations(&self) -> Vec<AllocationInfo> {
            Vec::new()
        }
    }

    #[test]
    fn captured_view_replays_contained_ranges() {
        let live = SliceView((0u8..=255).collect());
        let mut cap = CapturedView::new();
        cap.capture(&live, 16, 8).unwrap();
        cap.capture(&live, 64, 4).unwrap();
        assert_eq!(cap.segment_count(), 2);
        assert_eq!(cap.captured_bytes(), 12);
        // Full segment.
        assert_eq!(cap.read_vec(16, 8).unwrap(), (16u8..24).collect::<Vec<_>>());
        // Sub-range of a segment.
        assert_eq!(cap.read_vec(18, 4).unwrap(), vec![18, 19, 20, 21]);
        assert_eq!(cap.read_vec(64, 4).unwrap(), vec![64, 65, 66, 67]);
        // Uncaptured or straddling ranges fail.
        assert!(cap.read_vec(0, 4).is_err());
        assert!(cap.read_vec(20, 8).is_err());
        assert!(cap.find_allocation(16).is_none());
        assert!(cap.live_allocations().is_empty());
    }

    #[test]
    fn captured_view_keeps_segments_sorted() {
        let live = SliceView(vec![7u8; 128]);
        let mut cap = CapturedView::new();
        cap.capture(&live, 96, 8).unwrap();
        cap.capture(&live, 0, 8).unwrap();
        cap.capture(&live, 32, 8).unwrap();
        assert_eq!(cap.read_vec(0, 8).unwrap(), vec![7u8; 8]);
        assert_eq!(cap.read_vec(32, 8).unwrap(), vec![7u8; 8]);
        assert_eq!(cap.read_vec(96, 8).unwrap(), vec![7u8; 8]);
    }

    #[test]
    fn api_kind_tags() {
        let k = ApiKind::Memset { dst: DevicePtr(256), value: 0, bytes: 4 };
        assert_eq!(k.tag(), "memset");
        let k = ApiKind::KernelLaunch { launch: LaunchId(3), name: "k".into() };
        assert_eq!(k.tag(), "kernel");
    }
}
