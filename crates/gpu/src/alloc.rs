//! A first-fit free-list allocator over device global memory.
//!
//! ValueExpert tracks the *life cycle* of every data object: allocation
//! context, starting address, and size (§5.1 of the paper). The allocator
//! therefore assigns every allocation a stable [`AllocId`] and keeps enough
//! metadata to answer "which live object contains address X?" queries,
//! which the profiler performs on every access event.

use crate::callpath::CallPathId;
use crate::error::GpuError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of one device allocation (unique within one [`Allocator`]'s
/// lifetime; never reused even after `free`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AllocId(pub u64);

impl std::fmt::Display for AllocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Metadata of one device allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationInfo {
    /// Stable identifier.
    pub id: AllocId,
    /// First byte address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
    /// User-supplied label (e.g. the variable name, like `l.output_gpu`).
    pub label: String,
    /// Calling context of the allocation site.
    pub context: CallPathId,
    /// Whether the allocation is still live.
    pub live: bool,
}

impl AllocationInfo {
    /// Whether `addr` falls inside this allocation.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.addr + self.size
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.addr + self.size
    }
}

/// Byte written into freshly allocated memory. Real GPU memory is
/// uninitialized; a recognizable poison pattern keeps workloads honest
/// (reading it produces obviously-garbage values rather than zeros).
pub const POISON_BYTE: u8 = 0xCD;

#[derive(Debug, Clone, Copy)]
struct FreeBlock {
    addr: u64,
    size: u64,
}

/// First-fit allocator with coalescing free.
#[derive(Debug)]
pub struct Allocator {
    /// Free blocks ordered by address.
    free: Vec<FreeBlock>,
    /// Live allocations by start address.
    by_addr: BTreeMap<u64, AllocId>,
    /// All allocations ever made (the profiler needs dead objects too).
    infos: BTreeMap<AllocId, AllocationInfo>,
    next_id: u64,
    capacity: u64,
    in_use: u64,
    /// Alignment of every allocation, in bytes (CUDA guarantees 256).
    align: u64,
}

impl Allocator {
    /// Creates an allocator over `[base, base+capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero (address 0 is reserved for null) or
    /// `capacity` is zero.
    pub fn new(base: u64, capacity: u64) -> Self {
        assert!(base > 0, "allocator base must leave address 0 unused");
        assert!(capacity > 0, "capacity must be nonzero");
        Allocator {
            free: vec![FreeBlock { addr: base, size: capacity }],
            by_addr: BTreeMap::new(),
            infos: BTreeMap::new(),
            next_id: 1,
            capacity,
            in_use: 0,
            align: 256,
        }
    }

    /// Total free bytes (possibly fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.in_use
    }

    /// Allocates `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::ZeroSize`] for zero-size requests and
    /// [`GpuError::OutOfMemory`] when no free block fits.
    pub fn alloc(
        &mut self,
        size: u64,
        label: &str,
        context: CallPathId,
    ) -> Result<AllocationInfo, GpuError> {
        if size == 0 {
            return Err(GpuError::ZeroSize);
        }
        let rounded = size.div_ceil(self.align) * self.align;
        let slot = self
            .free
            .iter()
            .position(|b| b.size >= rounded)
            .ok_or(GpuError::OutOfMemory { requested: size, free: self.free_bytes() })?;
        let block = self.free[slot];
        if block.size == rounded {
            self.free.remove(slot);
        } else {
            self.free[slot] =
                FreeBlock { addr: block.addr + rounded, size: block.size - rounded };
        }
        self.in_use += rounded;
        let id = AllocId(self.next_id);
        self.next_id += 1;
        let info = AllocationInfo {
            id,
            addr: block.addr,
            size,
            label: label.to_owned(),
            context,
            live: true,
        };
        self.by_addr.insert(block.addr, id);
        self.infos.insert(id, info.clone());
        Ok(info)
    }

    /// Frees the allocation starting at `addr`, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidFree`] if `addr` is not the start of a
    /// live allocation.
    pub fn free(&mut self, addr: u64) -> Result<AllocationInfo, GpuError> {
        let id = self.by_addr.remove(&addr).ok_or(GpuError::InvalidFree { addr })?;
        let info = {
            let info = self.infos.get_mut(&id).expect("by_addr/infos in sync");
            info.live = false;
            info.clone()
        };
        let rounded = info.size.div_ceil(self.align) * self.align;
        self.in_use -= rounded;
        // Insert the freed block keeping `free` address-sorted, then coalesce.
        let pos = self.free.partition_point(|b| b.addr < addr);
        self.free.insert(pos, FreeBlock { addr, size: rounded });
        self.coalesce(pos);
        Ok(info)
    }

    fn coalesce(&mut self, pos: usize) {
        // Try to merge with the following block first, then the preceding.
        if pos + 1 < self.free.len()
            && self.free[pos].addr + self.free[pos].size == self.free[pos + 1].addr
        {
            self.free[pos].size += self.free[pos + 1].size;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].addr + self.free[pos - 1].size == self.free[pos].addr {
            self.free[pos - 1].size += self.free[pos].size;
            self.free.remove(pos);
        }
    }

    /// Metadata for allocation `id` (live or freed).
    pub fn info(&self, id: AllocId) -> Option<&AllocationInfo> {
        self.infos.get(&id)
    }

    /// The live allocation containing `addr`, if any.
    pub fn find_containing(&self, addr: u64) -> Option<&AllocationInfo> {
        let (_, id) = self.by_addr.range(..=addr).next_back()?;
        let info = &self.infos[id];
        info.contains(addr).then_some(info)
    }

    /// The live allocation *starting at* `addr`, if any.
    pub fn find_exact(&self, addr: u64) -> Option<&AllocationInfo> {
        self.by_addr.get(&addr).map(|id| &self.infos[id])
    }

    /// Iterates over all live allocations in address order.
    pub fn live_allocations(&self) -> impl Iterator<Item = &AllocationInfo> {
        self.by_addr.values().map(move |id| &self.infos[id])
    }

    /// Iterates over every allocation ever made, in id order.
    pub fn all_allocations(&self) -> impl Iterator<Item = &AllocationInfo> {
        self.infos.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CallPathId {
        CallPathId::ROOT
    }

    #[test]
    fn alloc_free_reuse() {
        let mut a = Allocator::new(256, 4096);
        let x = a.alloc(100, "x", ctx()).unwrap();
        let y = a.alloc(100, "y", ctx()).unwrap();
        assert_ne!(x.addr, y.addr);
        assert_eq!(x.addr % 256, 0);
        a.free(x.addr).unwrap();
        let z = a.alloc(50, "z", ctx()).unwrap();
        // First-fit: reuses the freed hole.
        assert_eq!(z.addr, x.addr);
        assert_ne!(z.id, x.id, "ids are never reused");
    }

    #[test]
    fn out_of_memory() {
        let mut a = Allocator::new(256, 1024);
        assert!(a.alloc(2048, "big", ctx()).is_err());
        let e = a.alloc(0, "zero", ctx());
        assert_eq!(e, Err(GpuError::ZeroSize));
    }

    #[test]
    fn invalid_free() {
        let mut a = Allocator::new(256, 1024);
        let x = a.alloc(16, "x", ctx()).unwrap();
        assert!(a.free(x.addr + 1).is_err());
        a.free(x.addr).unwrap();
        assert_eq!(a.free(x.addr), Err(GpuError::InvalidFree { addr: x.addr }));
    }

    #[test]
    fn coalescing_restores_capacity() {
        let mut a = Allocator::new(256, 4096);
        let xs: Vec<_> =
            (0..4).map(|i| a.alloc(256, &format!("b{i}"), ctx()).unwrap()).collect();
        for x in &xs {
            a.free(x.addr).unwrap();
        }
        // After freeing everything we can allocate the whole arena again.
        assert!(a.alloc(4096, "all", ctx()).is_ok());
    }

    #[test]
    fn find_containing() {
        let mut a = Allocator::new(256, 4096);
        let x = a.alloc(100, "x", ctx()).unwrap();
        assert_eq!(a.find_containing(x.addr + 50).unwrap().id, x.id);
        assert_eq!(a.find_containing(x.addr + 100), None, "past logical size");
        assert!(a.find_exact(x.addr).is_some());
        assert!(a.find_exact(x.addr + 1).is_none());
        a.free(x.addr).unwrap();
        assert!(a.find_containing(x.addr + 50).is_none());
        // Dead object metadata still queryable by id.
        assert!(!a.info(x.id).unwrap().live);
    }

    #[test]
    fn live_allocations_in_address_order() {
        let mut a = Allocator::new(256, 8192);
        let x = a.alloc(256, "x", ctx()).unwrap();
        let y = a.alloc(256, "y", ctx()).unwrap();
        a.free(x.addr).unwrap();
        let z = a.alloc(256, "z", ctx()).unwrap(); // lands in x's hole
        let addrs: Vec<u64> = a.live_allocations().map(|i| i.addr).collect();
        assert_eq!(addrs, vec![z.addr, y.addr]);
        assert!(addrs[0] < addrs[1]);
    }
}
