//! # vex-gpu — a deterministic SIMT GPU simulator
//!
//! This crate is the hardware substrate for the ValueExpert reproduction.
//! It models the parts of a CUDA-capable system that a *value profiler*
//! observes:
//!
//! * a device with global memory, an allocator, and streams
//!   ([`runtime::Runtime`]),
//! * a CUDA-like API surface (`malloc` / `memcpy` / `memset` / kernel
//!   launch) whose every invocation can be intercepted by [`hooks::ApiHook`]
//!   observers — the moral equivalent of overloading the CUDA runtime,
//! * SIMT kernel execution over a grid of blocks of threads
//!   ([`kernel::Kernel`], [`exec::ThreadCtx`]) where every memory load and
//!   store emits an [`hooks::AccessEvent`] to registered
//!   [`hooks::MemAccessHook`]s — the moral equivalent of the NVIDIA
//!   Sanitizer API's per-instruction callbacks,
//! * a miniature kernel IR ([`ir`]) standing in for SASS so that binary
//!   analyses (access-type slicing) have something to chew on, and
//! * an analytic timing model ([`timing`]) with presets for the two GPUs of
//!   the paper's evaluation (RTX 2080 Ti and A100) so that optimization
//!   experiments report first-order-faithful simulated times.
//!
//! Determinism: given the same program, the simulator produces the same
//! access streams, the same memory contents, and the same simulated times on
//! every run. Threads within a launch execute in a fixed order (block-major,
//! then thread-major), which serializes the SIMT semantics; data races in
//! kernels therefore resolve deterministically rather than being detected.
//!
//! ## Quick example
//!
//! ```rust
//! use vex_gpu::prelude::*;
//!
//! // A kernel that doubles a float array.
//! struct Double { data: DevicePtr, n: usize }
//! impl Kernel for Double {
//!     fn name(&self) -> &str { "double" }
//!     fn instr_table(&self) -> InstrTable {
//!         InstrTableBuilder::new()
//!             .load(Pc(0), ScalarType::F32, MemSpace::Global)
//!             .op(Pc(1), Opcode::FMul(FloatWidth::F32))
//!             .store(Pc(2), ScalarType::F32, MemSpace::Global)
//!             .build()
//!     }
//!     fn execute(&self, ctx: &mut ThreadCtx<'_>) {
//!         let i = ctx.global_thread_id();
//!         if i < self.n {
//!             let addr = self.data.offset((i * 4) as u64).addr();
//!             let v: f32 = ctx.load(Pc(0), addr);
//!             ctx.flops(Precision::F32, 1);
//!             ctx.store(Pc(2), addr, v * 2.0);
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), GpuError> {
//! let mut rt = Runtime::new(DeviceSpec::rtx2080ti());
//! let buf = rt.malloc(4 * 4, "data")?;
//! rt.memcpy_h2d(buf, host::as_bytes(&[1.0f32, 2.0, 3.0, 4.0]))?;
//! rt.launch(&Double { data: buf, n: 4 }, Dim3::linear(1), Dim3::linear(32))?;
//! let mut out = [0.0f32; 4];
//! rt.memcpy_d2h(host::as_bytes_mut(&mut out), buf)?;
//! assert_eq!(out, [2.0, 4.0, 6.0, 8.0]);
//! # Ok(()) }
//! ```

#![deny(missing_docs)]

pub mod alloc;
pub mod callpath;
pub mod dim;
pub mod error;
pub mod exec;
pub mod hooks;
pub mod host;
pub mod ir;
pub mod kernel;
pub mod memory;
pub mod runtime;
pub mod stream;
pub mod timing;

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::alloc::{AllocId, AllocationInfo};
    pub use crate::callpath::{CallPathId, Frame};
    pub use crate::dim::Dim3;
    pub use crate::error::GpuError;
    pub use crate::exec::{LaunchStats, Precision, ThreadCtx};
    pub use crate::hooks::LaunchId;
    pub use crate::hooks::{AccessEvent, ApiEvent, ApiHook, ApiKind, MemAccessHook};
    pub use crate::host;
    pub use crate::ir::{
        AccessDecl, FloatWidth, InstrTable, InstrTableBuilder, Instruction, IntWidth, MemSpace,
        Opcode, Pc, Reg, ScalarType,
    };
    pub use crate::kernel::Kernel;
    pub use crate::memory::DevicePtr;
    pub use crate::runtime::Runtime;
    pub use crate::stream::StreamId;
    pub use crate::timing::{DeviceSpec, TimeReport};
}
