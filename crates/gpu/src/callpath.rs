//! Calling-context recording.
//!
//! ValueExpert records the full CPU call path of every GPU API invocation
//! and merges value-flow-graph vertices that share a call path (§5.2).
//! Real tools unwind the stack; our workloads are straight-line Rust, so
//! the runtime exposes an explicit frame stack that workload code pushes
//! and pops (RAII-guarded). Paths are interned into stable
//! [`CallPathId`]s, giving the profiler cheap context comparison.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One frame of a call path: function name plus optional file/line.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// Function (or operator/layer) name.
    pub function: String,
    /// Source file, when known.
    pub file: Option<String>,
    /// Source line, when known.
    pub line: Option<u32>,
}

impl Frame {
    /// Creates a frame with just a function name.
    pub fn named(function: impl Into<String>) -> Self {
        Frame { function: function.into(), file: None, line: None }
    }

    /// Creates a frame with full source location.
    pub fn located(function: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        Frame { function: function.into(), file: Some(file.into()), line: Some(line) }
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.file, self.line) {
            (Some(file), Some(line)) => write!(f, "{} ({file}:{line})", self.function),
            (Some(file), None) => write!(f, "{} ({file})", self.function),
            _ => f.write_str(&self.function),
        }
    }
}

/// Interned identifier of a full call path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CallPathId(pub u32);

impl CallPathId {
    /// The empty call path (no frames pushed).
    pub const ROOT: CallPathId = CallPathId(0);
}

impl fmt::Display for CallPathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// Records the current call path and interns observed paths.
#[derive(Debug)]
pub struct CallPathRecorder {
    stack: Vec<Frame>,
    interned: HashMap<Vec<Frame>, CallPathId>,
    paths: Vec<Arc<[Frame]>>,
}

impl Default for CallPathRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl CallPathRecorder {
    /// Creates a recorder whose current path is the empty root path.
    pub fn new() -> Self {
        let mut r =
            CallPathRecorder { stack: Vec::new(), interned: HashMap::new(), paths: Vec::new() };
        let root = r.intern_current();
        debug_assert_eq!(root, CallPathId::ROOT);
        r
    }

    /// Pushes a frame; prefer [`CallPathRecorder::scope`] where possible.
    pub fn push(&mut self, frame: Frame) {
        self.stack.push(frame);
    }

    /// Pops the innermost frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (unbalanced push/pop).
    pub fn pop(&mut self) {
        self.stack.pop().expect("unbalanced call path pop");
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Interns the current path and returns its id.
    pub fn intern_current(&mut self) -> CallPathId {
        if let Some(&id) = self.interned.get(&self.stack) {
            return id;
        }
        let id = CallPathId(u32::try_from(self.paths.len()).expect("too many call paths"));
        self.interned.insert(self.stack.clone(), id);
        self.paths.push(self.stack.clone().into());
        id
    }

    /// The frames of an interned path (outermost first).
    pub fn frames(&self, id: CallPathId) -> Option<&[Frame]> {
        self.paths.get(id.0 as usize).map(|p| &p[..])
    }

    /// Renders a path as `a -> b -> c`.
    pub fn render(&self, id: CallPathId) -> String {
        match self.frames(id) {
            Some([]) => "<root>".to_owned(),
            Some(frames) => {
                frames.iter().map(Frame::to_string).collect::<Vec<_>>().join(" -> ")
            }
            None => format!("<unknown {id}>"),
        }
    }

    /// Number of distinct interned paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_zero() {
        let mut r = CallPathRecorder::new();
        assert_eq!(r.intern_current(), CallPathId::ROOT);
        assert_eq!(r.render(CallPathId::ROOT), "<root>");
    }

    #[test]
    fn same_path_same_id() {
        let mut r = CallPathRecorder::new();
        r.push(Frame::named("main"));
        r.push(Frame::named("forward"));
        let a = r.intern_current();
        r.pop();
        r.push(Frame::named("forward"));
        let b = r.intern_current();
        assert_eq!(a, b);
        r.push(Frame::named("fill"));
        let c = r.intern_current();
        assert_ne!(a, c);
        assert_eq!(r.render(c), "main -> forward -> fill");
    }

    #[test]
    fn frames_roundtrip() {
        let mut r = CallPathRecorder::new();
        r.push(Frame::located("f", "lib.rs", 10));
        let id = r.intern_current();
        let frames = r.frames(id).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].line, Some(10));
        assert!(r.render(id).contains("lib.rs:10"));
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_pop_panics() {
        let mut r = CallPathRecorder::new();
        r.pop();
    }
}
