//! The kernel abstraction.

use crate::exec::{BlockCtx, ThreadCtx};
use crate::ir::InstrTable;

/// A GPU kernel.
///
/// A kernel supplies two views of itself:
///
/// * **behaviour** — [`Kernel::execute`], run once per thread of the launch
///   grid against a [`ThreadCtx`] that performs (and instruments) its
///   memory accesses; and
/// * **a static "binary"** — [`Kernel::instr_table`], the miniature-SASS
///   instruction table the offline analyzer consumes. Every `Pc` a kernel
///   passes to [`ThreadCtx::load`]/[`ThreadCtx::store`] should appear in
///   the table with a matching width, so the profiler's access-type
///   analysis agrees with the dynamic stream.
///
/// Kernels that need block-level phase synchronization (the effect of
/// `__syncthreads()` between producer and consumer phases) override
/// [`Kernel::execute_block`] and run each phase as a separate sweep over
/// the block's threads.
pub trait Kernel {
    /// Kernel (mangled or source) name; used for filtering and reporting.
    fn name(&self) -> &str;

    /// The kernel's static instruction table.
    fn instr_table(&self) -> InstrTable;

    /// Per-thread behaviour.
    fn execute(&self, ctx: &mut ThreadCtx<'_>);

    /// Per-block behaviour; the default runs [`Kernel::execute`] for every
    /// thread of the block in ascending flat-thread order.
    fn execute_block(&self, blk: &mut BlockCtx<'_>) {
        blk.for_each_thread(|ctx| self.execute(ctx));
    }

    /// Shared memory bytes to allocate per block.
    fn shared_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim3;
    use crate::exec::run_launch;
    use crate::hooks::LaunchId;
    use crate::ir::{InstrTableBuilder, MemSpace, Pc, ScalarType};
    use crate::memory::GlobalMemory;

    struct WriteId;
    impl Kernel for WriteId {
        fn name(&self) -> &str {
            "write_id"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build()
        }
        fn execute(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id() as u64;
            ctx.store::<u32>(Pc(0), 256 + i * 4, ctx.global_thread_id() as u32);
        }
    }

    #[test]
    fn default_execute_block_covers_all_threads() {
        let mut mem = GlobalMemory::new(4096);
        let stats = run_launch(
            &WriteId,
            Dim3::linear(2),
            Dim3::linear(4),
            &mut mem,
            &[],
            false,
            LaunchId(0),
        );
        assert_eq!(stats.threads, 8);
        assert_eq!(stats.stores, 8);
        for i in 0..8u64 {
            assert_eq!(mem.read_bits(256 + i * 4, 4).unwrap(), i);
        }
    }
}
