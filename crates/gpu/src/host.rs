//! Host-side byte-view helpers for plain-old-data numeric slices.
//!
//! The runtime's memory copy APIs move raw bytes, exactly like
//! `cudaMemcpy`. These helpers let workloads pass `&[f32]`/`&[i32]`/…
//! buffers without hand-rolled serialization loops.

/// Marker for types that are valid for any bit pattern and contain no
/// padding, so reinterpreting slices of them as bytes (and back) is sound.
///
/// This trait is sealed: it is implemented exactly for the fixed-width
/// numeric primitives and cannot be implemented downstream.
pub trait Pod: private::Sealed + Copy + 'static {}

mod private {
    pub trait Sealed {}
}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(
            impl private::Sealed for $t {}
            impl Pod for $t {}
        )*
    };
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Views a slice of POD values as bytes (native endianness).
///
/// ```rust
/// let v = [1.0f32, 2.0];
/// assert_eq!(vex_gpu::host::as_bytes(&v).len(), 8);
/// ```
pub fn as_bytes<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: T is sealed to fixed-width numeric primitives: no padding,
    // no invalid bit patterns, and alignment of u8 (1) is never stricter.
    unsafe {
        std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), std::mem::size_of_val(slice))
    }
}

/// Views a mutable slice of POD values as bytes (native endianness).
pub fn as_bytes_mut<T: Pod>(slice: &mut [T]) -> &mut [u8] {
    // SAFETY: as in `as_bytes`; additionally any byte pattern written is a
    // valid T because T is sealed to primitives valid for all bit patterns.
    unsafe {
        std::slice::from_raw_parts_mut(
            slice.as_mut_ptr().cast::<u8>(),
            std::mem::size_of_val(slice),
        )
    }
}

/// Copies a byte buffer into a freshly allocated `Vec<T>`.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
pub fn from_bytes<T: Pod + Default>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    assert!(
        bytes.len().is_multiple_of(size),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        size
    );
    let mut out = vec![T::default(); bytes.len() / size];
    as_bytes_mut(&mut out).copy_from_slice(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f32() {
        let v = [1.5f32, -2.25, 0.0, f32::INFINITY];
        let b = as_bytes(&v);
        let back: Vec<f32> = from_bytes(b);
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_i64() {
        let v = [i64::MIN, -1, 0, i64::MAX];
        let back: Vec<i64> = from_bytes(as_bytes(&v));
        assert_eq!(back, v);
    }

    #[test]
    fn mutation_through_bytes() {
        let mut v = [0u32; 2];
        as_bytes_mut(&mut v)[0] = 0xFF;
        assert_eq!(v[0], 0xFF);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_length_panics() {
        let _: Vec<u32> = from_bytes(&[0u8; 7]);
    }
}
