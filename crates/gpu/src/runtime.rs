//! The CUDA-like runtime: allocation, transfers, launches, interception.

use crate::alloc::{AllocationInfo, Allocator, POISON_BYTE};
use crate::callpath::{CallPathId, CallPathRecorder, Frame};
use crate::dim::Dim3;
use crate::error::GpuError;
use crate::exec::{run_launch, LaunchStats};
use crate::hooks::{
    ApiEvent, ApiHook, ApiKind, ApiPhase, DeviceView, LaunchId, LaunchInfo, MemAccessHook,
};
use crate::host::Pod;
use crate::kernel::Kernel;
use crate::memory::{DevicePtr, GlobalMemory};
use crate::stream::{StreamId, StreamTable};
use crate::timing::{DeviceSpec, TimeModel, TimeReport};
use std::sync::Arc;

pub use crate::hooks::LaunchId as RuntimeLaunchId;

/// Base address of the allocation arena (everything below is reserved, so
/// null and small garbage addresses always fault).
const HEAP_BASE: u64 = 256;

struct View<'a> {
    memory: &'a GlobalMemory,
    allocator: &'a Allocator,
}

impl DeviceView for View<'_> {
    fn read(&self, addr: u64, dst: &mut [u8]) -> Result<(), GpuError> {
        self.memory.read(addr, dst)
    }
    fn find_allocation(&self, addr: u64) -> Option<AllocationInfo> {
        self.allocator.find_containing(addr).cloned()
    }
    fn live_allocations(&self) -> Vec<AllocationInfo> {
        self.allocator.live_allocations().cloned().collect()
    }
}

/// The simulated GPU runtime — the API surface an application links
/// against, and the interception point profilers hook into.
///
/// See the [crate-level example](crate) for typical use.
pub struct Runtime {
    memory: GlobalMemory,
    allocator: Allocator,
    callpaths: CallPathRecorder,
    streams: StreamTable,
    model: TimeModel,
    report: TimeReport,
    api_hooks: Vec<Arc<dyn ApiHook>>,
    access_hooks: Vec<Arc<dyn MemAccessHook>>,
    api_seq: u64,
    next_launch: u64,
    current_stream: StreamId,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("device", &self.model.spec().name)
            .field("api_seq", &self.api_seq)
            .field("launches", &self.next_launch)
            .finish()
    }
}

impl Runtime {
    /// Creates a runtime for the given device.
    pub fn new(spec: DeviceSpec) -> Self {
        // Cap host-side backing memory at 256 MiB: workloads in this repo
        // are far smaller than real device memory, and the timing model —
        // not the backing store — is what reflects the device size.
        let backing = spec.memory_bytes.min(256 << 20);
        Runtime {
            memory: GlobalMemory::new(backing),
            allocator: Allocator::new(HEAP_BASE, backing - HEAP_BASE),
            callpaths: CallPathRecorder::new(),
            streams: StreamTable::new(),
            model: TimeModel::new(spec),
            report: TimeReport::new(),
            api_hooks: Vec::new(),
            access_hooks: Vec::new(),
            api_seq: 0,
            next_launch: 0,
            current_stream: StreamId::DEFAULT,
        }
    }

    /// The device description this runtime simulates.
    pub fn spec(&self) -> &DeviceSpec {
        self.model.spec()
    }

    /// Registers an API interception hook.
    pub fn register_api_hook(&mut self, hook: Arc<dyn ApiHook>) {
        self.api_hooks.push(hook);
    }

    /// Registers a per-access instrumentation hook.
    pub fn register_access_hook(&mut self, hook: Arc<dyn MemAccessHook>) {
        self.access_hooks.push(hook);
    }

    /// Removes all registered hooks (used to measure unprofiled baselines).
    pub fn clear_hooks(&mut self) {
        self.api_hooks.clear();
        self.access_hooks.clear();
    }

    /// Serializes streams, as ValueExpert's collector does during
    /// measurement.
    pub fn serialize_streams(&mut self, on: bool) {
        self.streams.set_serialized(on);
    }

    /// Creates a new stream.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.create()
    }

    /// Selects the stream subsequent operations are enqueued on.
    ///
    /// # Panics
    ///
    /// Panics if the stream was not created by this runtime.
    pub fn set_stream(&mut self, stream: StreamId) {
        assert!(stream.0 < self.streams.count(), "unknown {stream}");
        self.current_stream = stream;
    }

    // ---------------------------------------------------------------
    // Call paths
    // ---------------------------------------------------------------

    /// Runs `f` with `frame` pushed on the call-path stack.
    pub fn with_frame<R>(&mut self, frame: Frame, f: impl FnOnce(&mut Runtime) -> R) -> R {
        self.callpaths.push(frame);
        let r = f(self);
        self.callpaths.pop();
        r
    }

    /// Runs `f` with a named frame pushed on the call-path stack.
    pub fn with_fn<R>(&mut self, name: &str, f: impl FnOnce(&mut Runtime) -> R) -> R {
        self.with_frame(Frame::named(name), f)
    }

    /// The interned id of the current call path.
    pub fn current_context(&mut self) -> CallPathId {
        self.callpaths.intern_current()
    }

    /// Read access to the call path recorder (rendering contexts).
    pub fn callpaths(&self) -> &CallPathRecorder {
        &self.callpaths
    }

    // ---------------------------------------------------------------
    // Timing
    // ---------------------------------------------------------------

    /// The accumulated simulated time report.
    pub fn time_report(&self) -> &TimeReport {
        &self.report
    }

    /// Clears accumulated times (e.g. after a warm-up phase).
    pub fn reset_time(&mut self) {
        self.report = TimeReport::new();
    }

    // ---------------------------------------------------------------
    // Memory APIs
    // ---------------------------------------------------------------

    fn fire_api(&mut self, phase: ApiPhase, event: &ApiEvent) {
        if self.api_hooks.is_empty() {
            return;
        }
        let view = View { memory: &self.memory, allocator: &self.allocator };
        for h in &self.api_hooks {
            h.on_api(phase, event, &view);
        }
    }

    fn next_event(&mut self, kind: ApiKind) -> ApiEvent {
        let seq = self.api_seq;
        self.api_seq += 1;
        self.streams.record_op(self.current_stream);
        ApiEvent {
            seq,
            kind,
            context: self.callpaths.intern_current(),
            stream: self.current_stream,
        }
    }

    /// Allocates `size` bytes of device memory. Fresh memory is filled with
    /// a poison pattern (real GPU memory is uninitialized).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfMemory`] or [`GpuError::ZeroSize`].
    pub fn malloc(&mut self, size: u64, label: &str) -> Result<DevicePtr, GpuError> {
        let context = self.callpaths.intern_current();
        let info = self.allocator.alloc(size, label, context)?;
        self.memory.fill(info.addr, info.size, POISON_BYTE)?;
        let ev = self.next_event(ApiKind::Malloc { info: info.clone() });
        self.fire_api(ApiPhase::Before, &ev);
        // Allocation itself happened above; Before/After straddle nothing
        // for malloc, but hooks rely on seeing both phases uniformly.
        self.fire_api(ApiPhase::After, &ev);
        self.report.add_memory_op(self.model.alloc_time_us());
        Ok(DevicePtr(info.addr))
    }

    /// Allocates device memory and fills it from a host slice.
    ///
    /// # Errors
    ///
    /// Propagates allocation and copy errors.
    pub fn malloc_from<T: Pod>(
        &mut self,
        label: &str,
        data: &[T],
    ) -> Result<DevicePtr, GpuError> {
        let bytes = crate::host::as_bytes(data);
        let ptr = self.malloc(bytes.len() as u64, label)?;
        self.memcpy_h2d(ptr, bytes)?;
        Ok(ptr)
    }

    /// Frees the allocation starting at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidFree`] if `ptr` is not a live allocation
    /// start.
    pub fn free(&mut self, ptr: DevicePtr) -> Result<(), GpuError> {
        // Look up first so hooks can still see the allocation as live in
        // the Before phase.
        let info = self
            .allocator
            .find_exact(ptr.addr())
            .cloned()
            .ok_or(GpuError::InvalidFree { addr: ptr.addr() })?;
        let ev = self.next_event(ApiKind::Free { info });
        self.fire_api(ApiPhase::Before, &ev);
        self.allocator.free(ptr.addr())?;
        self.fire_api(ApiPhase::After, &ev);
        self.report.add_memory_op(self.model.alloc_time_us());
        Ok(())
    }

    fn check_range(&self, ptr: DevicePtr, len: u64) -> Result<(), GpuError> {
        let info = self
            .allocator
            .find_containing(ptr.addr())
            .ok_or(GpuError::InvalidPointer { addr: ptr.addr() })?;
        if ptr.addr() + len > info.end() {
            return Err(GpuError::OutOfBounds { addr: ptr.addr(), len, limit: info.end() });
        }
        Ok(())
    }

    /// Copies host bytes to the device.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidPointer`] if `dst` is not inside a live
    /// allocation, or [`GpuError::OutOfBounds`] if the copy overruns it.
    pub fn memcpy_h2d(&mut self, dst: DevicePtr, src: &[u8]) -> Result<(), GpuError> {
        self.check_range(dst, src.len() as u64)?;
        let ev = self.next_event(ApiKind::MemcpyH2D { dst, bytes: src.len() as u64 });
        self.fire_api(ApiPhase::Before, &ev);
        self.memory.write(dst.addr(), src)?;
        self.fire_api(ApiPhase::After, &ev);
        self.report.add_memory_op(self.model.pcie_copy_time_us(src.len() as u64));
        Ok(())
    }

    /// Copies device bytes to the host.
    ///
    /// # Errors
    ///
    /// As for [`Runtime::memcpy_h2d`].
    pub fn memcpy_d2h(&mut self, dst: &mut [u8], src: DevicePtr) -> Result<(), GpuError> {
        self.check_range(src, dst.len() as u64)?;
        let ev = self.next_event(ApiKind::MemcpyD2H { src, bytes: dst.len() as u64 });
        self.fire_api(ApiPhase::Before, &ev);
        self.memory.read(src.addr(), dst)?;
        self.fire_api(ApiPhase::After, &ev);
        self.report.add_memory_op(self.model.pcie_copy_time_us(dst.len() as u64));
        Ok(())
    }

    /// Copies bytes between device allocations.
    ///
    /// # Errors
    ///
    /// As for [`Runtime::memcpy_h2d`], for either range.
    pub fn memcpy_d2d(
        &mut self,
        dst: DevicePtr,
        src: DevicePtr,
        len: u64,
    ) -> Result<(), GpuError> {
        self.check_range(dst, len)?;
        self.check_range(src, len)?;
        let ev = self.next_event(ApiKind::MemcpyD2D { dst, src, bytes: len });
        self.fire_api(ApiPhase::Before, &ev);
        self.memory.copy_within(dst.addr(), src.addr(), len)?;
        self.fire_api(ApiPhase::After, &ev);
        self.report.add_memory_op(self.model.d2d_copy_time_us(len));
        Ok(())
    }

    /// Fills `len` device bytes with `value` (`cudaMemset`).
    ///
    /// # Errors
    ///
    /// As for [`Runtime::memcpy_h2d`].
    pub fn memset(&mut self, dst: DevicePtr, value: u8, len: u64) -> Result<(), GpuError> {
        self.check_range(dst, len)?;
        let ev = self.next_event(ApiKind::Memset { dst, value, bytes: len });
        self.fire_api(ApiPhase::Before, &ev);
        self.memory.fill(dst.addr(), len, value)?;
        self.fire_api(ApiPhase::After, &ev);
        self.report.add_memory_op(self.model.memset_time_us(len));
        Ok(())
    }

    /// Reads device memory into a fresh vector (host-side convenience for
    /// tests and result checking; charged as a D2H copy).
    ///
    /// # Errors
    ///
    /// As for [`Runtime::memcpy_d2h`].
    pub fn read_vec(&mut self, src: DevicePtr, len: u64) -> Result<Vec<u8>, GpuError> {
        let mut v = vec![0u8; usize::try_from(len).expect("read too large")];
        self.memcpy_d2h(&mut v, src)?;
        Ok(v)
    }

    /// Reads a typed device array into a host vector.
    ///
    /// # Errors
    ///
    /// As for [`Runtime::memcpy_d2h`].
    pub fn read_typed<T: Pod + Default>(
        &mut self,
        src: DevicePtr,
        count: usize,
    ) -> Result<Vec<T>, GpuError> {
        let bytes = self.read_vec(src, (count * std::mem::size_of::<T>()) as u64)?;
        Ok(crate::host::from_bytes(&bytes))
    }

    /// Metadata of the live allocation containing `addr`.
    pub fn find_allocation(&self, addr: u64) -> Option<&AllocationInfo> {
        self.allocator.find_containing(addr)
    }

    // ---------------------------------------------------------------
    // Kernel launch
    // ---------------------------------------------------------------

    /// Launches `kernel` over `grid × block` threads on the current stream
    /// and runs it to completion.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidLaunch`] if the block exceeds the
    /// device's thread limit.
    pub fn launch(
        &mut self,
        kernel: &dyn Kernel,
        grid: Dim3,
        block: Dim3,
    ) -> Result<LaunchStats, GpuError> {
        if block.count() > self.spec().max_threads_per_block as usize {
            return Err(GpuError::InvalidLaunch {
                reason: format!(
                    "block {} has {} threads, device limit is {}",
                    block,
                    block.count(),
                    self.spec().max_threads_per_block
                ),
            });
        }
        let launch = LaunchId(self.next_launch);
        self.next_launch += 1;
        let ev =
            self.next_event(ApiKind::KernelLaunch { launch, name: kernel.name().to_owned() });
        let info = LaunchInfo {
            launch,
            kernel_name: kernel.name().to_owned(),
            grid,
            block,
            shared_bytes: kernel.shared_bytes(),
            context: ev.context,
            stream: ev.stream,
            instr_table: Arc::new(kernel.instr_table()),
        };

        self.fire_api(ApiPhase::Before, &ev);

        // Ask each access hook whether it wants this launch instrumented.
        let accepted: Vec<Arc<dyn MemAccessHook>> =
            self.access_hooks.iter().filter(|h| h.on_launch_begin(&info)).cloned().collect();
        let instrument = !accepted.is_empty();

        let stats =
            run_launch(kernel, grid, block, &mut self.memory, &accepted, instrument, launch);

        {
            let view = View { memory: &self.memory, allocator: &self.allocator };
            for h in &self.access_hooks {
                let was_instrumented = instrument && accepted.iter().any(|a| Arc::ptr_eq(a, h));
                h.on_launch_end(&info, &stats, was_instrumented, &view);
            }
        }

        self.fire_api(ApiPhase::After, &ev);
        self.report.add_kernel(kernel.name(), self.model.kernel_time_us(&stats.work()));
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{InstrTable, InstrTableBuilder, MemSpace, Pc, ScalarType};
    use parking_lot::Mutex;

    struct Nop;
    impl Kernel for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTable::new()
        }
        fn execute(&self, _ctx: &mut crate::exec::ThreadCtx<'_>) {}
    }

    struct ApiRecorder(Mutex<Vec<(ApiPhase, String)>>);
    impl ApiHook for ApiRecorder {
        fn on_api(&self, phase: ApiPhase, event: &ApiEvent, _view: &dyn DeviceView) {
            self.0.lock().push((phase, event.kind.tag().to_owned()));
        }
    }

    #[test]
    fn malloc_poisons_and_copy_roundtrips() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let p = rt.malloc(16, "x").unwrap();
        assert_eq!(rt.read_vec(p, 4).unwrap(), vec![POISON_BYTE; 4]);
        rt.memcpy_h2d(p, &[9, 8, 7, 6]).unwrap();
        assert_eq!(rt.read_vec(p, 4).unwrap(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn copy_bounds_are_per_allocation() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let p = rt.malloc(16, "x").unwrap();
        assert!(matches!(rt.memcpy_h2d(p, &[0u8; 32]), Err(GpuError::OutOfBounds { .. })));
        assert!(matches!(
            rt.memcpy_h2d(DevicePtr(3), &[0u8; 1]),
            Err(GpuError::InvalidPointer { .. })
        ));
    }

    #[test]
    fn api_hooks_see_before_and_after() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let rec = Arc::new(ApiRecorder(Mutex::new(Vec::new())));
        rt.register_api_hook(rec.clone());
        let p = rt.malloc(16, "x").unwrap();
        rt.memset(p, 0, 16).unwrap();
        rt.launch(&Nop, Dim3::linear(1), Dim3::linear(1)).unwrap();
        let log = rec.0.lock();
        let tags: Vec<_> = log.iter().map(|(p, t)| (*p, t.as_str())).collect();
        assert_eq!(
            tags,
            vec![
                (ApiPhase::Before, "malloc"),
                (ApiPhase::After, "malloc"),
                (ApiPhase::Before, "memset"),
                (ApiPhase::After, "memset"),
                (ApiPhase::Before, "kernel"),
                (ApiPhase::After, "kernel"),
            ]
        );
    }

    #[test]
    fn launch_validation() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let err = rt.launch(&Nop, Dim3::linear(1), Dim3::linear(4096));
        assert!(matches!(err, Err(GpuError::InvalidLaunch { .. })));
    }

    #[test]
    fn contexts_distinguish_call_sites() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let rec = Arc::new(Mutex::new(Vec::<CallPathId>::new()));
        struct CtxHook(Arc<Mutex<Vec<CallPathId>>>);
        impl ApiHook for CtxHook {
            fn on_api(&self, phase: ApiPhase, event: &ApiEvent, _v: &dyn DeviceView) {
                if phase == ApiPhase::Before {
                    self.0.lock().push(event.context);
                }
            }
        }
        rt.register_api_hook(Arc::new(CtxHook(rec.clone())));
        let p = rt.with_fn("init", |rt| rt.malloc(16, "x")).unwrap();
        rt.with_fn("forward", |rt| rt.memset(p, 0, 16)).unwrap();
        rt.with_fn("forward", |rt| rt.memset(p, 0, 16)).unwrap();
        let ctxs = rec.lock();
        assert_ne!(ctxs[0], ctxs[1], "different frames, different contexts");
        assert_eq!(ctxs[1], ctxs[2], "same frame interned to same id");
        assert_eq!(rt.callpaths().render(ctxs[0]), "init");
    }

    #[test]
    fn kernel_time_recorded() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        rt.launch(&Nop, Dim3::linear(1), Dim3::linear(1)).unwrap();
        assert!(rt.time_report().kernel_us("nop") > 0.0);
        assert_eq!(rt.time_report().kernel_launches["nop"], 1);
        rt.reset_time();
        assert_eq!(rt.time_report().total_us(), 0.0);
    }

    #[test]
    fn free_then_use_fails() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let p = rt.malloc(16, "x").unwrap();
        rt.free(p).unwrap();
        assert!(rt.memset(p, 0, 4).is_err());
        assert!(rt.free(p).is_err());
    }

    #[test]
    fn d2d_copy() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let a = rt.malloc_from("a", &[1u32, 2, 3, 4]).unwrap();
        let b = rt.malloc(16, "b").unwrap();
        rt.memcpy_d2d(b, a, 16).unwrap();
        assert_eq!(rt.read_typed::<u32>(b, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn per_launch_hook_filtering() {
        struct Selective {
            count: Mutex<u64>,
        }
        impl MemAccessHook for Selective {
            fn on_launch_begin(&self, info: &LaunchInfo) -> bool {
                info.kernel_name == "writer"
            }
            fn on_access(&self, _e: &crate::hooks::AccessEvent) {
                *self.count.lock() += 1;
            }
        }
        struct Writer;
        impl Kernel for Writer {
            fn name(&self) -> &str {
                "writer"
            }
            fn instr_table(&self) -> InstrTable {
                InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build()
            }
            fn execute(&self, ctx: &mut crate::exec::ThreadCtx<'_>) {
                ctx.store::<u32>(Pc(0), 256, 1);
            }
        }
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let hook = Arc::new(Selective { count: Mutex::new(0) });
        rt.register_access_hook(hook.clone());
        rt.malloc(16, "x").unwrap();
        rt.launch(&Nop, Dim3::linear(1), Dim3::linear(1)).unwrap();
        assert_eq!(*hook.count.lock(), 0);
        rt.launch(&Writer, Dim3::linear(1), Dim3::linear(2)).unwrap();
        assert_eq!(*hook.count.lock(), 2);
    }
}
