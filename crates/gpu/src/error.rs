//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// Errors returned by the simulated GPU runtime.
///
/// These mirror the failure modes of the CUDA runtime API that a profiler
/// must survive: allocation failure, invalid device pointers, out-of-bounds
/// transfers, and misuse of the allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpuError {
    /// The device allocator could not satisfy a request.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free on the device (possibly fragmented).
        free: u64,
    },
    /// A device pointer does not fall inside any live allocation.
    InvalidPointer {
        /// The offending address.
        addr: u64,
    },
    /// An access (copy, set, load, or store) extends past the end of device
    /// memory or of the addressed allocation.
    OutOfBounds {
        /// Start address of the access.
        addr: u64,
        /// Length of the access in bytes.
        len: u64,
        /// End of the valid region that was exceeded.
        limit: u64,
    },
    /// `free` was called on an address that is not the start of a live
    /// allocation.
    InvalidFree {
        /// The offending address.
        addr: u64,
    },
    /// A zero-byte allocation or transfer was requested where the runtime
    /// requires a positive size.
    ZeroSize,
    /// A launch configuration is invalid (e.g. more threads per block than
    /// the device supports).
    InvalidLaunch {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory { requested, free } => {
                write!(f, "device out of memory: requested {requested} bytes, {free} free")
            }
            GpuError::InvalidPointer { addr } => {
                write!(f, "invalid device pointer {addr:#x}")
            }
            GpuError::OutOfBounds { addr, len, limit } => {
                write!(
                    f,
                    "access [{addr:#x}, {:#x}) exceeds limit {limit:#x}",
                    addr.saturating_add(*len)
                )
            }
            GpuError::InvalidFree { addr } => {
                write!(f, "free of non-allocation address {addr:#x}")
            }
            GpuError::ZeroSize => write!(f, "zero-size request"),
            GpuError::InvalidLaunch { reason } => write!(f, "invalid launch: {reason}"),
        }
    }
}

impl Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GpuError::OutOfMemory { requested: 100, free: 10 };
        assert!(e.to_string().contains("100"));
        let e = GpuError::OutOfBounds { addr: 0x10, len: 0x10, limit: 0x18 };
        assert!(e.to_string().contains("0x18"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_good<T: Error + Send + Sync + 'static>() {}
        assert_good::<GpuError>();
    }
}
