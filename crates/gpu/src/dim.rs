//! Grid and block dimensions, mirroring CUDA's `dim3`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A three-dimensional extent used for grids and thread blocks.
///
/// All components are at least 1; [`Dim3::new`] validates this.
///
/// ```rust
/// use vex_gpu::dim::Dim3;
/// let g = Dim3::new(4, 2, 1);
/// assert_eq!(g.count(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// Extent along x (fastest-varying).
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z (slowest-varying).
    pub z: u32,
}

impl Dim3 {
    /// Creates a new extent.
    ///
    /// # Panics
    ///
    /// Panics if any component is zero.
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "Dim3 components must be nonzero");
        Dim3 { x, y, z }
    }

    /// A one-dimensional extent `(x, 1, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is zero.
    pub fn linear(x: u32) -> Self {
        Dim3::new(x, 1, 1)
    }

    /// A two-dimensional extent `(x, y, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is zero.
    pub fn xy(x: u32, y: u32) -> Self {
        Dim3::new(x, y, 1)
    }

    /// Total number of positions in the extent.
    pub fn count(&self) -> usize {
        self.x as usize * self.y as usize * self.z as usize
    }

    /// Flattens a coordinate inside this extent to a linear index
    /// (x fastest-varying, matching CUDA's thread numbering).
    pub fn flatten(&self, x: u32, y: u32, z: u32) -> usize {
        debug_assert!(x < self.x && y < self.y && z < self.z);
        (z as usize * self.y as usize + y as usize) * self.x as usize + x as usize
    }

    /// Inverse of [`Dim3::flatten`].
    pub fn unflatten(&self, idx: usize) -> (u32, u32, u32) {
        debug_assert!(idx < self.count());
        let x = (idx % self.x as usize) as u32;
        let rest = idx / self.x as usize;
        let y = (rest % self.y as usize) as u32;
        let z = (rest / self.y as usize) as u32;
        (x, y, z)
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::new(1, 1, 1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::linear(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::new(x, y, z)
    }
}

/// Computes the number of 1-D blocks needed to cover `n` items with
/// `block_size` threads per block (CUDA's common `(n + b - 1) / b` idiom).
///
/// ```rust
/// use vex_gpu::dim::blocks_for;
/// assert_eq!(blocks_for(1000, 256), 4);
/// assert_eq!(blocks_for(0, 256), 1); // always launch at least one block
/// ```
pub fn blocks_for(n: usize, block_size: u32) -> u32 {
    assert!(block_size > 0, "block size must be nonzero");
    let b = n.div_ceil(block_size as usize).max(1);
    u32::try_from(b).expect("grid too large")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let d = Dim3::new(3, 4, 5);
        for i in 0..d.count() {
            let (x, y, z) = d.unflatten(i);
            assert_eq!(d.flatten(x, y, z), i);
        }
    }

    #[test]
    fn x_fastest_varying() {
        let d = Dim3::new(4, 4, 1);
        assert_eq!(d.flatten(1, 0, 0), 1);
        assert_eq!(d.flatten(0, 1, 0), 4);
    }

    #[test]
    fn count_matches_product() {
        assert_eq!(Dim3::new(2, 3, 4).count(), 24);
        assert_eq!(Dim3::linear(7).count(), 7);
    }

    #[test]
    #[should_panic]
    fn zero_component_panics() {
        let _ = Dim3::new(0, 1, 1);
    }

    #[test]
    fn blocks_for_covers() {
        assert_eq!(blocks_for(1, 32), 1);
        assert_eq!(blocks_for(32, 32), 1);
        assert_eq!(blocks_for(33, 32), 2);
    }

    #[test]
    fn conversions() {
        assert_eq!(Dim3::from(5u32), Dim3::linear(5));
        assert_eq!(Dim3::from((2u32, 3u32)), Dim3::xy(2, 3));
        assert_eq!(Dim3::from((2u32, 3u32, 4u32)), Dim3::new(2, 3, 4));
    }
}
