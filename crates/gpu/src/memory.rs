//! Device global memory.

use crate::error::GpuError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pointer into device global memory.
///
/// Device pointers are plain addresses — the type exists so that host and
/// device addresses cannot be confused (C-NEWTYPE). Arithmetic is explicit
/// through [`DevicePtr::offset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// The null device pointer.
    pub const NULL: DevicePtr = DevicePtr(0);

    /// Returns a pointer `bytes` past `self`.
    pub fn offset(self, bytes: u64) -> DevicePtr {
        DevicePtr(self.0 + bytes)
    }

    /// The raw address.
    pub fn addr(self) -> u64 {
        self.0
    }

    /// Whether this is the null pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev:{:#x}", self.0)
    }
}

/// Flat device global memory.
///
/// Address 0 is reserved (never part of an allocation) so that
/// [`DevicePtr::NULL`] is always invalid, like on real hardware.
pub struct GlobalMemory {
    bytes: Vec<u8>,
}

impl fmt::Debug for GlobalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalMemory").field("size", &self.bytes.len()).finish()
    }
}

impl GlobalMemory {
    /// Creates a memory of `size` bytes, zero-initialized.
    ///
    /// Real GPU memory is not guaranteed zeroed; the allocator writes a
    /// poison pattern into fresh allocations to model that (see
    /// [`crate::alloc::Allocator`]).
    pub fn new(size: u64) -> Self {
        GlobalMemory {
            bytes: vec![0u8; usize::try_from(size).expect("device memory too large for host")],
        }
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, len: u64) -> Result<(usize, usize), GpuError> {
        let end = addr.checked_add(len).ok_or(GpuError::OutOfBounds {
            addr,
            len,
            limit: self.size(),
        })?;
        if addr == 0 || end > self.size() {
            return Err(GpuError::OutOfBounds { addr, len, limit: self.size() });
        }
        Ok((addr as usize, end as usize))
    }

    /// Reads `dst.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfBounds`] if the range is not inside device
    /// memory (address 0 is always invalid).
    pub fn read(&self, addr: u64, dst: &mut [u8]) -> Result<(), GpuError> {
        let (s, e) = self.check(addr, dst.len() as u64)?;
        dst.copy_from_slice(&self.bytes[s..e]);
        Ok(())
    }

    /// Writes `src` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfBounds`] if the range is not inside device
    /// memory.
    pub fn write(&mut self, addr: u64, src: &[u8]) -> Result<(), GpuError> {
        let (s, e) = self.check(addr, src.len() as u64)?;
        self.bytes[s..e].copy_from_slice(src);
        Ok(())
    }

    /// Fills `[addr, addr+len)` with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfBounds`] if the range is not inside device
    /// memory.
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) -> Result<(), GpuError> {
        let (s, e) = self.check(addr, len)?;
        self.bytes[s..e].fill(value);
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` within the device
    /// (overlapping ranges behave like `memmove`).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfBounds`] if either range is invalid.
    pub fn copy_within(&mut self, dst: u64, src: u64, len: u64) -> Result<(), GpuError> {
        let (ss, _) = self.check(src, len)?;
        let (ds, _) = self.check(dst, len)?;
        self.bytes.copy_within(ss..ss + len as usize, ds);
        Ok(())
    }

    /// Borrows a byte range (used by snapshot capture to avoid copies).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfBounds`] if the range is invalid.
    pub fn slice(&self, addr: u64, len: u64) -> Result<&[u8], GpuError> {
        let (s, e) = self.check(addr, len)?;
        Ok(&self.bytes[s..e])
    }

    /// Reads up to 8 bytes at `addr` into a little-endian `u64`
    /// (the raw-bits representation used in access events).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfBounds`] for invalid ranges or `size > 8`.
    pub fn read_bits(&self, addr: u64, size: u8) -> Result<u64, GpuError> {
        if size > 8 {
            return Err(GpuError::OutOfBounds { addr, len: size as u64, limit: self.size() });
        }
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..size as usize])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `size` bytes of `bits` (little-endian) at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfBounds`] for invalid ranges or `size > 8`.
    pub fn write_bits(&mut self, addr: u64, size: u8, bits: u64) -> Result<(), GpuError> {
        if size > 8 {
            return Err(GpuError::OutOfBounds { addr, len: size as u64, limit: self.size() });
        }
        let buf = bits.to_le_bytes();
        self.write(addr, &buf[..size as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = GlobalMemory::new(1024);
        m.write(8, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        m.read(8, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn address_zero_is_invalid() {
        let mut m = GlobalMemory::new(64);
        assert!(m.write(0, &[1]).is_err());
        assert!(m.read(0, &mut [0]).is_err());
    }

    #[test]
    fn out_of_bounds_detected() {
        let m = GlobalMemory::new(64);
        assert!(matches!(m.slice(60, 8), Err(GpuError::OutOfBounds { .. })));
        // Overflowing addr+len must not panic.
        assert!(m.slice(u64::MAX, 2).is_err());
    }

    #[test]
    fn fill_and_bits() {
        let mut m = GlobalMemory::new(64);
        m.fill(8, 8, 0xAB).unwrap();
        assert_eq!(m.read_bits(8, 4).unwrap(), 0xABAB_ABAB);
        m.write_bits(16, 2, 0x1234).unwrap();
        assert_eq!(m.read_bits(16, 2).unwrap(), 0x1234);
        assert!(m.read_bits(8, 9).is_err());
    }

    #[test]
    fn copy_within_overlapping() {
        let mut m = GlobalMemory::new(64);
        m.write(8, &[1, 2, 3, 4]).unwrap();
        m.copy_within(10, 8, 4).unwrap();
        let mut out = [0u8; 6];
        m.read(8, &mut out).unwrap();
        assert_eq!(out, [1, 2, 1, 2, 3, 4]);
    }

    #[test]
    fn device_ptr_ops() {
        let p = DevicePtr(0x100);
        assert_eq!(p.offset(8).addr(), 0x108);
        assert!(DevicePtr::NULL.is_null());
        assert!(!p.is_null());
        assert_eq!(p.to_string(), "dev:0x100");
    }
}
