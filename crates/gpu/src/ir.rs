//! A miniature kernel IR standing in for SASS.
//!
//! The real ValueExpert disassembles GPU binaries and runs a *bidirectional
//! slicing* over def-use chains to recover the **access type** (value type,
//! width, vector count) of each memory instruction; raw bits captured at run
//! time can only be interpreted once the access type is known (a `STG.64`
//! may store two `f32`s or one `f64`).
//!
//! Our kernels are Rust closures, so instead of disassembling machine code
//! each [`crate::kernel::Kernel`] publishes an [`InstrTable`]: a list of
//! instructions with program counters, opcodes, register defs/uses, and —
//! crucially — memory instructions whose scalar type may be *unknown*. The
//! offline analyzer (`vex-core::access_type`) runs the same slicing
//! algorithm over this table that the paper runs over SASS.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A virtual program counter inside one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pc(pub u32);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{:04}", self.0)
    }
}

/// A virtual register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Floating-point operand width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatWidth {
    /// 32-bit IEEE 754.
    F32,
    /// 64-bit IEEE 754.
    F64,
}

/// Integer operand width (bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntWidth {
    /// 8-bit.
    I8,
    /// 16-bit.
    I16,
    /// 32-bit.
    I32,
    /// 64-bit.
    I64,
}

impl IntWidth {
    /// Width in bits.
    pub fn bits(self) -> u8 {
        match self {
            IntWidth::I8 => 8,
            IntWidth::I16 => 16,
            IntWidth::I32 => 32,
            IntWidth::I64 => 64,
        }
    }
}

/// The scalar interpretation of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScalarType {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// Signed integers by width.
    S8,
    /// 16-bit signed integer.
    S16,
    /// 32-bit signed integer.
    S32,
    /// 64-bit signed integer.
    S64,
    /// 8-bit unsigned integer.
    U8,
    /// 16-bit unsigned integer.
    U16,
    /// 32-bit unsigned integer.
    U32,
    /// 64-bit unsigned integer.
    U64,
}

impl ScalarType {
    /// Size of one scalar in bytes.
    pub fn size_bytes(self) -> u8 {
        match self {
            ScalarType::S8 | ScalarType::U8 => 1,
            ScalarType::S16 | ScalarType::U16 => 2,
            ScalarType::F32 | ScalarType::S32 | ScalarType::U32 => 4,
            ScalarType::F64 | ScalarType::S64 | ScalarType::U64 => 8,
        }
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Whether the type is a signed integer type.
    pub fn is_signed_int(self) -> bool {
        matches!(self, ScalarType::S8 | ScalarType::S16 | ScalarType::S32 | ScalarType::S64)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
            ScalarType::S8 => "s8",
            ScalarType::S16 => "s16",
            ScalarType::S32 => "s32",
            ScalarType::S64 => "s64",
            ScalarType::U8 => "u8",
            ScalarType::U16 => "u16",
            ScalarType::U32 => "u32",
            ScalarType::U64 => "u64",
        };
        f.write_str(s)
    }
}

/// Which address space a memory instruction touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device global memory (allocated through the runtime).
    Global,
    /// Per-block shared memory.
    Shared,
}

/// Static description of a memory instruction's access.
///
/// `ty == None` models the common SASS situation where the load/store
/// encodes only a *width*, not a type — the slicer must recover the type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessDecl {
    /// Total access width in bytes (1, 2, 4, 8, or 16).
    pub width_bytes: u8,
    /// Address space.
    pub space: MemSpace,
    /// True for stores, false for loads.
    pub is_store: bool,
    /// Declared scalar type, if the "binary" encodes one.
    pub ty: Option<ScalarType>,
    /// Number of scalars per access (vectorized accesses have `> 1`).
    pub vector: u8,
}

/// Opcodes of the miniature ISA. Arithmetic opcodes carry the operand type
/// information that the slicer propagates onto untyped memory instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Opcode {
    /// Global/shared load; access details live in [`Instruction::access`].
    Ld,
    /// Global/shared store.
    St,
    /// Floating add.
    FAdd(FloatWidth),
    /// Floating multiply.
    FMul(FloatWidth),
    /// Fused multiply-add.
    FFma(FloatWidth),
    /// Integer add.
    IAdd(IntWidth),
    /// Integer multiply-add.
    IMad(IntWidth),
    /// Bitwise logic (type-neutral: propagates but does not originate types).
    Lop,
    /// Register move (type-neutral).
    Mov,
    /// Convert between scalar types.
    Cvt {
        /// Source type.
        from: ScalarType,
        /// Destination type.
        to: ScalarType,
    },
    /// Compare, produces a predicate.
    Setp(ScalarType),
    /// Branch (no defs/uses of interest).
    Bra,
    /// Kernel exit.
    Exit,
}

impl Opcode {
    /// The scalar type this opcode *originates* for its operands, if any.
    /// Type-neutral opcodes (`Mov`, `Lop`, `Ld`, `St`, `Bra`, `Exit`) return
    /// `None`; `Cvt` is handled specially by the slicer because its source
    /// and destination differ.
    pub fn operand_type(&self) -> Option<ScalarType> {
        match self {
            Opcode::FAdd(FloatWidth::F32)
            | Opcode::FMul(FloatWidth::F32)
            | Opcode::FFma(FloatWidth::F32) => Some(ScalarType::F32),
            Opcode::FAdd(FloatWidth::F64)
            | Opcode::FMul(FloatWidth::F64)
            | Opcode::FFma(FloatWidth::F64) => Some(ScalarType::F64),
            Opcode::IAdd(w) | Opcode::IMad(w) => Some(match w {
                IntWidth::I8 => ScalarType::S8,
                IntWidth::I16 => ScalarType::S16,
                IntWidth::I32 => ScalarType::S32,
                IntWidth::I64 => ScalarType::S64,
            }),
            Opcode::Setp(t) => Some(*t),
            _ => None,
        }
    }
}

/// One instruction of the miniature ISA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Virtual program counter (unique within a kernel).
    pub pc: Pc,
    /// Opcode.
    pub op: Opcode,
    /// Destination register, if the instruction defines one.
    pub dst: Option<Reg>,
    /// Source registers.
    pub srcs: Vec<Reg>,
    /// Memory access description for `Ld`/`St` opcodes.
    pub access: Option<AccessDecl>,
    /// Optional source line for line mapping (offline analyzer output).
    pub line: Option<u32>,
}

/// The static instruction table of one kernel — our stand-in for its SASS.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstrTable {
    instrs: BTreeMap<Pc, Instruction>,
}

impl InstrTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an instruction.
    ///
    /// # Panics
    ///
    /// Panics if an instruction with the same PC was already added.
    pub fn push(&mut self, instr: Instruction) {
        let pc = instr.pc;
        let prev = self.instrs.insert(pc, instr);
        assert!(prev.is_none(), "duplicate instruction at {pc}");
    }

    /// Looks up the instruction at `pc`.
    pub fn get(&self, pc: Pc) -> Option<&Instruction> {
        self.instrs.get(&pc)
    }

    /// Iterates instructions in PC order.
    pub fn iter(&self) -> impl Iterator<Item = &Instruction> {
        self.instrs.values()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Memory instructions (loads and stores) in PC order.
    pub fn memory_instrs(&self) -> impl Iterator<Item = &Instruction> {
        self.iter().filter(|i| i.access.is_some())
    }
}

/// Fluent builder for [`InstrTable`], used by workload kernels.
///
/// The builder auto-assigns registers so simple chains can be declared
/// succinctly; kernels needing precise def-use graphs can use
/// [`InstrTableBuilder::instr`] directly.
#[derive(Debug, Default)]
pub struct InstrTableBuilder {
    table: InstrTable,
    next_reg: u16,
    last_pc: Option<Pc>,
}

impl InstrTableBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn push(&mut self, instr: Instruction) {
        self.last_pc = Some(instr.pc);
        self.table.push(instr);
    }

    /// Adds a typed load of one scalar of `ty` from `space` at `pc`.
    #[must_use]
    pub fn load(mut self, pc: Pc, ty: ScalarType, space: MemSpace) -> Self {
        let dst = self.fresh_reg();
        self.push(Instruction {
            pc,
            op: Opcode::Ld,
            dst: Some(dst),
            srcs: vec![],
            access: Some(AccessDecl {
                width_bytes: ty.size_bytes(),
                space,
                is_store: false,
                ty: Some(ty),
                vector: 1,
            }),
            line: None,
        });
        self
    }

    /// Adds an *untyped* load of `width_bytes` (the slicer must recover the
    /// type from surrounding arithmetic).
    #[must_use]
    pub fn load_untyped(mut self, pc: Pc, width_bytes: u8, space: MemSpace) -> Self {
        let dst = self.fresh_reg();
        self.push(Instruction {
            pc,
            op: Opcode::Ld,
            dst: Some(dst),
            srcs: vec![],
            access: Some(AccessDecl {
                width_bytes,
                space,
                is_store: false,
                ty: None,
                vector: 1,
            }),
            line: None,
        });
        self
    }

    /// Adds a typed store of one scalar of `ty` to `space` at `pc`.
    #[must_use]
    pub fn store(mut self, pc: Pc, ty: ScalarType, space: MemSpace) -> Self {
        let src = self.fresh_reg();
        self.push(Instruction {
            pc,
            op: Opcode::St,
            dst: None,
            srcs: vec![src],
            access: Some(AccessDecl {
                width_bytes: ty.size_bytes(),
                space,
                is_store: true,
                ty: Some(ty),
                vector: 1,
            }),
            line: None,
        });
        self
    }

    /// Adds an untyped store of `width_bytes`.
    #[must_use]
    pub fn store_untyped(mut self, pc: Pc, width_bytes: u8, space: MemSpace) -> Self {
        let src = self.fresh_reg();
        self.push(Instruction {
            pc,
            op: Opcode::St,
            dst: None,
            srcs: vec![src],
            access: Some(AccessDecl {
                width_bytes,
                space,
                is_store: true,
                ty: None,
                vector: 1,
            }),
            line: None,
        });
        self
    }

    /// Adds a non-memory instruction with fresh registers.
    #[must_use]
    pub fn op(mut self, pc: Pc, op: Opcode) -> Self {
        let dst = self.fresh_reg();
        self.push(Instruction {
            pc,
            op,
            dst: Some(dst),
            srcs: vec![],
            access: None,
            line: None,
        });
        self
    }

    /// Adds an arbitrary instruction verbatim.
    #[must_use]
    pub fn instr(mut self, instr: Instruction) -> Self {
        self.push(instr);
        self
    }

    /// Attaches a source line to the most recently added instruction
    /// (the debugging-section line mapping of a real binary).
    ///
    /// # Panics
    ///
    /// Panics if no instruction has been added yet.
    #[must_use]
    pub fn at_line(mut self, line: u32) -> Self {
        let pc = self.last_pc.expect("at_line requires a preceding instruction");
        self.table.instrs.get_mut(&pc).expect("last_pc tracks pushed instructions").line =
            Some(line);
        self
    }

    /// Finalizes the table.
    pub fn build(self) -> InstrTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_unique_pcs_and_regs() {
        let t = InstrTableBuilder::new()
            .load(Pc(0), ScalarType::F32, MemSpace::Global)
            .op(Pc(1), Opcode::FMul(FloatWidth::F32))
            .store(Pc(2), ScalarType::F32, MemSpace::Global)
            .build();
        assert_eq!(t.len(), 3);
        assert_eq!(t.memory_instrs().count(), 2);
        let ld = t.get(Pc(0)).unwrap();
        assert!(!ld.access.unwrap().is_store);
        assert_eq!(ld.access.unwrap().ty, Some(ScalarType::F32));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_pc_panics() {
        let _ = InstrTableBuilder::new().op(Pc(0), Opcode::Mov).op(Pc(0), Opcode::Mov).build();
    }

    #[test]
    fn scalar_type_sizes() {
        assert_eq!(ScalarType::F64.size_bytes(), 8);
        assert_eq!(ScalarType::U8.size_bytes(), 1);
        assert!(ScalarType::F32.is_float());
        assert!(ScalarType::S16.is_signed_int());
        assert!(!ScalarType::U32.is_signed_int());
    }

    #[test]
    fn opcode_operand_types() {
        assert_eq!(Opcode::FFma(FloatWidth::F64).operand_type(), Some(ScalarType::F64));
        assert_eq!(Opcode::IAdd(IntWidth::I32).operand_type(), Some(ScalarType::S32));
        assert_eq!(Opcode::Mov.operand_type(), None);
        assert_eq!(Opcode::Ld.operand_type(), None);
    }

    #[test]
    fn untyped_load_has_no_type() {
        let t = InstrTableBuilder::new().load_untyped(Pc(0), 8, MemSpace::Global).build();
        let a = t.get(Pc(0)).unwrap().access.unwrap();
        assert_eq!(a.ty, None);
        assert_eq!(a.width_bytes, 8);
    }
}
