//! Property-based and failure-injection tests for the simulator
//! substrate: allocator invariants under arbitrary alloc/free sequences,
//! memory bounds, runtime error paths, and timing-model monotonicity.

use proptest::prelude::*;
use vex_gpu::alloc::{AllocId, Allocator};
use vex_gpu::callpath::CallPathId;
use vex_gpu::dim::Dim3;
use vex_gpu::error::GpuError;
use vex_gpu::exec::ThreadCtx;
use vex_gpu::ir::{InstrTable, InstrTableBuilder, MemSpace, Pc, ScalarType};
use vex_gpu::kernel::Kernel;
use vex_gpu::memory::{DevicePtr, GlobalMemory};
use vex_gpu::runtime::Runtime;
use vex_gpu::timing::{DeviceSpec, KernelWork, TimeModel};

/// One step of a random allocator workout.
#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    /// Free the i-th oldest live allocation (modulo live count).
    Free(usize),
}

fn alloc_op() -> impl Strategy<Value = AllocOp> {
    prop_oneof![(1u64..5000).prop_map(AllocOp::Alloc), (0usize..16).prop_map(AllocOp::Free),]
}

proptest! {
    /// Live allocations never overlap, stay inside the arena, and ids are
    /// unique — under any interleaving of allocs and frees.
    #[test]
    fn allocator_invariants(ops in prop::collection::vec(alloc_op(), 1..120)) {
        let base = 256u64;
        let capacity = 1 << 20;
        let mut a = Allocator::new(base, capacity);
        let mut live: Vec<u64> = Vec::new(); // start addresses
        for op in ops {
            match op {
                AllocOp::Alloc(size) => {
                    if let Ok(info) = a.alloc(size, "x", CallPathId::ROOT) {
                        prop_assert!(info.addr >= base);
                        prop_assert!(info.addr + info.size <= base + capacity);
                        live.push(info.addr);
                    }
                }
                AllocOp::Free(i) => {
                    if !live.is_empty() {
                        let addr = live.remove(i % live.len());
                        prop_assert!(a.free(addr).is_ok());
                    }
                }
            }
            // Pairwise disjointness of live allocations.
            let infos: Vec<_> = a.live_allocations().collect();
            for w in infos.windows(2) {
                prop_assert!(w[0].addr + w[0].size <= w[1].addr,
                    "overlap: {:?} then {:?}", w[0], w[1]);
            }
            // Ids unique across everything ever allocated.
            let mut ids: Vec<AllocId> = a.all_allocations().map(|i| i.id).collect();
            let n = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), n);
        }
        // Free everything; the arena must be whole again.
        for addr in live {
            prop_assert!(a.free(addr).is_ok());
        }
        prop_assert_eq!(a.used_bytes(), 0);
        prop_assert!(a.alloc(capacity, "all", CallPathId::ROOT).is_ok());
    }

    /// Any in-bounds write is read back verbatim; address 0 always faults.
    #[test]
    fn memory_write_read_roundtrip(
        addr in 1u64..4000,
        data in prop::collection::vec(any::<u8>(), 1..64)
    ) {
        let mut m = GlobalMemory::new(4096);
        if addr + data.len() as u64 <= 4096 {
            m.write(addr, &data).unwrap();
            let mut back = vec![0u8; data.len()];
            m.read(addr, &mut back).unwrap();
            prop_assert_eq!(back, data);
        } else {
            prop_assert!(m.write(addr, &data).is_err());
        }
    }

    /// Kernel time is monotone in every work component.
    #[test]
    fn kernel_time_monotone(
        bytes in 0u64..1_000_000,
        extra in 1u64..1_000_000,
        flops in 0u64..1_000_000,
    ) {
        let model = TimeModel::new(DeviceSpec::rtx2080ti());
        let base = KernelWork { bytes_loaded: bytes, flops_f32: flops, ..Default::default() };
        let more_bytes = KernelWork { bytes_loaded: bytes + extra, ..base };
        let more_flops = KernelWork { flops_f32: flops + extra, ..base };
        let t = model.kernel_time_us(&base);
        prop_assert!(model.kernel_time_us(&more_bytes) >= t);
        prop_assert!(model.kernel_time_us(&more_flops) >= t);
    }
}

// ---------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------

struct OneStore {
    addr: u64,
}

impl Kernel for OneStore {
    fn name(&self) -> &str {
        "one_store"
    }
    fn instr_table(&self) -> InstrTable {
        InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build()
    }
    fn execute(&self, ctx: &mut ThreadCtx<'_>) {
        if ctx.global_thread_id() == 0 {
            ctx.store::<u32>(Pc(0), self.addr, 1);
        }
    }
}

#[test]
fn oom_is_reported_not_fatal() {
    let mut rt = Runtime::new(DeviceSpec::test_small());
    // test_small has 1 MiB; ask for 2 MiB.
    match rt.malloc(2 << 20, "huge") {
        Err(GpuError::OutOfMemory { requested, .. }) => assert_eq!(requested, 2 << 20),
        other => panic!("expected OOM, got {other:?}"),
    }
    // Runtime remains usable.
    let p = rt.malloc(1024, "ok").unwrap();
    rt.memset(p, 0, 1024).unwrap();
}

#[test]
fn fragmentation_can_oom_then_recover() {
    let mut rt = Runtime::new(DeviceSpec::test_small());
    // Fill the arena with eight ~128KiB blocks, free alternating ones:
    // 512 KiB free total but no contiguous 256 KiB hole.
    let blocks: Vec<DevicePtr> =
        (0..8).map(|i| rt.malloc(127 * 1024, &format!("b{i}")).unwrap()).collect();
    for (i, p) in blocks.iter().enumerate() {
        if i % 2 == 0 {
            rt.free(*p).unwrap();
        }
    }
    assert!(rt.malloc(256 * 1024, "big").is_err(), "fragmented arena");
    // Freeing the rest coalesces and the big allocation fits.
    for (i, p) in blocks.iter().enumerate() {
        if i % 2 == 1 {
            rt.free(*p).unwrap();
        }
    }
    assert!(rt.malloc(256 * 1024, "big").is_ok());
}

#[test]
fn kernel_oob_store_panics_with_context() {
    let mut rt = Runtime::new(DeviceSpec::test_small());
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.launch(&OneStore { addr: u64::MAX - 2 }, Dim3::linear(1), Dim3::linear(1)).unwrap();
    }))
    .expect_err("must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("store fault"), "{msg}");
    assert!(msg.contains("pc0000"), "{msg}");
}

#[test]
fn copy_into_gap_between_allocations_fails() {
    let mut rt = Runtime::new(DeviceSpec::test_small());
    let a = rt.malloc(100, "a").unwrap();
    let _b = rt.malloc(100, "b").unwrap();
    // Alignment pads allocations to 256; byte 100..256 after `a` is a gap.
    let gap = DevicePtr(a.addr() + 130);
    assert!(matches!(rt.memcpy_h2d(gap, &[0u8; 4]), Err(GpuError::InvalidPointer { .. })));
}

#[test]
fn zero_size_requests_rejected() {
    let mut rt = Runtime::new(DeviceSpec::test_small());
    assert_eq!(rt.malloc(0, "zero"), Err(GpuError::ZeroSize));
}

#[test]
fn launch_too_many_threads_rejected_before_execution() {
    let mut rt = Runtime::new(DeviceSpec::test_small());
    let before = rt.time_report().clone();
    let err = rt.launch(&OneStore { addr: 0 }, Dim3::linear(1), Dim3::new(64, 64, 2));
    assert!(matches!(err, Err(GpuError::InvalidLaunch { .. })));
    assert_eq!(rt.time_report(), &before, "nothing was charged");
}

#[test]
fn double_free_and_stale_pointer() {
    let mut rt = Runtime::new(DeviceSpec::test_small());
    let p = rt.malloc(64, "x").unwrap();
    rt.free(p).unwrap();
    assert!(matches!(rt.free(p), Err(GpuError::InvalidFree { .. })));
    assert!(rt.memcpy_d2h(&mut [0u8; 4], p).is_err());
}
