//! The `vex` binary: thin shim over [`vex_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match vex_cli::parse_args(args.iter().map(String::as_str)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match vex_cli::run(&parsed, &mut stdout) {
        Ok(code) => {
            drop(stdout);
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
