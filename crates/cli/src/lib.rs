//! # vex-cli — the ValueExpert command line
//!
//! The launcher a user of the real tool would invoke (`gvprof -e
//! value_pattern ./app` in the original artifact). Because our
//! applications are simulator workloads rather than arbitrary binaries,
//! the CLI selects them by name:
//!
//! ```text
//! vex list
//! vex profile darknet --fine --block-sampling 4 --json out.json --dot flow.dot
//! vex profile lammps --races --reuse 64
//! vex speedup backprop --device a100
//! vex gvprof huffman
//! vex record darknet --fine -o darknet.vex
//! vex replay darknet.vex --fine --json out.json
//! vex replay darknet.vex --gvprof
//! vex info darknet.vex
//! vex serve traces/ --addr 127.0.0.1:7070 --workers 8 --cache-entries 64
//! ```
//!
//! The argument parser and command logic live in this library so they are
//! unit-testable; `main.rs` is a thin shim.

#![deny(missing_docs)]

use std::fmt;
use vex_core::prelude::*;
use vex_gpu::runtime::Runtime;
use vex_gpu::timing::DeviceSpec;
use vex_gvprof::GvProfSession;
use vex_workloads::{all_apps, GpuApp, Variant};

/// Which device preset to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Device {
    /// NVIDIA RTX 2080 Ti (default — the paper's first platform).
    #[default]
    Rtx2080Ti,
    /// NVIDIA A100.
    A100,
}

impl Device {
    /// The corresponding simulator spec.
    pub fn spec(self) -> DeviceSpec {
        match self {
            Device::Rtx2080Ti => DeviceSpec::rtx2080ti(),
            Device::A100 => DeviceSpec::a100(),
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `vex list` — print available workloads.
    List,
    /// `vex profile <app> [options]`.
    Profile(ProfileArgs),
    /// `vex speedup <app> [--device d]`.
    Speedup {
        /// Workload name.
        app: String,
        /// Device preset.
        device: Device,
    },
    /// `vex gvprof <app>` — run the baseline profiler.
    GvProf {
        /// Workload name.
        app: String,
    },
    /// `vex record <app> [options] -o trace.vex`.
    Record(RecordArgs),
    /// `vex replay <trace.vex> [options]`.
    Replay(ReplayArgs),
    /// `vex diff <a.vex> <b.vex> [options]` — compare two traces.
    Diff(DiffArgs),
    /// `vex info <trace.vex>` — print the container header and counts.
    Info {
        /// Trace path.
        path: String,
        /// Emit the summary as JSON (`--format json`).
        json: bool,
    },
    /// `vex repair <trace.vex> [<out.vex>]` — salvage the longest valid
    /// prefix of a truncated/corrupt trace into a new valid container.
    Repair {
        /// Damaged trace path.
        input: String,
        /// Output path (default: `<stem>.repaired.vex` next to the
        /// input).
        output: Option<String>,
    },
    /// `vex serve <dir> [options]` — serve recorded traces over HTTP.
    Serve(ServeArgs),
    /// `vex push <trace.vex> [--url URL] [--id ID] [--spool-dir DIR]` —
    /// stream a recorded trace to a running `vex serve --ingest`.
    Push {
        /// Trace path to push.
        path: String,
        /// Server base URL.
        url: String,
        /// Trace id on the server (default: the file stem).
        id: Option<String>,
        /// Spool the trace here instead of failing when the server
        /// stays unreachable after retries.
        spool_dir: Option<String>,
    },
    /// `vex push --drain <dir> [--url URL]` — re-push every spooled
    /// trace, removing each from the spool once it lands.
    Drain {
        /// Spool directory to drain.
        dir: String,
        /// Server base URL.
        url: String,
    },
    /// `vex help`.
    Help,
}

/// Options of `vex serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Directory of `.vex` traces to load.
    pub dir: String,
    /// Listen address.
    pub addr: String,
    /// Worker threads.
    pub workers: usize,
    /// Report-cache capacity, entries.
    pub cache_entries: usize,
    /// Worker threads decoding a trace's columnar batches when it is
    /// materialized (1 = sequential decode).
    pub decode_threads: usize,
    /// Upper bound on resident decoded trace bytes (`None` =
    /// unbounded); least-recently-used decoded traces are evicted to
    /// stay under it.
    pub memory_budget: Option<u64>,
    /// Enable the mutation endpoints (`POST /ingest/{id}`,
    /// `DELETE /traces/{id}`).
    pub ingest: bool,
    /// Per-request cap on an ingest body, bytes.
    pub max_ingest_bytes: u64,
    /// Fail startup on the first corrupt trace instead of quarantining
    /// it.
    pub strict: bool,
    /// Evict decoded traces idle for this many seconds ahead of LRU
    /// pressure (`None` = keep until the memory budget forces eviction).
    pub trace_ttl: Option<u64>,
}

impl ServeArgs {
    fn new(dir: String) -> Self {
        ServeArgs {
            dir,
            addr: "127.0.0.1:7070".into(),
            workers: 4,
            cache_entries: 64,
            decode_threads: 1,
            memory_budget: None,
            ingest: false,
            max_ingest_bytes: 64 * 1024 * 1024,
            strict: false,
            trace_ttl: None,
        }
    }
}

/// Options of `vex record`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordArgs {
    /// Workload name.
    pub app: String,
    /// Device preset.
    pub device: Device,
    /// Record coarse capture snapshots (default true).
    pub coarse: bool,
    /// Record fine-grained access records (default false).
    pub fine: bool,
    /// Workload variant to run (default baseline).
    pub variant: Variant,
    /// Kernel sampling period applied while recording.
    pub kernel_sampling: u64,
    /// Block sampling period applied while recording.
    pub block_sampling: u32,
    /// Kernel-name substring filters applied while recording.
    pub filters: Vec<String>,
    /// Output trace path.
    pub output: String,
    /// Stream the finished trace to this `vex serve --ingest` URL
    /// instead of writing it to disk; the trace id is the output file
    /// stem.
    pub push: Option<String>,
    /// With `--push`: spool the trace to this directory instead of
    /// failing when the server stays unreachable after retries
    /// (`vex push --drain` re-pushes it later).
    pub spool_dir: Option<String>,
}

impl RecordArgs {
    fn new(app: String) -> Self {
        RecordArgs {
            app,
            device: Device::default(),
            coarse: true,
            fine: false,
            variant: Variant::Baseline,
            kernel_sampling: 1,
            block_sampling: 1,
            filters: Vec::new(),
            output: "trace.vex".into(),
            push: None,
            spool_dir: None,
        }
    }
}

/// Options of `vex replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayArgs {
    /// Trace path.
    pub path: String,
    /// Run the coarse pass (default true).
    pub coarse: bool,
    /// Run the fine pass (default false).
    pub fine: bool,
    /// Run race detection (implies fine records in the trace).
    pub races: bool,
    /// Reuse-distance line size, if enabled.
    pub reuse: Option<u64>,
    /// Number of analysis shards (0 = synchronous engine).
    pub shards: usize,
    /// Replay through the GVProf baseline instead of ValueExpert.
    pub gvprof: bool,
    /// GVProf kernel sampling period (only with `--gvprof`).
    pub kernel_sampling: u64,
    /// GVProf block sampling period (only with `--gvprof`).
    pub block_sampling: u32,
    /// Write the JSON profile here.
    pub json: Option<String>,
    /// Write the value-flow DOT here.
    pub dot: Option<String>,
    /// Write a Markdown report here.
    pub md: Option<String>,
    /// Worker threads decoding the trace's columnar batches (1 =
    /// sequential decode).
    pub decode_threads: usize,
}

impl ReplayArgs {
    fn new(path: String) -> Self {
        ReplayArgs {
            path,
            coarse: true,
            fine: false,
            races: false,
            reuse: None,
            shards: 0,
            gvprof: false,
            kernel_sampling: 1,
            block_sampling: 1,
            json: None,
            dot: None,
            md: None,
            decode_threads: 1,
        }
    }
}

/// Output format of `vex diff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffFormat {
    /// Human-readable text report (default).
    #[default]
    Text,
    /// Machine-readable JSON document.
    Json,
}

/// Options of `vex diff`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffArgs {
    /// "Before" trace path.
    pub path_a: String,
    /// "After" trace path.
    pub path_b: String,
    /// Relative-change significance threshold in `[0, 1]`.
    pub threshold: f64,
    /// Output format.
    pub format: DiffFormat,
    /// CI gate mode: append a PASS/FAIL line and exit 1 on regressions,
    /// 2 on errors.
    pub ci: bool,
    /// Per-category threshold overrides (`--ci-threshold CAT=FRACTION`).
    pub category_thresholds: Vec<(DeltaCategory, f64)>,
    /// Run the coarse pass on both traces (default true).
    pub coarse: bool,
    /// Run the fine pass on both traces (default false).
    pub fine: bool,
    /// Run race detection on both traces.
    pub races: bool,
    /// Reuse-distance line size, if enabled.
    pub reuse: Option<u64>,
    /// Number of analysis shards (0 = synchronous engine).
    pub shards: usize,
    /// Worker threads decoding each trace's columnar batches.
    pub decode_threads: usize,
}

impl DiffArgs {
    fn new(path_a: String, path_b: String) -> Self {
        DiffArgs {
            path_a,
            path_b,
            threshold: 0.10,
            format: DiffFormat::Text,
            ci: false,
            category_thresholds: Vec::new(),
            coarse: true,
            fine: false,
            races: false,
            reuse: None,
            shards: 0,
            decode_threads: 1,
        }
    }
}

/// Options of `vex profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileArgs {
    /// Workload name.
    pub app: String,
    /// Device preset.
    pub device: Device,
    /// Enable the coarse pass (default true).
    pub coarse: bool,
    /// Enable the fine pass (default true).
    pub fine: bool,
    /// Kernel sampling period.
    pub kernel_sampling: u64,
    /// Block sampling period.
    pub block_sampling: u32,
    /// Kernel-name substring filters.
    pub filters: Vec<String>,
    /// Enable race detection.
    pub races: bool,
    /// Reuse-distance line size, if enabled.
    pub reuse: Option<u64>,
    /// Write the JSON profile here.
    pub json: Option<String>,
    /// Write the value-flow DOT here.
    pub dot: Option<String>,
    /// Write a Markdown report here.
    pub md: Option<String>,
}

impl ProfileArgs {
    fn new(app: String) -> Self {
        ProfileArgs {
            app,
            device: Device::default(),
            coarse: true,
            fine: true,
            kernel_sampling: 1,
            block_sampling: 1,
            filters: Vec::new(),
            races: false,
            reuse: None,
            json: None,
            dot: None,
            md: None,
        }
    }
}

/// A CLI usage error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl std::error::Error for UsageError {}

/// The usage text.
pub const USAGE: &str = "\
usage:
  vex list
  vex profile <app> [--device 2080ti|a100] [--no-coarse] [--no-fine]
               [--kernel-sampling N] [--block-sampling N] [--filter SUBSTR]...
               [--races] [--reuse LINE_BYTES] [--json PATH] [--dot PATH] [--md PATH]
  vex speedup <app> [--device 2080ti|a100]
  vex gvprof <app>
  vex record <app> [-o|--output PATH] [--device 2080ti|a100] [--no-coarse] [--fine]
               [--variant baseline|optimized]
               [--kernel-sampling N] [--block-sampling N] [--filter SUBSTR]...
               [--push URL] [--spool-dir DIR]
               record the canonical event stream to a .vex trace (default trace.vex);
               sampling and filters are baked into the trace; --variant
               optimized runs the workload with the paper's fix applied
               (the natural after-side input for `vex diff`); --push streams
               the finished trace to a running `vex serve --ingest` (id = the
               output file stem) instead of writing it to disk, retrying with
               backoff on transient failures; with --spool-dir the trace is
               spooled there instead of lost when the server stays down
               (`vex push --drain DIR` re-pushes it later)
  vex replay <trace.vex> [--no-coarse] [--fine] [--races] [--reuse LINE_BYTES]
               [--shards N] [--decode-threads N] [--json PATH] [--dot PATH] [--md PATH]
               re-run analyses offline from a recorded trace; reports are
               byte-identical to a live session with the same options;
               --decode-threads decodes columnar batches on N workers
  vex replay <trace.vex> --gvprof [--kernel-sampling N] [--block-sampling N]
               [--decode-threads N]
               replay a --fine trace through the GVProf baseline
  vex diff <a.vex> <b.vex> [--threshold FRACTION] [--format text|json] [--ci]
               [--ci-threshold CATEGORY=FRACTION]... [--no-coarse] [--fine]
               [--races] [--reuse LINE_BYTES] [--shards N] [--decode-threads N]
               replay both traces with identical options and report what
               changed: per-object pattern appearances/disappearances,
               redundancy / dead-store / duplicate byte swings, access-count
               swings, copy-strategy recommendation changes, and new/removed
               objects and kernels, ranked by estimated byte cost; changes
               below --threshold (default 0.10 relative) are noise and
               dropped; --ci appends a PASS/FAIL line and exits 1 when any
               regression survives the thresholds (0 clean, 2 error) —
               --ci-threshold overrides the gate per category (categories:
               pattern redundancy dead-store duplicate access copy-strategy
               invocations traffic object-set kernel-set)
  vex info <trace.vex> [--format text|json]
               print the container header (format version, device preset)
               and per-event-type counts without materializing the trace;
               a damaged trace reports its salvageable prefix instead;
               --format json emits the same summary machine-readably
  vex repair <trace.vex> [<out.vex>]
               recover the longest valid frame prefix of a truncated or
               corrupt trace (e.g. from a recording killed mid-run) into a
               new valid container (default out: <stem>.repaired.vex) and
               print a loss report
  vex serve <dir> [--addr HOST:PORT] [--workers N] [--cache-entries K]
               [--decode-threads N] [--memory-budget BYTES[k|m|g]]
               [--trace-ttl SECS] [--ingest]
               [--max-ingest-bytes BYTES[k|m|g]] [--strict]
               index every .vex trace in <dir> (cheap skip-scan, no full
               decode) and serve profile queries over HTTP: /traces,
               /traces/{id}/report, /traces/{id}/flowgraph,
               /traces/{id}/objects, /traces/{id}/kernels, /healthz, /metrics;
               traces decode lazily per report and --memory-budget bounds the
               resident decoded bytes (LRU eviction); --trace-ttl evicts
               decoded traces idle longer than SECS seconds ahead of LRU
               pressure (GET /traces/{a}/diff/{b} compares two traces);
               --ingest enables
               POST /ingest/{id} and DELETE /traces/{id} (bodies capped by
               --max-ingest-bytes, default 64m); corrupt traces are
               quarantined unless --strict
  vex push <trace.vex> [--url http://HOST:PORT] [--id ID] [--spool-dir DIR]
               stream a recorded trace to a running `vex serve --ingest`
               (default url http://127.0.0.1:7070, default id = file stem),
               retrying transient failures with backoff; --spool-dir keeps
               the trace locally instead of failing when the server stays
               unreachable
  vex push --drain DIR [--url http://HOST:PORT]
               re-push every trace spooled in DIR, removing each from the
               spool once it lands; traces that still fail stay spooled
  vex help";

fn parse_device(v: &str) -> Result<Device, UsageError> {
    match v.to_ascii_lowercase().as_str() {
        "2080ti" | "rtx2080ti" | "rtx-2080-ti" => Ok(Device::Rtx2080Ti),
        "a100" => Ok(Device::A100),
        other => Err(UsageError(format!("unknown device '{other}'"))),
    }
}

fn parse_variant(v: &str) -> Result<Variant, UsageError> {
    match v.to_ascii_lowercase().as_str() {
        "baseline" | "base" => Ok(Variant::Baseline),
        "optimized" | "opt" => Ok(Variant::Optimized),
        other => Err(UsageError(format!(
            "unknown variant '{other}' (expected baseline or optimized)"
        ))),
    }
}

fn parse_diff_format(v: &str) -> Result<DiffFormat, UsageError> {
    match v {
        "text" => Ok(DiffFormat::Text),
        "json" => Ok(DiffFormat::Json),
        other => {
            Err(UsageError(format!("unknown diff format '{other}' (expected text or json)")))
        }
    }
}

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    it: &mut I,
) -> Result<&'a str, UsageError> {
    it.next().ok_or_else(|| UsageError(format!("{flag} requires a value")))
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `64m`, `2g`, `1048576`.
fn parse_byte_size(v: &str) -> Result<u64, UsageError> {
    let lower = v.to_ascii_lowercase();
    let (digits, unit) = if let Some(n) = lower.strip_suffix('g') {
        (n, 1u64 << 30)
    } else if let Some(n) = lower.strip_suffix('m') {
        (n, 1 << 20)
    } else if let Some(n) = lower.strip_suffix('k') {
        (n, 1 << 10)
    } else {
        (lower.as_str(), 1)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| UsageError(format!("invalid byte size '{v}' (expected N[k|m|g])")))?;
    n.checked_mul(unit).ok_or_else(|| UsageError(format!("byte size '{v}' overflows")))
}

/// Derives a trace id from an output path: its file stem.
fn trace_id_from_path(path: &str) -> Result<String, UsageError> {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .ok_or_else(|| UsageError(format!("cannot derive a trace id from '{path}'")))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns [`UsageError`] for unknown commands, flags, or values.
pub fn parse_args<'a>(args: impl IntoIterator<Item = &'a str>) -> Result<Command, UsageError> {
    let mut it = args.into_iter();
    let cmd = match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    match cmd {
        "list" => Ok(Command::List),
        "profile" => {
            let app =
                it.next().ok_or_else(|| UsageError("profile requires an app name".into()))?;
            let mut p = ProfileArgs::new(app.to_owned());
            while let Some(flag) = it.next() {
                match flag {
                    "--device" => p.device = parse_device(take_value(flag, &mut it)?)?,
                    "--no-coarse" => p.coarse = false,
                    "--no-fine" => p.fine = false,
                    "--kernel-sampling" => {
                        p.kernel_sampling = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid kernel sampling period".into()))?
                    }
                    "--block-sampling" => {
                        p.block_sampling = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid block sampling period".into()))?
                    }
                    "--filter" => p.filters.push(take_value(flag, &mut it)?.to_owned()),
                    "--races" => p.races = true,
                    "--reuse" => {
                        p.reuse = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|_| UsageError("invalid reuse line size".into()))?,
                        )
                    }
                    "--json" => p.json = Some(take_value(flag, &mut it)?.to_owned()),
                    "--dot" => p.dot = Some(take_value(flag, &mut it)?.to_owned()),
                    "--md" => p.md = Some(take_value(flag, &mut it)?.to_owned()),
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            if !p.coarse && !p.fine {
                return Err(UsageError("at least one of coarse/fine must stay enabled".into()));
            }
            Ok(Command::Profile(p))
        }
        "speedup" => {
            let app = it
                .next()
                .ok_or_else(|| UsageError("speedup requires an app name".into()))?
                .to_owned();
            let mut device = Device::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--device" => device = parse_device(take_value(flag, &mut it)?)?,
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Speedup { app, device })
        }
        "gvprof" => {
            let app = it
                .next()
                .ok_or_else(|| UsageError("gvprof requires an app name".into()))?
                .to_owned();
            if app == "--help" || app == "-h" {
                return Ok(Command::Help);
            }
            if let Some(flag) = it.next() {
                return match flag {
                    "--help" | "-h" => Ok(Command::Help),
                    other => Err(UsageError(format!("unknown flag '{other}'"))),
                };
            }
            Ok(Command::GvProf { app })
        }
        "record" => {
            let app =
                it.next().ok_or_else(|| UsageError("record requires an app name".into()))?;
            if app == "--help" || app == "-h" {
                return Ok(Command::Help);
            }
            let mut r = RecordArgs::new(app.to_owned());
            while let Some(flag) = it.next() {
                match flag {
                    "--help" | "-h" => return Ok(Command::Help),
                    "-o" | "--output" => r.output = take_value(flag, &mut it)?.to_owned(),
                    "--device" => r.device = parse_device(take_value(flag, &mut it)?)?,
                    "--no-coarse" => r.coarse = false,
                    "--fine" => r.fine = true,
                    "--variant" => r.variant = parse_variant(take_value(flag, &mut it)?)?,
                    "--kernel-sampling" => {
                        r.kernel_sampling = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid kernel sampling period".into()))?
                    }
                    "--block-sampling" => {
                        r.block_sampling = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid block sampling period".into()))?
                    }
                    "--filter" => r.filters.push(take_value(flag, &mut it)?.to_owned()),
                    "--push" => r.push = Some(take_value(flag, &mut it)?.to_owned()),
                    "--spool-dir" => r.spool_dir = Some(take_value(flag, &mut it)?.to_owned()),
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            if !r.coarse && !r.fine {
                return Err(UsageError("at least one of coarse/fine must stay enabled".into()));
            }
            if r.spool_dir.is_some() && r.push.is_none() {
                return Err(UsageError("--spool-dir only applies with --push".into()));
            }
            Ok(Command::Record(r))
        }
        "replay" => {
            let path =
                it.next().ok_or_else(|| UsageError("replay requires a trace path".into()))?;
            if path == "--help" || path == "-h" {
                return Ok(Command::Help);
            }
            let mut r = ReplayArgs::new(path.to_owned());
            while let Some(flag) = it.next() {
                match flag {
                    "--help" | "-h" => return Ok(Command::Help),
                    "--no-coarse" => r.coarse = false,
                    "--fine" => r.fine = true,
                    "--races" => r.races = true,
                    "--reuse" => {
                        r.reuse = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|_| UsageError("invalid reuse line size".into()))?,
                        )
                    }
                    "--shards" => {
                        r.shards = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid shard count".into()))?
                    }
                    "--gvprof" => r.gvprof = true,
                    "--kernel-sampling" => {
                        r.kernel_sampling = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid kernel sampling period".into()))?
                    }
                    "--block-sampling" => {
                        r.block_sampling = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid block sampling period".into()))?
                    }
                    "--json" => r.json = Some(take_value(flag, &mut it)?.to_owned()),
                    "--dot" => r.dot = Some(take_value(flag, &mut it)?.to_owned()),
                    "--md" => r.md = Some(take_value(flag, &mut it)?.to_owned()),
                    "--decode-threads" => {
                        r.decode_threads = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid decode thread count".into()))?;
                        if r.decode_threads == 0 {
                            return Err(UsageError(
                                "--decode-threads must be at least 1".into(),
                            ));
                        }
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            if r.gvprof && (r.fine || r.races || r.reuse.is_some() || !r.coarse || r.shards > 0)
            {
                return Err(UsageError(
                    "--gvprof replays the baseline profiler and cannot be combined with \
                     ValueExpert analysis flags"
                        .into(),
                ));
            }
            if !r.gvprof && (r.kernel_sampling != 1 || r.block_sampling != 1) {
                return Err(UsageError(
                    "sampling periods are baked into the trace at record time; \
                     --kernel-sampling/--block-sampling only apply to --gvprof replays"
                        .into(),
                ));
            }
            if !r.gvprof && !r.coarse && !r.fine {
                return Err(UsageError("at least one of coarse/fine must stay enabled".into()));
            }
            Ok(Command::Replay(r))
        }
        "diff" => {
            let path_a =
                it.next().ok_or_else(|| UsageError("diff requires two trace paths".into()))?;
            if path_a == "--help" || path_a == "-h" {
                return Ok(Command::Help);
            }
            let path_b =
                it.next().ok_or_else(|| UsageError("diff requires two trace paths".into()))?;
            if path_b == "--help" || path_b == "-h" {
                return Ok(Command::Help);
            }
            let mut d = DiffArgs::new(path_a.to_owned(), path_b.to_owned());
            while let Some(flag) = it.next() {
                match flag {
                    "--help" | "-h" => return Ok(Command::Help),
                    "--threshold" => {
                        d.threshold = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid threshold".into()))?;
                        if !(0.0..=1.0).contains(&d.threshold) {
                            return Err(UsageError("--threshold must be within [0, 1]".into()));
                        }
                    }
                    "--format" => d.format = parse_diff_format(take_value(flag, &mut it)?)?,
                    "--ci" => d.ci = true,
                    "--ci-threshold" => {
                        let spec = take_value(flag, &mut it)?;
                        let (cat, frac) = spec.split_once('=').ok_or_else(|| {
                            UsageError(format!(
                                "--ci-threshold takes CATEGORY=FRACTION, got '{spec}'"
                            ))
                        })?;
                        let cat = DeltaCategory::parse(cat).ok_or_else(|| {
                            UsageError(format!("unknown diff category '{cat}'"))
                        })?;
                        let frac: f64 = frac
                            .parse()
                            .map_err(|_| UsageError("invalid threshold fraction".into()))?;
                        if !(0.0..=1.0).contains(&frac) {
                            return Err(UsageError(
                                "--ci-threshold fraction must be within [0, 1]".into(),
                            ));
                        }
                        d.category_thresholds.push((cat, frac));
                    }
                    "--no-coarse" => d.coarse = false,
                    "--fine" => d.fine = true,
                    "--races" => d.races = true,
                    "--reuse" => {
                        d.reuse = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|_| UsageError("invalid reuse line size".into()))?,
                        )
                    }
                    "--shards" => {
                        d.shards = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid shard count".into()))?
                    }
                    "--decode-threads" => {
                        d.decode_threads = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid decode thread count".into()))?;
                        if d.decode_threads == 0 {
                            return Err(UsageError(
                                "--decode-threads must be at least 1".into(),
                            ));
                        }
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            if !d.coarse && !d.fine {
                return Err(UsageError("at least one of coarse/fine must stay enabled".into()));
            }
            if !d.category_thresholds.is_empty() && !d.ci {
                return Err(UsageError("--ci-threshold only applies with --ci".into()));
            }
            Ok(Command::Diff(d))
        }
        "info" => {
            let path =
                it.next().ok_or_else(|| UsageError("info requires a trace path".into()))?;
            if path == "--help" || path == "-h" {
                return Ok(Command::Help);
            }
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--help" | "-h" => return Ok(Command::Help),
                    "--format" => {
                        json = match take_value(flag, &mut it)? {
                            "text" => false,
                            "json" => true,
                            other => {
                                return Err(UsageError(format!(
                                    "unknown info format '{other}' (expected text or json)"
                                )))
                            }
                        }
                    }
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                };
            }
            Ok(Command::Info { path: path.to_owned(), json })
        }
        "repair" => {
            let input =
                it.next().ok_or_else(|| UsageError("repair requires a trace path".into()))?;
            if input == "--help" || input == "-h" {
                return Ok(Command::Help);
            }
            let mut output = None;
            for arg in it {
                match arg {
                    "--help" | "-h" => return Ok(Command::Help),
                    other if other.starts_with('-') => {
                        return Err(UsageError(format!("unknown flag '{other}'")))
                    }
                    other => {
                        if output.is_some() {
                            return Err(UsageError(
                                "repair takes at most an input and an output path".into(),
                            ));
                        }
                        output = Some(other.to_owned());
                    }
                }
            }
            Ok(Command::Repair { input: input.to_owned(), output })
        }
        "serve" => {
            let dir = it
                .next()
                .ok_or_else(|| UsageError("serve requires a trace directory".into()))?;
            if dir == "--help" || dir == "-h" {
                return Ok(Command::Help);
            }
            let mut s = ServeArgs::new(dir.to_owned());
            while let Some(flag) = it.next() {
                match flag {
                    "--help" | "-h" => return Ok(Command::Help),
                    "--addr" => s.addr = take_value(flag, &mut it)?.to_owned(),
                    "--workers" => {
                        s.workers = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid worker count".into()))?;
                        if s.workers == 0 {
                            return Err(UsageError("--workers must be at least 1".into()));
                        }
                    }
                    "--cache-entries" => {
                        s.cache_entries = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid cache capacity".into()))?
                    }
                    "--decode-threads" => {
                        s.decode_threads = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid decode thread count".into()))?;
                        if s.decode_threads == 0 {
                            return Err(UsageError(
                                "--decode-threads must be at least 1".into(),
                            ));
                        }
                    }
                    "--memory-budget" => {
                        s.memory_budget = Some(parse_byte_size(take_value(flag, &mut it)?)?)
                    }
                    "--trace-ttl" => {
                        let secs: u64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid trace TTL".into()))?;
                        if secs == 0 {
                            return Err(UsageError(
                                "--trace-ttl must be at least 1 second".into(),
                            ));
                        }
                        s.trace_ttl = Some(secs);
                    }
                    "--ingest" => s.ingest = true,
                    "--max-ingest-bytes" => {
                        s.max_ingest_bytes = parse_byte_size(take_value(flag, &mut it)?)?;
                        if s.max_ingest_bytes == 0 {
                            return Err(UsageError(
                                "--max-ingest-bytes must be at least 1".into(),
                            ));
                        }
                    }
                    "--strict" => s.strict = true,
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Serve(s))
        }
        "push" => {
            let first = it
                .next()
                .ok_or_else(|| UsageError("push requires a trace path or --drain".into()))?;
            if first == "--help" || first == "-h" {
                return Ok(Command::Help);
            }
            let mut url = "http://127.0.0.1:7070".to_owned();
            if first == "--drain" {
                let dir = take_value("--drain", &mut it)?.to_owned();
                while let Some(flag) = it.next() {
                    match flag {
                        "--help" | "-h" => return Ok(Command::Help),
                        "--url" => url = take_value(flag, &mut it)?.to_owned(),
                        other => return Err(UsageError(format!("unknown flag '{other}'"))),
                    }
                }
                return Ok(Command::Drain { dir, url });
            }
            let path = first;
            let mut id = None;
            let mut spool_dir = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--help" | "-h" => return Ok(Command::Help),
                    "--url" => url = take_value(flag, &mut it)?.to_owned(),
                    "--id" => id = Some(take_value(flag, &mut it)?.to_owned()),
                    "--spool-dir" => spool_dir = Some(take_value(flag, &mut it)?.to_owned()),
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Push { path: path.to_owned(), url, id, spool_dir })
        }
        other => Err(UsageError(format!("unknown command '{other}'"))),
    }
}

/// Finds a workload by (case-insensitive) name.
///
/// # Errors
///
/// Returns [`UsageError`] listing the valid names when not found.
pub fn find_app(name: &str) -> Result<Box<dyn GpuApp>, UsageError> {
    let needle = name.to_ascii_lowercase();
    for app in all_apps() {
        if app.name().to_ascii_lowercase() == needle {
            return Ok(app);
        }
    }
    let names: Vec<&'static str> = all_apps().iter().map(|a| a.name()).collect();
    Err(UsageError(format!("unknown app '{name}'; available: {}", names.join(", "))))
}

/// Executes a parsed command, writing human output to `out`, and
/// returns the process exit code: `0` on success, and for
/// `vex diff --ci` `1` when the regression gate trips and `2` when the
/// comparison itself failed (missing trace, decode error).
///
/// # Errors
///
/// Returns [`UsageError`] for unknown app names; I/O failures writing
/// requested artefacts are reported as usage errors too (the path was the
/// user's input).
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> Result<i32, UsageError> {
    match cmd {
        Command::Diff(d) => run_diff(d, out),
        other => run_unit(other, out).map(|()| 0),
    }
}

/// The commands whose only outcomes are "worked" (exit 0) or a
/// [`UsageError`]; `vex diff` carries real exit codes and lives in
/// [`run_diff`].
fn run_unit(cmd: &Command, out: &mut dyn std::io::Write) -> Result<(), UsageError> {
    let io_err = |e: std::io::Error| UsageError(format!("i/o error: {e}"));
    match cmd {
        Command::Diff(_) => unreachable!("diff is dispatched by run()"),
        Command::Help => writeln!(out, "{USAGE}").map_err(io_err),
        Command::List => {
            for app in all_apps() {
                writeln!(
                    out,
                    "{:<18} hot kernel: {}",
                    app.name(),
                    if app.memory_only() {
                        "(memory-bound rows only)"
                    } else {
                        app.hot_kernel()
                    }
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        Command::Profile(p) => {
            let app = find_app(&p.app)?;
            let mut rt = Runtime::new(p.device.spec());
            let mut b = ValueExpert::builder()
                .coarse(p.coarse)
                .fine(p.fine)
                .kernel_sampling(p.kernel_sampling)
                .block_sampling(p.block_sampling)
                .race_detection(p.races);
            if let Some(line) = p.reuse {
                b = b.reuse_distance(line);
            }
            if !p.filters.is_empty() {
                b = b.filter_kernels(p.filters.clone());
            }
            let vex = b.attach(&mut rt);
            app.run(&mut rt, Variant::Baseline)
                .map_err(|e| UsageError(format!("workload failed: {e}")))?;
            let profile = vex.report(&rt);
            write!(out, "{}", profile.render_text_document()).map_err(io_err)?;
            if let Some(path) = &p.json {
                let json = profile
                    .to_json()
                    .map_err(|e| UsageError(format!("serialize failed: {e}")))?;
                std::fs::write(path, json).map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            if let Some(path) = &p.dot {
                std::fs::write(path, profile.render_dot_document(None)).map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            if let Some(path) = &p.md {
                std::fs::write(path, profile.render_markdown()).map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            Ok(())
        }
        Command::Speedup { app, device } => {
            let app = find_app(app)?;
            let measure = |variant| {
                let mut rt = Runtime::new(device.spec());
                app.run(&mut rt, variant).expect("workload runs");
                rt.time_report().clone()
            };
            let base = measure(Variant::Baseline);
            let opt = measure(Variant::Optimized);
            if !app.memory_only() {
                let k = app.hot_kernel();
                writeln!(
                    out,
                    "kernel {k}: {:.1} us -> {:.1} us ({:.2}x)",
                    base.kernel_us(k),
                    opt.kernel_us(k),
                    base.kernel_us(k) / opt.kernel_us(k).max(f64::MIN_POSITIVE)
                )
                .map_err(io_err)?;
            }
            writeln!(
                out,
                "memory time: {:.1} us -> {:.1} us ({:.2}x)",
                base.memory_time_us,
                opt.memory_time_us,
                base.memory_time_us / opt.memory_time_us
            )
            .map_err(io_err)
        }
        Command::GvProf { app } => {
            let app = find_app(app)?;
            let mut rt = Runtime::new(DeviceSpec::rtx2080ti());
            let gv = GvProfSession::attach(&mut rt);
            app.run(&mut rt, Variant::Baseline)
                .map_err(|e| UsageError(format!("workload failed: {e}")))?;
            write_gvprof_results(out, &gv.results())
        }
        Command::Record(r) => {
            let app = find_app(&r.app)?;
            let mut rt = Runtime::new(r.device.spec());
            let mut b = ValueExpert::builder()
                .coarse(r.coarse)
                .fine(r.fine)
                .kernel_sampling(r.kernel_sampling)
                .block_sampling(r.block_sampling);
            if !r.filters.is_empty() {
                b = b.filter_kernels(r.filters.clone());
            }
            if let Some(url) = &r.push {
                // Push mode: record into memory and stream the finished
                // trace to the server — no local file is written.
                let rec = b.record(&mut rt, Vec::new()).map_err(io_err)?;
                app.run(&mut rt, r.variant)
                    .map_err(|e| UsageError(format!("workload failed: {e}")))?;
                let stats = rec.stats();
                let bytes = rec
                    .finish(&mut rt)
                    .map_err(|e| UsageError(format!("trace write failed: {e}")))?;
                let id = trace_id_from_path(&r.output)?;
                if let Some(spool_dir) = &r.spool_dir {
                    let outcome = vex_serve::push_or_spool(
                        url,
                        &id,
                        &bytes,
                        std::path::Path::new(spool_dir),
                        &vex_serve::PushOptions::default(),
                    )
                    .map_err(|e| UsageError(e.to_string()))?;
                    return match outcome {
                        vex_serve::PushOutcome::Pushed(_) => writeln!(
                            out,
                            "pushed {id} to {url} ({} bytes, {} fine records, {} \
                             instrumented launches)",
                            bytes.len(),
                            stats.events,
                            stats.instrumented_launches
                        )
                        .map_err(io_err),
                        vex_serve::PushOutcome::Spooled(path, e) => writeln!(
                            out,
                            "server unreachable ({e}); spooled {id} to {} — run \
                             `vex push --drain {spool_dir}` once the server is back",
                            path.display()
                        )
                        .map_err(io_err),
                    };
                }
                vex_serve::push_trace(url, &id, &bytes)
                    .map_err(|e| UsageError(e.to_string()))?;
                return writeln!(
                    out,
                    "pushed {id} to {url} ({} bytes, {} fine records, {} instrumented launches)",
                    bytes.len(),
                    stats.events,
                    stats.instrumented_launches
                )
                .map_err(io_err);
            }
            let file = std::fs::File::create(&r.output).map_err(io_err)?;
            let rec = b.record(&mut rt, std::io::BufWriter::new(file)).map_err(io_err)?;
            app.run(&mut rt, r.variant)
                .map_err(|e| UsageError(format!("workload failed: {e}")))?;
            let stats = rec.stats();
            rec.finish(&mut rt).map_err(|e| UsageError(format!("trace write failed: {e}")))?;
            writeln!(
                out,
                "wrote {} ({} fine records, {} instrumented launches)",
                r.output, stats.events, stats.instrumented_launches
            )
            .map_err(io_err)
        }
        Command::Push { path, url, id, spool_dir } => {
            let bytes = std::fs::read(path)
                .map_err(|e| UsageError(format!("cannot read trace '{path}': {e}")))?;
            let id = match id {
                Some(id) => id.clone(),
                None => trace_id_from_path(path)?,
            };
            if let Some(spool_dir) = spool_dir {
                let outcome = vex_serve::push_or_spool(
                    url,
                    &id,
                    &bytes,
                    std::path::Path::new(spool_dir),
                    &vex_serve::PushOptions::default(),
                )
                .map_err(|e| UsageError(e.to_string()))?;
                return match outcome {
                    vex_serve::PushOutcome::Pushed(_) => {
                        writeln!(out, "pushed {id} ({} bytes) to {url}", bytes.len())
                            .map_err(io_err)
                    }
                    vex_serve::PushOutcome::Spooled(spooled, e) => writeln!(
                        out,
                        "server unreachable ({e}); spooled {id} to {} — run \
                         `vex push --drain {spool_dir}` once the server is back",
                        spooled.display()
                    )
                    .map_err(io_err),
                };
            }
            vex_serve::push_trace(url, &id, &bytes).map_err(|e| UsageError(e.to_string()))?;
            writeln!(out, "pushed {id} ({} bytes) to {url}", bytes.len()).map_err(io_err)
        }
        Command::Drain { dir, url } => {
            let outcome = vex_serve::drain_spool(
                std::path::Path::new(dir),
                url,
                &vex_serve::PushOptions::default(),
            )
            .map_err(|e| UsageError(e.to_string()))?;
            for id in &outcome.pushed {
                writeln!(out, "pushed {id} to {url}").map_err(io_err)?;
            }
            for (id, e) in &outcome.failed {
                writeln!(out, "failed {id}: {e} (left in spool)").map_err(io_err)?;
            }
            writeln!(
                out,
                "drained {dir}: {} pushed, {} still spooled",
                outcome.pushed.len(),
                outcome.failed.len()
            )
            .map_err(io_err)?;
            if outcome.failed.is_empty() {
                Ok(())
            } else {
                Err(UsageError(format!(
                    "{} spooled trace(s) could not be pushed",
                    outcome.failed.len()
                )))
            }
        }
        Command::Replay(r) => {
            if r.gvprof {
                // The GVProf baseline declares its own column demand.
                let opts = vex_trace::container::DecodeOptions {
                    threads: r.decode_threads,
                    columns: vex_gvprof::REPLAY_COLUMNS,
                };
                let trace = vex_trace::container::read_trace_file_with(
                    std::path::Path::new(&r.path),
                    &opts,
                )
                .map_err(|e| UsageError(format!("cannot read trace '{}': {e}", r.path)))?;
                let (results, _) =
                    vex_gvprof::replay(&trace, r.kernel_sampling, r.block_sampling)
                        .map_err(|e| UsageError(e.to_string()))?;
                return write_gvprof_results(out, &results);
            }
            let mut b = ValueExpert::builder()
                .coarse(r.coarse)
                .fine(r.fine)
                .race_detection(r.races)
                .analysis_shards(r.shards)
                .decode_threads(r.decode_threads);
            if let Some(line) = r.reuse {
                b = b.reuse_distance(line);
            }
            // Projected parallel decode: only the columns the configured
            // passes read are materialized, on the requested workers.
            let trace = vex_trace::container::read_trace_file_with(
                std::path::Path::new(&r.path),
                &b.decode_options(),
            )
            .map_err(|e| UsageError(format!("cannot read trace '{}': {e}", r.path)))?;
            let profile = b.replay(&trace).map_err(|e| UsageError(e.to_string()))?;
            write!(out, "{}", profile.render_text_document()).map_err(io_err)?;
            if let Some(path) = &r.json {
                let json = profile
                    .to_json()
                    .map_err(|e| UsageError(format!("serialize failed: {e}")))?;
                std::fs::write(path, json).map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            if let Some(path) = &r.dot {
                std::fs::write(path, profile.render_dot_document(None)).map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            if let Some(path) = &r.md {
                std::fs::write(path, profile.render_markdown()).map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            Ok(())
        }
        Command::Info { path, json } => {
            let s = match vex_trace::summary::summarize_file(std::path::Path::new(path)) {
                Ok(s) => s,
                Err(e) => {
                    // Decode failed — probe for a salvageable prefix (a
                    // crashed recording usually leaves one) before giving
                    // up, so the operator learns what `vex repair` would
                    // recover instead of just seeing the error.
                    return info_salvage_fallback(path, &e, *json, out);
                }
            };
            if *json {
                return write_info_json(path, &s, out);
            }
            writeln!(out, "{path}").map_err(io_err)?;
            writeln!(out, "  format version:        {}", s.version).map_err(io_err)?;
            writeln!(out, "  device preset:         {}", s.device).map_err(io_err)?;
            writeln!(
                out,
                "  passes:                {}",
                match (s.flags.coarse, s.flags.fine) {
                    (true, true) => "coarse + fine",
                    (true, false) => "coarse",
                    (false, true) => "fine",
                    (false, false) => "none",
                }
            )
            .map_err(io_err)?;
            writeln!(out, "  api events:            {}", s.api_events).map_err(io_err)?;
            writeln!(out, "  kernel launches:       {}", s.kernel_launches).map_err(io_err)?;
            writeln!(out, "  instrumented launches: {}", s.instrumented_launches)
                .map_err(io_err)?;
            writeln!(out, "  skipped launches:      {}", s.skipped_launches).map_err(io_err)?;
            writeln!(out, "  record batches:        {}", s.batches).map_err(io_err)?;
            writeln!(out, "  fine records:          {}", s.records).map_err(io_err)?;
            writeln!(out, "  record bytes:          {}", s.batch_bytes).map_err(io_err)?;
            if s.batch_bytes > 0 {
                let ratio = (s.records * 32) as f64 / s.batch_bytes as f64;
                writeln!(out, "  compression ratio:     {ratio:.2}x").map_err(io_err)?;
            }
            writeln!(out, "  call-path contexts:    {}", s.contexts).map_err(io_err)?;
            writeln!(out, "  app time:              {:.1} us", s.app_us).map_err(io_err)
        }
        Command::Repair { input, output } => {
            let bytes = std::fs::read(input)
                .map_err(|e| UsageError(format!("cannot read trace '{input}': {e}")))?;
            let (repaired, report) = vex_trace::salvage::repair_trace(&bytes).map_err(|e| {
                UsageError(format!(
                    "cannot salvage '{input}': {e} (the container header is unreadable)"
                ))
            })?;
            let output = match output {
                Some(o) => o.clone(),
                None => default_repair_output(input),
            };
            std::fs::write(&output, &repaired).map_err(io_err)?;
            writeln!(out, "wrote {output} ({} bytes)", repaired.len()).map_err(io_err)?;
            writeln!(out, "  frames recovered:      {}", report.frames_recovered)
                .map_err(io_err)?;
            writeln!(
                out,
                "  bytes recovered:       {} of {} ({:.1}%)",
                report.bytes_recovered,
                report.bytes_total,
                report.recoverable_percent()
            )
            .map_err(io_err)?;
            writeln!(out, "  bytes discarded:       {}", report.bytes_discarded)
                .map_err(io_err)?;
            match &report.first_error {
                None if report.complete() => {
                    writeln!(out, "  input was already complete; output is a clean rewrite")
                        .map_err(io_err)
                }
                None => {
                    writeln!(out, "  input ended cleanly but without a trailer").map_err(io_err)
                }
                Some(e) => writeln!(out, "  stopped at:            {e}").map_err(io_err),
            }
        }
        Command::Serve(s) => {
            let server = start_server(s)?;
            writeln!(
                out,
                "serving {} trace(s) from {} on http://{}",
                server.state().store().len(),
                s.dir,
                server.addr()
            )
            .map_err(io_err)?;
            out.flush().map_err(io_err)?;
            // Serve until the process is killed.
            loop {
                std::thread::park();
            }
        }
    }
}

/// `vex info` on a trace that failed to decode: salvage-probe it and
/// report what `vex repair` would recover. Returns `Ok` when a
/// recoverable prefix exists (the command did produce useful output);
/// propagates the original error otherwise (missing file, garbage
/// bytes).
fn info_salvage_fallback(
    path: &str,
    error: &vex_trace::codec::DecodeError,
    json: bool,
    out: &mut dyn std::io::Write,
) -> Result<(), UsageError> {
    let io_err = |e: std::io::Error| UsageError(format!("i/o error: {e}"));
    let cannot = || UsageError(format!("cannot read trace '{path}': {error}"));
    let salvaged = vex_trace::salvage::salvage_trace_file(std::path::Path::new(path))
        .map_err(|_| cannot())?;
    if salvaged.report.frames_recovered == 0 {
        return Err(cannot());
    }
    if json {
        let doc = serde_json::Value::Object(vec![
            ("path".into(), serde_json::Value::Str(path.to_owned())),
            ("format_version".into(), serde_json::Value::U64(u64::from(salvaged.version))),
            (
                "salvage".into(),
                serde_json::Value::Object(vec![
                    ("error".into(), serde_json::Value::Str(error.to_string())),
                    (
                        "frames_recovered".into(),
                        serde_json::Value::U64(salvaged.report.frames_recovered),
                    ),
                    (
                        "events_recovered".into(),
                        serde_json::Value::U64(salvaged.events.len() as u64),
                    ),
                    (
                        "bytes_recovered".into(),
                        serde_json::Value::U64(salvaged.report.bytes_recovered),
                    ),
                    ("bytes_total".into(), serde_json::Value::U64(salvaged.report.bytes_total)),
                    (
                        "recoverable_percent".into(),
                        serde_json::Value::F64(salvaged.report.recoverable_percent()),
                    ),
                ]),
            ),
        ]);
        return write_json_doc(&doc, out);
    }
    writeln!(out, "{path}: damaged trace ({error})").map_err(io_err)?;
    writeln!(out, "  format version:        {}", salvaged.version).map_err(io_err)?;
    writeln!(out, "  frames recovered:      {}", salvaged.report.frames_recovered)
        .map_err(io_err)?;
    writeln!(out, "  events recovered:      {}", salvaged.events.len()).map_err(io_err)?;
    writeln!(
        out,
        "  bytes recovered:       {} of {} ({:.1}%)",
        salvaged.report.bytes_recovered,
        salvaged.report.bytes_total,
        salvaged.report.recoverable_percent()
    )
    .map_err(io_err)?;
    writeln!(out, "  run `vex repair {path}` to rewrite the recoverable prefix").map_err(io_err)
}

/// Serializes a hand-built JSON document and writes it
/// newline-terminated.
fn write_json_doc(
    doc: &serde_json::Value,
    out: &mut dyn std::io::Write,
) -> Result<(), UsageError> {
    let json = serde_json::to_string_pretty(doc)
        .map_err(|e| UsageError(format!("serialize failed: {e}")))?;
    writeln!(out, "{json}").map_err(|e| UsageError(format!("i/o error: {e}")))
}

/// `vex info --format json`: the text summary as one JSON object.
fn write_info_json(
    path: &str,
    s: &vex_trace::summary::TraceSummary,
    out: &mut dyn std::io::Write,
) -> Result<(), UsageError> {
    use serde_json::Value;
    let compression_ratio = if s.batch_bytes > 0 {
        Value::F64((s.records * 32) as f64 / s.batch_bytes as f64)
    } else {
        Value::Null
    };
    let doc = Value::Object(vec![
        ("path".into(), Value::Str(path.to_owned())),
        ("format_version".into(), Value::U64(u64::from(s.version))),
        ("device".into(), Value::Str(s.device.to_string())),
        ("coarse".into(), Value::Bool(s.flags.coarse)),
        ("fine".into(), Value::Bool(s.flags.fine)),
        ("api_events".into(), Value::U64(s.api_events)),
        ("kernel_launches".into(), Value::U64(s.kernel_launches)),
        ("instrumented_launches".into(), Value::U64(s.instrumented_launches)),
        ("skipped_launches".into(), Value::U64(s.skipped_launches)),
        ("record_batches".into(), Value::U64(s.batches)),
        ("fine_records".into(), Value::U64(s.records)),
        ("record_bytes".into(), Value::U64(s.batch_bytes)),
        ("compression_ratio".into(), compression_ratio),
        ("call_path_contexts".into(), Value::U64(s.contexts)),
        ("app_us".into(), Value::F64(s.app_us)),
        ("salvage".into(), Value::Null),
    ]);
    write_json_doc(&doc, out)
}

/// Replays one trace for `vex diff` with the shared replay machinery.
fn diff_replay(d: &DiffArgs, path: &str) -> Result<Profile, UsageError> {
    let mut b = ValueExpert::builder()
        .coarse(d.coarse)
        .fine(d.fine)
        .race_detection(d.races)
        .analysis_shards(d.shards)
        .decode_threads(d.decode_threads);
    if let Some(line) = d.reuse {
        b = b.reuse_distance(line);
    }
    let trace = vex_trace::container::read_trace_file_with(
        std::path::Path::new(path),
        &b.decode_options(),
    )
    .map_err(|e| UsageError(format!("cannot read trace '{path}': {e}")))?;
    b.replay(&trace).map_err(|e| UsageError(e.to_string()))
}

/// `vex diff`: replay both traces with identical options, diff the
/// profiles, render, and in `--ci` mode gate on regressions.
fn run_diff(d: &DiffArgs, out: &mut dyn std::io::Write) -> Result<i32, UsageError> {
    let io_err = |e: std::io::Error| UsageError(format!("i/o error: {e}"));
    let compared = diff_replay(d, &d.path_a).and_then(|a| {
        let b = diff_replay(d, &d.path_b)?;
        let mut opts = DiffOptions { threshold: d.threshold, ..DiffOptions::default() };
        for (cat, frac) in &d.category_thresholds {
            opts.category_thresholds.insert(*cat, *frac);
        }
        Ok(diff_profiles(&a, &b, &opts))
    });
    let diff = match compared {
        Ok(diff) => diff,
        // The CI contract reserves exit 1 for "regression detected"; a
        // comparison that never ran is reported as exit 2 instead.
        Err(e) if d.ci => {
            writeln!(out, "ci: ERROR — {}", e.0).map_err(io_err)?;
            return Ok(2);
        }
        Err(e) => return Err(e),
    };
    match d.format {
        DiffFormat::Text => write!(out, "{}", diff.render_text_document()).map_err(io_err)?,
        DiffFormat::Json => {
            let json = diff
                .render_json_document()
                .map_err(|e| UsageError(format!("serialize failed: {e}")))?;
            write!(out, "{json}").map_err(io_err)?;
        }
    }
    if d.ci {
        if diff.has_regressions() {
            writeln!(
                out,
                "ci: FAIL — {} regression(s) ({})",
                diff.summary.regressions,
                diff.summary.regression_categories.join(", ")
            )
            .map_err(io_err)?;
            return Ok(1);
        }
        writeln!(out, "ci: PASS — no regressions above thresholds").map_err(io_err)?;
    }
    Ok(0)
}

/// `foo/bar.vex` → `foo/bar.repaired.vex`.
fn default_repair_output(input: &str) -> String {
    let p = std::path::Path::new(input);
    let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    p.with_file_name(format!("{stem}.repaired.vex")).display().to_string()
}

/// Loads the trace directory of a `vex serve` invocation and starts the
/// server (without blocking). `run` blocks on it forever; tests and
/// benches drive the returned handle directly.
///
/// # Errors
///
/// Returns [`UsageError`] if the directory cannot be loaded or the
/// address cannot be bound.
pub fn start_server(args: &ServeArgs) -> Result<vex_serve::Server, UsageError> {
    let opts = vex_serve::StoreOptions {
        decode_threads: args.decode_threads,
        memory_budget: args.memory_budget,
        strict: args.strict,
        trace_ttl: args.trace_ttl.map(std::time::Duration::from_secs),
    };
    let store = vex_serve::ProfileStore::load_dir_with(std::path::Path::new(&args.dir), &opts)
        .map_err(|e| UsageError(e.to_string()))?;
    let config = vex_serve::ServerConfig {
        workers: args.workers,
        cache_entries: args.cache_entries,
        ingest_enabled: args.ingest,
        max_ingest_bytes: args.max_ingest_bytes,
        ..vex_serve::ServerConfig::default()
    };
    vex_serve::Server::bind(store, &args.addr, config)
        .map_err(|e| UsageError(format!("cannot bind {}: {e}", args.addr)))
}

/// Prints per-kernel GVProf results in the format shared by `vex gvprof`
/// and `vex replay --gvprof`, so live and replayed output match
/// byte-for-byte.
fn write_gvprof_results(
    out: &mut dyn std::io::Write,
    results: &std::collections::BTreeMap<String, vex_gvprof::KernelRedundancy>,
) -> Result<(), UsageError> {
    let io_err = |e: std::io::Error| UsageError(format!("i/o error: {e}"));
    for (kernel, r) in results {
        writeln!(
            out,
            "{kernel}: {:.1}% redundant stores ({}/{}), {:.1}% redundant loads ({}/{})",
            r.store_redundancy() * 100.0,
            r.redundant_stores,
            r.total_stores,
            r.load_redundancy() * 100.0,
            r.redundant_loads,
            r.total_loads
        )
        .map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_profile_flags() {
        let cmd = parse_args([
            "profile",
            "darknet",
            "--device",
            "a100",
            "--no-fine",
            "--kernel-sampling",
            "20",
            "--block-sampling",
            "4",
            "--filter",
            "gemm",
            "--races",
            "--reuse",
            "64",
            "--json",
            "p.json",
        ])
        .unwrap();
        match cmd {
            Command::Profile(p) => {
                assert_eq!(p.app, "darknet");
                assert_eq!(p.device, Device::A100);
                assert!(p.coarse);
                assert!(!p.fine);
                assert_eq!(p.kernel_sampling, 20);
                assert_eq!(p.block_sampling, 4);
                assert_eq!(p.filters, vec!["gemm"]);
                assert!(p.races);
                assert_eq!(p.reuse, Some(64));
                assert_eq!(p.json.as_deref(), Some("p.json"));
                assert_eq!(p.dot, None);
                assert_eq!(p.md, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(["frobnicate"]).is_err());
        assert!(parse_args(["profile"]).is_err());
        assert!(parse_args(["profile", "x", "--device"]).is_err());
        assert!(parse_args(["profile", "x", "--device", "h100"]).is_err());
        assert!(parse_args(["profile", "x", "--no-coarse", "--no-fine"]).is_err());
        assert!(parse_args(["profile", "x", "--kernel-sampling", "many"]).is_err());
    }

    #[test]
    fn help_and_empty() {
        assert_eq!(parse_args([]).unwrap(), Command::Help);
        assert_eq!(parse_args(["help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["--help"]).unwrap(), Command::Help);
        // Per-command help for the trace commands.
        assert_eq!(parse_args(["record", "--help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["record", "darknet", "-h"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["replay", "--help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["replay", "t.vex", "--help"]).unwrap(), Command::Help);
        assert!(USAGE.contains("vex record"), "{USAGE}");
        assert!(USAGE.contains("vex replay"), "{USAGE}");
    }

    #[test]
    fn parses_record_flags() {
        let cmd = parse_args([
            "record",
            "darknet",
            "--fine",
            "--device",
            "a100",
            "--kernel-sampling",
            "4",
            "--block-sampling",
            "2",
            "--filter",
            "gemm",
            "-o",
            "d.vex",
        ])
        .unwrap();
        match cmd {
            Command::Record(r) => {
                assert_eq!(r.app, "darknet");
                assert!(r.coarse);
                assert!(r.fine);
                assert_eq!(r.device, Device::A100);
                assert_eq!(r.kernel_sampling, 4);
                assert_eq!(r.block_sampling, 2);
                assert_eq!(r.filters, vec!["gemm"]);
                assert_eq!(r.output, "d.vex");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: coarse-only into trace.vex.
        match parse_args(["record", "huffman"]).unwrap() {
            Command::Record(r) => {
                assert!(r.coarse);
                assert!(!r.fine);
                assert_eq!(r.output, "trace.vex");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_replay_flags() {
        let cmd = parse_args([
            "replay", "t.vex", "--fine", "--races", "--reuse", "64", "--shards", "8", "--json",
            "p.json", "--dot", "f.dot",
        ])
        .unwrap();
        match cmd {
            Command::Replay(r) => {
                assert_eq!(r.path, "t.vex");
                assert!(r.coarse);
                assert!(r.fine);
                assert!(r.races);
                assert_eq!(r.reuse, Some(64));
                assert_eq!(r.shards, 8);
                assert!(!r.gvprof);
                assert_eq!(r.json.as_deref(), Some("p.json"));
                assert_eq!(r.dot.as_deref(), Some("f.dot"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(["replay", "t.vex", "--gvprof", "--kernel-sampling", "4"]).unwrap() {
            Command::Replay(r) => {
                assert!(r.gvprof);
                assert_eq!(r.kernel_sampling, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_decode_threads_flag() {
        // Default: single-threaded decode on both subcommands.
        match parse_args(["replay", "t.vex"]).unwrap() {
            Command::Replay(r) => assert_eq!(r.decode_threads, 1),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(["serve", "traces"]).unwrap() {
            Command::Serve(s) => assert_eq!(s.decode_threads, 1),
            other => panic!("unexpected {other:?}"),
        }
        // Explicit values.
        match parse_args(["replay", "t.vex", "--decode-threads", "8"]).unwrap() {
            Command::Replay(r) => assert_eq!(r.decode_threads, 8),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(["serve", "traces", "--decode-threads", "4"]).unwrap() {
            Command::Serve(s) => assert_eq!(s.decode_threads, 4),
            other => panic!("unexpected {other:?}"),
        }
        // Valid alongside --gvprof (it is a decode knob, not an analysis).
        match parse_args(["replay", "t.vex", "--gvprof", "--decode-threads", "2"]).unwrap() {
            Command::Replay(r) => {
                assert!(r.gvprof);
                assert_eq!(r.decode_threads, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Invalid values: zero, garbage, missing.
        for sub in [["replay", "t.vex"], ["serve", "traces"]] {
            let base = sub.to_vec();
            let err =
                parse_args(base.iter().copied().chain(["--decode-threads", "0"])).unwrap_err();
            assert!(err.0.contains("at least 1"), "{err:?}");
            let err = parse_args(base.iter().copied().chain(["--decode-threads", "many"]))
                .unwrap_err();
            assert!(err.0.contains("invalid decode thread count"), "{err:?}");
            assert!(parse_args(base.iter().copied().chain(["--decode-threads"])).is_err());
        }
        assert!(USAGE.contains("--decode-threads"), "{USAGE}");
    }

    #[test]
    fn every_subcommand_rejects_unknown_flags() {
        assert!(parse_args(["profile", "x", "--frob"]).is_err());
        assert!(parse_args(["speedup", "x", "--frob"]).is_err());
        assert!(parse_args(["gvprof", "x", "--frob"]).is_err());
        assert!(parse_args(["record", "x", "--frob"]).is_err());
        assert!(parse_args(["replay", "x.vex", "--frob"]).is_err());
        assert!(parse_args(["info", "x.vex", "--frob"]).is_err());
        assert!(parse_args(["repair", "x.vex", "--frob"]).is_err());
        assert!(parse_args(["serve", "traces", "--frob"]).is_err());
        assert!(parse_args(["push", "x.vex", "--frob"]).is_err());
    }

    #[test]
    fn parses_info() {
        assert_eq!(
            parse_args(["info", "t.vex"]).unwrap(),
            Command::Info { path: "t.vex".into(), json: false }
        );
        assert_eq!(parse_args(["info", "--help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["info", "t.vex", "-h"]).unwrap(), Command::Help);
        assert!(parse_args(["info"]).is_err());
        assert!(parse_args(["info", "a.vex", "b.vex"]).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        // Defaults.
        match parse_args(["serve", "traces"]).unwrap() {
            Command::Serve(s) => {
                assert_eq!(s.dir, "traces");
                assert_eq!(s.addr, "127.0.0.1:7070");
                assert_eq!(s.workers, 4);
                assert_eq!(s.cache_entries, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Every flag, in one invocation.
        match parse_args([
            "serve",
            "run/traces",
            "--addr",
            "0.0.0.0:8080",
            "--workers",
            "8",
            "--cache-entries",
            "16",
        ])
        .unwrap()
        {
            Command::Serve(s) => {
                assert_eq!(s.dir, "run/traces");
                assert_eq!(s.addr, "0.0.0.0:8080");
                assert_eq!(s.workers, 8);
                assert_eq!(s.cache_entries, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Each flag alone.
        match parse_args(["serve", "d", "--addr", "127.0.0.1:0"]).unwrap() {
            Command::Serve(s) => assert_eq!(s.addr, "127.0.0.1:0"),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(["serve", "d", "--workers", "1"]).unwrap() {
            Command::Serve(s) => assert_eq!(s.workers, 1),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(["serve", "d", "--cache-entries", "0"]).unwrap() {
            Command::Serve(s) => assert_eq!(s.cache_entries, 0),
            other => panic!("unexpected {other:?}"),
        }
        // Help at every position.
        assert_eq!(parse_args(["serve", "--help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["serve", "d", "-h"]).unwrap(), Command::Help);
        assert_eq!(
            parse_args(["serve", "d", "--workers", "2", "--help"]).unwrap(),
            Command::Help
        );
        // Invalid values.
        assert!(parse_args(["serve"]).is_err());
        assert!(parse_args(["serve", "d", "--addr"]).is_err());
        assert!(parse_args(["serve", "d", "--workers", "zero"]).is_err());
        assert!(parse_args(["serve", "d", "--workers", "0"]).is_err());
        assert!(parse_args(["serve", "d", "--cache-entries", "-1"]).is_err());
        assert!(USAGE.contains("vex serve"), "{USAGE}");
        assert!(USAGE.contains("vex info"), "{USAGE}");
    }

    #[test]
    fn parses_store_and_ingest_flags() {
        // Defaults: unbounded, read-only, lenient.
        match parse_args(["serve", "traces"]).unwrap() {
            Command::Serve(s) => {
                assert_eq!(s.memory_budget, None);
                assert!(!s.ingest);
                assert_eq!(s.max_ingest_bytes, 64 * 1024 * 1024);
                assert!(!s.strict);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args([
            "serve",
            "traces",
            "--memory-budget",
            "64m",
            "--ingest",
            "--max-ingest-bytes",
            "128k",
            "--strict",
        ])
        .unwrap()
        {
            Command::Serve(s) => {
                assert_eq!(s.memory_budget, Some(64 * 1024 * 1024));
                assert!(s.ingest);
                assert_eq!(s.max_ingest_bytes, 128 * 1024);
                assert!(s.strict);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(["serve", "d", "--max-ingest-bytes", "0"]).is_err());
        // Every suffix plus a bare byte count.
        for (arg, want) in
            [("1024", 1024u64), ("8k", 8 << 10), ("2M", 2 << 20), ("1g", 1 << 30)]
        {
            match parse_args(["serve", "d", "--memory-budget", arg]).unwrap() {
                Command::Serve(s) => assert_eq!(s.memory_budget, Some(want), "{arg}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Invalid sizes.
        for bad in ["", "lots", "1t", "99999999999999999999g"] {
            assert!(parse_args(["serve", "d", "--memory-budget", bad]).is_err(), "{bad}");
        }
        assert!(parse_args(["serve", "d", "--memory-budget"]).is_err());
        assert!(USAGE.contains("--memory-budget"), "{USAGE}");
        assert!(USAGE.contains("--ingest"), "{USAGE}");
        assert!(USAGE.contains("--max-ingest-bytes"), "{USAGE}");
        assert!(USAGE.contains("--strict"), "{USAGE}");
    }

    #[test]
    fn parses_push_command_and_record_push_flag() {
        // Defaults.
        assert_eq!(
            parse_args(["push", "t.vex"]).unwrap(),
            Command::Push {
                path: "t.vex".into(),
                url: "http://127.0.0.1:7070".into(),
                id: None,
                spool_dir: None
            }
        );
        assert_eq!(
            parse_args(["push", "runs/a.vex", "--url", "http://10.0.0.1:9000", "--id", "b"])
                .unwrap(),
            Command::Push {
                path: "runs/a.vex".into(),
                url: "http://10.0.0.1:9000".into(),
                id: Some("b".into()),
                spool_dir: None
            }
        );
        assert_eq!(
            parse_args(["push", "t.vex", "--spool-dir", "spool"]).unwrap(),
            Command::Push {
                path: "t.vex".into(),
                url: "http://127.0.0.1:7070".into(),
                id: None,
                spool_dir: Some("spool".into())
            }
        );
        assert_eq!(
            parse_args(["push", "--drain", "spool", "--url", "http://10.0.0.1:9000"]).unwrap(),
            Command::Drain { dir: "spool".into(), url: "http://10.0.0.1:9000".into() }
        );
        assert_eq!(
            parse_args(["push", "--drain", "spool"]).unwrap(),
            Command::Drain { dir: "spool".into(), url: "http://127.0.0.1:7070".into() }
        );
        assert!(parse_args(["push", "--drain"]).is_err());
        assert!(parse_args(["push", "--drain", "spool", "--id", "x"]).is_err());
        assert_eq!(parse_args(["push", "--help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["push", "t.vex", "-h"]).unwrap(), Command::Help);
        assert!(parse_args(["push"]).is_err());
        assert!(parse_args(["push", "t.vex", "--frob"]).is_err());
        assert!(parse_args(["push", "t.vex", "--url"]).is_err());
        // record --push.
        match parse_args(["record", "darknet", "--push", "http://127.0.0.1:7070"]).unwrap() {
            Command::Record(r) => {
                assert_eq!(r.push.as_deref(), Some("http://127.0.0.1:7070"));
                assert_eq!(r.output, "trace.vex");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(["record", "darknet", "--push"]).is_err());
        // record --spool-dir rides on --push.
        match parse_args([
            "record",
            "darknet",
            "--push",
            "http://127.0.0.1:7070",
            "--spool-dir",
            "spool",
        ])
        .unwrap()
        {
            Command::Record(r) => assert_eq!(r.spool_dir.as_deref(), Some("spool")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(["record", "darknet", "--spool-dir", "spool"]).is_err());
        // record --variant selects the workload variant (default baseline).
        match parse_args(["record", "backprop", "--variant", "optimized"]).unwrap() {
            Command::Record(r) => assert_eq!(r.variant, Variant::Optimized),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(["record", "backprop"]).unwrap() {
            Command::Record(r) => assert_eq!(r.variant, Variant::Baseline),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(["record", "backprop", "--variant", "frobnicated"]).is_err());
        assert!(parse_args(["record", "backprop", "--variant"]).is_err());
        assert!(USAGE.contains("vex push"), "{USAGE}");
        assert!(USAGE.contains("--push"), "{USAGE}");
        assert!(USAGE.contains("--spool-dir"), "{USAGE}");
        assert!(USAGE.contains("--drain"), "{USAGE}");
    }

    #[test]
    fn parses_repair_command() {
        assert_eq!(
            parse_args(["repair", "t.vex"]).unwrap(),
            Command::Repair { input: "t.vex".into(), output: None }
        );
        assert_eq!(
            parse_args(["repair", "t.vex", "fixed.vex"]).unwrap(),
            Command::Repair { input: "t.vex".into(), output: Some("fixed.vex".into()) }
        );
        assert_eq!(parse_args(["repair", "--help"]).unwrap(), Command::Help);
        assert!(parse_args(["repair"]).is_err());
        assert!(parse_args(["repair", "a.vex", "b.vex", "c.vex"]).is_err());
        assert!(parse_args(["repair", "t.vex", "--frob"]).is_err());
        assert!(USAGE.contains("vex repair"), "{USAGE}");
        assert_eq!(default_repair_output("runs/cut.vex"), "runs/cut.repaired.vex");
    }

    #[test]
    fn record_push_streams_into_a_serving_store() {
        use std::io::{Read as _, Write as _};
        let dir = std::env::temp_dir().join(format!("vex-cli-push-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let mut args = ServeArgs::new(dir.to_str().unwrap().to_owned());
        args.addr = "127.0.0.1:0".into();
        args.workers = 2;
        args.ingest = true;
        let server = start_server(&args).unwrap();
        assert!(server.state().store().is_empty());
        let url = format!("http://{}", server.addr());

        // `vex record --push` — no local file, trace lands on the server.
        let mut rec = RecordArgs::new("QMCPACK".into());
        rec.output = "pushed-q.vex".into();
        rec.push = Some(url.clone());
        let mut out = Vec::new();
        run(&Command::Record(rec), &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("pushed pushed-q to"), "{s}");
        assert!(!std::path::Path::new("pushed-q.vex").exists());
        assert!(dir.join("pushed-q.vex").is_file(), "trace persisted server-side");

        // Queryable without restart.
        let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
        conn.write_all(b"GET /traces/pushed-q/report HTTP/1.1\r\n\r\n").unwrap();
        let mut body = String::new();
        conn.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK\r\n"), "{body}");
        assert!(body.contains("ValueExpert profile"), "{body}");

        // `vex push <file>` of an existing trace, custom id. The local
        // file lives outside the served directory.
        let outside =
            std::env::temp_dir().join(format!("vex-cli-push-src-{}", std::process::id()));
        std::fs::create_dir_all(&outside).unwrap();
        let local = outside.join("local.vex");
        let mut rec = RecordArgs::new("QMCPACK".into());
        rec.output = local.to_str().unwrap().to_owned();
        run(&Command::Record(rec), &mut Vec::new()).unwrap();
        let mut out = Vec::new();
        run(
            &Command::Push {
                path: local.to_str().unwrap().to_owned(),
                url: url.clone(),
                id: Some("renamed".into()),
                spool_dir: None,
            },
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("pushed renamed"), "push output");
        assert_eq!(server.state().store().ids(), vec!["pushed-q", "renamed"]);

        // Duplicate push is refused with the server's detail.
        let err = run(
            &Command::Push {
                path: local.to_str().unwrap().to_owned(),
                url,
                id: Some("renamed".into()),
                spool_dir: None,
            },
            &mut Vec::new(),
        )
        .expect_err("duplicate id");
        assert!(err.0.contains("409"), "{err:?}");

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&outside).ok();
    }

    #[test]
    fn push_spools_when_down_and_drain_lands_byte_identical() {
        let base = std::env::temp_dir().join(format!("vex-cli-spool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let local = base.join("run1.vex");
        let mut rec = RecordArgs::new("QMCPACK".into());
        rec.output = local.to_str().unwrap().to_owned();
        run(&Command::Record(rec), &mut Vec::new()).unwrap();
        let original = std::fs::read(&local).unwrap();

        // Push with the server down (port 1 never listens): after the
        // retries the trace must land in the spool, not be lost.
        let spool = base.join("spool");
        let mut out = Vec::new();
        run(
            &Command::Push {
                path: local.to_str().unwrap().to_owned(),
                url: "http://127.0.0.1:1".into(),
                id: None,
                spool_dir: Some(spool.to_str().unwrap().to_owned()),
            },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("spooled run1"), "{s}");
        assert_eq!(std::fs::read(spool.join("run1.vex")).unwrap(), original);

        // The server comes back; drain re-pushes and empties the spool.
        let served = base.join("served");
        std::fs::create_dir_all(&served).unwrap();
        let mut args = ServeArgs::new(served.to_str().unwrap().to_owned());
        args.addr = "127.0.0.1:0".into();
        args.workers = 2;
        args.ingest = true;
        let server = start_server(&args).unwrap();
        let url = format!("http://{}", server.addr());
        let mut out = Vec::new();
        run(&Command::Drain { dir: spool.to_str().unwrap().to_owned(), url }, &mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("pushed run1"), "{s}");
        assert!(s.contains("1 pushed, 0 still spooled"), "{s}");
        assert!(!spool.join("run1.vex").exists(), "drained from the spool");
        // The recording landed byte-identically server-side.
        assert_eq!(std::fs::read(served.join("run1.vex")).unwrap(), original);
        server.shutdown();
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn repair_recovers_a_truncated_recording() {
        let base = std::env::temp_dir().join(format!("vex-cli-repair-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let trace = base.join("run.vex");
        let mut rec = RecordArgs::new("QMCPACK".into());
        rec.output = trace.to_str().unwrap().to_owned();
        run(&Command::Record(rec), &mut Vec::new()).unwrap();
        let full = std::fs::read(&trace).unwrap();

        // Emulate a recording killed mid-run: drop the last third.
        let cut = base.join("cut.vex");
        std::fs::write(&cut, &full[..full.len() - full.len() / 3]).unwrap();

        // `vex info` reports the salvageable prefix, not a bare error.
        let mut out = Vec::new();
        run(&Command::Info { path: cut.to_str().unwrap().to_owned(), json: false }, &mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("damaged trace"), "{s}");
        assert!(s.contains("frames recovered"), "{s}");
        assert!(s.contains("vex repair"), "{s}");

        // `vex repair` writes a valid container next to the input.
        let mut out = Vec::new();
        run(
            &Command::Repair { input: cut.to_str().unwrap().to_owned(), output: None },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("frames recovered"), "{s}");
        assert!(s.contains("bytes discarded"), "{s}");
        let repaired = base.join("cut.repaired.vex");
        assert!(repaired.is_file());
        // The repaired trace now summarizes cleanly.
        let mut out = Vec::new();
        run(
            &Command::Info { path: repaired.to_str().unwrap().to_owned(), json: false },
            &mut out,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("format version"), "{s}");
        assert!(!s.contains("damaged"), "{s}");
        // A missing file still errors — salvage only softens decode
        // failures, not i/o ones.
        assert!(run(
            &Command::Info { path: "missing.vex".into(), json: false },
            &mut Vec::new()
        )
        .is_err());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn replay_flag_combinations_are_validated() {
        // GVProf mode excludes ValueExpert analysis flags.
        assert!(parse_args(["replay", "t.vex", "--gvprof", "--fine"]).is_err());
        assert!(parse_args(["replay", "t.vex", "--gvprof", "--races"]).is_err());
        assert!(parse_args(["replay", "t.vex", "--gvprof", "--shards", "2"]).is_err());
        // Sampling is baked into the trace outside GVProf mode.
        assert!(parse_args(["replay", "t.vex", "--kernel-sampling", "4"]).is_err());
        // Everything off is an error, as for profile.
        assert!(parse_args(["replay", "t.vex", "--no-coarse"]).is_err());
        assert!(parse_args(["record", "x", "--no-coarse"]).is_err());
    }

    #[test]
    fn find_app_is_case_insensitive() {
        assert_eq!(find_app("darknet").unwrap().name(), "Darknet");
        assert_eq!(find_app("LAMMPS").unwrap().name(), "LAMMPS");
        let err = match find_app("doom") {
            Err(e) => e,
            Ok(app) => panic!("unexpectedly found {}", app.name()),
        };
        assert!(err.0.contains("available"));
    }

    #[test]
    fn list_runs() {
        let mut out = Vec::new();
        run(&Command::List, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Darknet"));
        assert!(s.contains("streamcluster"));
        assert_eq!(s.lines().count(), 19);
    }

    #[test]
    fn profile_small_app_end_to_end() {
        let mut p = ProfileArgs::new("QMCPACK".into());
        p.block_sampling = 8;
        let mut out = Vec::new();
        run(&Command::Profile(p), &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("ValueExpert profile"), "{s}");
        assert!(s.contains("redundant values"), "{s}");
    }

    #[test]
    fn speedup_runs() {
        let mut out = Vec::new();
        run(&Command::Speedup { app: "backprop".into(), device: Device::Rtx2080Ti }, &mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("kernel bpnn_adjust_weights_cuda"), "{s}");
        assert!(s.contains("memory time"), "{s}");
    }

    #[test]
    fn record_then_replay_round_trip() {
        let dir = std::env::temp_dir().join(format!("vex-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("q.vex").to_str().unwrap().to_owned();

        let mut rec = RecordArgs::new("QMCPACK".into());
        rec.fine = true;
        rec.output = trace.clone();
        let mut out = Vec::new();
        run(&Command::Record(rec), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("wrote"), "record output");

        let mut live = Vec::new();
        run(&Command::Profile(ProfileArgs::new("QMCPACK".into())), &mut live).unwrap();

        let mut rep = ReplayArgs::new(trace);
        rep.fine = true;
        let mut replayed = Vec::new();
        run(&Command::Replay(rep), &mut replayed).unwrap();
        assert_eq!(
            String::from_utf8(live).unwrap(),
            String::from_utf8(replayed).unwrap(),
            "replayed report must be byte-identical to the live one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_prints_header_and_counts() {
        let dir = std::env::temp_dir().join(format!("vex-cli-info-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("q.vex").to_str().unwrap().to_owned();
        let mut rec = RecordArgs::new("QMCPACK".into());
        rec.fine = true;
        rec.output = trace.clone();
        run(&Command::Record(rec), &mut Vec::new()).unwrap();

        let mut out = Vec::new();
        run(&Command::Info { path: trace.clone(), json: false }, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("format version:        2"), "{s}");
        assert!(s.contains("device preset:"), "{s}");
        assert!(s.contains("passes:                coarse + fine"), "{s}");
        assert!(s.contains("instrumented launches:"), "{s}");
        assert!(s.contains("fine records:"), "{s}");
        assert!(s.contains("compression ratio:"), "{s}");

        // The counts agree with the streaming summary API.
        let summary = vex_trace::summary::summarize_file(std::path::Path::new(&trace)).unwrap();
        assert!(s.contains(&format!("fine records:          {}", summary.records)), "{s}");
        assert!(summary.records > 0, "fine recording produced records");
        // v2 columnar batches land well under the 32-byte fixed records.
        assert!(summary.batch_bytes > 0 && summary.batch_bytes < summary.records * 32, "{s}");

        let err =
            run(&Command::Info { path: "missing.vex".into(), json: false }, &mut Vec::new())
                .expect_err("missing file errors");
        assert!(err.0.contains("missing.vex"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_starts_from_a_recorded_directory() {
        use std::io::{Read as _, Write as _};
        let dir = std::env::temp_dir().join(format!("vex-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut rec = RecordArgs::new("QMCPACK".into());
        rec.output = dir.join("qmcpack.vex").to_str().unwrap().to_owned();
        run(&Command::Record(rec), &mut Vec::new()).unwrap();

        let mut args = ServeArgs::new(dir.to_str().unwrap().to_owned());
        args.addr = "127.0.0.1:0".into();
        args.workers = 2;
        let server = start_server(&args).unwrap();
        assert_eq!(server.state().store().ids(), vec!["qmcpack"]);

        let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
        conn.write_all(b"GET /traces HTTP/1.1\r\n\r\n").unwrap();
        let mut body = String::new();
        conn.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK\r\n"), "{body}");
        assert!(body.contains("qmcpack"), "{body}");

        server.shutdown();
        assert!(start_server(&ServeArgs::new("no-such-dir".into())).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gvprof_runs() {
        let mut out = Vec::new();
        run(&Command::GvProf { app: "huffman".into() }, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("histo_kernel"), "{s}");
    }
}
