//! # vex-cli — the ValueExpert command line
//!
//! The launcher a user of the real tool would invoke (`gvprof -e
//! value_pattern ./app` in the original artifact). Because our
//! applications are simulator workloads rather than arbitrary binaries,
//! the CLI selects them by name:
//!
//! ```text
//! vex list
//! vex profile darknet --fine --block-sampling 4 --json out.json --dot flow.dot
//! vex profile lammps --races --reuse 64
//! vex speedup backprop --device a100
//! vex gvprof huffman
//! ```
//!
//! The argument parser and command logic live in this library so they are
//! unit-testable; `main.rs` is a thin shim.

#![deny(missing_docs)]

use std::fmt;
use vex_core::prelude::*;
use vex_gpu::runtime::Runtime;
use vex_gpu::timing::DeviceSpec;
use vex_gvprof::GvProfSession;
use vex_workloads::{all_apps, GpuApp, Variant};

/// Which device preset to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Device {
    /// NVIDIA RTX 2080 Ti (default — the paper's first platform).
    #[default]
    Rtx2080Ti,
    /// NVIDIA A100.
    A100,
}

impl Device {
    /// The corresponding simulator spec.
    pub fn spec(self) -> DeviceSpec {
        match self {
            Device::Rtx2080Ti => DeviceSpec::rtx2080ti(),
            Device::A100 => DeviceSpec::a100(),
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `vex list` — print available workloads.
    List,
    /// `vex profile <app> [options]`.
    Profile(ProfileArgs),
    /// `vex speedup <app> [--device d]`.
    Speedup {
        /// Workload name.
        app: String,
        /// Device preset.
        device: Device,
    },
    /// `vex gvprof <app>` — run the baseline profiler.
    GvProf {
        /// Workload name.
        app: String,
    },
    /// `vex help`.
    Help,
}

/// Options of `vex profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileArgs {
    /// Workload name.
    pub app: String,
    /// Device preset.
    pub device: Device,
    /// Enable the coarse pass (default true).
    pub coarse: bool,
    /// Enable the fine pass (default true).
    pub fine: bool,
    /// Kernel sampling period.
    pub kernel_sampling: u64,
    /// Block sampling period.
    pub block_sampling: u32,
    /// Kernel-name substring filters.
    pub filters: Vec<String>,
    /// Enable race detection.
    pub races: bool,
    /// Reuse-distance line size, if enabled.
    pub reuse: Option<u64>,
    /// Write the JSON profile here.
    pub json: Option<String>,
    /// Write the value-flow DOT here.
    pub dot: Option<String>,
    /// Write a Markdown report here.
    pub md: Option<String>,
}

impl ProfileArgs {
    fn new(app: String) -> Self {
        ProfileArgs {
            app,
            device: Device::default(),
            coarse: true,
            fine: true,
            kernel_sampling: 1,
            block_sampling: 1,
            filters: Vec::new(),
            races: false,
            reuse: None,
            json: None,
            dot: None,
            md: None,
        }
    }
}

/// A CLI usage error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl std::error::Error for UsageError {}

/// The usage text.
pub const USAGE: &str = "\
usage:
  vex list
  vex profile <app> [--device 2080ti|a100] [--no-coarse] [--no-fine]
               [--kernel-sampling N] [--block-sampling N] [--filter SUBSTR]...
               [--races] [--reuse LINE_BYTES] [--json PATH] [--dot PATH] [--md PATH]
  vex speedup <app> [--device 2080ti|a100]
  vex gvprof <app>
  vex help";

fn parse_device(v: &str) -> Result<Device, UsageError> {
    match v.to_ascii_lowercase().as_str() {
        "2080ti" | "rtx2080ti" | "rtx-2080-ti" => Ok(Device::Rtx2080Ti),
        "a100" => Ok(Device::A100),
        other => Err(UsageError(format!("unknown device '{other}'"))),
    }
}

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    it: &mut I,
) -> Result<&'a str, UsageError> {
    it.next().ok_or_else(|| UsageError(format!("{flag} requires a value")))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns [`UsageError`] for unknown commands, flags, or values.
pub fn parse_args<'a>(args: impl IntoIterator<Item = &'a str>) -> Result<Command, UsageError> {
    let mut it = args.into_iter();
    let cmd = match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    match cmd {
        "list" => Ok(Command::List),
        "profile" => {
            let app =
                it.next().ok_or_else(|| UsageError("profile requires an app name".into()))?;
            let mut p = ProfileArgs::new(app.to_owned());
            while let Some(flag) = it.next() {
                match flag {
                    "--device" => p.device = parse_device(take_value(flag, &mut it)?)?,
                    "--no-coarse" => p.coarse = false,
                    "--no-fine" => p.fine = false,
                    "--kernel-sampling" => {
                        p.kernel_sampling = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid kernel sampling period".into()))?
                    }
                    "--block-sampling" => {
                        p.block_sampling = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| UsageError("invalid block sampling period".into()))?
                    }
                    "--filter" => p.filters.push(take_value(flag, &mut it)?.to_owned()),
                    "--races" => p.races = true,
                    "--reuse" => {
                        p.reuse = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|_| UsageError("invalid reuse line size".into()))?,
                        )
                    }
                    "--json" => p.json = Some(take_value(flag, &mut it)?.to_owned()),
                    "--dot" => p.dot = Some(take_value(flag, &mut it)?.to_owned()),
                    "--md" => p.md = Some(take_value(flag, &mut it)?.to_owned()),
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            if !p.coarse && !p.fine {
                return Err(UsageError("at least one of coarse/fine must stay enabled".into()));
            }
            Ok(Command::Profile(p))
        }
        "speedup" => {
            let app = it
                .next()
                .ok_or_else(|| UsageError("speedup requires an app name".into()))?
                .to_owned();
            let mut device = Device::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--device" => device = parse_device(take_value(flag, &mut it)?)?,
                    other => return Err(UsageError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Speedup { app, device })
        }
        "gvprof" => {
            let app = it
                .next()
                .ok_or_else(|| UsageError("gvprof requires an app name".into()))?
                .to_owned();
            Ok(Command::GvProf { app })
        }
        other => Err(UsageError(format!("unknown command '{other}'"))),
    }
}

/// Finds a workload by (case-insensitive) name.
///
/// # Errors
///
/// Returns [`UsageError`] listing the valid names when not found.
pub fn find_app(name: &str) -> Result<Box<dyn GpuApp>, UsageError> {
    let needle = name.to_ascii_lowercase();
    for app in all_apps() {
        if app.name().to_ascii_lowercase() == needle {
            return Ok(app);
        }
    }
    let names: Vec<&'static str> = all_apps().iter().map(|a| a.name()).collect();
    Err(UsageError(format!("unknown app '{name}'; available: {}", names.join(", "))))
}

/// Executes a parsed command, writing human output to `out`.
///
/// # Errors
///
/// Returns [`UsageError`] for unknown app names; I/O failures writing
/// requested artefacts are reported as usage errors too (the path was the
/// user's input).
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> Result<(), UsageError> {
    let io_err = |e: std::io::Error| UsageError(format!("i/o error: {e}"));
    match cmd {
        Command::Help => writeln!(out, "{USAGE}").map_err(io_err),
        Command::List => {
            for app in all_apps() {
                writeln!(
                    out,
                    "{:<18} hot kernel: {}",
                    app.name(),
                    if app.memory_only() {
                        "(memory-bound rows only)"
                    } else {
                        app.hot_kernel()
                    }
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        Command::Profile(p) => {
            let app = find_app(&p.app)?;
            let mut rt = Runtime::new(p.device.spec());
            let mut b = ValueExpert::builder()
                .coarse(p.coarse)
                .fine(p.fine)
                .kernel_sampling(p.kernel_sampling)
                .block_sampling(p.block_sampling)
                .race_detection(p.races);
            if let Some(line) = p.reuse {
                b = b.reuse_distance(line);
            }
            if !p.filters.is_empty() {
                b = b.filter_kernels(p.filters.clone());
            }
            let vex = b.attach(&mut rt);
            app.run(&mut rt, Variant::Baseline)
                .map_err(|e| UsageError(format!("workload failed: {e}")))?;
            let profile = vex.report(&rt);
            writeln!(out, "{}", profile.render_text()).map_err(io_err)?;
            if let Some(path) = &p.json {
                let json = profile
                    .to_json()
                    .map_err(|e| UsageError(format!("serialize failed: {e}")))?;
                std::fs::write(path, json).map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            if let Some(path) = &p.dot {
                std::fs::write(path, profile.flow_graph.to_dot(profile.redundancy_threshold))
                    .map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            if let Some(path) = &p.md {
                std::fs::write(path, profile.render_markdown()).map_err(io_err)?;
                writeln!(out, "wrote {path}").map_err(io_err)?;
            }
            Ok(())
        }
        Command::Speedup { app, device } => {
            let app = find_app(app)?;
            let measure = |variant| {
                let mut rt = Runtime::new(device.spec());
                app.run(&mut rt, variant).expect("workload runs");
                rt.time_report().clone()
            };
            let base = measure(Variant::Baseline);
            let opt = measure(Variant::Optimized);
            if !app.memory_only() {
                let k = app.hot_kernel();
                writeln!(
                    out,
                    "kernel {k}: {:.1} us -> {:.1} us ({:.2}x)",
                    base.kernel_us(k),
                    opt.kernel_us(k),
                    base.kernel_us(k) / opt.kernel_us(k).max(f64::MIN_POSITIVE)
                )
                .map_err(io_err)?;
            }
            writeln!(
                out,
                "memory time: {:.1} us -> {:.1} us ({:.2}x)",
                base.memory_time_us,
                opt.memory_time_us,
                base.memory_time_us / opt.memory_time_us
            )
            .map_err(io_err)
        }
        Command::GvProf { app } => {
            let app = find_app(app)?;
            let mut rt = Runtime::new(DeviceSpec::rtx2080ti());
            let gv = GvProfSession::attach(&mut rt);
            app.run(&mut rt, Variant::Baseline)
                .map_err(|e| UsageError(format!("workload failed: {e}")))?;
            for (kernel, r) in gv.results() {
                writeln!(
                    out,
                    "{kernel}: {:.1}% redundant stores ({}/{}), {:.1}% redundant loads ({}/{})",
                    r.store_redundancy() * 100.0,
                    r.redundant_stores,
                    r.total_stores,
                    r.load_redundancy() * 100.0,
                    r.redundant_loads,
                    r.total_loads
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_profile_flags() {
        let cmd = parse_args([
            "profile",
            "darknet",
            "--device",
            "a100",
            "--no-fine",
            "--kernel-sampling",
            "20",
            "--block-sampling",
            "4",
            "--filter",
            "gemm",
            "--races",
            "--reuse",
            "64",
            "--json",
            "p.json",
        ])
        .unwrap();
        match cmd {
            Command::Profile(p) => {
                assert_eq!(p.app, "darknet");
                assert_eq!(p.device, Device::A100);
                assert!(p.coarse);
                assert!(!p.fine);
                assert_eq!(p.kernel_sampling, 20);
                assert_eq!(p.block_sampling, 4);
                assert_eq!(p.filters, vec!["gemm"]);
                assert!(p.races);
                assert_eq!(p.reuse, Some(64));
                assert_eq!(p.json.as_deref(), Some("p.json"));
                assert_eq!(p.dot, None);
                assert_eq!(p.md, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(["frobnicate"]).is_err());
        assert!(parse_args(["profile"]).is_err());
        assert!(parse_args(["profile", "x", "--device"]).is_err());
        assert!(parse_args(["profile", "x", "--device", "h100"]).is_err());
        assert!(parse_args(["profile", "x", "--no-coarse", "--no-fine"]).is_err());
        assert!(parse_args(["profile", "x", "--kernel-sampling", "many"]).is_err());
    }

    #[test]
    fn help_and_empty() {
        assert_eq!(parse_args([]).unwrap(), Command::Help);
        assert_eq!(parse_args(["help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn find_app_is_case_insensitive() {
        assert_eq!(find_app("darknet").unwrap().name(), "Darknet");
        assert_eq!(find_app("LAMMPS").unwrap().name(), "LAMMPS");
        let err = match find_app("doom") {
            Err(e) => e,
            Ok(app) => panic!("unexpectedly found {}", app.name()),
        };
        assert!(err.0.contains("available"));
    }

    #[test]
    fn list_runs() {
        let mut out = Vec::new();
        run(&Command::List, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Darknet"));
        assert!(s.contains("streamcluster"));
        assert_eq!(s.lines().count(), 19);
    }

    #[test]
    fn profile_small_app_end_to_end() {
        let mut p = ProfileArgs::new("QMCPACK".into());
        p.block_sampling = 8;
        let mut out = Vec::new();
        run(&Command::Profile(p), &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("ValueExpert profile"), "{s}");
        assert!(s.contains("redundant values"), "{s}");
    }

    #[test]
    fn speedup_runs() {
        let mut out = Vec::new();
        run(&Command::Speedup { app: "backprop".into(), device: Device::Rtx2080Ti }, &mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("kernel bpnn_adjust_weights_cuda"), "{s}");
        assert!(s.contains("memory time"), "{s}");
    }

    #[test]
    fn gvprof_runs() {
        let mut out = Vec::new();
        run(&Command::GvProf { app: "huffman".into() }, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("histo_kernel"), "{s}");
    }
}
