//! # vex-gvprof — a GVProf-style baseline value profiler
//!
//! The paper compares ValueExpert against **GVProf** (SC '20), the prior
//! GPU value profiler by the same group. GVProf differs from ValueExpert
//! in exactly the ways §7 and Table 5 enumerate, and this crate
//! reproduces that behavioural profile so the comparison experiments have
//! a real comparator:
//!
//! * **per-kernel scope** — GVProf finds temporal/spatial value
//!   redundancies *within individual kernels* (per instruction), with no
//!   pattern taxonomy, no data-object view, and no value flows across
//!   APIs;
//! * **host-side analysis** — measurement records are copied from the
//!   GPU to the CPU and analyzed there, with frequent synchronous
//!   flushes and no on-device reduction, which is why its overhead is an
//!   order of magnitude above ValueExpert's (47.3× vs 7.8× geomean in
//!   Table 5).
//!
//! The implementation rides the same canonical event stream as
//! ValueExpert — a [`vex_trace::event::EventSource`] configured with
//! GVProf's small buffer and every record shipped — so its traffic
//! counters can be priced by
//! [`vex_core::overhead::OverheadModel::gvprof_cost_us`], and a trace
//! recorded by `vex record --fine` can be replayed through it offline
//! ([`replay`]).

#![deny(missing_docs)]

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use vex_gpu::hooks::LaunchInfo;
use vex_gpu::runtime::Runtime;
use vex_trace::container::RecordedTrace;
use vex_trace::event::{
    AnalysisPass, ColumnSet, Event, EventSink, EventSource, EventSourceConfig,
};
use vex_trace::{AcceptAll, AccessRecord, CollectorStats};

/// Per-kernel redundancy metrics, GVProf's unit of reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelRedundancy {
    /// Stores that wrote the value already present at the address
    /// (temporal store redundancy, "RedSpy-style").
    pub redundant_stores: u64,
    /// Total stores observed.
    pub total_stores: u64,
    /// Loads that re-read the same value the same address produced last
    /// time (temporal load redundancy, "LoadSpy-style").
    pub redundant_loads: u64,
    /// Total loads observed.
    pub total_loads: u64,
}

impl KernelRedundancy {
    /// Fraction of stores that were redundant.
    pub fn store_redundancy(&self) -> f64 {
        if self.total_stores == 0 {
            0.0
        } else {
            self.redundant_stores as f64 / self.total_stores as f64
        }
    }

    /// Fraction of loads that were redundant.
    pub fn load_redundancy(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.redundant_loads as f64 / self.total_loads as f64
        }
    }
}

#[derive(Default)]
struct State {
    /// Last observed value per address — reset at kernel boundaries:
    /// GVProf's analysis scope is a single kernel.
    last_value: HashMap<u64, u64>,
    last_load: HashMap<u64, u64>,
    current: KernelRedundancy,
    per_kernel: BTreeMap<String, KernelRedundancy>,
}

/// The GVProf baseline profiler session.
pub struct GvProf {
    state: Mutex<State>,
}

impl std::fmt::Debug for GvProf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GvProf").field("kernels", &self.state.lock().per_kernel.len()).finish()
    }
}

/// GVProf's device buffer is small and flushed synchronously; the paper
/// attributes much of its overhead to this pipeline.
pub const GVPROF_BUFFER_RECORDS: usize = 4096;

/// GVProf's own hierarchical sampling (the technique ValueExpert §6.2
/// inherits *from* GVProf): instrument every `period`-th launch of each
/// kernel.
#[derive(Debug)]
struct PeriodicSampler {
    period: u64,
    counters: Mutex<HashMap<String, u64>>,
}

impl vex_trace::LaunchFilter for PeriodicSampler {
    fn accept(&self, info: &LaunchInfo) -> bool {
        let mut counters = self.counters.lock();
        let c = counters.entry(info.kernel_name.clone()).or_insert(0);
        let accept = (*c).is_multiple_of(self.period);
        *c += 1;
        accept
    }
}

/// A GVProf session attached to a runtime.
pub struct GvProfSession {
    profiler: Arc<GvProf>,
    source: Arc<EventSource>,
}

impl std::fmt::Debug for GvProfSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GvProfSession").finish_non_exhaustive()
    }
}

impl GvProfSession {
    /// Attaches GVProf to `rt`, instrumenting every kernel and block.
    pub fn attach(rt: &mut Runtime) -> GvProfSession {
        Self::attach_with(rt, Arc::new(AcceptAll), 1)
    }

    /// Attaches GVProf with its hierarchical sampling (kernel period and
    /// block period) — the configuration the paper's Table 5 measured
    /// against.
    pub fn attach_sampled(
        rt: &mut Runtime,
        kernel_period: u64,
        block_period: u32,
    ) -> GvProfSession {
        let sampler = PeriodicSampler {
            period: kernel_period.max(1),
            counters: Mutex::new(HashMap::new()),
        };
        Self::attach_with(rt, Arc::new(sampler), block_period.max(1))
    }

    fn attach_with(
        rt: &mut Runtime,
        filter: Arc<dyn vex_trace::LaunchFilter>,
        block_period: u32,
    ) -> GvProfSession {
        let profiler = Arc::new(GvProf { state: Mutex::new(State::default()) });
        let source = EventSource::attach(
            rt,
            gvprof_source_config(block_period),
            filter,
            profiler.clone(),
        );
        GvProfSession { profiler, source }
    }

    /// Per-kernel redundancy results (kernel name → metrics), aggregated
    /// over all launches of each kernel.
    pub fn results(&self) -> BTreeMap<String, KernelRedundancy> {
        self.profiler.state.lock().per_kernel.clone()
    }

    /// Measurement traffic, for the Table 5 overhead comparison.
    pub fn collector_stats(&self) -> CollectorStats {
        self.source.stats()
    }
}

/// The collector configuration GVProf runs under: no API interception,
/// no coarse snapshots, every record shipped through the small
/// synchronous buffer.
fn gvprof_source_config(block_period: u32) -> EventSourceConfig {
    EventSourceConfig {
        api: false,
        coarse: false,
        fine: true,
        buffer_records: GVPROF_BUFFER_RECORDS,
        block_period: block_period.max(1),
        warp_compaction: true,
    }
}

impl GvProf {
    fn on_batch(&self, records: &[AccessRecord]) {
        let mut st = self.state.lock();
        for rec in records {
            if rec.is_store {
                st.current.total_stores += 1;
                match st.last_value.insert(rec.addr, rec.bits) {
                    Some(prev) if prev == rec.bits => st.current.redundant_stores += 1,
                    _ => {}
                }
                // A store invalidates load-redundancy history for the
                // address.
                st.last_load.remove(&rec.addr);
            } else {
                st.current.total_loads += 1;
                match st.last_load.insert(rec.addr, rec.bits) {
                    Some(prev) if prev == rec.bits => st.current.redundant_loads += 1,
                    _ => {}
                }
                st.last_value.entry(rec.addr).or_insert(rec.bits);
            }
        }
    }

    fn on_launch_complete(&self, info: &LaunchInfo) {
        let mut st = self.state.lock();
        let current = std::mem::take(&mut st.current);
        let agg = st.per_kernel.entry(info.kernel_name.clone()).or_default();
        agg.redundant_stores += current.redundant_stores;
        agg.total_stores += current.total_stores;
        agg.redundant_loads += current.redundant_loads;
        agg.total_loads += current.total_loads;
        // Per-kernel scope: forget cross-kernel history.
        st.last_value.clear();
        st.last_load.clear();
    }
}

impl EventSink for GvProf {
    fn on_event(&self, event: &Event) {
        match event {
            Event::Batch { records, .. } => self.on_batch(records),
            Event::LaunchEnd { info } => self.on_launch_complete(info),
            _ => {}
        }
    }
}

impl AnalysisPass for GvProf {
    fn name(&self) -> &'static str {
        "gvprof"
    }

    fn columns(&self) -> ColumnSet {
        REPLAY_COLUMNS
    }
}

/// Columns of the fine record stream GVProf reads: addresses and value
/// bits for the redundancy maps, the flags byte for load/store
/// direction, and block ids for hierarchical block sampling. PCs,
/// access sizes, and thread ids are never consulted, so a projected
/// decode may skip them.
pub const REPLAY_COLUMNS: ColumnSet =
    ColumnSet::ADDR.union(ColumnSet::BITS).union(ColumnSet::FLAGS).union(ColumnSet::BLOCK);

/// Replaying a trace through GVProf failed before any analysis ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GvProfReplayError {
    /// The trace carries no access records.
    FineNotRecorded,
}

impl std::fmt::Display for GvProfReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GvProfReplayError::FineNotRecorded => write!(
                f,
                "this trace has no access records; re-record with `vex record --fine` to replay \
                 it through the GVProf baseline"
            ),
        }
    }
}

impl std::error::Error for GvProfReplayError {}

/// Replays a recorded trace through the GVProf baseline, re-applying its
/// hierarchical sampling (`kernel_period`, `block_period`) and simulating
/// its small synchronous buffer so the returned [`CollectorStats`] price
/// the run exactly as a live session would. Results and counters match a
/// live [`GvProfSession`] when the trace was recorded at full fidelity
/// (kernel and block period 1, as `vex record --fine` does by default);
/// a sampled recording replays only what it kept.
///
/// # Errors
///
/// [`GvProfReplayError::FineNotRecorded`] when the trace has no access
/// records to analyze.
pub fn replay(
    trace: &RecordedTrace,
    kernel_period: u64,
    block_period: u32,
) -> Result<(BTreeMap<String, KernelRedundancy>, CollectorStats), GvProfReplayError> {
    if !trace.flags.fine {
        return Err(GvProfReplayError::FineNotRecorded);
    }
    let kernel_period = kernel_period.max(1);
    let block_period = block_period.max(1);
    let profiler = GvProf { state: Mutex::new(State::default()) };
    let mut stats = CollectorStats::default();
    let mut counters: HashMap<String, u64> = HashMap::new();
    let mut active: Option<Arc<LaunchInfo>> = None;
    let mut buffer: Vec<AccessRecord> = Vec::with_capacity(GVPROF_BUFFER_RECORDS);
    fn flush(
        profiler: &GvProf,
        stats: &mut CollectorStats,
        info: &Arc<LaunchInfo>,
        buffer: &mut Vec<AccessRecord>,
    ) {
        if buffer.is_empty() {
            return;
        }
        stats.flushes += 1;
        stats.bytes_flushed += buffer.len() as u64 * AccessRecord::DEVICE_BYTES;
        let records = Arc::new(std::mem::take(buffer));
        profiler.on_event(&Event::Batch { info: info.clone(), records });
    }
    for event in &trace.events {
        match event {
            Event::LaunchBegin { info } => {
                let c = counters.entry(info.kernel_name.clone()).or_insert(0);
                let accept = c.is_multiple_of(kernel_period);
                *c += 1;
                if accept {
                    stats.instrumented_launches += 1;
                    active = Some(info.clone());
                } else {
                    stats.skipped_launches += 1;
                    active = None;
                }
            }
            Event::Batch { info, records } => {
                if active.as_ref().is_none_or(|a| !Arc::ptr_eq(a, info)) {
                    continue;
                }
                for rec in records.iter() {
                    stats.events_checked += 1;
                    if !rec.block.is_multiple_of(block_period) {
                        continue;
                    }
                    stats.events += 1;
                    buffer.push(*rec);
                    if buffer.len() >= GVPROF_BUFFER_RECORDS {
                        flush(&profiler, &mut stats, info, &mut buffer);
                    }
                }
            }
            Event::LaunchEnd { info } => {
                if active.as_ref().is_some_and(|a| Arc::ptr_eq(a, info)) {
                    flush(&profiler, &mut stats, info, &mut buffer);
                    profiler.on_event(&Event::LaunchEnd { info: info.clone() });
                    active = None;
                }
            }
            Event::SkippedLaunch { info } => {
                // The recording session already declined this launch; its
                // kernel still advances the sampling counter so replayed
                // periods line up with a live session's.
                let c = counters.entry(info.kernel_name.clone()).or_insert(0);
                *c += 1;
                stats.skipped_launches += 1;
            }
            Event::Api { .. } => {}
        }
    }
    let results = profiler.state.into_inner().per_kernel;
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_gpu::dim::Dim3;
    use vex_gpu::exec::ThreadCtx;
    use vex_gpu::ir::{InstrTable, InstrTableBuilder, MemSpace, Pc, ScalarType};
    use vex_gpu::kernel::Kernel;
    use vex_gpu::timing::DeviceSpec;

    struct StoreConst {
        base: u64,
        n: usize,
        v: u32,
    }
    impl Kernel for StoreConst {
        fn name(&self) -> &str {
            "store_const"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build()
        }
        fn execute(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i < self.n {
                ctx.store::<u32>(Pc(0), self.base + (i * 4) as u64, self.v);
            }
        }
    }

    #[test]
    fn detects_temporal_store_redundancy_within_kernel_history() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let gv = GvProfSession::attach(&mut rt);
        let buf = rt.malloc(256, "buf").unwrap();
        // Launch twice with the same value: within each launch there is no
        // redundancy (fresh history), because GVProf's scope is per kernel.
        rt.launch(
            &StoreConst { base: buf.addr(), n: 16, v: 7 },
            Dim3::linear(1),
            Dim3::linear(16),
        )
        .unwrap();
        rt.launch(
            &StoreConst { base: buf.addr(), n: 16, v: 7 },
            Dim3::linear(1),
            Dim3::linear(16),
        )
        .unwrap();
        let r = &gv.results()["store_const"];
        assert_eq!(r.total_stores, 32);
        assert_eq!(
            r.redundant_stores, 0,
            "cross-kernel redundancy is invisible to GVProf — the deficit \
             ValueExpert's coarse analysis fixes"
        );
    }

    #[test]
    fn detects_redundancy_inside_one_kernel() {
        struct DoubleStore {
            base: u64,
        }
        impl Kernel for DoubleStore {
            fn name(&self) -> &str {
                "double_store"
            }
            fn instr_table(&self) -> InstrTable {
                InstrTableBuilder::new()
                    .store(Pc(0), ScalarType::U32, MemSpace::Global)
                    .store(Pc(1), ScalarType::U32, MemSpace::Global)
                    .build()
            }
            fn execute(&self, ctx: &mut ThreadCtx<'_>) {
                let a = self.base + (ctx.global_thread_id() * 4) as u64;
                ctx.store::<u32>(Pc(0), a, 5);
                ctx.store::<u32>(Pc(1), a, 5); // same value again
            }
        }
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let gv = GvProfSession::attach(&mut rt);
        let buf = rt.malloc(256, "buf").unwrap();
        rt.launch(&DoubleStore { base: buf.addr() }, Dim3::linear(1), Dim3::linear(8)).unwrap();
        let r = &gv.results()["double_store"];
        assert_eq!(r.total_stores, 16);
        assert_eq!(r.redundant_stores, 8);
        assert_eq!(r.store_redundancy(), 0.5);
    }

    #[test]
    fn load_redundancy() {
        struct DoubleLoad {
            base: u64,
        }
        impl Kernel for DoubleLoad {
            fn name(&self) -> &str {
                "double_load"
            }
            fn instr_table(&self) -> InstrTable {
                InstrTableBuilder::new()
                    .load(Pc(0), ScalarType::U32, MemSpace::Global)
                    .load(Pc(1), ScalarType::U32, MemSpace::Global)
                    .build()
            }
            fn execute(&self, ctx: &mut ThreadCtx<'_>) {
                let a = self.base + (ctx.global_thread_id() * 4) as u64;
                let _: u32 = ctx.load(Pc(0), a);
                let _: u32 = ctx.load(Pc(1), a);
            }
        }
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let gv = GvProfSession::attach(&mut rt);
        let buf = rt.malloc(256, "buf").unwrap();
        rt.memset(buf, 0, 256).unwrap();
        rt.launch(&DoubleLoad { base: buf.addr() }, Dim3::linear(1), Dim3::linear(8)).unwrap();
        let r = &gv.results()["double_load"];
        assert_eq!(r.total_loads, 16);
        assert_eq!(r.redundant_loads, 8);
        assert_eq!(r.load_redundancy(), 0.5);
    }

    #[test]
    fn collector_traffic_is_counted() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let gv = GvProfSession::attach(&mut rt);
        let buf = rt.malloc(1024, "buf").unwrap();
        rt.launch(
            &StoreConst { base: buf.addr(), n: 200, v: 1 },
            Dim3::linear(7),
            Dim3::linear(32),
        )
        .unwrap();
        let s = gv.collector_stats();
        assert_eq!(s.events, 200);
        assert!(s.flushes >= 1);
        assert_eq!(s.instrumented_launches, 1);
    }
}
