//! # vex-gvprof — a GVProf-style baseline value profiler
//!
//! The paper compares ValueExpert against **GVProf** (SC '20), the prior
//! GPU value profiler by the same group. GVProf differs from ValueExpert
//! in exactly the ways §7 and Table 5 enumerate, and this crate
//! reproduces that behavioural profile so the comparison experiments have
//! a real comparator:
//!
//! * **per-kernel scope** — GVProf finds temporal/spatial value
//!   redundancies *within individual kernels* (per instruction), with no
//!   pattern taxonomy, no data-object view, and no value flows across
//!   APIs;
//! * **host-side analysis** — measurement records are copied from the
//!   GPU to the CPU and analyzed there, with frequent synchronous
//!   flushes and no on-device reduction, which is why its overhead is an
//!   order of magnitude above ValueExpert's (47.3× vs 7.8× geomean in
//!   Table 5).
//!
//! The implementation rides the same [`vex_trace::Collector`] machinery
//! (small buffer, every record shipped), so its traffic counters can be
//! priced by [`vex_core::overhead::OverheadModel::gvprof_cost_us`].

#![deny(missing_docs)]

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use vex_gpu::exec::LaunchStats;
use vex_gpu::hooks::{DeviceView, LaunchInfo};
use vex_gpu::runtime::Runtime;
use vex_trace::{AcceptAll, AccessRecord, Collector, CollectorStats, TraceSink};

/// Per-kernel redundancy metrics, GVProf's unit of reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelRedundancy {
    /// Stores that wrote the value already present at the address
    /// (temporal store redundancy, "RedSpy-style").
    pub redundant_stores: u64,
    /// Total stores observed.
    pub total_stores: u64,
    /// Loads that re-read the same value the same address produced last
    /// time (temporal load redundancy, "LoadSpy-style").
    pub redundant_loads: u64,
    /// Total loads observed.
    pub total_loads: u64,
}

impl KernelRedundancy {
    /// Fraction of stores that were redundant.
    pub fn store_redundancy(&self) -> f64 {
        if self.total_stores == 0 {
            0.0
        } else {
            self.redundant_stores as f64 / self.total_stores as f64
        }
    }

    /// Fraction of loads that were redundant.
    pub fn load_redundancy(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.redundant_loads as f64 / self.total_loads as f64
        }
    }
}

#[derive(Default)]
struct State {
    /// Last observed value per address — reset at kernel boundaries:
    /// GVProf's analysis scope is a single kernel.
    last_value: HashMap<u64, u64>,
    last_load: HashMap<u64, u64>,
    current: KernelRedundancy,
    per_kernel: BTreeMap<String, KernelRedundancy>,
}

/// The GVProf baseline profiler session.
pub struct GvProf {
    state: Mutex<State>,
}

impl std::fmt::Debug for GvProf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GvProf").field("kernels", &self.state.lock().per_kernel.len()).finish()
    }
}

/// GVProf's device buffer is small and flushed synchronously; the paper
/// attributes much of its overhead to this pipeline.
pub const GVPROF_BUFFER_RECORDS: usize = 4096;

/// GVProf's own hierarchical sampling (the technique ValueExpert §6.2
/// inherits *from* GVProf): instrument every `period`-th launch of each
/// kernel.
#[derive(Debug)]
struct PeriodicSampler {
    period: u64,
    counters: Mutex<HashMap<String, u64>>,
}

impl vex_trace::LaunchFilter for PeriodicSampler {
    fn accept(&self, info: &LaunchInfo) -> bool {
        let mut counters = self.counters.lock();
        let c = counters.entry(info.kernel_name.clone()).or_insert(0);
        let accept = (*c).is_multiple_of(self.period);
        *c += 1;
        accept
    }
}

/// A GVProf session attached to a runtime.
pub struct GvProfSession {
    profiler: Arc<GvProf>,
    collector: Arc<Collector>,
}

impl std::fmt::Debug for GvProfSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GvProfSession").finish_non_exhaustive()
    }
}

impl GvProfSession {
    /// Attaches GVProf to `rt`, instrumenting every kernel and block.
    pub fn attach(rt: &mut Runtime) -> GvProfSession {
        Self::attach_with(rt, Arc::new(AcceptAll), 1)
    }

    /// Attaches GVProf with its hierarchical sampling (kernel period and
    /// block period) — the configuration the paper's Table 5 measured
    /// against.
    pub fn attach_sampled(
        rt: &mut Runtime,
        kernel_period: u64,
        block_period: u32,
    ) -> GvProfSession {
        let sampler = PeriodicSampler {
            period: kernel_period.max(1),
            counters: Mutex::new(HashMap::new()),
        };
        Self::attach_with(rt, Arc::new(sampler), block_period.max(1))
    }

    fn attach_with(
        rt: &mut Runtime,
        filter: Arc<dyn vex_trace::LaunchFilter>,
        block_period: u32,
    ) -> GvProfSession {
        let profiler = Arc::new(GvProf { state: Mutex::new(State::default()) });
        let collector = Arc::new(
            Collector::new(GVPROF_BUFFER_RECORDS, profiler.clone(), filter)
                .with_block_period(block_period),
        );
        rt.register_access_hook(collector.clone());
        rt.serialize_streams(true);
        GvProfSession { profiler, collector }
    }

    /// Per-kernel redundancy results (kernel name → metrics), aggregated
    /// over all launches of each kernel.
    pub fn results(&self) -> BTreeMap<String, KernelRedundancy> {
        self.profiler.state.lock().per_kernel.clone()
    }

    /// Measurement traffic, for the Table 5 overhead comparison.
    pub fn collector_stats(&self) -> CollectorStats {
        self.collector.stats()
    }
}

impl TraceSink for GvProf {
    fn on_batch(&self, _info: &LaunchInfo, records: &[AccessRecord]) {
        let mut st = self.state.lock();
        for rec in records {
            if rec.is_store {
                st.current.total_stores += 1;
                match st.last_value.insert(rec.addr, rec.bits) {
                    Some(prev) if prev == rec.bits => st.current.redundant_stores += 1,
                    _ => {}
                }
                // A store invalidates load-redundancy history for the
                // address.
                st.last_load.remove(&rec.addr);
            } else {
                st.current.total_loads += 1;
                match st.last_load.insert(rec.addr, rec.bits) {
                    Some(prev) if prev == rec.bits => st.current.redundant_loads += 1,
                    _ => {}
                }
                st.last_value.entry(rec.addr).or_insert(rec.bits);
            }
        }
    }

    fn on_launch_complete(
        &self,
        info: &LaunchInfo,
        _stats: &LaunchStats,
        _view: &dyn DeviceView,
    ) {
        let mut st = self.state.lock();
        let current = std::mem::take(&mut st.current);
        let agg = st.per_kernel.entry(info.kernel_name.clone()).or_default();
        agg.redundant_stores += current.redundant_stores;
        agg.total_stores += current.total_stores;
        agg.redundant_loads += current.redundant_loads;
        agg.total_loads += current.total_loads;
        // Per-kernel scope: forget cross-kernel history.
        st.last_value.clear();
        st.last_load.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_gpu::dim::Dim3;
    use vex_gpu::exec::ThreadCtx;
    use vex_gpu::ir::{InstrTable, InstrTableBuilder, MemSpace, Pc, ScalarType};
    use vex_gpu::kernel::Kernel;
    use vex_gpu::timing::DeviceSpec;

    struct StoreConst {
        base: u64,
        n: usize,
        v: u32,
    }
    impl Kernel for StoreConst {
        fn name(&self) -> &str {
            "store_const"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build()
        }
        fn execute(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i < self.n {
                ctx.store::<u32>(Pc(0), self.base + (i * 4) as u64, self.v);
            }
        }
    }

    #[test]
    fn detects_temporal_store_redundancy_within_kernel_history() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let gv = GvProfSession::attach(&mut rt);
        let buf = rt.malloc(256, "buf").unwrap();
        // Launch twice with the same value: within each launch there is no
        // redundancy (fresh history), because GVProf's scope is per kernel.
        rt.launch(
            &StoreConst { base: buf.addr(), n: 16, v: 7 },
            Dim3::linear(1),
            Dim3::linear(16),
        )
        .unwrap();
        rt.launch(
            &StoreConst { base: buf.addr(), n: 16, v: 7 },
            Dim3::linear(1),
            Dim3::linear(16),
        )
        .unwrap();
        let r = &gv.results()["store_const"];
        assert_eq!(r.total_stores, 32);
        assert_eq!(
            r.redundant_stores, 0,
            "cross-kernel redundancy is invisible to GVProf — the deficit \
             ValueExpert's coarse analysis fixes"
        );
    }

    #[test]
    fn detects_redundancy_inside_one_kernel() {
        struct DoubleStore {
            base: u64,
        }
        impl Kernel for DoubleStore {
            fn name(&self) -> &str {
                "double_store"
            }
            fn instr_table(&self) -> InstrTable {
                InstrTableBuilder::new()
                    .store(Pc(0), ScalarType::U32, MemSpace::Global)
                    .store(Pc(1), ScalarType::U32, MemSpace::Global)
                    .build()
            }
            fn execute(&self, ctx: &mut ThreadCtx<'_>) {
                let a = self.base + (ctx.global_thread_id() * 4) as u64;
                ctx.store::<u32>(Pc(0), a, 5);
                ctx.store::<u32>(Pc(1), a, 5); // same value again
            }
        }
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let gv = GvProfSession::attach(&mut rt);
        let buf = rt.malloc(256, "buf").unwrap();
        rt.launch(&DoubleStore { base: buf.addr() }, Dim3::linear(1), Dim3::linear(8)).unwrap();
        let r = &gv.results()["double_store"];
        assert_eq!(r.total_stores, 16);
        assert_eq!(r.redundant_stores, 8);
        assert_eq!(r.store_redundancy(), 0.5);
    }

    #[test]
    fn load_redundancy() {
        struct DoubleLoad {
            base: u64,
        }
        impl Kernel for DoubleLoad {
            fn name(&self) -> &str {
                "double_load"
            }
            fn instr_table(&self) -> InstrTable {
                InstrTableBuilder::new()
                    .load(Pc(0), ScalarType::U32, MemSpace::Global)
                    .load(Pc(1), ScalarType::U32, MemSpace::Global)
                    .build()
            }
            fn execute(&self, ctx: &mut ThreadCtx<'_>) {
                let a = self.base + (ctx.global_thread_id() * 4) as u64;
                let _: u32 = ctx.load(Pc(0), a);
                let _: u32 = ctx.load(Pc(1), a);
            }
        }
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let gv = GvProfSession::attach(&mut rt);
        let buf = rt.malloc(256, "buf").unwrap();
        rt.memset(buf, 0, 256).unwrap();
        rt.launch(&DoubleLoad { base: buf.addr() }, Dim3::linear(1), Dim3::linear(8)).unwrap();
        let r = &gv.results()["double_load"];
        assert_eq!(r.total_loads, 16);
        assert_eq!(r.redundant_loads, 8);
        assert_eq!(r.load_redundancy(), 0.5);
    }

    #[test]
    fn collector_traffic_is_counted() {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let gv = GvProfSession::attach(&mut rt);
        let buf = rt.malloc(1024, "buf").unwrap();
        rt.launch(
            &StoreConst { base: buf.addr(), n: 200, v: 1 },
            Dim3::linear(7),
            Dim3::linear(32),
        )
        .unwrap();
        let s = gv.collector_stats();
        assert_eq!(s.events, 200);
        assert!(s.flushes >= 1);
        assert_eq!(s.instrumented_launches, 1);
    }
}
