//! A fault-tolerant push client for the ingest endpoint.
//!
//! `vex record --push <url>` and `vex push <file>` stream a recorded
//! trace to a running `vex serve --ingest` instead of relying on shared
//! disk. The wire protocol is one `POST /ingest/{id}` with a
//! `Content-Length` body over a fresh connection (the server speaks one
//! request per connection), so the client needs nothing beyond
//! `std::net` — matching the server's no-dependency posture.
//!
//! A fleet collector cannot assume the aggregation server is up when a
//! run finishes, so the client is built around three layers:
//!
//! 1. **Retry with backoff** — [`push_trace_with`] classifies failures
//!    as *retryable* (connect refused, timeouts, dropped connections,
//!    `5xx`/`429` answers — the server may be restarting or shedding
//!    load) or *terminal* (malformed URL, `4xx` rejections — retrying
//!    cannot help) and retries the former with exponential backoff and
//!    jitter, honouring a server-sent `Retry-After`.
//! 2. **Durable spooling** — [`push_or_spool`] falls back to writing
//!    the trace into a local spool directory when retries are
//!    exhausted, so the recording is never lost; [`drain_spool`]
//!    re-pushes spooled traces once the server is reachable again.
//! 3. **Fault injection** — the connect/send paths consult
//!    [`crate::fault`] failpoints so the crash-safety suite can prove
//!    the retry and spool behaviour against injected connection drops.

use crate::fault;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Why a push failed.
#[derive(Debug)]
pub enum PushError {
    /// The URL is not `http://host:port[/]`.
    BadUrl(String),
    /// Connecting or talking to the server failed (after retries, if
    /// any were configured).
    Io(String),
    /// The server answered, but not with `201 Created`.
    Rejected {
        /// HTTP status code of the refusal.
        status: u16,
        /// The response body (the server's error detail).
        detail: String,
        /// The server's `Retry-After` header, seconds, if it sent one
        /// (shed responses do).
        retry_after: Option<u64>,
    },
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::BadUrl(url) => {
                write!(f, "cannot parse '{url}' (expected http://host:port)")
            }
            PushError::Io(e) => write!(f, "push failed: {e}"),
            PushError::Rejected { status, detail, retry_after } => {
                write!(f, "server refused the push ({status}): {}", detail.trim_end())?;
                if let Some(secs) = retry_after {
                    write!(f, " (retry after {secs}s)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PushError {}

impl PushError {
    /// Whether retrying the same push could plausibly succeed.
    ///
    /// Connection-level failures and `5xx`/`429` answers are transient
    /// (the server may be down, restarting, or shedding load); a
    /// malformed URL or any other `4xx` is the client's fault and will
    /// fail identically every time.
    pub fn is_retryable(&self) -> bool {
        match self {
            PushError::BadUrl(_) => false,
            PushError::Io(_) => true,
            PushError::Rejected { status, .. } => *status >= 500 || *status == 429,
        }
    }
}

/// Tunables for [`push_trace_with`] and friends.
#[derive(Debug, Clone)]
pub struct PushOptions {
    /// Total attempts (≥1); retries happen only on
    /// [retryable](PushError::is_retryable) failures.
    pub attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Upper bound on any single delay (also caps a server-sent
    /// `Retry-After`).
    pub max_backoff: Duration,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout on the established connection.
    pub io_timeout: Duration,
    /// Cap on the bytes read from the server's response; a misbehaving
    /// endpoint cannot balloon the client's memory.
    pub max_response_bytes: u64,
}

impl Default for PushOptions {
    fn default() -> Self {
        PushOptions {
            attempts: 3,
            backoff: Duration::from_millis(200),
            max_backoff: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            max_response_bytes: 1024 * 1024,
        }
    }
}

/// What [`push_or_spool`] did with the trace.
#[derive(Debug)]
pub enum PushOutcome {
    /// The push landed; the server's `201` body (the JSON listing row).
    Pushed(String),
    /// Retries were exhausted on a transient failure; the trace was
    /// written to the spool at this path. The final push error is kept
    /// for reporting.
    Spooled(PathBuf, PushError),
}

/// Result of draining a spool directory.
#[derive(Debug, Default)]
pub struct DrainOutcome {
    /// Trace ids pushed (and removed from the spool), in order.
    pub pushed: Vec<String>,
    /// Traces that still failed, left in the spool for a later drain.
    pub failed: Vec<(String, PushError)>,
}

/// Pushes `bytes` (a complete `.vex` trace) to `url` as trace `id`
/// with default [`PushOptions`] (3 attempts, exponential backoff).
///
/// Returns the server's response body (the JSON listing row of the
/// ingested trace) on `201 Created`.
///
/// # Errors
///
/// [`PushError`] for a malformed URL, connection failure after
/// retries, or any non-201 answer — the server's detail is passed
/// through.
pub fn push_trace(url: &str, id: &str, bytes: &[u8]) -> Result<String, PushError> {
    push_trace_with(url, id, bytes, &PushOptions::default())
}

/// [`push_trace`] with explicit retry/timeout tunables.
///
/// # Errors
///
/// The last [`PushError`] once attempts are exhausted, or immediately
/// on a terminal (non-retryable) failure.
pub fn push_trace_with(
    url: &str,
    id: &str,
    bytes: &[u8],
    opts: &PushOptions,
) -> Result<String, PushError> {
    let authority = parse_authority(url)?;
    let attempts = opts.attempts.max(1);
    let mut delay = opts.backoff;
    let mut last = None;
    for attempt in 0..attempts {
        match push_once(authority, id, bytes, opts) {
            Ok(body) => return Ok(body),
            Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                let mut wait = delay;
                if let PushError::Rejected { retry_after: Some(secs), .. } = &e {
                    wait = wait.max(Duration::from_secs(*secs));
                }
                wait = wait.min(opts.max_backoff);
                std::thread::sleep(with_jitter(wait));
                delay = (delay * 2).min(opts.max_backoff);
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| PushError::Io("no attempts configured".into())))
}

/// Pushes with retries, then falls back to spooling `bytes` as
/// `{id}.vex` under `spool_dir` if the failure was transient. Terminal
/// failures (bad URL, `4xx`) are returned as errors without spooling —
/// a rejected trace would be rejected again at drain time.
///
/// # Errors
///
/// A terminal [`PushError`], or [`PushError::Io`] if spooling itself
/// fails (the original push error is folded into the message).
pub fn push_or_spool(
    url: &str,
    id: &str,
    bytes: &[u8],
    spool_dir: &Path,
    opts: &PushOptions,
) -> Result<PushOutcome, PushError> {
    match push_trace_with(url, id, bytes, opts) {
        Ok(body) => Ok(PushOutcome::Pushed(body)),
        Err(e) if e.is_retryable() => match spool_trace(spool_dir, id, bytes) {
            Ok(path) => Ok(PushOutcome::Spooled(path, e)),
            Err(spool_err) => Err(PushError::Io(format!(
                "push failed ({e}) and spooling to {} also failed: {spool_err}",
                spool_dir.display()
            ))),
        },
        Err(e) => Err(e),
    }
}

/// Writes `bytes` durably as `{id}.vex` under `dir` (created if
/// missing), via a hidden temp file and an atomic rename — a crash
/// mid-spool can strand a temp file but never a torn `.vex`.
///
/// # Errors
///
/// Any I/O error creating, writing, or renaming.
pub fn spool_trace(dir: &Path, id: &str, bytes: &[u8]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ u64::from(std::process::id());
    let tmp = dir.join(format!(".{id}.{nonce:016x}.spool.tmp"));
    let final_path = dir.join(format!("{id}.vex"));
    let write_result = (|| -> std::io::Result<()> {
        match fault::fire("client.spool.write") {
            Some(fault::Action::Partial(n)) => {
                std::fs::write(&tmp, &bytes[..n.min(bytes.len())])?;
                return Err(fault::Action::Partial(n).to_io_error("client.spool.write"));
            }
            Some(action) => return Err(action.to_io_error("client.spool.write")),
            None => {}
        }
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &final_path)
    })();
    if let Err(e) = write_result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(final_path)
}

/// Re-pushes every `*.vex` file in `dir` to `url`, removing each from
/// the spool once its push lands. Files that still fail are left in
/// place and reported in [`DrainOutcome::failed`]; one bad trace does
/// not block the rest of the spool.
///
/// # Errors
///
/// [`PushError::BadUrl`] up front, or [`PushError::Io`] if the spool
/// directory itself cannot be read. Per-trace failures are *not*
/// errors — they come back in the outcome.
pub fn drain_spool(
    dir: &Path,
    url: &str,
    opts: &PushOptions,
) -> Result<DrainOutcome, PushError> {
    parse_authority(url)?;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| PushError::Io(format!("cannot read spool {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "vex"))
        .collect();
    entries.sort();
    let mut outcome = DrainOutcome::default();
    for path in entries {
        let Some(id) = path.file_stem().and_then(|s| s.to_str()).map(str::to_owned) else {
            continue;
        };
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                outcome.failed.push((id, PushError::Io(e.to_string())));
                continue;
            }
        };
        match push_trace_with(url, &id, &bytes, opts) {
            Ok(_) => {
                let _ = std::fs::remove_file(&path);
                outcome.pushed.push(id);
            }
            Err(e) => outcome.failed.push((id, e)),
        }
    }
    Ok(outcome)
}

/// Validates `http://host:port[/]` and returns the authority.
fn parse_authority(url: &str) -> Result<&str, PushError> {
    let authority = url
        .strip_prefix("http://")
        .ok_or_else(|| PushError::BadUrl(url.to_owned()))?
        .trim_end_matches('/');
    if authority.is_empty() || authority.contains('/') {
        return Err(PushError::BadUrl(url.to_owned()));
    }
    Ok(authority)
}

/// One connect-send-read round trip. No retries at this layer.
fn push_once(
    authority: &str,
    id: &str,
    bytes: &[u8],
    opts: &PushOptions,
) -> Result<String, PushError> {
    if let Some(action) = fault::fire("client.connect") {
        return Err(PushError::Io(action.to_io_error("client.connect").to_string()));
    }
    let addr = authority
        .to_socket_addrs()
        .map_err(|e| PushError::Io(format!("{authority}: {e}")))?
        .next()
        .ok_or_else(|| PushError::Io(format!("{authority}: no address")))?;
    let mut conn = TcpStream::connect_timeout(&addr, opts.connect_timeout)
        .map_err(|e| PushError::Io(format!("{authority}: {e}")))?;
    let _ = conn.set_read_timeout(Some(opts.io_timeout));
    let _ = conn.set_write_timeout(Some(opts.io_timeout));
    let head = format!(
        "POST /ingest/{id} HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        bytes.len()
    );
    conn.write_all(head.as_bytes()).map_err(|e| PushError::Io(e.to_string()))?;
    match fault::fire("client.send") {
        Some(fault::Action::Partial(n)) => {
            let _ = conn.write_all(&bytes[..n.min(bytes.len())]);
            let _ = conn.shutdown(std::net::Shutdown::Both);
            return Err(PushError::Io(
                fault::Action::Partial(n).to_io_error("client.send").to_string(),
            ));
        }
        Some(action) => {
            let _ = conn.shutdown(std::net::Shutdown::Both);
            return Err(PushError::Io(action.to_io_error("client.send").to_string()));
        }
        None => {}
    }
    conn.write_all(bytes).map_err(|e| PushError::Io(e.to_string()))?;
    conn.flush().map_err(|e| PushError::Io(e.to_string()))?;

    let mut response = Vec::new();
    conn.take(opts.max_response_bytes)
        .read_to_end(&mut response)
        .map_err(|e| PushError::Io(e.to_string()))?;
    let text = String::from_utf8_lossy(&response);
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| PushError::Io(format!("unparseable response: {:.80}", text)))?;
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some((h, b)) => (h, b.to_owned()),
        None => (&*text, String::new()),
    };
    if status == 201 {
        Ok(body)
    } else {
        let retry_after = head
            .lines()
            .find_map(|line| line.split_once(':').map(|(k, v)| (k.trim(), v.trim())))
            .filter(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
            .and_then(|(_, v)| v.parse().ok());
        Err(PushError::Rejected { status, detail: body, retry_after })
    }
}

/// Adds up to +50% random jitter so a fleet of collectors retrying
/// against one recovering server does not re-synchronise into bursts.
/// A time-seeded LCG keeps this dependency-free; statistical quality
/// is irrelevant here.
fn with_jitter(base: Duration) -> Duration {
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0)
        ^ (u64::from(std::process::id()) << 32);
    let x = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let base_us = base.as_micros().min(u128::from(u64::MAX)) as u64;
    let jitter_us = if base_us == 0 { 0 } else { x % (base_us / 2 + 1) };
    base + Duration::from_micros(jitter_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Options that keep failure-path tests fast: one attempt, no
    /// backoff sleeping.
    fn fast() -> PushOptions {
        PushOptions {
            attempts: 1,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(500),
            ..PushOptions::default()
        }
    }

    #[test]
    fn bad_urls_are_rejected_before_connecting() {
        for url in ["ftp://x:1", "127.0.0.1:7070", "http://", "http://host:1/path"] {
            assert!(
                matches!(push_trace_with(url, "t", b"", &fast()), Err(PushError::BadUrl(_))),
                "{url}"
            );
        }
    }

    #[test]
    fn connection_refused_is_an_io_error() {
        // Port 1 on loopback is essentially never listening.
        match push_trace_with("http://127.0.0.1:1", "t", b"x", &fast()) {
            Err(PushError::Io(_)) => {}
            other => panic!("expected an io error, got {other:?}"),
        }
    }

    #[test]
    fn retryability_classification() {
        assert!(!PushError::BadUrl("x".into()).is_retryable());
        assert!(PushError::Io("refused".into()).is_retryable());
        let rejected =
            |status| PushError::Rejected { status, detail: String::new(), retry_after: None };
        assert!(!rejected(400).is_retryable());
        assert!(!rejected(404).is_retryable());
        assert!(rejected(429).is_retryable());
        assert!(rejected(500).is_retryable());
        assert!(rejected(503).is_retryable());
    }

    #[test]
    fn injected_connect_failures_consume_retry_attempts() {
        let _s = fault::session();
        fault::arm_times("client.connect", fault::Action::Disconnect, 10);
        let opts = PushOptions { attempts: 3, ..fast() };
        // All three attempts hit the failpoint; three charges consumed.
        match push_trace_with("http://127.0.0.1:1", "t", b"x", &opts) {
            Err(PushError::Io(e)) => assert!(e.contains("client.connect"), "{e}"),
            other => panic!("expected io error, got {other:?}"),
        }
        let mut left = 0;
        while fault::fire("client.connect").is_some() {
            left += 1;
        }
        assert_eq!(left, 7, "3 of 10 charges should have been consumed");
    }

    #[test]
    fn spool_roundtrip_is_byte_identical_and_drain_removes() {
        let dir = std::env::temp_dir().join(format!("vex-spool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = spool_trace(&dir, "t1", b"payload-bytes").expect("spool");
        assert_eq!(path, dir.join("t1.vex"));
        assert_eq!(std::fs::read(&path).expect("read back"), b"payload-bytes");
        // No temp litter after a clean spool.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(litter.is_empty(), "{litter:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_spool_write_leaves_no_partial_file() {
        let _s = fault::session();
        let dir = std::env::temp_dir().join(format!("vex-spool-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        fault::arm_times("client.spool.write", fault::Action::Partial(3), 1);
        let err = spool_trace(&dir, "t1", b"payload-bytes").expect_err("injected failure");
        assert!(err.to_string().contains("client.spool.write"), "{err}");
        assert!(!dir.join("t1.vex").exists(), "no torn final file");
        let leftovers: Vec<_> =
            std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()).collect();
        assert!(leftovers.is_empty(), "temp cleaned up: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn push_or_spool_spools_on_transient_failure_only() {
        let dir = std::env::temp_dir().join(format!("vex-spool-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Connection refused (transient) → spooled.
        match push_or_spool("http://127.0.0.1:1", "t9", b"bytes", &dir, &fast()) {
            Ok(PushOutcome::Spooled(path, PushError::Io(_))) => {
                assert_eq!(std::fs::read(path).unwrap(), b"bytes");
            }
            other => panic!("expected spooled, got {other:?}"),
        }
        // Bad URL (terminal) → error, nothing new spooled.
        assert!(matches!(
            push_or_spool("not-a-url", "t10", b"bytes", &dir, &fast()),
            Err(PushError::BadUrl(_))
        ));
        assert!(!dir.join("t10.vex").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_reports_per_trace_failures_and_keeps_files() {
        let dir = std::env::temp_dir().join(format!("vex-spool-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        spool_trace(&dir, "a", b"aa").unwrap();
        spool_trace(&dir, "b", b"bb").unwrap();
        let outcome = drain_spool(&dir, "http://127.0.0.1:1", &fast()).expect("drain runs");
        assert!(outcome.pushed.is_empty());
        assert_eq!(outcome.failed.len(), 2);
        assert!(dir.join("a.vex").exists() && dir.join("b.vex").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jitter_never_shrinks_the_delay() {
        for _ in 0..32 {
            let base = Duration::from_millis(100);
            let j = with_jitter(base);
            assert!(j >= base && j <= base + Duration::from_millis(51), "{j:?}");
        }
    }
}
