//! A minimal push client for the ingest endpoint.
//!
//! `vex record --push <url>` and `vex push <file>` stream a recorded
//! trace to a running `vex serve --ingest` instead of relying on shared
//! disk. The wire protocol is one `POST /ingest/{id}` with a
//! `Content-Length` body over a fresh connection (the server speaks one
//! request per connection), so the client needs nothing beyond
//! `std::net` — matching the server's no-dependency posture.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a push failed.
#[derive(Debug)]
pub enum PushError {
    /// The URL is not `http://host:port[/]`.
    BadUrl(String),
    /// Connecting or talking to the server failed.
    Io(String),
    /// The server answered, but not with `201 Created`.
    Rejected {
        /// HTTP status code of the refusal.
        status: u16,
        /// The response body (the server's error detail).
        detail: String,
    },
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::BadUrl(url) => {
                write!(f, "cannot parse '{url}' (expected http://host:port)")
            }
            PushError::Io(e) => write!(f, "push failed: {e}"),
            PushError::Rejected { status, detail } => {
                write!(f, "server refused the push ({status}): {}", detail.trim_end())
            }
        }
    }
}

impl std::error::Error for PushError {}

/// Pushes `bytes` (a complete `.vex` trace) to `url` as trace `id`.
///
/// Returns the server's response body (the JSON listing row of the
/// ingested trace) on `201 Created`.
///
/// # Errors
///
/// [`PushError`] for a malformed URL, connection failure, or any
/// non-201 answer — the server's detail is passed through.
pub fn push_trace(url: &str, id: &str, bytes: &[u8]) -> Result<String, PushError> {
    let authority = url
        .strip_prefix("http://")
        .ok_or_else(|| PushError::BadUrl(url.to_owned()))?
        .trim_end_matches('/');
    if authority.is_empty() || authority.contains('/') {
        return Err(PushError::BadUrl(url.to_owned()));
    }
    let mut conn =
        TcpStream::connect(authority).map_err(|e| PushError::Io(format!("{authority}: {e}")))?;
    let _ = conn.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(30)));
    let head = format!(
        "POST /ingest/{id} HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        bytes.len()
    );
    conn.write_all(head.as_bytes()).map_err(|e| PushError::Io(e.to_string()))?;
    conn.write_all(bytes).map_err(|e| PushError::Io(e.to_string()))?;
    conn.flush().map_err(|e| PushError::Io(e.to_string()))?;

    let mut response = Vec::new();
    conn.read_to_end(&mut response).map_err(|e| PushError::Io(e.to_string()))?;
    let text = String::from_utf8_lossy(&response);
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| PushError::Io(format!("unparseable response: {:.80}", text)))?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    if status == 201 {
        Ok(body)
    } else {
        Err(PushError::Rejected { status, detail: body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_urls_are_rejected_before_connecting() {
        for url in ["ftp://x:1", "127.0.0.1:7070", "http://", "http://host:1/path"] {
            assert!(matches!(push_trace(url, "t", b""), Err(PushError::BadUrl(_))), "{url}");
        }
    }

    #[test]
    fn connection_refused_is_an_io_error() {
        // Port 1 on loopback is essentially never listening.
        match push_trace("http://127.0.0.1:1", "t", b"x") {
            Err(PushError::Io(_)) => {}
            other => panic!("expected an io error, got {other:?}"),
        }
    }
}
