//! A minimal, hardened HTTP/1.1 surface on top of `std`.
//!
//! `vex-serve` refuses external dependencies (offline shim constraint),
//! so the protocol layer is hand-rolled — and therefore built
//! defensively: every parse step is bounded, every length is checked,
//! and malformed input of any shape yields a clean [`ParseError`], never
//! a panic. `tests/serve_robustness.rs` property-tests this parser
//! against arbitrary byte soup.
//!
//! Scope is deliberately small: the server speaks one request per
//! connection (`Connection: close`). Request bodies are parsed only as
//! far as the ingest path needs them: a declared `Content-Length` or
//! `Transfer-Encoding: chunked` framing, both bounded by a per-request
//! cap the caller supplies to [`decode_chunked`] / enforces before
//! reading a sized body.

use std::collections::BTreeMap;

/// Upper bound on the request head (request line + headers), bytes.
/// Anything longer is answered `431` and the connection is closed.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// The [`decode_chunked`] error for a body over the caller's cap —
/// matched by the server to answer `413` instead of `400`.
pub const BODY_TOO_LARGE: &str = "body exceeds the size cap";

/// A parsed HTTP request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, e.g. `GET`.
    pub method: String,
    /// Decoded path component of the target, e.g. `/traces/darknet/report`.
    pub path: String,
    /// Query parameters in target order.
    pub query: Vec<(String, String)>,
    /// Declared `Content-Length`, if any.
    pub content_length: Option<u64>,
    /// Whether the body uses `Transfer-Encoding: chunked`.
    pub chunked: bool,
}

impl Request {
    /// The path split into non-empty `/`-separated segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request head failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer does not yet hold a complete head (more bytes needed).
    Incomplete,
    /// The head exceeds [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// The bytes are not a well-formed HTTP/1.x request head.
    Malformed(&'static str),
}

impl ParseError {
    /// The HTTP status this error is answered with.
    pub fn status(self) -> Status {
        match self {
            // An incomplete head that never completes is a timeout /
            // client hangup; answered 408 when surfaced.
            ParseError::Incomplete => Status::RequestTimeout,
            ParseError::TooLarge => Status::HeaderTooLarge,
            ParseError::Malformed(_) => Status::BadRequest,
        }
    }
}

/// Response status codes the server emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 201.
    Created,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 405.
    MethodNotAllowed,
    /// 408.
    RequestTimeout,
    /// 409.
    Conflict,
    /// 413.
    PayloadTooLarge,
    /// 431.
    HeaderTooLarge,
    /// 500.
    Internal,
    /// 503.
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::RequestTimeout => 408,
            Status::Conflict => 409,
            Status::PayloadTooLarge => 413,
            Status::HeaderTooLarge => 431,
            Status::Internal => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::RequestTimeout => "Request Timeout",
            Status::Conflict => "Conflict",
            Status::PayloadTooLarge => "Payload Too Large",
            Status::HeaderTooLarge => "Request Header Fields Too Large",
            Status::Internal => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }

    /// Whether this status denotes success (2xx).
    pub fn is_success(self) -> bool {
        matches!(self, Status::Ok | Status::Created)
    }
}

/// A complete response: status, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status line to send.
    pub status: Status,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header value, seconds — emitted on 503
    /// shed responses so well-behaved clients back off.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: Status, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into(),
            retry_after: None,
        }
    }

    /// An `application/json` response.
    pub fn json(status: Status, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into(),
            retry_after: None,
        }
    }

    /// A plain-text error response (`<status reason>: detail\n`).
    pub fn error(status: Status, detail: impl std::fmt::Display) -> Self {
        Response::text(status, format!("{}: {detail}\n", status.reason()))
    }

    /// Adds a `Retry-After: secs` header to the response.
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// Serializes the response head + body (`Connection: close` framing).
    pub fn to_bytes(&self) -> Vec<u8> {
        use std::fmt::Write;
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status.code(),
            self.status.reason(),
            self.content_type,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            let _ = write!(head, "Retry-After: {secs}\r\n");
        }
        head.push_str("Connection: close\r\n\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Parses a request head from the start of `buf`.
///
/// Returns the request and the number of bytes consumed (through the
/// terminating blank line). [`ParseError::Incomplete`] asks the caller to
/// read more; any other error is final.
///
/// # Errors
///
/// See [`ParseError`]. Never panics, whatever the bytes.
pub fn parse_request(buf: &[u8]) -> Result<(Request, usize), ParseError> {
    // Locate the end of the head ("\r\n\r\n") within the size limit.
    let window = &buf[..buf.len().min(MAX_REQUEST_BYTES)];
    let head_end = match find_head_end(window) {
        Some(end) => end,
        None if buf.len() >= MAX_REQUEST_BYTES => return Err(ParseError::TooLarge),
        None => return Err(ParseError::Incomplete),
    };
    let head = &window[..head_end];
    let head =
        std::str::from_utf8(head).map_err(|_| ParseError::Malformed("head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::Malformed("empty head"))?;

    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(ParseError::Malformed("missing http version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("bad method"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported http version"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed("target is not an absolute path"));
    }

    // Headers: validated for shape; the only values the server reads
    // are the body-framing pair (Content-Length / Transfer-Encoding),
    // which the ingest path needs.
    let mut content_length: Option<u64> = None;
    let mut chunked = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or(ParseError::Malformed("header without colon"))?;
        if name.is_empty()
            || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(ParseError::Malformed("bad header name"));
        }
        let lower = name.to_ascii_lowercase();
        if lower == "content-length" {
            if content_length.is_some() {
                return Err(ParseError::Malformed("duplicate content-length"));
            }
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Malformed("bad content-length"))?;
            content_length = Some(n);
        } else if lower == "transfer-encoding" {
            if chunked {
                return Err(ParseError::Malformed("duplicate transfer-encoding"));
            }
            if !value.trim().eq_ignore_ascii_case("chunked") {
                return Err(ParseError::Malformed("unsupported transfer-encoding"));
            }
            chunked = true;
        }
    }
    if content_length.is_some() && chunked {
        return Err(ParseError::Malformed("conflicting body framing"));
    }

    let (path, query) = split_target(target)?;
    Ok((
        Request { method: method.to_owned(), path, query, content_length, chunked },
        head_end + 4,
    ))
}

/// Where a [`ChunkedDecoder`] stands in the chunk grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    /// Expecting a chunk-size line.
    Size,
    /// Expecting `size` data bytes plus the closing CRLF.
    Data {
        /// Declared size of the current chunk, bytes.
        size: usize,
    },
    /// The terminating `0\r\n\r\n` has been consumed.
    Done,
}

/// A resumable `Transfer-Encoding: chunked` decoder.
///
/// The server reads a socket in small slices; feeding each slice to
/// [`ChunkedDecoder::extend`] resumes parsing exactly where the previous
/// call stopped, so reassembling an N-byte body costs O(N) total — never
/// a re-parse of already-decoded chunks. Fully-consumed input is dropped
/// eagerly, so the decoder holds at most the body plus the current
/// unfinished chunk. Chunk extensions and trailers are rejected —
/// profilers pushing traces have no use for either.
#[derive(Debug)]
pub struct ChunkedDecoder {
    max_bytes: u64,
    /// Unparsed (or partially parsed) stream bytes.
    buf: Vec<u8>,
    /// Parse cursor into `buf`; everything before it is consumed.
    pos: usize,
    /// Bytes already dropped from the front of `buf`.
    drained: usize,
    body: Vec<u8>,
    state: ChunkState,
}

impl ChunkedDecoder {
    /// A decoder enforcing `max_bytes` on the reassembled body (checked
    /// from the declared chunk sizes, before the data arrives).
    pub fn new(max_bytes: u64) -> Self {
        ChunkedDecoder {
            max_bytes,
            buf: Vec::new(),
            pos: 0,
            drained: 0,
            body: Vec::new(),
            state: ChunkState::Size,
        }
    }

    /// Feeds the next stream slice and resumes decoding. Returns `true`
    /// once the terminating `0\r\n\r\n` has been consumed; `false` means
    /// more bytes are needed.
    ///
    /// # Errors
    ///
    /// A static description of the framing error, or [`BODY_TOO_LARGE`].
    /// Errors are final: the decoder must not be fed further.
    pub fn extend(&mut self, bytes: &[u8]) -> Result<bool, &'static str> {
        self.buf.extend_from_slice(bytes);
        loop {
            match self.state {
                ChunkState::Done => return Ok(true),
                ChunkState::Size => {
                    // Chunk-size line.
                    let line_end = match find_crlf(&self.buf[self.pos..]) {
                        Some(off) => self.pos + off,
                        None => {
                            // An absurdly long size line is malformed,
                            // not pending.
                            if self.buf.len() - self.pos > 18 {
                                return Err("chunk size line too long");
                            }
                            self.compact();
                            return Ok(false);
                        }
                    };
                    let line = std::str::from_utf8(&self.buf[self.pos..line_end])
                        .map_err(|_| "chunk size not utf-8")?;
                    if line.contains(';') {
                        return Err("chunk extensions are not accepted");
                    }
                    if line.is_empty()
                        || line.len() > 16
                        || !line.bytes().all(|b| b.is_ascii_hexdigit())
                    {
                        return Err("bad chunk size");
                    }
                    let size = u64::from_str_radix(line, 16).map_err(|_| "bad chunk size")?;
                    if self.body.len() as u64 + size > self.max_bytes {
                        return Err(BODY_TOO_LARGE);
                    }
                    let data_start = line_end + 2;
                    if size == 0 {
                        // Last chunk: expect the bare terminating CRLF
                        // (no trailers).
                        match self.buf.get(data_start..data_start + 2) {
                            Some(b"\r\n") => {
                                self.pos = data_start + 2;
                                self.state = ChunkState::Done;
                                return Ok(true);
                            }
                            Some(_) => return Err("trailers are not accepted"),
                            None => {
                                self.compact();
                                return Ok(false);
                            }
                        }
                    }
                    let size = usize::try_from(size).map_err(|_| "chunk too large")?;
                    self.pos = data_start;
                    self.state = ChunkState::Data { size };
                }
                ChunkState::Data { size } => {
                    let data_end = self.pos.checked_add(size).ok_or("chunk too large")?;
                    match self.buf.get(data_end..data_end + 2) {
                        Some(b"\r\n") => {}
                        Some(_) => return Err("chunk data not followed by crlf"),
                        None => {
                            self.compact();
                            return Ok(false);
                        }
                    }
                    self.body.extend_from_slice(&self.buf[self.pos..data_end]);
                    self.pos = data_end + 2;
                    self.state = ChunkState::Size;
                }
            }
        }
    }

    /// Total stream bytes consumed; once [`extend`](Self::extend) has
    /// returned `true`, this is exact through the terminating CRLF.
    pub fn consumed(&self) -> usize {
        self.drained + self.pos
    }

    /// The reassembled body decoded so far.
    pub fn into_body(self) -> Vec<u8> {
        self.body
    }

    /// Drops the consumed prefix of `buf`. Called only on pending
    /// returns, so each buffered byte is moved at most once per chunk
    /// boundary it outlives — the tail at that point is a partial size
    /// line or the just-started chunk data.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.drained += self.pos;
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Decodes a `Transfer-Encoding: chunked` body from the start of `buf`
/// in one shot (see [`ChunkedDecoder`] for the resumable form the
/// server's read loop uses).
///
/// `Ok(None)` means the buffer does not yet hold the full body;
/// `Ok(Some((body, consumed)))` returns the reassembled body and the
/// bytes consumed through the terminating `0\r\n\r\n`.
///
/// # Errors
///
/// A static description of the framing error, or of the body exceeding
/// `max_bytes` (detected as early as the declared sizes allow).
pub fn decode_chunked(
    buf: &[u8],
    max_bytes: u64,
) -> Result<Option<(Vec<u8>, usize)>, &'static str> {
    let mut decoder = ChunkedDecoder::new(max_bytes);
    if decoder.extend(buf)? {
        let consumed = decoder.consumed();
        Ok(Some((decoder.into_body(), consumed)))
    } else {
        Ok(None)
    }
}

/// Byte offset of the first `\r\n`, if present.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Byte offset of the head terminator, if present (offset excludes the
/// `\r\n\r\n` itself).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits `/path?k=v&k2=v2` into a decoded path and query pairs.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), ParseError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    if path.contains("..") {
        return Err(ParseError::Malformed("path traversal"));
    }
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%XX` escapes and `+`-as-space; rejects bad escapes and
/// control characters.
fn percent_decode(s: &str) -> Result<String, ParseError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi =
                    bytes.get(i + 1).copied().ok_or(ParseError::Malformed("bad escape"))?;
                let lo =
                    bytes.get(i + 2).copied().ok_or(ParseError::Malformed("bad escape"))?;
                let v = (hex_val(hi).ok_or(ParseError::Malformed("bad escape"))? << 4)
                    | hex_val(lo).ok_or(ParseError::Malformed("bad escape"))?;
                out.push(v);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b if b.is_ascii_control() => {
                return Err(ParseError::Malformed("control character"))
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    let s = String::from_utf8(out).map_err(|_| ParseError::Malformed("target not utf-8"))?;
    if s.bytes().any(|b| b.is_ascii_control()) {
        return Err(ParseError::Malformed("control character"));
    }
    Ok(s)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Query parameters as a map, rejecting duplicates and keys outside
/// `allowed`. Endpoint handlers share this so unknown-parameter
/// rejection is uniform, mirroring the CLI's unknown-flag errors.
///
/// # Errors
///
/// A human-readable message naming the offending key.
pub fn query_map<'a>(
    req: &'a Request,
    allowed: &[&str],
) -> Result<BTreeMap<&'a str, &'a str>, String> {
    let mut map = BTreeMap::new();
    for (k, v) in &req.query {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "unknown query parameter '{k}' (allowed: {})",
                if allowed.is_empty() { "none".to_owned() } else { allowed.join(", ") }
            ));
        }
        if map.insert(k.as_str(), v.as_str()).is_some() {
            return Err(format!("duplicate query parameter '{k}'"));
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse(s: &str) -> Result<(Request, usize), ParseError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn parses_simple_get() {
        let (req, used) = parse("GET /traces HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/traces");
        assert!(req.query.is_empty());
        assert_eq!(used, "GET /traces HTTP/1.1\r\nHost: x\r\n\r\n".len());
        assert_eq!(req.segments(), vec!["traces"]);
    }

    #[test]
    fn parses_query_pairs_in_order() {
        let (req, _) = parse("GET /traces/d/report?shards=8&fine=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/traces/d/report");
        assert_eq!(req.query, vec![("shards".into(), "8".into()), ("fine".into(), "1".into())]);
    }

    #[test]
    fn decodes_percent_and_plus() {
        let (req, _) = parse("GET /traces?q=a%20b+c HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query[0].1, "a b c");
    }

    #[test]
    fn incomplete_head_asks_for_more() {
        assert_eq!(parse("GET / HTTP/1.1\r\nHost").unwrap_err(), ParseError::Incomplete);
        assert_eq!(parse("").unwrap_err(), ParseError::Incomplete);
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut s = String::from("GET / HTTP/1.1\r\n");
        while s.len() <= MAX_REQUEST_BYTES {
            s.push_str("X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(parse(&s).unwrap_err(), ParseError::TooLarge);
    }

    #[test]
    fn malformed_heads_are_rejected() {
        for bad in [
            "FROB\r\n\r\n",
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2.0\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "GET /../etc HTTP/1.1\r\n\r\n",
            "GET /%zz HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nbad header\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\n",
            "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(ParseError::Malformed(_))),
                "{bad:?} parsed: {:?}",
                parse(bad)
            );
        }
    }

    #[test]
    fn body_framing_headers_are_captured() {
        let (req, used) =
            parse("POST /ingest/x HTTP/1.1\r\nContent-Length: 42\r\n\r\n").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.content_length, Some(42));
        assert!(!req.chunked);
        assert_eq!(used, "POST /ingest/x HTTP/1.1\r\nContent-Length: 42\r\n\r\n".len());
        let (req, _) =
            parse("POST /ingest/x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap();
        assert!(req.chunked);
        assert_eq!(req.content_length, None);
        let (req, _) = parse("GET /traces HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.content_length, None);
        assert!(!req.chunked);
    }

    #[test]
    fn chunked_bodies_reassemble_incrementally() {
        let wire = b"4\r\nVEXT\r\n5\r\nRACE!\r\n0\r\n\r\n";
        // Whole buffer at once.
        let (body, consumed) = decode_chunked(wire, 1024).unwrap().unwrap();
        assert_eq!(body, b"VEXTRACE!");
        assert_eq!(consumed, wire.len());
        // Every prefix short of the end asks for more bytes.
        for cut in 0..wire.len() {
            assert_eq!(decode_chunked(&wire[..cut], 1024).unwrap(), None, "cut at {cut}");
        }
        // Empty body.
        let (body, consumed) = decode_chunked(b"0\r\n\r\n", 1024).unwrap().unwrap();
        assert!(body.is_empty());
        assert_eq!(consumed, 5);
    }

    #[test]
    fn chunked_bodies_enforce_the_cap_and_reject_garbage() {
        // Cap enforced from the declared size, before the data arrives.
        assert!(decode_chunked(b"FFFFFFFF\r\n", 1024).is_err());
        assert!(decode_chunked(b"5\r\nhello\r\n0\r\n\r\n", 4).is_err());
        for bad in [
            &b"zz\r\nxx\r\n0\r\n\r\n"[..],        // non-hex size
            &b"\r\n\r\n"[..],                     // empty size line
            &b"4;ext=1\r\nVEXT\r\n0\r\n\r\n"[..], // chunk extension
            &b"4\r\nVEXTxx0\r\n\r\n"[..],         // data not closed by crlf
            &b"0\r\nX-Trailer: 1\r\n\r\n"[..],    // trailers
            &b"11111111111111111\r\n"[..],        // size line too long
        ] {
            assert!(decode_chunked(bad, 1 << 20).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn resumable_decoder_matches_one_shot_byte_at_a_time() {
        let wire = b"4\r\nVEXT\r\n5\r\nRACE!\r\n0\r\n\r\ntrailing junk";
        let mut dec = ChunkedDecoder::new(1024);
        let mut done_at = None;
        for (i, b) in wire.iter().enumerate() {
            if dec.extend(std::slice::from_ref(b)).unwrap() {
                done_at = Some(i + 1);
                break;
            }
        }
        // Completes exactly at the terminating CRLF, ignoring the tail.
        let terminator = wire.len() - b"trailing junk".len();
        assert_eq!(done_at, Some(terminator));
        assert_eq!(dec.consumed(), terminator);
        assert_eq!(dec.into_body(), b"VEXTRACE!");
    }

    #[test]
    fn resumable_decoder_is_linear_not_quadratic() {
        // One large chunk fed in 8KiB slices: each extend must be O(1)
        // once the size line is parsed (length check only), so the whole
        // reassembly stays well under a second even for many slices.
        let body = vec![0xA5u8; 4 << 20];
        let wire = chunk_wire(&body, body.len());
        let started = std::time::Instant::now();
        let mut dec = ChunkedDecoder::new(body.len() as u64);
        let mut complete = false;
        for slice in wire.chunks(8 * 1024) {
            complete = dec.extend(slice).unwrap();
        }
        assert!(complete);
        assert_eq!(dec.into_body(), body);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "resumable decode took {:?} — reassembly is re-scanning prior chunks",
            started.elapsed()
        );
    }

    /// Wraps `body` in chunked coding, `chunk` bytes per chunk.
    fn chunk_wire(body: &[u8], chunk: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for part in body.chunks(chunk.max(1)) {
            out.extend_from_slice(format!("{:x}\r\n", part.len()).as_bytes());
            out.extend_from_slice(part);
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"0\r\n\r\n");
        out
    }

    proptest! {
        /// The chunked decoder never panics and a decoded body respects
        /// the cap, whatever the bytes.
        #[test]
        fn prop_chunked_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
            if let Ok(Some((body, consumed))) = decode_chunked(&bytes, 256) {
                prop_assert!(body.len() <= 256);
                prop_assert!(consumed <= bytes.len());
            }
        }

        /// Feeding arbitrary valid chunked wire in arbitrary slice sizes
        /// reproduces the one-shot decode exactly: same body, same
        /// consumed count, regardless of where the reads split.
        #[test]
        fn prop_resumable_decode_equals_one_shot(
            body in prop::collection::vec(any::<u8>(), 0..2048),
            chunk in 1usize..257,
            slice in 1usize..97,
        ) {
            let wire = chunk_wire(&body, chunk);
            let (expect, consumed) = decode_chunked(&wire, 4096).unwrap().unwrap();
            prop_assert_eq!(&expect, &body);
            let mut dec = ChunkedDecoder::new(4096);
            let mut complete = false;
            for part in wire.chunks(slice) {
                complete = dec.extend(part).unwrap();
            }
            prop_assert!(complete);
            prop_assert_eq!(dec.consumed(), consumed);
            prop_assert_eq!(dec.into_body(), body);
        }
    }

    #[test]
    fn query_map_rejects_unknown_and_duplicate_keys() {
        let (req, _) = parse("GET /x?a=1&b=2 HTTP/1.1\r\n\r\n").unwrap();
        assert!(query_map(&req, &["a", "b"]).is_ok());
        assert!(query_map(&req, &["a"]).unwrap_err().contains("unknown query parameter 'b'"));
        let (req, _) = parse("GET /x?a=1&a=2 HTTP/1.1\r\n\r\n").unwrap();
        assert!(query_map(&req, &["a"]).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn response_bytes_have_exact_framing() {
        let r = Response::text(Status::Ok, "hello\n");
        let bytes = r.to_bytes();
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 6\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\nhello\n"), "{s}");
        assert!(!s.contains("Retry-After"), "{s}");
    }

    #[test]
    fn retry_after_header_is_emitted_on_demand() {
        let r = Response::error(Status::ServiceUnavailable, "overloaded").with_retry_after(2);
        let s = String::from_utf8(r.to_bytes()).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{s}");
        assert!(s.contains("Retry-After: 2\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"), "{s}");
        // The header sits inside the head, before the blank line.
        let head_end = s.find("\r\n\r\n").unwrap();
        assert!(s.find("Retry-After").unwrap() < head_end, "{s}");
    }

    proptest! {
        /// The parser never panics on arbitrary bytes.
        #[test]
        fn prop_arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
            let _ = parse_request(&bytes);
        }

        /// Valid request lines with arbitrary printable targets either
        /// parse or fail cleanly — and parsing is deterministic.
        #[test]
        fn prop_parse_is_deterministic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let mut framed = b"GET /".to_vec();
            framed.extend_from_slice(&bytes);
            framed.extend_from_slice(b" HTTP/1.1\r\n\r\n");
            let a = parse_request(&framed);
            let b = parse_request(&framed);
            prop_assert_eq!(a, b);
        }
    }
}
