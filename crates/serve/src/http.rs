//! A minimal, hardened HTTP/1.1 surface on top of `std`.
//!
//! `vex-serve` refuses external dependencies (offline shim constraint),
//! so the protocol layer is hand-rolled — and therefore built
//! defensively: every parse step is bounded, every length is checked,
//! and malformed input of any shape yields a clean [`ParseError`], never
//! a panic. `tests/serve_robustness.rs` property-tests this parser
//! against arbitrary byte soup.
//!
//! Scope is deliberately small: the server speaks one request per
//! connection (`Connection: close`), methods and targets only — request
//! bodies are rejected, which is all a read-only query API needs.

use std::collections::BTreeMap;

/// Upper bound on the request head (request line + headers), bytes.
/// Anything longer is answered `431` and the connection is closed.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A parsed HTTP request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, e.g. `GET`.
    pub method: String,
    /// Decoded path component of the target, e.g. `/traces/darknet/report`.
    pub path: String,
    /// Query parameters in target order.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// The path split into non-empty `/`-separated segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request head failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer does not yet hold a complete head (more bytes needed).
    Incomplete,
    /// The head exceeds [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// The bytes are not a well-formed HTTP/1.x request head.
    Malformed(&'static str),
}

impl ParseError {
    /// The HTTP status this error is answered with.
    pub fn status(self) -> Status {
        match self {
            // An incomplete head that never completes is a timeout /
            // client hangup; answered 408 when surfaced.
            ParseError::Incomplete => Status::RequestTimeout,
            ParseError::TooLarge => Status::HeaderTooLarge,
            ParseError::Malformed(_) => Status::BadRequest,
        }
    }
}

/// Response status codes the server emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 405.
    MethodNotAllowed,
    /// 408.
    RequestTimeout,
    /// 431.
    HeaderTooLarge,
    /// 500.
    Internal,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::RequestTimeout => 408,
            Status::HeaderTooLarge => 431,
            Status::Internal => 500,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::RequestTimeout => "Request Timeout",
            Status::HeaderTooLarge => "Request Header Fields Too Large",
            Status::Internal => "Internal Server Error",
        }
    }
}

/// A complete response: status, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status line to send.
    pub status: Status,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: Status, body: impl Into<String>) -> Self {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into().into() }
    }

    /// An `application/json` response.
    pub fn json(status: Status, body: impl Into<String>) -> Self {
        Response { status, content_type: "application/json", body: body.into().into() }
    }

    /// A plain-text error response (`<status reason>: detail\n`).
    pub fn error(status: Status, detail: impl std::fmt::Display) -> Self {
        Response::text(status, format!("{}: {detail}\n", status.reason()))
    }

    /// Serializes the response head + body (`Connection: close` framing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status.code(),
            self.status.reason(),
            self.content_type,
            self.body.len()
        );
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Parses a request head from the start of `buf`.
///
/// Returns the request and the number of bytes consumed (through the
/// terminating blank line). [`ParseError::Incomplete`] asks the caller to
/// read more; any other error is final.
///
/// # Errors
///
/// See [`ParseError`]. Never panics, whatever the bytes.
pub fn parse_request(buf: &[u8]) -> Result<(Request, usize), ParseError> {
    // Locate the end of the head ("\r\n\r\n") within the size limit.
    let window = &buf[..buf.len().min(MAX_REQUEST_BYTES)];
    let head_end = match find_head_end(window) {
        Some(end) => end,
        None if buf.len() >= MAX_REQUEST_BYTES => return Err(ParseError::TooLarge),
        None => return Err(ParseError::Incomplete),
    };
    let head = &window[..head_end];
    let head =
        std::str::from_utf8(head).map_err(|_| ParseError::Malformed("head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::Malformed("empty head"))?;

    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(ParseError::Malformed("missing http version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("bad method"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported http version"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed("target is not an absolute path"));
    }

    // Headers: validated for shape, then ignored except for a body check
    // — a read-only API has no use for request bodies.
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, _value) =
            line.split_once(':').ok_or(ParseError::Malformed("header without colon"))?;
        if name.is_empty()
            || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(ParseError::Malformed("bad header name"));
        }
        let lower = name.to_ascii_lowercase();
        if lower == "content-length" || lower == "transfer-encoding" {
            return Err(ParseError::Malformed("request bodies are not accepted"));
        }
    }

    let (path, query) = split_target(target)?;
    Ok((Request { method: method.to_owned(), path, query }, head_end + 4))
}

/// Byte offset of the head terminator, if present (offset excludes the
/// `\r\n\r\n` itself).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits `/path?k=v&k2=v2` into a decoded path and query pairs.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), ParseError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    if path.contains("..") {
        return Err(ParseError::Malformed("path traversal"));
    }
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%XX` escapes and `+`-as-space; rejects bad escapes and
/// control characters.
fn percent_decode(s: &str) -> Result<String, ParseError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi =
                    bytes.get(i + 1).copied().ok_or(ParseError::Malformed("bad escape"))?;
                let lo =
                    bytes.get(i + 2).copied().ok_or(ParseError::Malformed("bad escape"))?;
                let v = (hex_val(hi).ok_or(ParseError::Malformed("bad escape"))? << 4)
                    | hex_val(lo).ok_or(ParseError::Malformed("bad escape"))?;
                out.push(v);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b if b.is_ascii_control() => {
                return Err(ParseError::Malformed("control character"))
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    let s = String::from_utf8(out).map_err(|_| ParseError::Malformed("target not utf-8"))?;
    if s.bytes().any(|b| b.is_ascii_control()) {
        return Err(ParseError::Malformed("control character"));
    }
    Ok(s)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Query parameters as a map, rejecting duplicates and keys outside
/// `allowed`. Endpoint handlers share this so unknown-parameter
/// rejection is uniform, mirroring the CLI's unknown-flag errors.
///
/// # Errors
///
/// A human-readable message naming the offending key.
pub fn query_map<'a>(
    req: &'a Request,
    allowed: &[&str],
) -> Result<BTreeMap<&'a str, &'a str>, String> {
    let mut map = BTreeMap::new();
    for (k, v) in &req.query {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "unknown query parameter '{k}' (allowed: {})",
                if allowed.is_empty() { "none".to_owned() } else { allowed.join(", ") }
            ));
        }
        if map.insert(k.as_str(), v.as_str()).is_some() {
            return Err(format!("duplicate query parameter '{k}'"));
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse(s: &str) -> Result<(Request, usize), ParseError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn parses_simple_get() {
        let (req, used) = parse("GET /traces HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/traces");
        assert!(req.query.is_empty());
        assert_eq!(used, "GET /traces HTTP/1.1\r\nHost: x\r\n\r\n".len());
        assert_eq!(req.segments(), vec!["traces"]);
    }

    #[test]
    fn parses_query_pairs_in_order() {
        let (req, _) = parse("GET /traces/d/report?shards=8&fine=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/traces/d/report");
        assert_eq!(req.query, vec![("shards".into(), "8".into()), ("fine".into(), "1".into())]);
    }

    #[test]
    fn decodes_percent_and_plus() {
        let (req, _) = parse("GET /traces?q=a%20b+c HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query[0].1, "a b c");
    }

    #[test]
    fn incomplete_head_asks_for_more() {
        assert_eq!(parse("GET / HTTP/1.1\r\nHost").unwrap_err(), ParseError::Incomplete);
        assert_eq!(parse("").unwrap_err(), ParseError::Incomplete);
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut s = String::from("GET / HTTP/1.1\r\n");
        while s.len() <= MAX_REQUEST_BYTES {
            s.push_str("X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(parse(&s).unwrap_err(), ParseError::TooLarge);
    }

    #[test]
    fn malformed_heads_are_rejected() {
        for bad in [
            "FROB\r\n\r\n",
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2.0\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "GET /../etc HTTP/1.1\r\n\r\n",
            "GET /%zz HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nbad header\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\n",
            "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(ParseError::Malformed(_))),
                "{bad:?} parsed: {:?}",
                parse(bad)
            );
        }
    }

    #[test]
    fn query_map_rejects_unknown_and_duplicate_keys() {
        let (req, _) = parse("GET /x?a=1&b=2 HTTP/1.1\r\n\r\n").unwrap();
        assert!(query_map(&req, &["a", "b"]).is_ok());
        assert!(query_map(&req, &["a"]).unwrap_err().contains("unknown query parameter 'b'"));
        let (req, _) = parse("GET /x?a=1&a=2 HTTP/1.1\r\n\r\n").unwrap();
        assert!(query_map(&req, &["a"]).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn response_bytes_have_exact_framing() {
        let r = Response::text(Status::Ok, "hello\n");
        let bytes = r.to_bytes();
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 6\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\nhello\n"), "{s}");
    }

    proptest! {
        /// The parser never panics on arbitrary bytes.
        #[test]
        fn prop_arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
            let _ = parse_request(&bytes);
        }

        /// Valid request lines with arbitrary printable targets either
        /// parse or fail cleanly — and parsing is deterministic.
        #[test]
        fn prop_parse_is_deterministic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let mut framed = b"GET /".to_vec();
            framed.extend_from_slice(&bytes);
            framed.extend_from_slice(b" HTTP/1.1\r\n\r\n");
            let a = parse_request(&framed);
            let b = parse_request(&framed);
            prop_assert_eq!(a, b);
        }
    }
}
