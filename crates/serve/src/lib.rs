//! `vex-serve`: a concurrent profile query server over recorded `.vex`
//! traces.
//!
//! Recording and analysis are decoupled in ValueExpert: `vex record`
//! captures a compact replayable trace, and every analysis runs later,
//! off the critical path. This crate takes the final step and makes the
//! recorded corpus *queryable*: it opens a directory of `.vex` traces as
//! a two-tier [`store::ProfileStore`] — a resident index tier built by a
//! cheap skip-records scan, and a decoded tier materialized lazily per
//! report and evicted LRU under a memory budget — and serves profile
//! views over plain HTTP/1.1, no external dependencies, just `std::net`
//! and the workspace's vendored shims.
//!
//! | Endpoint | Body |
//! |---|---|
//! | `GET /traces?offset=&limit=` | JSON page of the trace index (+ total, quarantine list) |
//! | `GET /traces/{id}/report` | canonical text report (byte-equal to `vex replay`) |
//! | `GET /traces/{id}/flowgraph?threshold=X&format=dot\|json` | value-flow graph |
//! | `GET /traces/{id}/objects` | JSON rows of recorded data objects |
//! | `GET /traces/{id}/kernels` | JSON per-kernel launch/record counts |
//! | `POST /ingest/{id}` | push a recorded trace (requires `--ingest`) |
//! | `DELETE /traces/{id}` | delete a trace (requires `--ingest`) |
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus-style request/cache/store metrics |
//!
//! Reports and flowgraphs additionally accept the `vex replay` analysis
//! parameters (`shards`, `coarse`, `fine`, `races`, `reuse`) and are
//! materialized on demand through the same replay machinery the CLI
//! uses, behind an LRU + single-flight cache ([`cache::ReportCache`]).
//! The serving loop ([`server::Server`]) is a bounded worker pool with a
//! backpressure accept loop that sheds overload (`503` + `Retry-After`
//! once the worker queue stays saturated past a grace period),
//! per-connection timeouts, request-size limits, and graceful drain on
//! shutdown. Ingest bodies arrive as `Content-Length` or chunked
//! uploads, capped per request, validated by the trace decoder, and
//! written atomically into the store's directory — a pushed trace is
//! queryable without a restart; interrupted uploads leave only
//! temporary files that the store sweeps at startup.
//! [`client::push_trace`] is the matching minimal client, used by
//! `vex push` and `vex record --push`; [`client::push_or_spool`] adds
//! retry with backoff and a durable local spool for fleet runs where
//! the collector must not lose traces while the server is unreachable
//! ([`client::drain_spool`] re-pushes them later). [`fault`] provides
//! the failpoint registry the crash-safety test-suite uses to inject
//! torn writes, disk errors, kills, and connection drops into these
//! paths.

#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod fault;
pub mod http;
pub mod metrics;
pub mod server;
pub mod store;

pub use cache::ReportCache;
pub use client::{
    drain_spool, push_or_spool, push_trace, push_trace_with, spool_trace, DrainOutcome,
    PushError, PushOptions, PushOutcome,
};
pub use http::{Request, Response, Status};
pub use metrics::Metrics;
pub use server::{ServeState, Server, ServerConfig};
pub use store::{
    MutationError, ProfileStore, QuarantineRow, ReportParams, StoreOptions, StoreStats,
    TraceEntry, TraceListRow,
};
