//! `vex-serve`: a concurrent profile query server over recorded `.vex`
//! traces.
//!
//! Recording and analysis are decoupled in ValueExpert: `vex record`
//! captures a compact replayable trace, and every analysis runs later,
//! off the critical path. This crate takes the final step and makes the
//! recorded corpus *queryable*: it loads a directory of `.vex` traces
//! into an indexed in-memory [`store::ProfileStore`] and serves profile
//! views over plain HTTP/1.1 — no external dependencies, just
//! `std::net` and the workspace's vendored shims.
//!
//! | Endpoint | Body |
//! |---|---|
//! | `GET /traces` | JSON index of the loaded traces |
//! | `GET /traces/{id}/report` | canonical text report (byte-equal to `vex replay`) |
//! | `GET /traces/{id}/flowgraph?threshold=X&format=dot\|json` | value-flow graph |
//! | `GET /traces/{id}/objects` | JSON rows of recorded data objects |
//! | `GET /traces/{id}/kernels` | JSON per-kernel launch/record counts |
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus-style request/cache metrics |
//!
//! Reports and flowgraphs additionally accept the `vex replay` analysis
//! parameters (`shards`, `coarse`, `fine`, `races`, `reuse`) and are
//! materialized on demand through the same replay machinery the CLI
//! uses, behind an LRU + single-flight cache ([`cache::ReportCache`]).
//! The serving loop ([`server::Server`]) is a bounded worker pool with a
//! backpressure accept loop, per-connection timeouts, request-size
//! limits, and graceful drain on shutdown.

#![deny(missing_docs)]

pub mod cache;
pub mod http;
pub mod metrics;
pub mod server;
pub mod store;

pub use cache::ReportCache;
pub use http::{Request, Response, Status};
pub use metrics::Metrics;
pub use server::{ServeState, Server, ServerConfig};
pub use store::{ProfileStore, ReportParams};
