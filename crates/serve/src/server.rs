//! The serving loop: bounded worker pool over `std::net::TcpListener`.
//!
//! ## Production posture
//!
//! * **Backpressure accept loop with overload shedding** — one accept
//!   thread feeds accepted connections into a *bounded* channel; when
//!   every worker is busy and the queue is full, the accept thread
//!   waits at most [`ServerConfig::shed_wait`] for space, then answers
//!   the connection itself with `503 Service Unavailable` +
//!   `Retry-After` and closes it. The accept loop is never blocked
//!   indefinitely by saturated workers, and sheds are counted in
//!   `/metrics` (`vex_requests_shed_total`).
//! * **Bounded worker pool** — `workers` threads each serve one
//!   connection at a time: read (bounded, with a timeout), route,
//!   respond, close. One request per connection (`Connection: close`).
//! * **Timeouts and size limits** — per-connection read/write timeouts
//!   and the [`crate::http::MAX_REQUEST_BYTES`] head cap bound the
//!   resources any single client can hold.
//! * **Caching** — report/flowgraph bodies go through the LRU +
//!   single-flight [`ReportCache`], so hot reports skip analysis and a
//!   cold thundering herd analyzes once. Cache keys fold in the trace
//!   entry's generation, so a delete + re-ingest under the same id can
//!   never serve the previous trace's cached bodies.
//! * **Graceful shutdown** — [`Server::shutdown`] stops accepting, lets
//!   the workers drain every already-accepted connection, and joins all
//!   threads before returning.

use crate::cache::ReportCache;
use crate::http::{
    parse_request, query_map, ChunkedDecoder, ParseError, Request, Response, Status,
    BODY_TOO_LARGE,
};
use crate::metrics::Metrics;
use crate::store::{
    materialize, MutationError, ProfileStore, QuarantineRow, ReportParams, TraceEntry,
    TraceListRow,
};
use crossbeam::channel;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vex_core::diff::{diff_profiles, DiffOptions};

/// Tunables of a serving process.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (≥1).
    pub workers: usize,
    /// LRU report-cache capacity, entries (0 disables retention).
    pub cache_entries: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Whether mutation endpoints (`POST /ingest/{id}`,
    /// `DELETE /traces/{id}`) are enabled. Off by default: a query
    /// server stays read-only unless started with `--ingest`.
    pub ingest_enabled: bool,
    /// Per-request cap on an ingest body, bytes.
    pub max_ingest_bytes: u64,
    /// How long the accept thread waits for worker-queue space before
    /// shedding the connection with `503` + `Retry-After`. Long enough
    /// to absorb ordinary bursts (workers turn requests around in
    /// micro- to milliseconds), short enough that saturated workers
    /// never stall accepting.
    pub shed_wait: Duration,
    /// `Retry-After` value advertised on shed responses, seconds.
    pub shed_retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            cache_entries: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            ingest_enabled: false,
            max_ingest_bytes: 64 * 1024 * 1024,
            shed_wait: Duration::from_millis(100),
            shed_retry_after_secs: 1,
        }
    }
}

/// Everything a worker needs to answer a request.
#[derive(Debug)]
pub struct ServeState {
    store: ProfileStore,
    cache: ReportCache,
    metrics: Metrics,
    ingest_enabled: bool,
}

impl ServeState {
    /// Builds the shared state for `store` with a cache of
    /// `cache_entries`. Mutation endpoints start disabled; see
    /// [`ServeState::with_ingest`].
    pub fn new(store: ProfileStore, cache_entries: usize) -> Self {
        ServeState {
            store,
            cache: ReportCache::new(cache_entries),
            metrics: Metrics::new(),
            ingest_enabled: false,
        }
    }

    /// Enables/disables the mutation endpoints.
    #[must_use]
    pub fn with_ingest(mut self, enabled: bool) -> Self {
        self.ingest_enabled = enabled;
        self
    }

    /// The trace store being served.
    pub fn store(&self) -> &ProfileStore {
        &self.store
    }

    /// The report cache (stats feed `/metrics`).
    pub fn cache(&self) -> &ReportCache {
        &self.cache
    }

    /// The request-metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Routes one parsed request (with no body) to its endpoint — the
    /// read-only surface. Ingest requests carry a body; see
    /// [`ServeState::handle_with_body`].
    pub fn handle(&self, req: &Request) -> (&'static str, Response) {
        self.handle_with_body(req, &[])
    }

    /// Routes one parsed request to its endpoint. Returns the static
    /// endpoint label (for metrics) and the response. Infallible: every
    /// failure mode is a 4xx/5xx response.
    pub fn handle_with_body(&self, req: &Request, body: &[u8]) -> (&'static str, Response) {
        let segments = req.segments();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => ("healthz", self.healthz(req)),
            ("GET", ["metrics"]) => ("metrics", self.render_metrics(req)),
            ("GET", ["traces"]) => ("traces", self.list_traces(req)),
            ("GET", ["traces", id, "report"]) => ("report", self.report(req, id)),
            ("GET", ["traces", a, "diff", b]) => ("diff", self.diff(req, a, b)),
            ("GET", ["traces", id, "flowgraph"]) => ("flowgraph", self.flowgraph(req, id)),
            ("GET", ["traces", id, "objects"]) => {
                ("objects", self.static_json(req, id, |t| json_rows(&t.objects)))
            }
            ("GET", ["traces", id, "kernels"]) => {
                ("kernels", self.static_json(req, id, |t| json_rows(&t.kernels)))
            }
            ("POST", ["ingest", id]) => ("ingest", self.ingest(req, id, body)),
            ("DELETE", ["traces", id]) => ("delete", self.delete(req, id)),
            ("GET", _) => {
                ("other", Response::error(Status::NotFound, format!("no route {}", req.path)))
            }
            _ => (
                "other",
                Response::error(
                    Status::MethodNotAllowed,
                    "only GET, POST /ingest/{id}, and DELETE /traces/{id} are served",
                ),
            ),
        }
    }

    /// `POST /ingest/{id}` — validate, persist, and index a pushed
    /// trace; queryable immediately, no restart.
    fn ingest(&self, req: &Request, id: &str, body: &[u8]) -> Response {
        if !self.ingest_enabled {
            return Response::error(
                Status::MethodNotAllowed,
                "ingest is disabled (restart with --ingest)",
            );
        }
        if let Err(e) = query_map(req, &[]) {
            return Response::error(Status::BadRequest, e);
        }
        match self.store.ingest(id, body) {
            Ok(row) => Response::json(Status::Created, to_pretty_json(&row)),
            Err(e) => mutation_response(e),
        }
    }

    /// `DELETE /traces/{id}` — drop a trace from every tier and disk.
    fn delete(&self, req: &Request, id: &str) -> Response {
        if !self.ingest_enabled {
            return Response::error(
                Status::MethodNotAllowed,
                "ingest is disabled (restart with --ingest)",
            );
        }
        if let Err(e) = query_map(req, &[]) {
            return Response::error(Status::BadRequest, e);
        }
        match self.store.remove(id) {
            Ok(()) => Response::text(Status::Ok, format!("deleted '{id}'\n")),
            Err(e) => mutation_response(e),
        }
    }

    fn healthz(&self, req: &Request) -> Response {
        match query_map(req, &[]) {
            Ok(_) => Response::text(Status::Ok, "ok\n"),
            Err(e) => Response::error(Status::BadRequest, e),
        }
    }

    fn render_metrics(&self, req: &Request) -> Response {
        match query_map(req, &[]) {
            Ok(_) => {
                // Piggyback the idle-TTL sweep on the scrape: a store
                // whose hot set never touches an expired trace still
                // releases it within one scrape interval.
                self.store.sweep_expired();
                Response::text(
                    Status::Ok,
                    self.metrics.render(self.cache.stats(), self.store.stats()),
                )
            }
            Err(e) => Response::error(Status::BadRequest, e),
        }
    }

    /// `GET /traces?offset=N&limit=M` — a stable (id-sorted) page of the
    /// listing plus the total count, so 10k-trace stores don't ship
    /// megabyte responses; the quarantine list rides along.
    fn list_traces(&self, req: &Request) -> Response {
        let map = match query_map(req, &["offset", "limit"]) {
            Ok(m) => m,
            Err(e) => return Response::error(Status::BadRequest, e),
        };
        let offset = match map.get("offset").map(|v| v.parse::<usize>()) {
            None => 0,
            Some(Ok(n)) => n,
            Some(Err(_)) => {
                return Response::error(
                    Status::BadRequest,
                    "offset must be a non-negative integer",
                )
            }
        };
        let limit = match map.get("limit").map(|v| v.parse::<usize>()) {
            None => None,
            Some(Ok(n)) => Some(n),
            Some(Err(_)) => {
                return Response::error(
                    Status::BadRequest,
                    "limit must be a non-negative integer",
                )
            }
        };
        let rows = self.store.list_rows();
        let total = rows.len();
        let traces: Vec<TraceListRow> =
            rows.into_iter().skip(offset).take(limit.unwrap_or(usize::MAX)).collect();
        let listing = TraceListing {
            total,
            offset,
            count: traces.len(),
            traces,
            quarantined: self.store.quarantined(),
        };
        Response::json(Status::Ok, to_pretty_json(&listing))
    }

    fn lookup(&self, id: &str) -> Result<Arc<TraceEntry>, Response> {
        self.store.entry(id).ok_or_else(|| {
            Response::error(
                Status::NotFound,
                format!("no trace '{id}' (loaded: {})", self.store.ids().join(", ")),
            )
        })
    }

    fn static_json(
        &self,
        req: &Request,
        id: &str,
        rows: impl Fn(&TraceEntry) -> String,
    ) -> Response {
        if let Err(e) = query_map(req, &[]) {
            return Response::error(Status::BadRequest, e);
        }
        match self.lookup(id) {
            Ok(t) => Response::json(Status::Ok, rows(&t)),
            Err(resp) => resp,
        }
    }

    /// `GET /traces/{id}/report` — the canonical text report, byte-equal
    /// to `vex replay` with the same parameters.
    fn report(&self, req: &Request, id: &str) -> Response {
        let params = match query_map(req, &["shards", "coarse", "fine", "races", "reuse"])
            .and_then(|m| parse_report_params(&m))
        {
            Ok(p) => p,
            Err(e) => return Response::error(Status::BadRequest, e),
        };
        let entry = match self.lookup(id) {
            Ok(entry) => entry,
            Err(resp) => return resp,
        };
        // The entry's generation folds the trace *incarnation* into the
        // key: after a delete + re-ingest under the same id, the new
        // entry gets a fresh generation, so cached bodies of the old
        // trace can never be served for the new one (stale keys age out
        // of the LRU).
        let key = format!("{id}@{}/report?{}", entry.generation, params.cache_key());
        let value = self.cache.get_or_compute(&key, || {
            // The decoded tier materializes the trace on first use; a
            // cache hit never touches it.
            let trace = self.store.decoded(id).map_err(|e| e.to_string())?;
            let profile = materialize(&trace, &params).map_err(|e| e.to_string())?;
            Ok(Response::text(Status::Ok, profile.render_text_document()))
        });
        unwrap_cached(&value)
    }

    /// `GET /traces/{a}/diff/{b}?threshold=X&format=text|json` — the
    /// structural diff of two traces replayed under identical
    /// parameters, byte-equal to `vex diff a.vex b.vex` with the same
    /// options. Cached under BOTH trace generations, so re-ingesting
    /// either side invalidates the pair.
    fn diff(&self, req: &Request, a: &str, b: &str) -> Response {
        let allowed = ["shards", "coarse", "fine", "races", "reuse", "threshold", "format"];
        let map = match query_map(req, &allowed) {
            Ok(m) => m,
            Err(e) => return Response::error(Status::BadRequest, e),
        };
        let params = match parse_report_params(&map) {
            Ok(p) => p,
            Err(e) => return Response::error(Status::BadRequest, e),
        };
        let threshold = match map.get("threshold") {
            None => 0.10,
            Some(v) => match v.parse::<f64>() {
                Ok(t) if (0.0..=1.0).contains(&t) => t,
                _ => {
                    return Response::error(
                        Status::BadRequest,
                        format!("threshold must be a number in [0, 1], got '{v}'"),
                    )
                }
            },
        };
        let json = match map.get("format").copied().unwrap_or("text") {
            "text" => false,
            "json" => true,
            other => {
                return Response::error(
                    Status::BadRequest,
                    format!("format must be 'text' or 'json', got '{other}'"),
                )
            }
        };
        let entry_a = match self.lookup(a) {
            Ok(entry) => entry,
            Err(resp) => return resp,
        };
        let entry_b = match self.lookup(b) {
            Ok(entry) => entry,
            Err(resp) => return resp,
        };
        let key = format!(
            "{a}@{}+{b}@{}/diff?{},threshold={threshold:?},json={json}",
            entry_a.generation,
            entry_b.generation,
            params.cache_key()
        );
        let value = self.cache.get_or_compute(&key, || {
            let trace_a = self.store.decoded(a).map_err(|e| e.to_string())?;
            let trace_b = self.store.decoded(b).map_err(|e| e.to_string())?;
            let profile_a = materialize(&trace_a, &params).map_err(|e| e.to_string())?;
            let profile_b = materialize(&trace_b, &params).map_err(|e| e.to_string())?;
            let opts = DiffOptions { threshold, ..DiffOptions::default() };
            let diff = diff_profiles(&profile_a, &profile_b, &opts);
            Ok(if json {
                Response::json(
                    Status::Ok,
                    diff.render_json_document().map_err(|e| e.to_string())?,
                )
            } else {
                Response::text(Status::Ok, diff.render_text_document())
            })
        });
        unwrap_cached(&value)
    }

    /// `GET /traces/{id}/flowgraph?threshold=X&format=dot|json`.
    fn flowgraph(&self, req: &Request, id: &str) -> Response {
        let allowed = ["shards", "coarse", "fine", "races", "reuse", "threshold", "format"];
        let map = match query_map(req, &allowed) {
            Ok(m) => m,
            Err(e) => return Response::error(Status::BadRequest, e),
        };
        let params = match parse_report_params(&map) {
            Ok(p) => p,
            Err(e) => return Response::error(Status::BadRequest, e),
        };
        let threshold = match map.get("threshold") {
            None => None,
            Some(v) => match v.parse::<f64>() {
                Ok(t) if (0.0..=1.0).contains(&t) => Some(t),
                _ => {
                    return Response::error(
                        Status::BadRequest,
                        format!("threshold must be a number in [0, 1], got '{v}'"),
                    )
                }
            },
        };
        let format = match map.get("format").copied().unwrap_or("dot") {
            "dot" => FlowFormat::Dot,
            "json" => FlowFormat::Json,
            other => {
                return Response::error(
                    Status::BadRequest,
                    format!("format must be 'dot' or 'json', got '{other}'"),
                )
            }
        };
        let entry = match self.lookup(id) {
            Ok(entry) => entry,
            Err(resp) => return resp,
        };
        let key = format!(
            "{id}@{}/flowgraph?{},threshold={threshold:?},format={format:?}",
            entry.generation,
            params.cache_key()
        );
        let value = self.cache.get_or_compute(&key, || {
            let trace = self.store.decoded(id).map_err(|e| e.to_string())?;
            let profile = materialize(&trace, &params).map_err(|e| e.to_string())?;
            Ok(match format {
                FlowFormat::Dot => Response {
                    status: Status::Ok,
                    content_type: "text/vnd.graphviz; charset=utf-8",
                    body: profile.render_dot_document(threshold).into_bytes(),
                    retry_after: None,
                },
                FlowFormat::Json => {
                    Response::json(Status::Ok, to_pretty_json(&profile.flow_graph))
                }
            })
        });
        unwrap_cached(&value)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowFormat {
    Dot,
    Json,
}

/// The `GET /traces` response document.
#[derive(Debug, serde::Serialize)]
struct TraceListing {
    total: usize,
    offset: usize,
    count: usize,
    traces: Vec<TraceListRow>,
    quarantined: Vec<QuarantineRow>,
}

/// Maps a store mutation failure onto its HTTP status.
fn mutation_response(e: MutationError) -> Response {
    let status = match &e {
        MutationError::BadId(_) | MutationError::InvalidTrace(_) => Status::BadRequest,
        MutationError::Duplicate(_) => Status::Conflict,
        MutationError::NotFound(_) => Status::NotFound,
        MutationError::ReadOnly => Status::MethodNotAllowed,
        MutationError::Io(_) => Status::Internal,
    };
    Response::error(status, e)
}

/// Serializes rows as a pretty JSON document terminated by a newline.
fn json_rows<T: serde::Serialize>(rows: &[T]) -> String {
    to_pretty_json(&rows)
}

fn to_pretty_json<T: serde::Serialize + ?Sized>(value: &T) -> String {
    let mut s = serde_json::to_string_pretty(value)
        .unwrap_or_else(|e| format!("\"serialization failed: {e}\""));
    s.push('\n');
    s
}

/// A cached computation result as a response; analysis errors (missing
/// pass in the trace) are the client's parameter error.
fn unwrap_cached(value: &crate::cache::CachedValue) -> Response {
    match value.as_ref() {
        Ok(resp) => resp.clone(),
        Err(e) => Response::error(Status::BadRequest, e),
    }
}

/// Parses the shared analysis parameters, mirroring `vex replay`'s
/// defaults and validation.
fn parse_report_params(
    map: &std::collections::BTreeMap<&str, &str>,
) -> Result<ReportParams, String> {
    let mut p = ReportParams::default();
    if let Some(v) = map.get("shards") {
        p.shards = v
            .parse()
            .map_err(|_| format!("shards must be a non-negative integer, got '{v}'"))?;
    }
    if let Some(v) = map.get("coarse") {
        p.coarse = parse_bool("coarse", v)?;
    }
    if let Some(v) = map.get("fine") {
        p.fine = parse_bool("fine", v)?;
    }
    if let Some(v) = map.get("races") {
        p.races = parse_bool("races", v)?;
    }
    if let Some(v) = map.get("reuse") {
        let line: u64 =
            v.parse().map_err(|_| format!("reuse must be a line size in bytes, got '{v}'"))?;
        p.reuse = Some(line);
    }
    if !p.coarse && !p.fine {
        return Err("at least one of coarse/fine must stay enabled".into());
    }
    Ok(p)
}

fn parse_bool(key: &str, v: &str) -> Result<bool, String> {
    match v {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        _ => Err(format!("{key} must be 0/1/true/false, got '{v}'")),
    }
}

/// A running server; dropping it shuts it down gracefully.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept loop and
    /// worker pool over `store`.
    ///
    /// # Errors
    ///
    /// The I/O error if binding fails.
    pub fn bind(
        store: ProfileStore,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(
            ServeState::new(store, config.cache_entries).with_ingest(config.ingest_enabled),
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);
        // Cap queued-but-unserved connections at one per worker; beyond
        // that the accept thread waits up to `shed_wait` for space and
        // then sheds the connection with a 503 instead of buffering
        // unboundedly or stalling the accept loop.
        let (tx, rx) = channel::bounded::<TcpStream>(workers);

        let accept_thread = {
            let shutdown = shutdown.clone();
            let state = state.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    match tx.send_timeout(conn, config.shed_wait) {
                        Ok(()) => {}
                        Err(channel::SendTimeoutError::Timeout(conn)) => {
                            shed_connection(conn, &state, &config);
                        }
                        Err(channel::SendTimeoutError::Disconnected(_)) => break,
                    }
                }
                // Dropping `tx` disconnects the channel; workers drain
                // what was accepted, then exit.
            })
        };

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = rx.clone();
            let state = state.clone();
            let config = config.clone();
            worker_handles.push(std::thread::spawn(move || {
                while let Ok(conn) = rx.recv() {
                    serve_connection(conn, &state, &config);
                }
            }));
        }

        Ok(Server {
            addr,
            state,
            shutdown,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (store, cache, metrics) — for inspection in
    /// tests and benches.
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// Stops accepting, drains in-flight and already-queued connections,
    /// and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Answers a connection the worker pool could not absorb within
/// [`ServerConfig::shed_wait`]: a canned `503 Service Unavailable` with
/// `Retry-After`, written from the accept thread under the ordinary
/// write timeout so a slow client cannot stall accepting for long.
fn shed_connection(mut conn: TcpStream, state: &ServeState, config: &ServerConfig) {
    state.metrics().record_shed();
    let _ = conn.set_write_timeout(Some(config.write_timeout));
    let _ = conn.set_nodelay(true);
    let resp =
        Response::error(Status::ServiceUnavailable, "worker queue saturated; retry later")
            .with_retry_after(config.shed_retry_after_secs);
    let _ = conn.write_all(&resp.to_bytes());
    let _ = conn.shutdown(std::net::Shutdown::Both);
}

/// Serves one connection: bounded read, parse, route, respond, close.
/// Never panics; every failure turns into a 4xx or a closed socket.
fn serve_connection(mut conn: TcpStream, state: &ServeState, config: &ServerConfig) {
    let started = Instant::now();
    let _ = conn.set_read_timeout(Some(config.read_timeout));
    let _ = conn.set_write_timeout(Some(config.write_timeout));
    let _ = conn.set_nodelay(true);

    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let parsed = loop {
        match parse_request(&buf) {
            Ok(ok) => break Ok(ok),
            Err(ParseError::Incomplete) => {}
            Err(e) => break Err(e),
        }
        match conn.read(&mut chunk) {
            // Clean EOF with an incomplete head: nothing to answer.
            Ok(0) => {
                if !buf.is_empty() {
                    respond(
                        state,
                        &mut conn,
                        "other",
                        started,
                        Response::error(Status::BadRequest, "connection closed mid-request"),
                    );
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // Timeout or reset while reading.
            Err(_) => {
                respond(
                    state,
                    &mut conn,
                    "other",
                    started,
                    Response::error(
                        Status::RequestTimeout,
                        "timed out reading the request head",
                    ),
                );
                return;
            }
        }
    };

    match parsed {
        Ok((request, consumed)) => {
            // Only POSTs carry a body the server reads; any declared
            // body on other methods is left unread (the connection
            // closes after one response anyway).
            let body = if request.method == "POST" {
                match read_body(&mut conn, &buf[consumed..], &request, config) {
                    Ok(body) => body,
                    Err(response) => {
                        respond(state, &mut conn, "ingest", started, response);
                        // The client may still be mid-body; a hard close
                        // now would RST the connection and can destroy
                        // the error response before the client reads it.
                        drain_request(&mut conn);
                        return;
                    }
                }
            } else {
                Vec::new()
            };
            let (endpoint, response) = state.handle_with_body(&request, &body);
            respond(state, &mut conn, endpoint, started, response);
        }
        Err(e) => {
            let status = e.status();
            let detail = match e {
                ParseError::Malformed(what) => what,
                ParseError::TooLarge => "request head too large",
                ParseError::Incomplete => "incomplete request",
            };
            respond(state, &mut conn, "other", started, Response::error(status, detail));
        }
    }
}

/// Finishes an early-error connection whose request body was never
/// fully read: half-close the write side, then discard (bounded) what
/// the client is still sending, so the response already on the wire is
/// not destroyed by a TCP reset when the socket closes with unread
/// bytes pending.
fn drain_request(conn: &mut TcpStream) {
    let _ = conn.shutdown(std::net::Shutdown::Write);
    let mut chunk = [0u8; 8 * 1024];
    let mut drained = 0usize;
    // Per-read timeouts still apply; the bound keeps a hostile client
    // from feeding a worker forever.
    while drained < 16 * 1024 * 1024 {
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => drained += n,
        }
    }
}

/// Reads a POST body according to the request's declared framing:
/// `Content-Length` (capped before the bytes are read) or chunked
/// (capped incrementally by [`decode_chunked`]). `leftover` is whatever
/// the head read already pulled off the socket.
fn read_body(
    conn: &mut TcpStream,
    leftover: &[u8],
    request: &Request,
    config: &ServerConfig,
) -> Result<Vec<u8>, Response> {
    let max = config.max_ingest_bytes;
    let mut chunk = [0u8; 8 * 1024];
    if let Some(declared) = request.content_length {
        if declared > max {
            return Err(Response::error(
                Status::PayloadTooLarge,
                format!("body of {declared} bytes exceeds the {max}-byte cap"),
            ));
        }
        let declared = declared as usize;
        let mut body = Vec::with_capacity(declared.min(1 << 20));
        body.extend_from_slice(&leftover[..leftover.len().min(declared)]);
        while body.len() < declared {
            match conn.read(&mut chunk) {
                Ok(0) => {
                    return Err(Response::error(
                        Status::BadRequest,
                        "connection closed mid-body",
                    ))
                }
                Ok(n) => {
                    let want = declared - body.len();
                    body.extend_from_slice(&chunk[..n.min(want)]);
                }
                Err(_) => {
                    return Err(Response::error(
                        Status::RequestTimeout,
                        "timed out reading the request body",
                    ))
                }
            }
        }
        Ok(body)
    } else if request.chunked {
        // Resumable decode: each socket read advances the decoder from
        // where it stopped, so reassembly is O(body), not O(body²).
        let mut decoder = ChunkedDecoder::new(max);
        let mut complete = decoder.extend(leftover).map_err(chunk_error)?;
        while !complete {
            match conn.read(&mut chunk) {
                Ok(0) => {
                    return Err(Response::error(
                        Status::BadRequest,
                        "connection closed mid-body",
                    ))
                }
                Ok(n) => complete = decoder.extend(&chunk[..n]).map_err(chunk_error)?,
                Err(_) => {
                    return Err(Response::error(
                        Status::RequestTimeout,
                        "timed out reading the request body",
                    ))
                }
            }
        }
        Ok(decoder.into_body())
    } else {
        Ok(Vec::new())
    }
}

/// Maps a chunked-framing error onto its response (`413` for the size
/// cap, `400` for everything else).
fn chunk_error(e: &'static str) -> Response {
    if e == BODY_TOO_LARGE {
        Response::error(Status::PayloadTooLarge, e)
    } else {
        Response::error(Status::BadRequest, e)
    }
}

fn respond(
    state: &ServeState,
    conn: &mut TcpStream,
    endpoint: &'static str,
    started: Instant,
    response: Response,
) {
    let is_error = !response.status.is_success();
    // A client that vanished mid-write is not a server failure; the
    // metrics entry still records the request.
    let _ = conn.write_all(&response.to_bytes());
    let _ = conn.flush();
    state.metrics.record(endpoint, started.elapsed(), is_error);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_core::profiler::ValueExpert;
    use vex_gpu::runtime::Runtime;
    use vex_gpu::timing::DeviceSpec;
    use vex_trace::container::read_trace;
    use vex_workloads::{all_apps, Variant};

    fn qmcpack_state() -> ServeState {
        let apps = all_apps();
        let app = apps.iter().find(|a| a.name() == "QMCPACK").expect("bundled workload");
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let rec =
            ValueExpert::builder().coarse(true).fine(true).record(&mut rt, Vec::new()).unwrap();
        app.run(&mut rt, Variant::Baseline).unwrap();
        let bytes = rec.finish(&mut rt).unwrap();
        let trace = read_trace(&bytes).unwrap();
        let store = ProfileStore::from_traces([("qmcpack".to_owned(), trace)]).unwrap();
        ServeState::new(store, 8)
    }

    fn get(state: &ServeState, target: &str) -> (&'static str, Response) {
        let (req, _) =
            parse_request(format!("GET {target} HTTP/1.1\r\n\r\n").as_bytes()).unwrap();
        state.handle(&req)
    }

    #[test]
    fn routes_cover_every_endpoint() {
        let state = qmcpack_state();
        for (target, endpoint, status) in [
            ("/healthz", "healthz", Status::Ok),
            ("/metrics", "metrics", Status::Ok),
            ("/traces", "traces", Status::Ok),
            ("/traces/qmcpack/report", "report", Status::Ok),
            ("/traces/qmcpack/report?shards=2&fine=1", "report", Status::Ok),
            ("/traces/qmcpack/diff/qmcpack", "diff", Status::Ok),
            ("/traces/qmcpack/diff/qmcpack?format=json&threshold=0.5", "diff", Status::Ok),
            ("/traces/qmcpack/diff/missing", "diff", Status::NotFound),
            ("/traces/qmcpack/diff/qmcpack?threshold=2", "diff", Status::BadRequest),
            ("/traces/qmcpack/diff/qmcpack?format=xml", "diff", Status::BadRequest),
            ("/traces/qmcpack/flowgraph", "flowgraph", Status::Ok),
            ("/traces/qmcpack/flowgraph?format=json", "flowgraph", Status::Ok),
            ("/traces/qmcpack/objects", "objects", Status::Ok),
            ("/traces/qmcpack/kernels", "kernels", Status::Ok),
            ("/traces/missing/report", "report", Status::NotFound),
            ("/nope", "other", Status::NotFound),
            ("/traces/qmcpack/report?frob=1", "report", Status::BadRequest),
            ("/traces/qmcpack/report?shards=lots", "report", Status::BadRequest),
            ("/traces/qmcpack/report?coarse=0", "report", Status::BadRequest),
            ("/traces/qmcpack/flowgraph?threshold=2", "flowgraph", Status::BadRequest),
            ("/traces/qmcpack/flowgraph?format=png", "flowgraph", Status::BadRequest),
            ("/healthz?x=1", "healthz", Status::BadRequest),
        ] {
            let (label, resp) = get(&state, target);
            assert_eq!(label, endpoint, "{target}");
            assert_eq!(
                resp.status,
                status,
                "{target}: {:?}",
                String::from_utf8_lossy(&resp.body)
            );
        }
    }

    #[test]
    fn non_get_is_405() {
        let state = qmcpack_state();
        for head in [
            &b"DELETE /traces HTTP/1.1\r\n\r\n"[..],
            &b"PUT /traces/qmcpack/report HTTP/1.1\r\n\r\n"[..],
            &b"POST /traces HTTP/1.1\r\n\r\n"[..],
            // The mutation routes themselves stay 405 until --ingest.
            &b"POST /ingest/x HTTP/1.1\r\n\r\n"[..],
            &b"DELETE /traces/qmcpack HTTP/1.1\r\n\r\n"[..],
        ] {
            let (req, _) = parse_request(head).unwrap();
            let (_, resp) = state.handle(&req);
            assert_eq!(
                resp.status,
                Status::MethodNotAllowed,
                "{}",
                String::from_utf8_lossy(head)
            );
        }
    }

    #[test]
    fn traces_listing_paginates_with_stable_totals() {
        let apps = all_apps();
        let app = apps.iter().find(|a| a.name() == "QMCPACK").unwrap();
        let mut traces = Vec::new();
        for id in ["a", "b", "c", "d"] {
            let mut rt = Runtime::new(DeviceSpec::test_small());
            let rec = ValueExpert::builder().coarse(true).record(&mut rt, Vec::new()).unwrap();
            app.run(&mut rt, Variant::Baseline).unwrap();
            let bytes = rec.finish(&mut rt).unwrap();
            traces.push((id.to_owned(), read_trace(&bytes).unwrap()));
        }
        let state = ServeState::new(ProfileStore::from_traces(traces).unwrap(), 4);
        let body = |target: &str| -> String {
            let (_, resp) = get(&state, target);
            assert_eq!(resp.status, Status::Ok, "{target}");
            String::from_utf8(resp.body).unwrap()
        };
        let all = body("/traces");
        assert!(all.contains("\"total\": 4"), "{all}");
        assert!(all.contains("\"count\": 4"), "{all}");
        for id in ["a", "b", "c", "d"] {
            assert!(all.contains(&format!("\"id\": \"{id}\"")), "{all}");
        }
        let page = body("/traces?offset=1&limit=2");
        assert!(page.contains("\"total\": 4"), "{page}");
        assert!(page.contains("\"count\": 2"), "{page}");
        assert!(!page.contains("\"id\": \"a\""), "{page}");
        assert!(page.contains("\"id\": \"b\""), "{page}");
        assert!(page.contains("\"id\": \"c\""), "{page}");
        assert!(!page.contains("\"id\": \"d\""), "{page}");
        // Past-the-end page is empty but well-formed.
        let empty = body("/traces?offset=10");
        assert!(empty.contains("\"count\": 0"), "{empty}");
        // Bad pagination parameters are rejected.
        let (_, resp) = get(&state, "/traces?offset=-1");
        assert_eq!(resp.status, Status::BadRequest);
        let (_, resp) = get(&state, "/traces?limit=lots");
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn report_bytes_match_replay_and_cache_hits() {
        let state = qmcpack_state();
        let trace = state.store().decoded("qmcpack").unwrap();
        let expect =
            ValueExpert::builder().coarse(true).replay(&trace).unwrap().render_text_document();
        let (_, first) = get(&state, "/traces/qmcpack/report");
        assert_eq!(String::from_utf8(first.body.clone()).unwrap(), expect);
        let (_, second) = get(&state, "/traces/qmcpack/report");
        assert_eq!(first, second);
        let stats = state.cache().stats();
        assert_eq!(stats.misses.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(stats.hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn flowgraph_dot_matches_replay() {
        let state = qmcpack_state();
        let trace = state.store().decoded("qmcpack").unwrap();
        let expect = ValueExpert::builder()
            .coarse(true)
            .replay(&trace)
            .unwrap()
            .render_dot_document(None);
        let (_, resp) = get(&state, "/traces/qmcpack/flowgraph?format=dot");
        assert_eq!(String::from_utf8(resp.body).unwrap(), expect);
        // An explicit threshold is honoured.
        let (_, resp) = get(&state, "/traces/qmcpack/flowgraph?threshold=0.9");
        let expect_t = ValueExpert::builder()
            .coarse(true)
            .replay(&trace)
            .unwrap()
            .render_dot_document(Some(0.9));
        assert_eq!(String::from_utf8(resp.body).unwrap(), expect_t);
    }

    #[test]
    fn loopback_roundtrip_and_graceful_shutdown() {
        let state = qmcpack_state();
        // Rebuild a store for the server (ServeState is not Clone).
        let server = {
            let trace = (*state.store().decoded("qmcpack").unwrap()).clone();
            let store = ProfileStore::from_traces([("qmcpack".to_owned(), trace)]).unwrap();
            Server::bind(store, "127.0.0.1:0", ServerConfig::default()).unwrap()
        };
        let addr = server.addr();
        let fetch = |target: &str| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            conn.read_to_string(&mut out).unwrap();
            out
        };
        let health = fetch("/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("\r\n\r\nok\n"), "{health}");
        let report = fetch("/traces/qmcpack/report");
        assert!(report.contains("ValueExpert profile"), "{report}");
        let metrics = fetch("/metrics");
        assert!(metrics.contains("vex_requests_total{endpoint=\"report\"} 1"), "{metrics}");
        assert!(server.state().metrics().total_requests() >= 2);
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may still accept briefly; a racing connect that
                // succeeds must at least get no response.
                true
            }
        );
    }

    #[test]
    fn saturated_workers_shed_with_503_and_retry_after() {
        let state = qmcpack_state();
        let server = {
            let trace = (*state.store().decoded("qmcpack").unwrap()).clone();
            let store = ProfileStore::from_traces([("qmcpack".to_owned(), trace)]).unwrap();
            let config = ServerConfig {
                workers: 1,
                shed_wait: Duration::from_millis(20),
                read_timeout: Duration::from_secs(2),
                ..ServerConfig::default()
            };
            Server::bind(store, "127.0.0.1:0", config).unwrap()
        };
        let addr = server.addr();
        // Occupy the single worker and the single queue slot with
        // connections that send nothing: the worker blocks in its
        // bounded read until `read_timeout` expires.
        let stall1 = TcpStream::connect(addr).unwrap();
        let stall2 = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // The next connection cannot reach the queue within
        // `shed_wait`: the accept thread itself must answer 503 with a
        // Retry-After, well before the stalled worker frees up.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        let mut out = String::new();
        let _ = conn.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{out}");
        assert!(out.contains("Retry-After: 1\r\n"), "{out}");
        assert_eq!(server.state().metrics().sheds(), 1);
        let metrics = server
            .state()
            .metrics()
            .render(server.state().cache().stats(), server.state().store().stats());
        assert!(metrics.contains("vex_requests_shed_total 1"), "{metrics}");
        drop(stall1);
        drop(stall2);
        server.shutdown();
    }
}
