//! The two-tier profile store: every `.vex` trace of a directory,
//! indexed at startup and decoded on demand under a memory budget.
//!
//! A trace's id is its file stem (`darknet.vex` → `darknet`). Loading
//! builds only the **index tier** — summary counts plus the object and
//! kernel breakdowns, folded out of one cheap skip-records scan
//! ([`vex_trace::index`]) — so startup cost tracks encoded bytes, never
//! record counts, and the resident footprint of an idle store is a few
//! KiB per trace. The **decoded tier** materializes a full
//! [`RecordedTrace`] lazily on the first report/flowgraph request,
//! accounts it in bytes, and evicts least-recently-used entries when a
//! configured memory budget is exceeded; a re-request transparently
//! re-decodes from disk. Reports are byte-identical whichever tier
//! state they are served from.
//!
//! Loading is lenient by default: a corrupt trace is quarantined (and
//! surfaced in `/traces` + `/metrics`) instead of failing the whole
//! startup; [`StoreOptions::strict`] restores fail-fast. The store is
//! also *mutable* while serving: [`ProfileStore::ingest`] validates
//! pushed trace bytes, writes them atomically (tmp file + rename) into
//! the backing directory, and indexes them without a restart;
//! [`ProfileStore::remove`] deletes a trace from both tiers and disk.

use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use vex_core::profiler::{ReplayError, ValueExpert};
use vex_core::report::Profile;
use vex_gpu::hooks::ApiKind;
use vex_trace::container::{read_trace_file_with, DecodeOptions, RecordedTrace, TraceFrame};
use vex_trace::event::Event;
use vex_trace::index::{index_trace_with, FrameEntry, TraceIndex};
use vex_trace::summary::TraceSummary;
use vex_trace::AccessRecord;

/// One row of the `GET /traces` listing.
#[derive(Debug, Clone, Serialize)]
pub struct TraceListRow {
    /// Trace id (file stem).
    pub id: String,
    /// Device preset the trace was recorded against.
    pub device: String,
    /// Whether coarse capture snapshots were recorded.
    pub coarse: bool,
    /// Whether fine-grained access records were recorded.
    pub fine: bool,
    /// API events in the stream.
    pub api_events: u64,
    /// Instrumented kernel launches.
    pub instrumented_launches: u64,
    /// Fine-grained access records.
    pub records: u64,
    /// Application time of the recorded run, µs.
    pub app_us: f64,
}

/// One row of the `GET /traces/{id}/objects` breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct ObjectRow {
    /// Allocation id.
    pub id: u64,
    /// Allocation label (the paper's object name).
    pub label: String,
    /// Device address.
    pub addr: u64,
    /// Size, bytes.
    pub size_bytes: u64,
    /// Rendered allocating call path.
    pub context: String,
    /// Whether the object was freed before the end of the recording.
    pub freed: bool,
}

/// One row of the `GET /traces/{id}/kernels` breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Launches that were instrumented.
    pub instrumented_launches: u64,
    /// Launches skipped by sampling/filtering.
    pub skipped_launches: u64,
    /// Fine-grained records collected across instrumented launches.
    pub records: u64,
}

/// A quarantined trace file: present in the directory, skipped at load.
///
/// Besides the disqualifying error, the row reports what a salvage
/// pass ([`vex_trace::salvage`]) could still recover — a truncated
/// trace from a crashed recording is usually mostly intact, and
/// surfacing that here lets an operator decide between `vex repair`
/// and deletion without leaving the listing.
#[derive(Debug, Clone, Serialize)]
pub struct QuarantineRow {
    /// File name (not the full path — the directory is the store's).
    pub file: String,
    /// The decode error that disqualified it.
    pub error: String,
    /// Whether salvage recovered at least one frame (`vex repair` would
    /// produce a non-empty valid trace).
    pub salvageable: bool,
    /// Percent of the file's bytes inside the recoverable prefix.
    pub recoverable_percent: f64,
    /// Frames in the longest valid prefix.
    pub frames_recovered: u64,
}

impl QuarantineRow {
    /// Builds the row for `path`, running a salvage probe over the file
    /// to fill the recoverability fields. A file whose header cannot be
    /// parsed (or that vanished) reports as unsalvageable.
    fn probe(path: &Path, error: String) -> QuarantineRow {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let (salvageable, recoverable_percent, frames_recovered) =
            match vex_trace::salvage::salvage_trace_file(path) {
                Ok(s) => (
                    s.report.frames_recovered > 0,
                    s.report.recoverable_percent(),
                    s.report.frames_recovered,
                ),
                Err(_) => (false, 0.0, 0),
            };
        QuarantineRow { file, error, salvageable, recoverable_percent, frames_recovered }
    }
}

/// The always-resident index tier of one trace: everything the static
/// endpoints serve, built by a single skip-records scan — never the
/// decoded event stream.
#[derive(Debug)]
pub struct TraceEntry {
    /// Trace id (file stem).
    pub id: String,
    /// Incarnation token: process-unique, assigned when the entry is
    /// indexed. A delete + re-ingest under the same id yields a new
    /// entry with a different generation, so report-cache keys and the
    /// decoded tier can distinguish the incarnations and never serve a
    /// previous trace's data for the new one.
    pub generation: u64,
    /// Header fields and per-event-type counts.
    pub summary: TraceSummary,
    /// Per-object breakdown rows.
    pub objects: Vec<ObjectRow>,
    /// Per-kernel breakdown rows.
    pub kernels: Vec<KernelRow>,
    /// Backing file, when the store is disk-backed (`None` for traces
    /// handed in pre-decoded via [`ProfileStore::from_traces`], which
    /// stay pinned in the decoded tier).
    path: Option<PathBuf>,
}

/// The next process-unique [`TraceEntry::generation`].
fn next_generation() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Loading or serving the store failed.
#[derive(Debug)]
pub struct StoreError(pub String);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for StoreError {}

/// Why an ingest or delete was refused; each variant maps onto one HTTP
/// status so the server's error surface stays uniform.
#[derive(Debug)]
pub enum MutationError {
    /// The id is not a valid trace id (charset/length). → 400
    BadId(String),
    /// A trace with this id already exists. → 409
    Duplicate(String),
    /// No trace with this id. → 404
    NotFound(String),
    /// The uploaded bytes are not a valid trace. → 400
    InvalidTrace(String),
    /// The store has no backing directory to write into. → 405
    ReadOnly,
    /// Disk I/O failed. → 500
    Io(String),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::BadId(id) => {
                write!(f, "invalid trace id '{id}' (1-64 chars of [A-Za-z0-9_-])")
            }
            MutationError::Duplicate(id) => write!(f, "trace '{id}' already exists"),
            MutationError::NotFound(id) => write!(f, "no trace '{id}'"),
            MutationError::InvalidTrace(e) => write!(f, "not a valid trace: {e}"),
            MutationError::ReadOnly => {
                write!(f, "store is not disk-backed; ingest needs a trace directory")
            }
            MutationError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MutationError {}

/// Load/serve knobs of a [`ProfileStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Worker threads decoding a trace's columnar batches when it is
    /// materialized (1 = sequential decode).
    pub decode_threads: usize,
    /// Upper bound on resident decoded bytes (`None` = unbounded).
    /// Least-recently-used decoded traces are evicted to stay under it;
    /// the trace currently being served is never evicted, so a single
    /// trace larger than the budget still serves.
    pub memory_budget: Option<u64>,
    /// Fail the whole load on the first corrupt trace instead of
    /// quarantining it.
    pub strict: bool,
    /// Evict a decoded trace idle for this long even while the tier fits
    /// the memory budget (`None` = keep until LRU pressure). A fleet
    /// backend's working set is bursty: a trace queried once at ingest
    /// time would otherwise stay resident until enough *other* traffic
    /// pushes it out. Pinned traces are exempt.
    pub trace_ttl: Option<std::time::Duration>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { decode_threads: 1, memory_budget: None, strict: false, trace_ttl: None }
    }
}

/// Gauges and counters of the two-tier store, rendered into `/metrics`.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Bytes of decoded traces currently resident (gauge).
    pub resident_bytes: AtomicU64,
    /// Decoded traces currently resident (gauge).
    pub resident_traces: AtomicU64,
    /// Configured memory budget, bytes (gauge; 0 = unbounded).
    pub memory_budget_bytes: AtomicU64,
    /// Full decodes performed (cold materializations, including
    /// re-decodes after eviction).
    pub decodes_total: AtomicU64,
    /// Decoded traces evicted to stay under the budget.
    pub evictions_total: AtomicU64,
    /// Bytes released by evictions.
    pub evicted_bytes_total: AtomicU64,
    /// Decoded traces evicted for sitting idle past the TTL.
    pub ttl_evictions_total: AtomicU64,
    /// Configured idle TTL, seconds (gauge; 0 = disabled).
    pub trace_ttl_seconds: AtomicU64,
    /// Traces accepted via ingest.
    pub ingested_total: AtomicU64,
    /// Ingest requests refused (bad id, duplicate, invalid bytes, io).
    pub ingest_errors_total: AtomicU64,
    /// Trace bytes accepted via ingest.
    pub ingested_bytes_total: AtomicU64,
    /// Traces deleted.
    pub deleted_total: AtomicU64,
    /// Trace files quarantined at load (gauge).
    pub quarantined: AtomicU64,
    /// Orphaned ingest temp files (`.{id}.{nonce}.vex.tmp`) swept at
    /// startup — litter from a crash mid-ingest; the atomic
    /// tmp+rename protocol guarantees they were never visible to
    /// readers.
    pub orphans_swept: AtomicU64,
}

/// One resident decoded trace.
struct Resident {
    trace: Arc<RecordedTrace>,
    bytes: u64,
    last_use: u64,
    /// Wall-clock of the last lookup, for idle-TTL eviction (the `u64`
    /// tick above orders LRU eviction; it carries no wall time).
    last_touch: std::time::Instant,
    /// Pinned entries ([`ProfileStore::from_traces`]) have no backing
    /// file to re-decode from and are never evicted.
    pinned: bool,
}

/// The decoded tier: id → resident trace, LRU-ordered by use tick.
#[derive(Default)]
struct DecodedTier {
    map: HashMap<String, Resident>,
    tick: u64,
}

/// Every trace of one directory: a resident index tier plus a bounded
/// decoded tier.
pub struct ProfileStore {
    entries: RwLock<BTreeMap<String, Arc<TraceEntry>>>,
    decoded: Mutex<DecodedTier>,
    /// Serializes cold decodes: one materialization at a time bounds the
    /// store's peak transient memory (decode scratch + the new trace)
    /// regardless of how many cold traces are requested concurrently.
    decode_flight: Mutex<()>,
    /// Trace files skipped at load. Mutable: a successful ingest under a
    /// quarantined file's id replaces the corrupt bytes and clears its
    /// row, so `/traces` never lists an id as both valid and quarantined.
    quarantined: RwLock<Vec<QuarantineRow>>,
    dir: Option<PathBuf>,
    opts: StoreOptions,
    stats: StoreStats,
}

impl std::fmt::Debug for ProfileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileStore")
            .field("traces", &self.len())
            .field("quarantined", &self.quarantined().len())
            .field("dir", &self.dir)
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

impl ProfileStore {
    /// Loads every `*.vex` file under `dir` (non-recursive) with default
    /// options: lenient loading, sequential decode, no memory budget.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the directory cannot be read. Corrupt traces
    /// are quarantined, not fatal (see [`StoreOptions::strict`]). An
    /// empty directory is a valid (empty) store.
    pub fn load_dir(dir: &Path) -> Result<Self, StoreError> {
        Self::load_dir_with(dir, &StoreOptions::default())
    }

    /// [`load_dir`](Self::load_dir) with explicit [`StoreOptions`].
    ///
    /// Startup indexes each trace with one skip-records scan — no trace
    /// is fully decoded until its first report/flowgraph request.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the directory cannot be read, a file stem is
    /// not UTF-8, or (under [`StoreOptions::strict`]) a trace fails to
    /// decode.
    pub fn load_dir_with(dir: &Path, opts: &StoreOptions) -> Result<Self, StoreError> {
        let read = std::fs::read_dir(dir)
            .map_err(|e| StoreError(format!("cannot read {}: {e}", dir.display())))?;
        let all: Vec<PathBuf> = read.filter_map(|e| e.ok().map(|e| e.path())).collect();
        // Sweep orphaned ingest temp files first: a crash between the
        // tmp write and the rename leaves `.{id}.{nonce}.vex.tmp`
        // behind. The rename is the commit point, so an orphan was
        // never visible to readers and can never become one — deleting
        // it is always safe, and keeps crashes from leaking disk.
        let mut orphans_swept = 0u64;
        for path in &all {
            if is_orphan_tmp(path) && std::fs::remove_file(path).is_ok() {
                orphans_swept += 1;
            }
        }
        let mut paths: Vec<PathBuf> = all
            .into_iter()
            .filter(|p| p.extension().is_some_and(|x| x == "vex") && p.is_file())
            .collect();
        paths.sort();
        let mut entries = BTreeMap::new();
        let mut quarantined = Vec::new();
        for path in paths {
            let id = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| StoreError(format!("non-utf8 trace name: {}", path.display())))?
                .to_owned();
            match index_entry(id.clone(), &path) {
                Ok(entry) => {
                    if entries.insert(id.clone(), Arc::new(entry)).is_some() {
                        return Err(StoreError(format!("duplicate trace id '{id}'")));
                    }
                }
                Err(e) if opts.strict => {
                    return Err(StoreError(format!("cannot load {}: {e}", path.display())));
                }
                Err(e) => quarantined.push(QuarantineRow::probe(&path, e.to_string())),
            }
        }
        let store = ProfileStore {
            entries: RwLock::new(entries),
            decoded: Mutex::new(DecodedTier::default()),
            decode_flight: Mutex::new(()),
            quarantined: RwLock::new(quarantined),
            dir: Some(dir.to_path_buf()),
            opts: *opts,
            stats: StoreStats::default(),
        };
        store.stats.quarantined.store(store.quarantined().len() as u64, Ordering::Relaxed);
        store.stats.orphans_swept.store(orphans_swept, Ordering::Relaxed);
        store
            .stats
            .memory_budget_bytes
            .store(opts.memory_budget.unwrap_or(0), Ordering::Relaxed);
        store
            .stats
            .trace_ttl_seconds
            .store(opts.trace_ttl.map(|d| d.as_secs()).unwrap_or(0), Ordering::Relaxed);
        Ok(store)
    }

    /// A store over already-decoded traces (tests, embedding). The
    /// traces have no backing file, so they are pinned resident in the
    /// decoded tier and exempt from eviction.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on duplicate ids.
    pub fn from_traces(
        traces: impl IntoIterator<Item = (String, RecordedTrace)>,
    ) -> Result<Self, StoreError> {
        let mut entries = BTreeMap::new();
        let mut tier = DecodedTier::default();
        for (id, trace) in traces {
            let entry = TraceEntry {
                id: id.clone(),
                generation: next_generation(),
                summary: summarize_decoded(&trace),
                objects: object_rows(&trace),
                kernels: kernel_rows(&trace),
                path: None,
            };
            if entries.insert(id.clone(), Arc::new(entry)).is_some() {
                return Err(StoreError(format!("duplicate trace id '{id}'")));
            }
            tier.tick += 1;
            let tick = tier.tick;
            tier.map.insert(
                id,
                Resident {
                    bytes: approx_resident_bytes(&trace),
                    trace: Arc::new(trace),
                    last_use: tick,
                    last_touch: std::time::Instant::now(),
                    pinned: true,
                },
            );
        }
        let store = ProfileStore {
            entries: RwLock::new(entries),
            decoded: Mutex::new(tier),
            decode_flight: Mutex::new(()),
            quarantined: RwLock::new(Vec::new()),
            dir: None,
            opts: StoreOptions::default(),
            stats: StoreStats::default(),
        };
        let tier = store.decoded.lock().unwrap_or_else(|e| e.into_inner());
        let bytes: u64 = tier.map.values().map(|r| r.bytes).sum();
        store.stats.resident_bytes.store(bytes, Ordering::Relaxed);
        store.stats.resident_traces.store(tier.map.len() as u64, Ordering::Relaxed);
        drop(tier);
        Ok(store)
    }

    /// Number of traces indexed.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Trace ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.entries.read().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect()
    }

    /// Looks the index tier up by id.
    pub fn entry(&self, id: &str) -> Option<Arc<TraceEntry>> {
        self.entries.read().unwrap_or_else(|e| e.into_inner()).get(id).cloned()
    }

    /// The quarantine list: trace files skipped at load and not yet
    /// replaced by a successful ingest.
    pub fn quarantined(&self) -> Vec<QuarantineRow> {
        self.quarantined.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The store's tier gauges and counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Bytes of decoded traces currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.stats.resident_bytes.load(Ordering::Relaxed)
    }

    /// Decoded traces currently resident.
    pub fn resident_traces(&self) -> usize {
        self.stats.resident_traces.load(Ordering::Relaxed) as usize
    }

    /// The `GET /traces` listing rows, sorted by id.
    pub fn list_rows(&self) -> Vec<TraceListRow> {
        self.entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|t| TraceListRow {
                id: t.id.clone(),
                device: t.summary.device.clone(),
                coarse: t.summary.flags.coarse,
                fine: t.summary.flags.fine,
                api_events: t.summary.api_events,
                instrumented_launches: t.summary.instrumented_launches,
                records: t.summary.records,
                app_us: t.summary.app_us,
            })
            .collect()
    }

    /// The decoded event stream of `id`, materializing it on first use.
    ///
    /// A resident trace is returned immediately (and its LRU tick
    /// bumped). A cold one is decoded from its backing file through the
    /// projected/parallel [`read_trace_file_with`] path, inserted into
    /// the decoded tier, and the tier is evicted down to the memory
    /// budget — never evicting the trace just requested.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the id is unknown or the backing file fails to
    /// decode (e.g. it was corrupted or removed after indexing).
    pub fn decoded(&self, id: &str) -> Result<Arc<RecordedTrace>, StoreError> {
        if let Some(trace) = self.lookup_resident(id) {
            return Ok(trace);
        }
        // One cold decode at a time; losers of the race find the trace
        // resident on the second lookup.
        let _flight = self.decode_flight.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(trace) = self.lookup_resident(id) {
            return Ok(trace);
        }
        let entry = self.entry(id).ok_or_else(|| StoreError(format!("no trace '{id}'")))?;
        let path = entry.path.as_ref().ok_or_else(|| {
            // Pinned traces are inserted resident at construction; a
            // pathless entry missing from the tier means it was deleted
            // concurrently.
            StoreError(format!("trace '{id}' is gone"))
        })?;
        let opts =
            DecodeOptions { threads: self.opts.decode_threads, ..DecodeOptions::default() };
        let trace = Arc::new(
            read_trace_file_with(path, &opts)
                .map_err(|e| StoreError(format!("cannot decode {}: {e}", path.display())))?,
        );
        self.stats.decodes_total.fetch_add(1, Ordering::Relaxed);
        let bytes = approx_resident_bytes(&trace);
        let mut tier = self.decoded.lock().unwrap_or_else(|e| e.into_inner());
        tier.tick += 1;
        let tick = tier.tick;
        tier.map.insert(
            id.to_owned(),
            Resident {
                trace: trace.clone(),
                bytes,
                last_use: tick,
                last_touch: std::time::Instant::now(),
                pinned: false,
            },
        );
        // A concurrent delete (or delete + re-ingest under the same id)
        // may have raced this decode: [`Self::remove`] cleared the tier
        // before our insert landed. If the index no longer holds the
        // entry we decoded from, the resident is a ghost — drop it
        // instead of letting it hold memory (or serve a previous
        // incarnation's data) indefinitely. The in-flight request still
        // gets the trace it asked for.
        let current = self
            .entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .map(|e| e.generation);
        if current == Some(entry.generation) {
            self.evict_over_budget(&mut tier, id);
        } else {
            tier.map.remove(id);
        }
        self.sync_tier_gauges(&tier);
        Ok(trace)
    }

    /// Validates `bytes` as a trace, writes them atomically into the
    /// backing directory as `{id}.vex`, and indexes the new trace — it
    /// is queryable as soon as this returns, no restart needed. An id
    /// whose file was quarantined at load may be pushed: the valid bytes
    /// replace the corrupt file and its quarantine row is cleared.
    ///
    /// # Errors
    ///
    /// [`MutationError`]; on any error the store and directory are
    /// unchanged.
    pub fn ingest(&self, id: &str, bytes: &[u8]) -> Result<TraceListRow, MutationError> {
        let result = self.ingest_inner(id, bytes);
        match &result {
            Ok(_) => {
                self.stats.ingested_total.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .ingested_bytes_total
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.ingest_errors_total.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    fn ingest_inner(&self, id: &str, bytes: &[u8]) -> Result<TraceListRow, MutationError> {
        if !valid_trace_id(id) {
            return Err(MutationError::BadId(id.to_owned()));
        }
        let dir = self.dir.as_ref().ok_or(MutationError::ReadOnly)?;
        // Cheap duplicate pre-check so an obvious conflict skips the
        // scan and the disk write; the authoritative check repeats under
        // the write lock below.
        if self.entries.read().unwrap_or_else(|e| e.into_inner()).contains_key(id) {
            return Err(MutationError::Duplicate(id.to_owned()));
        }
        // Validate before taking the write lock: a skip-records scan of
        // the bytes, folding the index-tier views in the same pass.
        let entry =
            index_entry_bytes(id.to_owned(), bytes, Some(dir.join(format!("{id}.vex"))))
                .map_err(|e| MutationError::InvalidTrace(e.to_string()))?;
        // Write the tmp file before taking the lock, so read endpoints
        // never block behind a multi-MB disk write. The nonce keeps
        // concurrent ingests of the same id off each other's tmp file.
        static TMP_NONCE: AtomicU64 = AtomicU64::new(0);
        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".{id}.{nonce}.vex.tmp"));
        let dst = dir.join(format!("{id}.vex"));
        // Failpoint: disk faults at the tmp write. `Kill` emulates a
        // process death mid-write — the partial tmp file stays on disk
        // (a dead process cannot clean up) for the startup sweep to
        // find; every other action takes the production error path.
        match crate::fault::fire("store.ingest.write") {
            None => {}
            Some(crate::fault::Action::Kill) => {
                let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
                return Err(MutationError::Io(
                    crate::fault::Action::Kill.to_io_error("store.ingest.write").to_string(),
                ));
            }
            Some(action) => {
                if let crate::fault::Action::Partial(n) = action {
                    let _ = std::fs::write(&tmp, &bytes[..n.min(bytes.len())]);
                }
                let _ = std::fs::remove_file(&tmp);
                return Err(MutationError::Io(
                    action.to_io_error("store.ingest.write").to_string(),
                ));
            }
        }
        if let Err(e) = std::fs::write(&tmp, bytes) {
            let _ = std::fs::remove_file(&tmp);
            return Err(MutationError::Io(e.to_string()));
        }
        // The write lock serializes only the duplicate check, the
        // rename, and the index insert — a concurrent ingest of the same
        // id cannot interleave, and losers clean their tmp file up.
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        if entries.contains_key(id) {
            drop(entries);
            let _ = std::fs::remove_file(&tmp);
            return Err(MutationError::Duplicate(id.to_owned()));
        }
        // Failpoint: death at the commit point. The fully-written tmp
        // file is orphaned (`Kill` skips cleanup) — the worst-possible
        // crash window for the atomic protocol.
        if let Some(action) = crate::fault::fire("store.ingest.rename") {
            drop(entries);
            if action != crate::fault::Action::Kill {
                let _ = std::fs::remove_file(&tmp);
            }
            return Err(MutationError::Io(
                action.to_io_error("store.ingest.rename").to_string(),
            ));
        }
        if let Err(e) = std::fs::rename(&tmp, &dst) {
            drop(entries);
            let _ = std::fs::remove_file(&tmp);
            return Err(MutationError::Io(e.to_string()));
        }
        let row = list_row(&entry);
        entries.insert(id.to_owned(), Arc::new(entry));
        drop(entries);
        // A valid push under a quarantined file's id replaced the
        // corrupt bytes on disk; clear its quarantine row so the id is
        // not listed as both valid and quarantined.
        self.clear_quarantined(&format!("{id}.vex"));
        Ok(row)
    }

    /// Drops `file` from the quarantine list (if present) and refreshes
    /// the gauge.
    fn clear_quarantined(&self, file: &str) {
        let mut quarantined = self.quarantined.write().unwrap_or_else(|e| e.into_inner());
        let before = quarantined.len();
        quarantined.retain(|row| row.file != file);
        if quarantined.len() != before {
            self.stats.quarantined.store(quarantined.len() as u64, Ordering::Relaxed);
        }
    }

    /// Deletes `id` from the index tier, the decoded tier, and (when
    /// disk-backed) the directory.
    ///
    /// # Errors
    ///
    /// [`MutationError::NotFound`] if the id is unknown;
    /// [`MutationError::Io`] if the backing file cannot be removed.
    pub fn remove(&self, id: &str) -> Result<(), MutationError> {
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        let entry = entries.remove(id).ok_or_else(|| MutationError::NotFound(id.to_owned()))?;
        if let Some(path) = &entry.path {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    // Roll the index entry back: the file is still there.
                    entries.insert(id.to_owned(), entry);
                    return Err(MutationError::Io(e.to_string()));
                }
            }
        }
        drop(entries);
        let mut tier = self.decoded.lock().unwrap_or_else(|e| e.into_inner());
        tier.map.remove(id);
        self.sync_tier_gauges(&tier);
        drop(tier);
        self.stats.deleted_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn lookup_resident(&self, id: &str) -> Option<Arc<RecordedTrace>> {
        let mut tier = self.decoded.lock().unwrap_or_else(|e| e.into_inner());
        self.sweep_expired_locked(&mut tier, Some(id));
        tier.tick += 1;
        let tick = tier.tick;
        let resident = tier.map.get_mut(id)?;
        resident.last_use = tick;
        resident.last_touch = std::time::Instant::now();
        Some(resident.trace.clone())
    }

    /// Evicts decoded traces idle longer than the configured TTL.
    /// Returns how many were evicted. Called on every tier lookup and
    /// by the server's `/metrics` handler, so idle traces are released
    /// even on a store that only ever serves one hot id — the scrape
    /// interval bounds how long an expired trace can linger.
    pub fn sweep_expired(&self) -> usize {
        let mut tier = self.decoded.lock().unwrap_or_else(|e| e.into_inner());
        self.sweep_expired_locked(&mut tier, None)
    }

    fn sweep_expired_locked(&self, tier: &mut DecodedTier, keep: Option<&str>) -> usize {
        let Some(ttl) = self.opts.trace_ttl else { return 0 };
        let expired: Vec<String> = tier
            .map
            .iter()
            .filter(|(id, r)| {
                !r.pinned && Some(id.as_str()) != keep && r.last_touch.elapsed() >= ttl
            })
            .map(|(id, _)| id.clone())
            .collect();
        for id in &expired {
            if let Some(evicted) = tier.map.remove(id) {
                self.stats.ttl_evictions_total.fetch_add(1, Ordering::Relaxed);
                self.stats.evicted_bytes_total.fetch_add(evicted.bytes, Ordering::Relaxed);
            }
        }
        if !expired.is_empty() {
            self.sync_tier_gauges(tier);
        }
        expired.len()
    }

    /// Evicts least-recently-used unpinned traces until the tier fits
    /// the budget; `keep` (the trace being served right now) is exempt,
    /// so one trace larger than the whole budget still serves.
    fn evict_over_budget(&self, tier: &mut DecodedTier, keep: &str) {
        let Some(budget) = self.opts.memory_budget else { return };
        loop {
            let resident: u64 = tier.map.values().map(|r| r.bytes).sum();
            if resident <= budget {
                return;
            }
            let coldest = tier
                .map
                .iter()
                .filter(|(id, r)| !r.pinned && id.as_str() != keep)
                .min_by_key(|(_, r)| r.last_use)
                .map(|(id, _)| id.clone());
            let Some(coldest) = coldest else { return };
            if let Some(evicted) = tier.map.remove(&coldest) {
                self.stats.evictions_total.fetch_add(1, Ordering::Relaxed);
                self.stats.evicted_bytes_total.fetch_add(evicted.bytes, Ordering::Relaxed);
            }
        }
    }

    fn sync_tier_gauges(&self, tier: &DecodedTier) {
        let bytes: u64 = tier.map.values().map(|r| r.bytes).sum();
        self.stats.resident_bytes.store(bytes, Ordering::Relaxed);
        self.stats.resident_traces.store(tier.map.len() as u64, Ordering::Relaxed);
    }
}

/// Valid ingest ids: non-empty, ≤ 64 chars, `[A-Za-z0-9_-]` — exactly
/// the stems `load_dir` would accept without surprises, and nothing
/// that can traverse paths.
fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// Matches the `.{id}.{nonce}.vex.tmp` names `ingest_inner` writes:
/// hidden (leading dot) and double-suffixed, so no legitimate `*.vex`
/// trace can collide with the pattern.
fn is_orphan_tmp(path: &Path) -> bool {
    path.is_file()
        && path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with('.') && n.ends_with(".vex.tmp"))
}

fn list_row(entry: &TraceEntry) -> TraceListRow {
    TraceListRow {
        id: entry.id.clone(),
        device: entry.summary.device.clone(),
        coarse: entry.summary.flags.coarse,
        fine: entry.summary.flags.fine,
        api_events: entry.summary.api_events,
        instrumented_launches: entry.summary.instrumented_launches,
        records: entry.summary.records,
        app_us: entry.summary.app_us,
    }
}

/// Builds one index-tier entry from a trace file: a single
/// skip-records scan yielding the summary plus the object and kernel
/// views through the frame visitor.
fn index_entry(id: String, path: &Path) -> Result<TraceEntry, vex_trace::codec::DecodeError> {
    let file = std::fs::File::open(path)?;
    let mut views = ViewScan::default();
    let index = index_trace_with(std::io::BufReader::new(file), |entry, frame| {
        views.visit(entry, frame);
    })?;
    Ok(views.into_entry(id, index, Some(path.to_path_buf())))
}

/// [`index_entry`] over in-memory bytes (the ingest path).
fn index_entry_bytes(
    id: String,
    bytes: &[u8],
    path: Option<PathBuf>,
) -> Result<TraceEntry, vex_trace::codec::DecodeError> {
    let mut views = ViewScan::default();
    let index = index_trace_with(bytes, |entry, frame| views.visit(entry, frame))?;
    Ok(views.into_entry(id, index, path))
}

/// Folds the object and kernel views out of the skip-records scan.
/// Batch frames arrive with empty record vectors in scan mode; their
/// counts come from the per-frame [`FrameEntry::records`]. Malloc
/// contexts are interned ids until the `Contexts` frame arrives near
/// the end of the stream, then resolved.
#[derive(Default)]
struct ViewScan {
    objects: Vec<ObjectRow>,
    object_contexts: Vec<vex_gpu::callpath::CallPathId>,
    object_index: BTreeMap<u64, usize>,
    kernels: BTreeMap<String, KernelRow>,
    contexts: BTreeMap<vex_gpu::callpath::CallPathId, String>,
}

impl ViewScan {
    fn visit(&mut self, entry: &FrameEntry, frame: &TraceFrame) {
        match frame {
            TraceFrame::Event(Event::Api { event, .. }) => match &event.kind {
                ApiKind::Malloc { info } => {
                    self.object_index.insert(info.id.0, self.objects.len());
                    self.object_contexts.push(info.context);
                    self.objects.push(ObjectRow {
                        id: info.id.0,
                        label: info.label.clone(),
                        addr: info.addr,
                        size_bytes: info.size,
                        context: String::new(),
                        freed: false,
                    });
                }
                ApiKind::Free { info } => {
                    if let Some(&i) = self.object_index.get(&info.id.0) {
                        self.objects[i].freed = true;
                    }
                }
                _ => {}
            },
            TraceFrame::Event(Event::LaunchBegin { info }) => {
                self.kernel(&info.kernel_name).instrumented_launches += 1;
            }
            TraceFrame::Event(Event::SkippedLaunch { info }) => {
                self.kernel(&info.kernel_name).skipped_launches += 1;
            }
            TraceFrame::Event(Event::Batch { info, .. }) => {
                self.kernel(&info.kernel_name).records += entry.records;
            }
            TraceFrame::Contexts(map) => self.contexts = map.clone(),
            _ => {}
        }
    }

    fn kernel(&mut self, name: &str) -> &mut KernelRow {
        self.kernels.entry(name.to_owned()).or_insert_with(|| KernelRow {
            name: name.to_owned(),
            instrumented_launches: 0,
            skipped_launches: 0,
            records: 0,
        })
    }

    fn into_entry(
        mut self,
        id: String,
        index: TraceIndex,
        path: Option<PathBuf>,
    ) -> TraceEntry {
        for (row, ctx) in self.objects.iter_mut().zip(&self.object_contexts) {
            row.context = self
                .contexts
                .get(ctx)
                .cloned()
                .unwrap_or_else(|| format!("<unrecorded context {}>", ctx.0));
        }
        TraceEntry {
            id,
            generation: next_generation(),
            summary: index.summary,
            objects: self.objects,
            kernels: self.kernels.into_values().collect(),
            path,
        }
    }
}

/// A measured estimate of one decoded trace's in-memory footprint,
/// bytes — the decoded tier's accounting unit. Deterministic for a
/// given trace, so budget behaviour is reproducible.
fn approx_resident_bytes(trace: &RecordedTrace) -> u64 {
    let record = std::mem::size_of::<AccessRecord>() as u64;
    let mut total = std::mem::size_of::<RecordedTrace>() as u64;
    for event in &trace.events {
        // Event enum + one Arc indirection of bookkeeping.
        total += 64;
        match event {
            Event::Batch { records, .. } => total += records.len() as u64 * record,
            Event::Api { captured, .. } => total += captured.captured_bytes() + 64,
            _ => {}
        }
    }
    for ctx in trace.contexts.values() {
        total += ctx.len() as u64 + 48;
    }
    total
}

/// A [`TraceSummary`] over an already-decoded trace (the streaming
/// variant in `vex_trace::summary` serves `vex info`; the index scan in
/// [`vex_trace::index`] serves disk-backed loading).
fn summarize_decoded(trace: &RecordedTrace) -> TraceSummary {
    let mut s = TraceSummary {
        version: trace.version,
        flags: trace.flags,
        device: trace.spec.name.clone(),
        contexts: trace.contexts.len() as u64,
        batch_bytes: trace.batch_bytes,
        stats: trace.stats,
        app_us: trace.app_us,
        ..TraceSummary::default()
    };
    for event in &trace.events {
        match event {
            Event::Api { event, .. } => {
                s.api_events += 1;
                if matches!(event.kind, ApiKind::KernelLaunch { .. }) {
                    s.kernel_launches += 1;
                }
            }
            Event::LaunchBegin { .. } => s.instrumented_launches += 1,
            Event::SkippedLaunch { .. } => s.skipped_launches += 1,
            Event::Batch { records, .. } => {
                s.batches += 1;
                s.records += records.len() as u64;
            }
            Event::LaunchEnd { .. } => {}
        }
    }
    s
}

fn object_rows(trace: &RecordedTrace) -> Vec<ObjectRow> {
    let mut rows: Vec<ObjectRow> = Vec::new();
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    for event in &trace.events {
        if let Event::Api { event, .. } = event {
            match &event.kind {
                ApiKind::Malloc { info } => {
                    index.insert(info.id.0, rows.len());
                    rows.push(ObjectRow {
                        id: info.id.0,
                        label: info.label.clone(),
                        addr: info.addr,
                        size_bytes: info.size,
                        context: trace.contexts.get(&info.context).cloned().unwrap_or_else(
                            || format!("<unrecorded context {}>", info.context.0),
                        ),
                        freed: false,
                    });
                }
                ApiKind::Free { info } => {
                    if let Some(&i) = index.get(&info.id.0) {
                        rows[i].freed = true;
                    }
                }
                _ => {}
            }
        }
    }
    rows
}

fn kernel_rows(trace: &RecordedTrace) -> Vec<KernelRow> {
    let mut by_name: BTreeMap<String, KernelRow> = BTreeMap::new();
    fn row<'a>(by_name: &'a mut BTreeMap<String, KernelRow>, name: &str) -> &'a mut KernelRow {
        by_name.entry(name.to_owned()).or_insert_with(|| KernelRow {
            name: name.to_owned(),
            instrumented_launches: 0,
            skipped_launches: 0,
            records: 0,
        })
    }
    for event in &trace.events {
        match event {
            Event::LaunchBegin { info } => {
                row(&mut by_name, &info.kernel_name).instrumented_launches += 1
            }
            Event::SkippedLaunch { info } => {
                row(&mut by_name, &info.kernel_name).skipped_launches += 1
            }
            Event::Batch { info, records } => {
                row(&mut by_name, &info.kernel_name).records += records.len() as u64
            }
            _ => {}
        }
    }
    by_name.into_values().collect()
}

/// Analysis parameters of a report/flowgraph materialization — the
/// `vex replay` flag surface, minus output targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportParams {
    /// Run the coarse pass (default true).
    pub coarse: bool,
    /// Run the fine pass (default false).
    pub fine: bool,
    /// Run race detection.
    pub races: bool,
    /// Reuse-distance line size, if enabled.
    pub reuse: Option<u64>,
    /// Analysis shards (0 = synchronous engine).
    pub shards: usize,
}

impl Default for ReportParams {
    fn default() -> Self {
        ReportParams { coarse: true, fine: false, races: false, reuse: None, shards: 0 }
    }
}

impl ReportParams {
    /// Canonical cache-key rendering; equal params render equally.
    pub fn cache_key(&self) -> String {
        format!(
            "coarse={},fine={},races={},reuse={:?},shards={}",
            self.coarse, self.fine, self.races, self.reuse, self.shards
        )
    }
}

/// Replays `trace` under `params` — exactly the engine configuration
/// `vex replay` builds from the equivalent flags, so every rendered
/// surface matches the CLI byte for byte.
///
/// # Errors
///
/// [`ReplayError`] when the requested passes were not recorded.
pub fn materialize(
    trace: &RecordedTrace,
    params: &ReportParams,
) -> Result<Profile, ReplayError> {
    let mut b = ValueExpert::builder()
        .coarse(params.coarse)
        .fine(params.fine)
        .race_detection(params.races)
        .analysis_shards(params.shards);
    if let Some(line) = params.reuse {
        b = b.reuse_distance(line);
    }
    b.replay(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_gpu::runtime::Runtime;
    use vex_gpu::timing::DeviceSpec;
    use vex_trace::container::read_trace;
    use vex_workloads::{all_apps, Variant};

    fn recorded_bytes(app_name: &str) -> Vec<u8> {
        let apps = all_apps();
        let app = apps
            .iter()
            .find(|a| a.name().eq_ignore_ascii_case(app_name))
            .expect("bundled workload");
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let rec = ValueExpert::builder()
            .coarse(true)
            .fine(true)
            .record(&mut rt, Vec::new())
            .expect("header");
        app.run(&mut rt, Variant::Baseline).expect("workload runs");
        rec.finish(&mut rt).expect("trailer")
    }

    fn recorded(app_name: &str) -> RecordedTrace {
        read_trace(&recorded_bytes(app_name)).expect("decodes")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vex-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_dir_indexes_by_stem_and_sorts() {
        let dir = temp_dir("basic");
        let bytes = recorded_bytes("QMCPACK");
        let trace = read_trace(&bytes).expect("decodes");
        std::fs::write(dir.join("beta.vex"), &bytes).unwrap();
        std::fs::write(dir.join("alpha.vex"), &bytes).unwrap();
        std::fs::write(dir.join("notatrace.txt"), b"ignored").unwrap();

        let store = ProfileStore::load_dir(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.ids(), vec!["alpha", "beta"]);
        let alpha = store.entry("alpha").unwrap();
        assert_eq!(alpha.summary.instrumented_launches, trace_launches(&trace));
        assert!(store.entry("gamma").is_none());
        // Startup is index-only: nothing decoded yet.
        assert_eq!(store.resident_traces(), 0);
        assert_eq!(store.resident_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn trace_launches(trace: &RecordedTrace) -> u64 {
        trace.events.iter().filter(|e| matches!(e, Event::LaunchBegin { .. })).count() as u64
    }

    #[test]
    fn corrupt_trace_is_quarantined_by_default_and_fatal_under_strict() {
        let dir = temp_dir("bad");
        std::fs::write(dir.join("bad.vex"), b"not a trace").unwrap();
        std::fs::write(dir.join("good.vex"), recorded_bytes("QMCPACK")).unwrap();

        // Default (lenient): the good trace loads, the bad one is
        // quarantined with its file name and error.
        let store = ProfileStore::load_dir(&dir).unwrap();
        assert_eq!(store.ids(), vec!["good"]);
        assert_eq!(store.quarantined().len(), 1);
        assert_eq!(store.quarantined()[0].file, "bad.vex");
        assert!(!store.quarantined()[0].error.is_empty());
        // Garbage bytes have no parseable header: nothing to salvage.
        assert!(!store.quarantined()[0].salvageable);
        assert_eq!(store.quarantined()[0].frames_recovered, 0);
        assert_eq!(store.stats().quarantined.load(Ordering::Relaxed), 1);

        // Strict restores fail-fast, naming the file.
        let opts = StoreOptions { strict: true, ..StoreOptions::default() };
        let err = ProfileStore::load_dir_with(&dir, &opts).unwrap_err();
        assert!(err.0.contains("bad.vex"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_trace_quarantines_as_salvageable() {
        let dir = temp_dir("salv");
        let bytes = recorded_bytes("QMCPACK");
        // Cut inside the Finish trailer: every earlier frame is intact,
        // so the quarantine row must advertise a recoverable prefix.
        std::fs::write(dir.join("cut.vex"), &bytes[..bytes.len() - 7]).unwrap();
        let store = ProfileStore::load_dir(&dir).unwrap();
        let rows = store.quarantined();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].salvageable, "{rows:?}");
        assert!(rows[0].frames_recovered > 0, "{rows:?}");
        assert!(
            rows[0].recoverable_percent > 0.0 && rows[0].recoverable_percent < 100.0,
            "{rows:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn startup_sweeps_orphaned_ingest_temp_files() {
        let dir = temp_dir("sweep");
        std::fs::write(dir.join("good.vex"), recorded_bytes("QMCPACK")).unwrap();
        std::fs::write(dir.join(".good.3.vex.tmp"), b"partial").unwrap();
        std::fs::write(dir.join(".other.12.vex.tmp"), b"").unwrap();
        let store = ProfileStore::load_dir(&dir).unwrap();
        assert_eq!(store.ids(), vec!["good"]);
        assert_eq!(store.stats().orphans_swept.load(Ordering::Relaxed), 2);
        assert!(!dir.join(".good.3.vex.tmp").exists());
        assert!(!dir.join(".other.12.vex.tmp").exists());
        assert!(store.quarantined().is_empty(), "tmp litter is not quarantine material");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_ingest_never_corrupts_store_or_directory() {
        let _s = crate::fault::session();
        let dir = temp_dir("torn");
        let store = ProfileStore::load_dir(&dir).unwrap();
        let bytes = recorded_bytes("QMCPACK");

        // Torn tmp write: the production error path cleans up.
        crate::fault::arm_times("store.ingest.write", crate::fault::Action::Partial(10), 1);
        let err = store.ingest("t", &bytes).unwrap_err();
        assert!(matches!(err, MutationError::Io(_)), "{err:?}");
        assert!(store.entry("t").is_none());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "no litter on error path");

        // Kill at the commit point: the fully-written tmp is orphaned,
        // invisible to a reload, and swept by it.
        crate::fault::arm_times("store.ingest.rename", crate::fault::Action::Kill, 1);
        let err = store.ingest("t", &bytes).unwrap_err();
        assert!(matches!(err, MutationError::Io(_)), "{err:?}");
        assert!(store.entry("t").is_none());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1, "orphan tmp left behind");
        let reloaded = ProfileStore::load_dir(&dir).unwrap();
        assert!(reloaded.ids().is_empty());
        assert_eq!(reloaded.stats().orphans_swept.load(Ordering::Relaxed), 1);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);

        // Faults exhausted: the same ingest now lands byte-identically.
        store.ingest("t", &bytes).expect("clean ingest");
        assert_eq!(store.ids(), vec!["t"]);
        assert_eq!(std::fs::read(dir.join("t.vex")).unwrap(), bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_repairs_a_quarantined_id() {
        let dir = temp_dir("repair");
        std::fs::write(dir.join("broken.vex"), b"not a trace").unwrap();
        let store = ProfileStore::load_dir(&dir).unwrap();
        assert_eq!(store.quarantined().len(), 1);
        assert!(store.entry("broken").is_none());

        // Pushing valid bytes under the quarantined id replaces the
        // corrupt file and clears the quarantine row — the id must never
        // be listed as both valid and quarantined.
        let bytes = recorded_bytes("QMCPACK");
        store.ingest("broken", &bytes).expect("repair push lands");
        assert_eq!(store.ids(), vec!["broken"]);
        assert!(store.quarantined().is_empty());
        assert_eq!(store.stats().quarantined.load(Ordering::Relaxed), 0);
        assert_eq!(std::fs::read(dir.join("broken.vex")).unwrap(), bytes);
        assert!(store.decoded("broken").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn static_views_cover_objects_and_kernels() {
        let trace = recorded("QMCPACK");
        let store = ProfileStore::from_traces([("q".to_owned(), trace)]).expect("unique ids");
        let t = store.entry("q").unwrap();
        assert!(!t.objects.is_empty(), "workload allocates");
        assert!(!t.kernels.is_empty(), "workload launches kernels");
        assert!(t.objects.iter().all(|o| !o.label.is_empty()));
        let rows = store.list_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, "q");
        assert!(rows[0].fine);
        assert_eq!(
            t.summary.instrumented_launches,
            t.kernels.iter().map(|k| k.instrumented_launches).sum::<u64>()
        );
        assert_eq!(t.summary.records, t.kernels.iter().map(|k| k.records).sum::<u64>());
        // Pinned traces are resident from construction.
        assert_eq!(store.resident_traces(), 1);
        assert!(store.decoded("q").is_ok());
    }

    #[test]
    fn index_tier_matches_eager_views() {
        // The skip-scan index tier must produce exactly the views the
        // old eager loader computed from the decoded stream.
        let dir = temp_dir("views");
        let bytes = recorded_bytes("QMCPACK");
        std::fs::write(dir.join("q.vex"), &bytes).unwrap();
        let store = ProfileStore::load_dir(&dir).unwrap();
        let scanned = store.entry("q").unwrap();

        let trace = read_trace(&bytes).unwrap();
        let eager_objects = object_rows(&trace);
        let eager_kernels = kernel_rows(&trace);
        let eager_summary = summarize_decoded(&trace);

        assert_eq!(scanned.summary, eager_summary);
        assert_eq!(scanned.objects.len(), eager_objects.len());
        for (a, b) in scanned.objects.iter().zip(&eager_objects) {
            assert_eq!(
                (a.id, &a.label, a.addr, a.size_bytes, &a.context, a.freed),
                (b.id, &b.label, b.addr, b.size_bytes, &b.context, b.freed)
            );
        }
        assert_eq!(scanned.kernels.len(), eager_kernels.len());
        for (a, b) in scanned.kernels.iter().zip(&eager_kernels) {
            assert_eq!(
                (&a.name, a.instrumented_launches, a.skipped_launches, a.records),
                (&b.name, b.instrumented_launches, b.skipped_launches, b.records)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_decode_then_evict_under_budget() {
        let dir = temp_dir("evict");
        let bytes = recorded_bytes("QMCPACK");
        std::fs::write(dir.join("a.vex"), &bytes).unwrap();
        std::fs::write(dir.join("b.vex"), &bytes).unwrap();
        std::fs::write(dir.join("c.vex"), &bytes).unwrap();
        // Budget of one byte: only the trace under active service stays.
        let opts = StoreOptions { memory_budget: Some(1), ..StoreOptions::default() };
        let store = ProfileStore::load_dir_with(&dir, &opts).unwrap();
        assert_eq!(store.resident_traces(), 0);

        let a = store.decoded("a").unwrap();
        assert_eq!(store.resident_traces(), 1, "the requested trace is never evicted");
        let a_bytes = store.resident_bytes();
        assert!(a_bytes > 0);
        let direct = read_trace(&bytes).unwrap();
        assert_eq!(a.events.len(), direct.events.len());

        store.decoded("b").unwrap();
        assert_eq!(store.resident_traces(), 1, "a evicted for b under the budget");
        store.decoded("c").unwrap();
        assert_eq!(store.resident_traces(), 1);
        assert_eq!(store.stats().evictions_total.load(Ordering::Relaxed), 2);
        // Re-requesting a re-decodes transparently.
        let a2 = store.decoded("a").unwrap();
        assert_eq!(a2.events.len(), a.events.len());
        assert_eq!(store.stats().decodes_total.load(Ordering::Relaxed), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unbounded_store_keeps_everything_resident() {
        let dir = temp_dir("unbounded");
        let bytes = recorded_bytes("QMCPACK");
        std::fs::write(dir.join("a.vex"), &bytes).unwrap();
        std::fs::write(dir.join("b.vex"), &bytes).unwrap();
        let store = ProfileStore::load_dir(&dir).unwrap();
        store.decoded("a").unwrap();
        store.decoded("b").unwrap();
        assert_eq!(store.resident_traces(), 2);
        assert_eq!(store.stats().evictions_total.load(Ordering::Relaxed), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_validates_persists_and_indexes() {
        let dir = temp_dir("ingest");
        let store = ProfileStore::load_dir(&dir).unwrap();
        assert!(store.is_empty());
        let bytes = recorded_bytes("QMCPACK");

        let row = store.ingest("pushed", &bytes).unwrap();
        assert_eq!(row.id, "pushed");
        assert!(dir.join("pushed.vex").is_file());
        assert_eq!(store.ids(), vec!["pushed"]);
        // Queryable without restart: decoded tier materializes from the
        // file just written.
        let trace = store.decoded("pushed").unwrap();
        assert!(!trace.events.is_empty());

        // Duplicate id is refused, store unchanged.
        assert!(matches!(store.ingest("pushed", &bytes), Err(MutationError::Duplicate(_))));
        // Garbage bytes are refused before touching disk.
        assert!(matches!(
            store.ingest("junk", b"not a trace"),
            Err(MutationError::InvalidTrace(_))
        ));
        assert!(!dir.join("junk.vex").exists());
        // Invalid ids are refused.
        for bad in ["", "a/b", "../x", "a b", &"x".repeat(65)] {
            assert!(matches!(store.ingest(bad, &bytes), Err(MutationError::BadId(_))), "{bad}");
        }
        assert_eq!(store.stats().ingested_total.load(Ordering::Relaxed), 1);
        assert!(store.stats().ingest_errors_total.load(Ordering::Relaxed) >= 6);

        // Delete removes every tier and the file.
        store.remove("pushed").unwrap();
        assert!(store.is_empty());
        assert!(!dir.join("pushed.vex").exists());
        assert_eq!(store.resident_traces(), 0);
        assert!(matches!(store.remove("pushed"), Err(MutationError::NotFound(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_traces_store_is_read_only_for_ingest() {
        let store = ProfileStore::from_traces([("q".to_owned(), recorded("QMCPACK"))]).unwrap();
        let bytes = recorded_bytes("QMCPACK");
        assert!(matches!(store.ingest("x", &bytes), Err(MutationError::ReadOnly)));
        // Deleting a pinned trace still works (no file involved).
        store.remove("q").unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn materialize_matches_direct_replay() {
        let trace = recorded("QMCPACK");
        let direct = ValueExpert::builder().coarse(true).replay(&trace).unwrap();
        let served = materialize(&trace, &ReportParams::default()).expect("params replayable");
        assert_eq!(direct.render_text_document(), served.render_text_document());
        assert_eq!(direct.render_dot_document(None), served.render_dot_document(None));
        // Fine pass on, sharded.
        let p = ReportParams { fine: true, shards: 2, ..ReportParams::default() };
        let sharded = materialize(&trace, &p).unwrap();
        let direct = ValueExpert::builder()
            .coarse(true)
            .fine(true)
            .analysis_shards(2)
            .replay(&trace)
            .unwrap();
        assert_eq!(direct.render_text_document(), sharded.render_text_document());
    }

    #[test]
    fn cache_keys_are_canonical() {
        let a = ReportParams::default();
        let b = ReportParams::default();
        assert_eq!(a.cache_key(), b.cache_key());
        let c = ReportParams { shards: 8, ..ReportParams::default() };
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
