//! The in-memory profile store: every `.vex` trace of a directory,
//! decoded once at startup and indexed by id.
//!
//! A trace's id is its file stem (`darknet.vex` → `darknet`). Loading is
//! strict — a corrupt or duplicate trace fails the whole load with a
//! message naming the file, so a serving process never starts with a
//! partial view of its data directory.
//!
//! Static per-trace views (the `/traces` listing row, the object and
//! kernel breakdowns) are precomputed here; only the analysis-backed
//! endpoints (`/report`, `/flowgraph`) are materialized on demand, via
//! [`materialize`], behind the server's cache.

use serde::Serialize;
use std::collections::BTreeMap;
use std::path::Path;
use vex_core::profiler::{ReplayError, ValueExpert};
use vex_core::report::Profile;
use vex_gpu::hooks::ApiKind;
use vex_trace::container::{read_trace_file_with, DecodeOptions, RecordedTrace};
use vex_trace::event::Event;
use vex_trace::summary::TraceSummary;

/// One row of the `GET /traces` listing.
#[derive(Debug, Clone, Serialize)]
pub struct TraceListRow {
    /// Trace id (file stem).
    pub id: String,
    /// Device preset the trace was recorded against.
    pub device: String,
    /// Whether coarse capture snapshots were recorded.
    pub coarse: bool,
    /// Whether fine-grained access records were recorded.
    pub fine: bool,
    /// API events in the stream.
    pub api_events: u64,
    /// Instrumented kernel launches.
    pub instrumented_launches: u64,
    /// Fine-grained access records.
    pub records: u64,
    /// Application time of the recorded run, µs.
    pub app_us: f64,
}

/// One row of the `GET /traces/{id}/objects` breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct ObjectRow {
    /// Allocation id.
    pub id: u64,
    /// Allocation label (the paper's object name).
    pub label: String,
    /// Device address.
    pub addr: u64,
    /// Size, bytes.
    pub size_bytes: u64,
    /// Rendered allocating call path.
    pub context: String,
    /// Whether the object was freed before the end of the recording.
    pub freed: bool,
}

/// One row of the `GET /traces/{id}/kernels` breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Launches that were instrumented.
    pub instrumented_launches: u64,
    /// Launches skipped by sampling/filtering.
    pub skipped_launches: u64,
    /// Fine-grained records collected across instrumented launches.
    pub records: u64,
}

/// A loaded trace with its precomputed static views.
#[derive(Debug)]
pub struct StoredTrace {
    /// Trace id (file stem).
    pub id: String,
    /// The decoded event stream and trailer.
    pub trace: RecordedTrace,
    /// Header fields and per-event-type counts.
    pub summary: TraceSummary,
    /// Per-object breakdown rows.
    pub objects: Vec<ObjectRow>,
    /// Per-kernel breakdown rows.
    pub kernels: Vec<KernelRow>,
}

/// Loading the store failed.
#[derive(Debug)]
pub struct StoreError(pub String);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for StoreError {}

/// Every trace of one directory, indexed by id.
#[derive(Debug)]
pub struct ProfileStore {
    traces: BTreeMap<String, StoredTrace>,
}

impl ProfileStore {
    /// Loads every `*.vex` file under `dir` (non-recursive).
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the directory cannot be read, a trace fails to
    /// decode, or two files share a stem. An empty directory is a valid
    /// (empty) store.
    pub fn load_dir(dir: &Path) -> Result<Self, StoreError> {
        Self::load_dir_with(dir, 1)
    }

    /// [`load_dir`](Self::load_dir), decoding each trace's columnar
    /// batches on `decode_threads` workers. All columns are materialized
    /// — the server answers arbitrary `ReportParams` later, so no
    /// projection is safe here — but batch decode parallelizes the cold
    /// startup path.
    ///
    /// # Errors
    ///
    /// Same as [`load_dir`](Self::load_dir).
    pub fn load_dir_with(dir: &Path, decode_threads: usize) -> Result<Self, StoreError> {
        let opts = DecodeOptions { threads: decode_threads, ..DecodeOptions::default() };
        let entries = std::fs::read_dir(dir)
            .map_err(|e| StoreError(format!("cannot read {}: {e}", dir.display())))?;
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "vex") && p.is_file())
            .collect();
        paths.sort();
        let mut traces = BTreeMap::new();
        for path in paths {
            let id = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| StoreError(format!("non-utf8 trace name: {}", path.display())))?
                .to_owned();
            let trace = read_trace_file_with(&path, &opts)
                .map_err(|e| StoreError(format!("cannot load {}: {e}", path.display())))?;
            let stored = StoredTrace::new(id.clone(), trace);
            if traces.insert(id.clone(), stored).is_some() {
                return Err(StoreError(format!("duplicate trace id '{id}'")));
            }
        }
        Ok(ProfileStore { traces })
    }

    /// A store over already-decoded traces (tests, embedding).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on duplicate ids.
    pub fn from_traces(
        traces: impl IntoIterator<Item = (String, RecordedTrace)>,
    ) -> Result<Self, StoreError> {
        let mut map = BTreeMap::new();
        for (id, trace) in traces {
            let stored = StoredTrace::new(id.clone(), trace);
            if map.insert(id.clone(), stored).is_some() {
                return Err(StoreError(format!("duplicate trace id '{id}'")));
            }
        }
        Ok(ProfileStore { traces: map })
    }

    /// Number of traces loaded.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Trace ids, sorted.
    pub fn ids(&self) -> Vec<&str> {
        self.traces.keys().map(String::as_str).collect()
    }

    /// Looks a trace up by id.
    pub fn get(&self, id: &str) -> Option<&StoredTrace> {
        self.traces.get(id)
    }

    /// The `GET /traces` listing rows, sorted by id.
    pub fn list_rows(&self) -> Vec<TraceListRow> {
        self.traces
            .values()
            .map(|t| TraceListRow {
                id: t.id.clone(),
                device: t.summary.device.clone(),
                coarse: t.summary.flags.coarse,
                fine: t.summary.flags.fine,
                api_events: t.summary.api_events,
                instrumented_launches: t.summary.instrumented_launches,
                records: t.summary.records,
                app_us: t.summary.app_us,
            })
            .collect()
    }
}

impl StoredTrace {
    fn new(id: String, trace: RecordedTrace) -> Self {
        let summary = summarize_decoded(&trace);
        let objects = object_rows(&trace);
        let kernels = kernel_rows(&trace);
        StoredTrace { id, trace, summary, objects, kernels }
    }
}

/// A [`TraceSummary`] over an already-decoded trace (the streaming
/// variant in `vex_trace::summary` serves `vex info`).
fn summarize_decoded(trace: &RecordedTrace) -> TraceSummary {
    let mut s = TraceSummary {
        version: trace.version,
        flags: trace.flags,
        device: trace.spec.name.clone(),
        contexts: trace.contexts.len() as u64,
        batch_bytes: trace.batch_bytes,
        stats: trace.stats,
        app_us: trace.app_us,
        ..TraceSummary::default()
    };
    for event in &trace.events {
        match event {
            Event::Api { event, .. } => {
                s.api_events += 1;
                if matches!(event.kind, ApiKind::KernelLaunch { .. }) {
                    s.kernel_launches += 1;
                }
            }
            Event::LaunchBegin { .. } => s.instrumented_launches += 1,
            Event::SkippedLaunch { .. } => s.skipped_launches += 1,
            Event::Batch { records, .. } => {
                s.batches += 1;
                s.records += records.len() as u64;
            }
            Event::LaunchEnd { .. } => {}
        }
    }
    s
}

fn object_rows(trace: &RecordedTrace) -> Vec<ObjectRow> {
    let mut rows: Vec<ObjectRow> = Vec::new();
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    for event in &trace.events {
        if let Event::Api { event, .. } = event {
            match &event.kind {
                ApiKind::Malloc { info } => {
                    index.insert(info.id.0, rows.len());
                    rows.push(ObjectRow {
                        id: info.id.0,
                        label: info.label.clone(),
                        addr: info.addr,
                        size_bytes: info.size,
                        context: trace.contexts.get(&info.context).cloned().unwrap_or_else(
                            || format!("<unrecorded context {}>", info.context.0),
                        ),
                        freed: false,
                    });
                }
                ApiKind::Free { info } => {
                    if let Some(&i) = index.get(&info.id.0) {
                        rows[i].freed = true;
                    }
                }
                _ => {}
            }
        }
    }
    rows
}

fn kernel_rows(trace: &RecordedTrace) -> Vec<KernelRow> {
    let mut by_name: BTreeMap<String, KernelRow> = BTreeMap::new();
    fn row<'a>(by_name: &'a mut BTreeMap<String, KernelRow>, name: &str) -> &'a mut KernelRow {
        by_name.entry(name.to_owned()).or_insert_with(|| KernelRow {
            name: name.to_owned(),
            instrumented_launches: 0,
            skipped_launches: 0,
            records: 0,
        })
    }
    for event in &trace.events {
        match event {
            Event::LaunchBegin { info } => {
                row(&mut by_name, &info.kernel_name).instrumented_launches += 1
            }
            Event::SkippedLaunch { info } => {
                row(&mut by_name, &info.kernel_name).skipped_launches += 1
            }
            Event::Batch { info, records } => {
                row(&mut by_name, &info.kernel_name).records += records.len() as u64
            }
            _ => {}
        }
    }
    by_name.into_values().collect()
}

/// Analysis parameters of a report/flowgraph materialization — the
/// `vex replay` flag surface, minus output targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportParams {
    /// Run the coarse pass (default true).
    pub coarse: bool,
    /// Run the fine pass (default false).
    pub fine: bool,
    /// Run race detection.
    pub races: bool,
    /// Reuse-distance line size, if enabled.
    pub reuse: Option<u64>,
    /// Analysis shards (0 = synchronous engine).
    pub shards: usize,
}

impl Default for ReportParams {
    fn default() -> Self {
        ReportParams { coarse: true, fine: false, races: false, reuse: None, shards: 0 }
    }
}

impl ReportParams {
    /// Canonical cache-key rendering; equal params render equally.
    pub fn cache_key(&self) -> String {
        format!(
            "coarse={},fine={},races={},reuse={:?},shards={}",
            self.coarse, self.fine, self.races, self.reuse, self.shards
        )
    }
}

/// Replays `trace` under `params` — exactly the engine configuration
/// `vex replay` builds from the equivalent flags, so every rendered
/// surface matches the CLI byte for byte.
///
/// # Errors
///
/// [`ReplayError`] when the requested passes were not recorded.
pub fn materialize(
    trace: &RecordedTrace,
    params: &ReportParams,
) -> Result<Profile, ReplayError> {
    let mut b = ValueExpert::builder()
        .coarse(params.coarse)
        .fine(params.fine)
        .race_detection(params.races)
        .analysis_shards(params.shards);
    if let Some(line) = params.reuse {
        b = b.reuse_distance(line);
    }
    b.replay(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_gpu::runtime::Runtime;
    use vex_gpu::timing::DeviceSpec;
    use vex_trace::container::read_trace;
    use vex_workloads::{all_apps, Variant};

    fn recorded_bytes(app_name: &str) -> Vec<u8> {
        let apps = all_apps();
        let app = apps
            .iter()
            .find(|a| a.name().eq_ignore_ascii_case(app_name))
            .expect("bundled workload");
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let rec = ValueExpert::builder()
            .coarse(true)
            .fine(true)
            .record(&mut rt, Vec::new())
            .expect("header");
        app.run(&mut rt, Variant::Baseline).expect("workload runs");
        rec.finish(&mut rt).expect("trailer")
    }

    fn recorded(app_name: &str) -> RecordedTrace {
        read_trace(&recorded_bytes(app_name)).expect("decodes")
    }

    #[test]
    fn load_dir_indexes_by_stem_and_sorts() {
        let dir = std::env::temp_dir().join(format!("vex-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bytes = recorded_bytes("QMCPACK");
        let trace = read_trace(&bytes).expect("decodes");
        std::fs::write(dir.join("beta.vex"), &bytes).unwrap();
        std::fs::write(dir.join("alpha.vex"), &bytes).unwrap();
        std::fs::write(dir.join("notatrace.txt"), b"ignored").unwrap();

        let store = ProfileStore::load_dir(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.ids(), vec!["alpha", "beta"]);
        let alpha = store.get("alpha").unwrap();
        assert_eq!(alpha.summary.instrumented_launches, trace_launches(&trace));
        assert!(store.get("gamma").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn trace_launches(trace: &RecordedTrace) -> u64 {
        trace.events.iter().filter(|e| matches!(e, Event::LaunchBegin { .. })).count() as u64
    }

    #[test]
    fn corrupt_trace_fails_the_load_with_its_path() {
        let dir = std::env::temp_dir().join(format!("vex-store-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.vex"), b"not a trace").unwrap();
        let err = ProfileStore::load_dir(&dir).unwrap_err();
        assert!(err.0.contains("bad.vex"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn static_views_cover_objects_and_kernels() {
        let trace = recorded("QMCPACK");
        let store = ProfileStore::from_traces([("q".to_owned(), trace)]).expect("unique ids");
        let t = store.get("q").unwrap();
        assert!(!t.objects.is_empty(), "workload allocates");
        assert!(!t.kernels.is_empty(), "workload launches kernels");
        assert!(t.objects.iter().all(|o| !o.label.is_empty()));
        let rows = store.list_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, "q");
        assert!(rows[0].fine);
        // Decoded-trace summary agrees with the streaming summarizer's
        // counts on the same stream.
        assert_eq!(
            t.summary.instrumented_launches,
            t.kernels.iter().map(|k| k.instrumented_launches).sum::<u64>()
        );
        assert_eq!(t.summary.records, t.kernels.iter().map(|k| k.records).sum::<u64>());
    }

    #[test]
    fn materialize_matches_direct_replay() {
        let trace = recorded("QMCPACK");
        let direct = ValueExpert::builder().coarse(true).replay(&trace).unwrap();
        let served = materialize(&trace, &ReportParams::default()).expect("params replayable");
        assert_eq!(direct.render_text_document(), served.render_text_document());
        assert_eq!(direct.render_dot_document(None), served.render_dot_document(None));
        // Fine pass on, sharded.
        let p = ReportParams { fine: true, shards: 2, ..ReportParams::default() };
        let sharded = materialize(&trace, &p).unwrap();
        let direct = ValueExpert::builder()
            .coarse(true)
            .fine(true)
            .analysis_shards(2)
            .replay(&trace)
            .unwrap();
        assert_eq!(direct.render_text_document(), sharded.render_text_document());
    }

    #[test]
    fn cache_keys_are_canonical() {
        let a = ReportParams::default();
        let b = ReportParams::default();
        assert_eq!(a.cache_key(), b.cache_key());
        let c = ReportParams { shards: 8, ..ReportParams::default() };
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
