//! Fault-injection failpoints for crash and partial-failure testing.
//!
//! A *failpoint* is a named site in production code (ingest persist,
//! spool writes, client push I/O) that consults a process-wide registry
//! before doing its real work. In normal operation the registry is
//! empty and the check is one cheap atomic load; under test an
//! [`Action`] armed at that site makes the real code path fail exactly
//! the way a crashing disk, torn write, or dropped connection would —
//! through the same error-handling code the production failure takes.
//!
//! Failpoints are armed either programmatically ([`arm`] /
//! [`arm_times`]) or from the `VEX_FAILPOINTS` environment variable at
//! first use, e.g.:
//!
//! ```text
//! VEX_FAILPOINTS="store.ingest.write=io_error;client.send=disconnect*2"
//! ```
//!
//! Each clause is `site=action` with an optional `*N` suffix meaning
//! "fire N times, then behave normally" (no suffix = fire forever).
//! Actions: `io_error`, `partial:<bytes>`, `disconnect`, `kill`.
//!
//! Tests that arm failpoints must hold a [`session`] guard: it
//! serialises failpoint users across threads (the registry is
//! process-global) and clears the registry when dropped, so a panicking
//! test cannot leak armed faults into the next one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed failpoint does when its site is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Fail with an injected I/O error (emulates disk-full / EIO).
    IoError,
    /// Write only the first `n` bytes of the payload, then fail
    /// (emulates a torn write: power loss mid-`write(2)`).
    Partial(usize),
    /// Drop the connection mid-transfer (emulates a network fault).
    Disconnect,
    /// Stop before the final atomic step and leave temporary state
    /// behind (emulates a process kill; the site must skip cleanup).
    Kill,
}

impl Action {
    /// The injected error for this action, tagged with the site name so
    /// test assertions can tell injected failures from real ones.
    pub fn to_io_error(&self, site: &str) -> std::io::Error {
        let (kind, what) = match self {
            Action::IoError => (std::io::ErrorKind::Other, "injected i/o error"),
            Action::Partial(_) => (std::io::ErrorKind::WriteZero, "injected torn write"),
            Action::Disconnect => (std::io::ErrorKind::ConnectionReset, "injected disconnect"),
            Action::Kill => (std::io::ErrorKind::Other, "injected kill"),
        };
        std::io::Error::new(kind, format!("failpoint {site}: {what}"))
    }
}

#[derive(Debug)]
struct Armed {
    action: Action,
    /// `None` = fire forever; `Some(n)` = fire `n` more times.
    remaining: Option<u64>,
}

#[derive(Debug, Default)]
struct Registry {
    sites: Mutex<HashMap<String, Armed>>,
    /// Bumped on every arm/clear so `fire` can skip the mutex entirely
    /// when nothing has ever been armed (the overwhelmingly common
    /// production case).
    generation: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let reg = Registry::default();
        if let Ok(spec) = std::env::var("VEX_FAILPOINTS") {
            let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
            for (site, armed) in parse_spec(&spec) {
                sites.insert(site, armed);
            }
            if !sites.is_empty() {
                reg.generation.store(1, Ordering::SeqCst);
            }
        }
        reg
    })
}

/// Parses a `VEX_FAILPOINTS`-style spec. Malformed clauses are skipped:
/// a fault harness must never turn a typo into a silent production
/// failure, and tests arm programmatically anyway.
fn parse_spec(spec: &str) -> Vec<(String, Armed)> {
    let mut out = Vec::new();
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let Some((site, rhs)) = clause.split_once('=') else {
            continue;
        };
        let (action_str, remaining) = match rhs.split_once('*') {
            Some((a, n)) => match n.trim().parse::<u64>() {
                Ok(n) => (a.trim(), Some(n)),
                Err(_) => continue,
            },
            None => (rhs.trim(), None),
        };
        let action = match action_str.split_once(':') {
            Some(("partial", n)) => match n.trim().parse::<usize>() {
                Ok(n) => Action::Partial(n),
                Err(_) => continue,
            },
            None => match action_str {
                "io_error" => Action::IoError,
                "disconnect" => Action::Disconnect,
                "kill" => Action::Kill,
                _ => continue,
            },
            Some(_) => continue,
        };
        out.push((site.trim().to_string(), Armed { action, remaining }));
    }
    out
}

/// Arms `site` to fire `action` on every hit until cleared.
pub fn arm(site: &str, action: Action) {
    arm_inner(site, action, None);
}

/// Arms `site` to fire `action` for the next `times` hits, then behave
/// normally (the failpoint disarms itself). Useful for "flaky, then
/// recovers" scenarios.
pub fn arm_times(site: &str, action: Action, times: u64) {
    arm_inner(site, action, Some(times));
}

fn arm_inner(site: &str, action: Action, remaining: Option<u64>) {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites.insert(site.to_string(), Armed { action, remaining });
    reg.generation.fetch_add(1, Ordering::SeqCst);
}

/// Disarms `site`.
pub fn clear(site: &str) {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites.remove(site);
    reg.generation.fetch_add(1, Ordering::SeqCst);
}

/// Disarms every failpoint.
pub fn clear_all() {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites.clear();
    reg.generation.fetch_add(1, Ordering::SeqCst);
}

/// Consults the registry at `site`. Returns the armed [`Action`] if
/// the failpoint should fire on this hit (decrementing a `*N` budget),
/// or `None` to proceed normally. When nothing has ever been armed
/// this is a single relaxed atomic load — safe to leave in hot paths.
pub fn fire(site: &str) -> Option<Action> {
    let reg = registry();
    if reg.generation.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    let armed = sites.get_mut(site)?;
    let action = armed.action.clone();
    match &mut armed.remaining {
        None => {}
        Some(0) => {
            sites.remove(site);
            return None;
        }
        Some(n) => {
            *n -= 1;
            if *n == 0 {
                sites.remove(site);
            }
        }
    }
    Some(action)
}

/// Exclusive failpoint session for tests.
///
/// Holding the guard serialises all failpoint-arming tests in the
/// process; the registry is cleared both on acquisition (stale state
/// from a panicked predecessor) and on drop.
#[derive(Debug)]
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

/// Acquires the exclusive failpoint [`Session`]. Call first in any
/// test that arms failpoints.
pub fn session() -> Session {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    clear_all();
    Session { _guard: guard }
}

impl Drop for Session {
    fn drop(&mut self) {
        clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire() {
        let _s = session();
        assert_eq!(fire("store.ingest.write"), None);
    }

    #[test]
    fn armed_site_fires_until_cleared() {
        let _s = session();
        arm("x", Action::IoError);
        assert_eq!(fire("x"), Some(Action::IoError));
        assert_eq!(fire("x"), Some(Action::IoError));
        clear("x");
        assert_eq!(fire("x"), None);
    }

    #[test]
    fn counted_failpoint_disarms_itself() {
        let _s = session();
        arm_times("y", Action::Disconnect, 2);
        assert_eq!(fire("y"), Some(Action::Disconnect));
        assert_eq!(fire("y"), Some(Action::Disconnect));
        assert_eq!(fire("y"), None);
        assert_eq!(fire("y"), None);
    }

    #[test]
    fn session_drop_clears_everything() {
        {
            let _s = session();
            arm("z", Action::Kill);
        }
        let _s = session();
        assert_eq!(fire("z"), None);
    }

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let parsed = parse_spec("a=io_error; b=partial:64*3 ;c=disconnect;d=kill*1");
        let by_name: HashMap<_, _> = parsed.into_iter().collect();
        assert_eq!(by_name["a"].action, Action::IoError);
        assert_eq!(by_name["a"].remaining, None);
        assert_eq!(by_name["b"].action, Action::Partial(64));
        assert_eq!(by_name["b"].remaining, Some(3));
        assert_eq!(by_name["c"].action, Action::Disconnect);
        assert_eq!(by_name["d"].action, Action::Kill);
        assert_eq!(by_name["d"].remaining, Some(1));
    }

    #[test]
    fn malformed_spec_clauses_are_skipped() {
        let parsed = parse_spec("ok=kill;bad;worse=;x=partial:abc;y=io_error*z");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "ok");
    }

    #[test]
    fn injected_errors_name_their_site() {
        let e = Action::IoError.to_io_error("store.ingest.write");
        assert!(e.to_string().contains("store.ingest.write"), "{e}");
    }
}
