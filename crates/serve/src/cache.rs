//! The report cache: bounded LRU + single-flight computation.
//!
//! Materializing a report replays a full analysis, so the server caches
//! rendered bodies keyed by `(trace incarnation, endpoint, params)` —
//! the trace's id plus its [`crate::store::TraceEntry::generation`], so
//! an id reused after a delete never aliases the old entries. Two
//! production behaviours matter beyond the map itself:
//!
//! * **LRU bound** — at most `capacity` entries stay resident; the least
//!   recently *used* entry is evicted, so a hot report stays hot however
//!   many cold ones pass through.
//! * **Single-flight** — when N requests for the same cold key arrive
//!   concurrently, exactly one thread computes; the rest block on the
//!   flight and share its result. A thundering herd on a cold cache runs
//!   the analysis once, not N times.
//!
//! `capacity == 0` disables retention but keeps single-flight: concurrent
//! duplicates still coalesce, nothing is kept afterwards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A computed response body, shared between the cache and its readers.
pub type CachedValue = Arc<Result<crate::http::Response, String>>;

/// One in-flight computation; completed exactly once, then read by every
/// coalesced waiter.
struct Flight {
    slot: Mutex<Option<CachedValue>>,
    done: Condvar,
}

struct CacheState {
    /// key → (value, last-use tick).
    entries: HashMap<String, (CachedValue, u64)>,
    inflight: HashMap<String, Arc<Flight>>,
    tick: u64,
}

/// Counters the `/metrics` endpoint exposes.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: AtomicU64,
    /// Requests that ran the computation.
    pub misses: AtomicU64,
    /// Requests that waited on another request's in-flight computation.
    pub coalesced: AtomicU64,
    /// Entries evicted to stay within capacity.
    pub evictions: AtomicU64,
}

impl CacheStats {
    /// Hit rate over all lookups (coalesced waits count as hits: the
    /// analysis did not run again for them).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits.load(Ordering::Relaxed) + self.coalesced.load(Ordering::Relaxed);
        let total = hits + self.misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Bounded LRU cache with single-flight computation.
pub struct ReportCache {
    state: Mutex<CacheState>,
    capacity: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for ReportCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("ReportCache")
            .field("capacity", &self.capacity)
            .field("entries", &st.entries.len())
            .field("inflight", &st.inflight.len())
            .finish()
    }
}

impl ReportCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                inflight: HashMap::new(),
                tick: 0,
            }),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Lookup/compute counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached value for `key`, computing it with `compute` on
    /// a miss. Concurrent callers with the same key coalesce onto one
    /// computation.
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<crate::http::Response, String>,
    ) -> CachedValue {
        // Fast path + flight registration under one lock.
        let flight = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.tick += 1;
            let tick = st.tick;
            if let Some((value, last_use)) = st.entries.get_mut(key) {
                *last_use = tick;
                let value = value.clone();
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return value;
            }
            if let Some(flight) = st.inflight.get(key) {
                let flight = flight.clone();
                drop(st);
                self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                return Self::wait(&flight);
            }
            let flight = Arc::new(Flight { slot: Mutex::new(None), done: Condvar::new() });
            st.inflight.insert(key.to_owned(), flight.clone());
            flight
        };

        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        // Compute outside the cache lock so unrelated keys proceed.
        let value: CachedValue = Arc::new(compute());

        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.inflight.remove(key);
            // Only successful computations are retained; errors are
            // returned to the coalesced waiters but not cached, so a
            // transient failure does not poison the key.
            if self.capacity > 0 && value.is_ok() {
                st.tick += 1;
                let tick = st.tick;
                st.entries.insert(key.to_owned(), (value.clone(), tick));
                while st.entries.len() > self.capacity {
                    let coldest = st
                        .entries
                        .iter()
                        .min_by_key(|(_, (_, t))| *t)
                        .map(|(k, _)| k.clone())
                        .expect("non-empty over capacity");
                    st.entries.remove(&coldest);
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        let mut slot = flight.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(value.clone());
        drop(slot);
        flight.done.notify_all();
        value
    }

    fn wait(flight: &Flight) -> CachedValue {
        let mut slot = flight.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = slot.as_ref() {
                return value.clone();
            }
            slot = flight.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Response, Status};
    use std::sync::atomic::AtomicUsize;

    fn body(s: &str) -> Result<Response, String> {
        Ok(Response::text(Status::Ok, s))
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let cache = ReportCache::new(4);
        let a = cache.get_or_compute("k", || body("v"));
        let b = cache.get_or_compute("k", || panic!("must be cached"));
        assert_eq!(a.as_ref().as_ref().unwrap().body, b"v");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 1);
        assert!(cache.stats().hit_rate() > 0.49);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ReportCache::new(2);
        cache.get_or_compute("a", || body("a"));
        cache.get_or_compute("b", || body("b"));
        cache.get_or_compute("a", || panic!("a is hot")); // touch a
        cache.get_or_compute("c", || body("c")); // evicts b
        assert_eq!(cache.len(), 2);
        cache.get_or_compute("a", || panic!("a survived"));
        let recomputed = AtomicUsize::new(0);
        cache.get_or_compute("b", || {
            recomputed.fetch_add(1, Ordering::Relaxed);
            body("b2")
        });
        assert_eq!(recomputed.load(Ordering::Relaxed), 1, "b was evicted");
        assert_eq!(cache.stats().evictions.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn zero_capacity_never_retains() {
        let cache = ReportCache::new(0);
        cache.get_or_compute("k", || body("1"));
        let ran = AtomicUsize::new(0);
        cache.get_or_compute("k", || {
            ran.fetch_add(1, Ordering::Relaxed);
            body("2")
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn errors_are_returned_but_not_cached() {
        let cache = ReportCache::new(4);
        let v = cache.get_or_compute("k", || Err("boom".into()));
        assert_eq!(v.as_ref().as_ref().unwrap_err(), "boom");
        assert!(cache.is_empty());
        let v = cache.get_or_compute("k", || body("recovered"));
        assert!(v.as_ref().is_ok());
    }

    #[test]
    fn single_flight_coalesces_concurrent_misses() {
        let cache = Arc::new(ReportCache::new(4));
        let computations = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            let computations = computations.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let v = cache.get_or_compute("hot", || {
                    computations.fetch_add(1, Ordering::Relaxed);
                    // Give the herd time to pile onto the flight.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    body("shared")
                });
                assert_eq!(v.as_ref().as_ref().unwrap().body, b"shared");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            computations.load(Ordering::Relaxed),
            1,
            "the herd must coalesce onto one computation"
        );
        let s = cache.stats();
        assert_eq!(s.misses.load(Ordering::Relaxed), 1);
        assert_eq!(s.hits.load(Ordering::Relaxed) + s.coalesced.load(Ordering::Relaxed), 7);
    }
}
