//! Request metrics: counts, latency histograms, cache effectiveness.
//!
//! Rendered by `GET /metrics` in a Prometheus-style text exposition —
//! counters and cumulative histogram buckets — so the endpoint can feed
//! a real scrape pipeline unchanged. Recording is lock-light: one mutex
//! over a small per-endpoint table, taken once per request after the
//! response is written.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;
use std::time::Duration;

/// Cumulative latency bucket upper bounds, µs. The last bucket is +Inf.
pub const LATENCY_BUCKETS_US: [u64; 7] = [100, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// Per-endpoint counters.
#[derive(Debug, Default, Clone)]
struct EndpointStats {
    requests: u64,
    errors: u64,
    /// Cumulative counts per `LATENCY_BUCKETS_US` bound (+ one for Inf).
    buckets: [u64; LATENCY_BUCKETS_US.len() + 1],
    total_us: u64,
}

/// Server-wide metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: Mutex<BTreeMap<&'static str, EndpointStats>>,
    /// Connections answered with a shed `503` by the accept thread
    /// because the worker queue stayed saturated past the shed wait.
    sheds: AtomicU64,
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one served request against `endpoint` (a static route
    /// label, not the raw path — cardinality stays bounded).
    pub fn record(&self, endpoint: &'static str, latency: Duration, is_error: bool) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut map = self.endpoints.lock().unwrap_or_else(|e| e.into_inner());
        let e = map.entry(endpoint).or_default();
        e.requests += 1;
        if is_error {
            e.errors += 1;
        }
        e.total_us = e.total_us.saturating_add(us);
        for (i, bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            if us <= *bound {
                e.buckets[i] += 1;
            }
        }
        *e.buckets.last_mut().expect("bucket array non-empty") += 1;
    }

    /// Counts one connection shed with `503` before reaching a worker.
    pub fn record_shed(&self) {
        self.sheds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total requests recorded across all endpoints.
    pub fn total_requests(&self) -> u64 {
        let map = self.endpoints.lock().unwrap_or_else(|e| e.into_inner());
        map.values().map(|e| e.requests).sum()
    }

    /// Renders the Prometheus-style exposition, including the cache
    /// section from `cache` and the two-tier store section from `store`.
    pub fn render(
        &self,
        cache: &crate::cache::CacheStats,
        store: &crate::store::StoreStats,
    ) -> String {
        use std::fmt::Write;
        use std::sync::atomic::Ordering;
        let mut s = String::new();
        let map = self.endpoints.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(s, "# TYPE vex_requests_total counter");
        for (name, e) in map.iter() {
            let _ = writeln!(s, "vex_requests_total{{endpoint=\"{name}\"}} {}", e.requests);
        }
        let _ = writeln!(s, "# TYPE vex_request_errors_total counter");
        for (name, e) in map.iter() {
            let _ = writeln!(s, "vex_request_errors_total{{endpoint=\"{name}\"}} {}", e.errors);
        }
        let _ = writeln!(s, "# TYPE vex_requests_shed_total counter");
        let _ = writeln!(s, "vex_requests_shed_total {}", self.sheds());
        let _ = writeln!(s, "# TYPE vex_request_duration_us histogram");
        for (name, e) in map.iter() {
            for (i, bound) in LATENCY_BUCKETS_US.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "vex_request_duration_us_bucket{{endpoint=\"{name}\",le=\"{bound}\"}} {}",
                    e.buckets[i]
                );
            }
            let _ = writeln!(
                s,
                "vex_request_duration_us_bucket{{endpoint=\"{name}\",le=\"+Inf\"}} {}",
                e.buckets[LATENCY_BUCKETS_US.len()]
            );
            let _ = writeln!(
                s,
                "vex_request_duration_us_sum{{endpoint=\"{name}\"}} {}",
                e.total_us
            );
            let _ = writeln!(
                s,
                "vex_request_duration_us_count{{endpoint=\"{name}\"}} {}",
                e.requests
            );
        }
        drop(map);
        let hits = cache.hits.load(Ordering::Relaxed);
        let misses = cache.misses.load(Ordering::Relaxed);
        let coalesced = cache.coalesced.load(Ordering::Relaxed);
        let evictions = cache.evictions.load(Ordering::Relaxed);
        let _ = writeln!(s, "# TYPE vex_cache counter");
        let _ = writeln!(s, "vex_cache_hits_total {hits}");
        let _ = writeln!(s, "vex_cache_misses_total {misses}");
        let _ = writeln!(s, "vex_cache_coalesced_total {coalesced}");
        let _ = writeln!(s, "vex_cache_evictions_total {evictions}");
        let _ = writeln!(s, "# TYPE vex_cache_hit_rate gauge");
        let _ = writeln!(s, "vex_cache_hit_rate {:.6}", cache.hit_rate());
        let _ = writeln!(s, "# TYPE vex_store gauge");
        let _ = writeln!(
            s,
            "vex_store_resident_bytes {}",
            store.resident_bytes.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "vex_store_resident_traces {}",
            store.resident_traces.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "vex_store_memory_budget_bytes {}",
            store.memory_budget_bytes.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "vex_store_quarantined_traces {}",
            store.quarantined.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "vex_store_trace_ttl_seconds {}",
            store.trace_ttl_seconds.load(Ordering::Relaxed)
        );
        let _ = writeln!(s, "# TYPE vex_store_ops counter");
        let _ = writeln!(
            s,
            "vex_store_decodes_total {}",
            store.decodes_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "vex_store_evictions_total {}",
            store.evictions_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "vex_store_evicted_bytes_total {}",
            store.evicted_bytes_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "vex_store_ttl_evictions_total {}",
            store.ttl_evictions_total.load(Ordering::Relaxed)
        );
        let _ =
            writeln!(s, "vex_ingest_total {}", store.ingested_total.load(Ordering::Relaxed));
        let _ = writeln!(
            s,
            "vex_ingest_errors_total {}",
            store.ingest_errors_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "vex_ingest_bytes_total {}",
            store.ingested_bytes_total.load(Ordering::Relaxed)
        );
        let _ =
            writeln!(s, "vex_deletes_total {}", store.deleted_total.load(Ordering::Relaxed));
        let _ = writeln!(
            s,
            "vex_store_orphans_swept_total {}",
            store.orphans_swept.load(Ordering::Relaxed)
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use std::sync::atomic::Ordering;

    #[test]
    fn records_counts_and_buckets() {
        let m = Metrics::new();
        m.record("report", Duration::from_micros(50), false);
        m.record("report", Duration::from_micros(700), false);
        m.record("report", Duration::from_secs(10), true);
        m.record("healthz", Duration::from_micros(10), false);
        m.record_shed();
        m.record_shed();
        assert_eq!(m.total_requests(), 4);
        assert_eq!(m.sheds(), 2);

        let stats = CacheStats::default();
        stats.hits.fetch_add(3, Ordering::Relaxed);
        stats.misses.fetch_add(1, Ordering::Relaxed);
        let store = crate::store::StoreStats::default();
        store.resident_bytes.store(12345, Ordering::Relaxed);
        store.evictions_total.store(2, Ordering::Relaxed);
        store.ingested_total.store(7, Ordering::Relaxed);
        let text = m.render(&stats, &store);
        assert!(text.contains("vex_requests_total{endpoint=\"report\"} 3"), "{text}");
        assert!(text.contains("vex_request_errors_total{endpoint=\"report\"} 1"), "{text}");
        // 50us lands in every bucket; 10s only in +Inf.
        assert!(
            text.contains("vex_request_duration_us_bucket{endpoint=\"report\",le=\"100\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("vex_request_duration_us_bucket{endpoint=\"report\",le=\"1000\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("vex_request_duration_us_bucket{endpoint=\"report\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("vex_cache_hits_total 3"), "{text}");
        assert!(text.contains("vex_cache_hit_rate 0.75"), "{text}");
        assert!(text.contains("vex_store_resident_bytes 12345"), "{text}");
        assert!(text.contains("vex_store_evictions_total 2"), "{text}");
        assert!(text.contains("vex_ingest_total 7"), "{text}");
        assert!(text.contains("vex_store_memory_budget_bytes 0"), "{text}");
        assert!(text.contains("vex_store_trace_ttl_seconds 0"), "{text}");
        assert!(text.contains("vex_store_ttl_evictions_total 0"), "{text}");
        assert!(text.contains("vex_requests_shed_total 2"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        for us in [50u64, 400, 900, 4000, 20_000] {
            m.record("e", Duration::from_micros(us), false);
        }
        let text = m.render(&CacheStats::default(), &crate::store::StoreStats::default());
        let count_for = |bound: &str| -> u64 {
            let needle =
                format!("vex_request_duration_us_bucket{{endpoint=\"e\",le=\"{bound}\"}} ");
            let line = text
                .lines()
                .find(|l| l.starts_with(&needle))
                .unwrap_or_else(|| panic!("no bucket {bound}"));
            line.rsplit(' ').next().unwrap().parse().unwrap()
        };
        assert_eq!(count_for("100"), 1);
        assert_eq!(count_for("500"), 2);
        assert_eq!(count_for("1000"), 3);
        assert_eq!(count_for("5000"), 4);
        assert_eq!(count_for("25000"), 5);
        assert_eq!(count_for("+Inf"), 5);
    }
}
