//! Trace salvage: recover the longest valid frame prefix of a
//! truncated or torn `.vex` container.
//!
//! The container is length-framed, so a recording cut short by a crash
//! — mid-frame, mid-payload, or cleanly at a frame boundary but before
//! the `Finish` trailer — still carries every frame written before the
//! cut. [`salvage_trace`] walks frames with [`TraceReader`] and, at the
//! first decode failure, returns everything recovered so far plus a
//! [`SalvageReport`] accounting for the loss. [`repair_trace`] goes one
//! step further and re-encodes the recovered prefix into a fresh, valid
//! container of the same format version, so every downstream consumer
//! (`vex replay`, `vex serve`) can use the salvaged trace unchanged.
//!
//! Salvage requires a readable header (magic, version, flags, device
//! spec): a file cut inside the header has no recoverable frames and
//! salvage fails with the header's [`DecodeError`].

use crate::codec::DecodeError;
use crate::container::{
    FormatVersion, RecordedTrace, TraceFlags, TraceFrame, TraceReader, TraceWriter,
};
use crate::event::{Event, EventSink};
use crate::CollectorStats;
use std::collections::BTreeMap;
use vex_gpu::callpath::CallPathId;
use vex_gpu::timing::DeviceSpec;

/// Loss accounting of one salvage pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageReport {
    /// Frames recovered intact (events + contexts + trailer frames).
    pub frames_recovered: u64,
    /// Total input bytes presented to the salvager.
    pub bytes_total: u64,
    /// Bytes covered by the header plus every recovered frame — the
    /// length of the longest valid prefix.
    pub bytes_recovered: u64,
    /// Bytes past the last intact frame that were discarded.
    pub bytes_discarded: u64,
    /// The decode error that ended the walk, `None` for a complete
    /// trace.
    pub first_error: Option<DecodeError>,
    /// Whether the `Finish` trailer was among the recovered frames (its
    /// stats and app time are then exact rather than synthesized).
    pub has_trailer: bool,
}

impl SalvageReport {
    /// Whether the input was a complete, valid container (nothing was
    /// discarded and the trailer is present).
    pub fn complete(&self) -> bool {
        self.first_error.is_none() && self.has_trailer
    }

    /// Recovered fraction of the input, in percent (0–100). An empty
    /// input is 0% recoverable.
    pub fn recoverable_percent(&self) -> f64 {
        if self.bytes_total == 0 {
            return 0.0;
        }
        self.bytes_recovered as f64 / self.bytes_total as f64 * 100.0
    }
}

/// The recovered prefix of a truncated trace, plus its loss report.
#[derive(Debug, Clone)]
pub struct SalvagedTrace {
    /// Container format version of the source header.
    pub version: u32,
    /// Device preset of the recording session.
    pub spec: DeviceSpec,
    /// Which passes were recorded.
    pub flags: TraceFlags,
    /// Encoded payload bytes of the recovered record-batch frames.
    pub batch_bytes: u64,
    /// Events of the longest valid frame prefix, in stream order.
    pub events: Vec<Event>,
    /// Rendered call paths, if the contexts frame survived the cut.
    pub contexts: BTreeMap<CallPathId, String>,
    /// Collector counters, if the `Finish` trailer survived the cut.
    pub stats: Option<CollectorStats>,
    /// Application time (µs), if the `Finish` trailer survived the cut.
    pub app_us: Option<f64>,
    /// Loss accounting of the salvage walk.
    pub report: SalvageReport,
}

impl SalvagedTrace {
    /// The [`FormatVersion`] matching the source header, used to
    /// re-encode the prefix without changing the on-disk format.
    pub fn format_version(&self) -> FormatVersion {
        if self.version == 1 {
            FormatVersion::V1
        } else {
            FormatVersion::V2
        }
    }

    /// Converts the salvaged prefix into a [`RecordedTrace`] so the
    /// replay machinery can analyze it directly. Missing trailer fields
    /// are defaulted (zero stats, zero app time) — exactly what
    /// [`repair_trace`] writes into the repaired container, so a replay
    /// of this value matches a replay of the repaired file.
    pub fn into_recorded(self) -> RecordedTrace {
        RecordedTrace {
            version: self.version,
            spec: self.spec,
            flags: self.flags,
            batch_bytes: self.batch_bytes,
            events: self.events,
            contexts: self.contexts,
            stats: self.stats.unwrap_or_default(),
            app_us: self.app_us.unwrap_or(0.0),
        }
    }
}

/// Recovers the longest valid frame prefix of `bytes`.
///
/// Unlike [`crate::container::read_trace`], a truncated or corrupt
/// frame does not fail the decode: the walk stops there and everything
/// before it is returned, with the stopping error recorded in
/// [`SalvageReport::first_error`]. A complete trace salvages to itself
/// (`report.complete()`).
///
/// # Errors
///
/// A header that cannot be parsed — wrong magic, unsupported version,
/// or a cut inside the fixed header or device spec — leaves nothing to
/// recover and fails with that [`DecodeError`].
pub fn salvage_trace(bytes: &[u8]) -> Result<SalvagedTrace, DecodeError> {
    let mut reader = TraceReader::new(bytes)?;
    let version = reader.version();
    let spec = reader.spec().clone();
    let flags = reader.flags();

    let mut events = Vec::new();
    let mut contexts = BTreeMap::new();
    let mut stats = None;
    let mut app_us = None;
    let mut frames_recovered = 0u64;
    // `offset()` only advances past a frame once `next_frame` returns
    // `Ok`, so sampling it after each success tracks the end of the
    // longest valid prefix.
    let mut bytes_recovered = reader.offset();
    let mut first_error = None;
    let mut has_trailer = false;
    loop {
        match reader.next_frame() {
            Ok(Some(frame)) => {
                frames_recovered += 1;
                bytes_recovered = reader.offset();
                match frame {
                    TraceFrame::Event(e) => events.push(e),
                    TraceFrame::Contexts(map) => contexts = map,
                    TraceFrame::Finish { stats: s, app_us: t } => {
                        stats = Some(s);
                        app_us = Some(t);
                        has_trailer = true;
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                first_error = Some(e);
                break;
            }
        }
    }
    let bytes_total = bytes.len() as u64;
    Ok(SalvagedTrace {
        version,
        spec,
        flags,
        batch_bytes: reader.batch_bytes(),
        events,
        contexts,
        stats,
        app_us,
        report: SalvageReport {
            frames_recovered,
            bytes_total,
            bytes_recovered,
            bytes_discarded: bytes_total.saturating_sub(bytes_recovered),
            first_error,
            has_trailer,
        },
    })
}

/// Salvages a trace file. See [`salvage_trace`].
///
/// # Errors
///
/// [`DecodeError::Io`] if the file cannot be read, otherwise as
/// [`salvage_trace`].
pub fn salvage_trace_file(path: &std::path::Path) -> Result<SalvagedTrace, DecodeError> {
    let bytes = std::fs::read(path)?;
    salvage_trace(&bytes)
}

/// Salvages `bytes` and re-encodes the recovered prefix into a fresh,
/// valid container of the same format version. The repaired container
/// always carries a contexts frame and a `Finish` trailer: recovered
/// values when those frames survived the cut, empty/zeroed ones
/// otherwise.
///
/// Returns the repaired container bytes and the loss report of the
/// salvage pass.
///
/// # Errors
///
/// As [`salvage_trace`] for an unsalvageable header; re-encoding into a
/// `Vec` cannot fail.
pub fn repair_trace(bytes: &[u8]) -> Result<(Vec<u8>, SalvageReport), DecodeError> {
    let salvaged = salvage_trace(bytes)?;
    let report = salvaged.report.clone();
    let writer = TraceWriter::with_version(
        Vec::new(),
        &salvaged.spec,
        salvaged.flags,
        salvaged.format_version(),
    )?;
    for event in &salvaged.events {
        writer.on_event(event);
    }
    let contexts: Vec<(CallPathId, String)> = salvaged.contexts.into_iter().collect();
    let repaired = writer.finish(
        &contexts,
        &salvaged.stats.unwrap_or_default(),
        salvaged.app_us.unwrap_or(0.0),
    )?;
    Ok((repaired, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::read_trace;
    use crate::event::Event;
    use crate::AccessRecord;
    use std::sync::Arc;
    use vex_gpu::alloc::AllocationInfo;
    use vex_gpu::dim::Dim3;
    use vex_gpu::hooks::{ApiEvent, ApiKind, CapturedView, LaunchId, LaunchInfo};
    use vex_gpu::ir::{InstrTableBuilder, MemSpace, Pc, ScalarType};
    use vex_gpu::stream::StreamId;

    fn launch_info(id: u64) -> Arc<LaunchInfo> {
        let table =
            InstrTableBuilder::new().store(Pc(0), ScalarType::F32, MemSpace::Global).build();
        Arc::new(LaunchInfo {
            launch: LaunchId(id),
            kernel_name: format!("k{id}"),
            grid: Dim3::linear(1),
            block: Dim3::linear(32),
            shared_bytes: 0,
            context: CallPathId(0),
            stream: StreamId(0),
            instr_table: Arc::new(table),
        })
    }

    fn record(i: u64) -> AccessRecord {
        AccessRecord {
            pc: Pc(0),
            addr: 4096 + i * 4,
            bits: i,
            size: 4,
            is_store: true,
            space: MemSpace::Global,
            block: 0,
            thread: i as u32,
            is_atomic: false,
        }
    }

    fn sample_events() -> Vec<Event> {
        let info = launch_info(0);
        let alloc = AllocationInfo {
            id: vex_gpu::alloc::AllocId(1),
            addr: 4096,
            size: 256,
            label: "buf".into(),
            context: CallPathId(1),
            live: true,
        };
        vec![
            Event::Api {
                event: ApiEvent {
                    seq: 0,
                    kind: ApiKind::Malloc { info: alloc },
                    context: CallPathId(1),
                    stream: StreamId(0),
                },
                kernel: None,
                captured: Arc::new(CapturedView::new()),
            },
            Event::LaunchBegin { info: info.clone() },
            Event::Batch {
                info: info.clone(),
                records: Arc::new((0..7).map(record).collect()),
            },
            Event::LaunchEnd { info },
            Event::SkippedLaunch { info: launch_info(1) },
        ]
    }

    fn write_sample(version: FormatVersion) -> Vec<u8> {
        let spec = DeviceSpec::test_small();
        let flags = TraceFlags { coarse: true, fine: true };
        let writer = TraceWriter::with_version(Vec::new(), &spec, flags, version).unwrap();
        for e in sample_events() {
            writer.on_event(&e);
        }
        let stats = CollectorStats { events: 7, ..CollectorStats::default() };
        writer.finish(&[(CallPathId(0), "<root>".into())], &stats, 42.5).unwrap()
    }

    #[test]
    fn complete_trace_salvages_to_itself() {
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let bytes = write_sample(version);
            let s = salvage_trace(&bytes).unwrap();
            assert!(s.report.complete(), "{:?}", s.report);
            assert_eq!(s.report.first_error, None);
            assert_eq!(s.report.bytes_recovered, bytes.len() as u64);
            assert_eq!(s.report.bytes_discarded, 0);
            assert_eq!(s.report.recoverable_percent(), 100.0);
            // 5 event frames + contexts + trailer.
            assert_eq!(s.report.frames_recovered, 7);
            assert_eq!(s.events.len(), 5);
            assert_eq!(
                s.stats,
                Some(CollectorStats { events: 7, ..CollectorStats::default() })
            );
            assert_eq!(s.app_us, Some(42.5));
            let full = read_trace(&bytes).unwrap();
            assert_eq!(s.contexts, full.contexts);
        }
    }

    #[test]
    fn header_cut_is_unsalvageable() {
        let bytes = write_sample(FormatVersion::V2);
        // Determine the header size: the offset before any frame.
        let header = TraceReader::new(&bytes[..]).unwrap().offset() as usize;
        for cut in 0..header {
            assert!(salvage_trace(&bytes[..cut]).is_err(), "cut {cut} salvaged");
        }
        // Exactly the header: zero frames, zero loss of frames.
        let s = salvage_trace(&bytes[..header]).unwrap();
        assert_eq!(s.report.frames_recovered, 0);
        assert_eq!(s.events.len(), 0);
        assert!(!s.report.has_trailer);
        assert!(matches!(s.report.first_error, Some(DecodeError::TruncatedFrame { .. })));
    }

    #[test]
    fn data_after_trailer_is_discarded_but_prefix_survives() {
        let mut bytes = write_sample(FormatVersion::V2);
        let valid = bytes.len() as u64;
        bytes.extend_from_slice(b"garbage after finish");
        let s = salvage_trace(&bytes).unwrap();
        assert!(s.report.has_trailer);
        assert!(!s.report.complete());
        assert_eq!(s.report.bytes_recovered, valid);
        assert_eq!(s.report.bytes_discarded, 20);
        assert_eq!(s.events.len(), 5);
    }

    #[test]
    fn corrupt_mid_stream_frame_stops_the_walk_cleanly() {
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let bytes = write_sample(version);
            // Find the start of the third frame and corrupt its kind.
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            reader.next_frame().unwrap();
            reader.next_frame().unwrap();
            let third = reader.offset() as usize;
            let mut torn = bytes.clone();
            torn[third] = 200; // unknown frame kind
            let s = salvage_trace(&torn).unwrap();
            assert_eq!(s.report.frames_recovered, 2);
            assert_eq!(s.events.len(), 2);
            assert_eq!(s.report.bytes_recovered, third as u64);
            assert!(matches!(
                s.report.first_error,
                Some(DecodeError::UnknownFrameKind { kind: 200, .. })
            ));
        }
    }

    #[test]
    fn repaired_truncated_trace_rereads_as_valid() {
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let bytes = write_sample(version);
            // Cut mid-way through the stream (inside some frame).
            let cut = bytes.len() * 2 / 3;
            let (repaired, report) = repair_trace(&bytes[..cut]).unwrap();
            assert!(report.first_error.is_some());
            assert!(report.bytes_recovered <= cut as u64);
            let reread = read_trace(&repaired).unwrap();
            assert_eq!(reread.version, version.number());
            let salvaged = salvage_trace(&bytes[..cut]).unwrap();
            assert_eq!(reread.events.len(), salvaged.events.len());
            // Repairing the repaired trace is lossless and complete.
            let again = salvage_trace(&repaired).unwrap();
            assert!(again.report.complete());
        }
    }

    #[test]
    fn recoverable_percent_is_monotonic_in_the_cut() {
        let bytes = write_sample(FormatVersion::V2);
        let header = TraceReader::new(&bytes[..]).unwrap().offset() as usize;
        let mut last = 0u64;
        for cut in header..=bytes.len() {
            let s = salvage_trace(&bytes[..cut]).unwrap();
            assert!(s.report.bytes_recovered >= last, "cut {cut}");
            last = s.report.bytes_recovered;
            assert!(s.report.recoverable_percent() <= 100.0);
        }
    }
}
