//! # vex-trace — the instrumentation engine
//!
//! ValueExpert's fine-grained collector instruments every memory load and
//! store of a GPU kernel, stores the records in a **pre-allocated GPU
//! buffer**, and copies the buffer to the CPU when it fills (§4, §5.1 of
//! the paper). This crate reproduces that machinery on top of
//! [`vex_gpu`]'s access hooks:
//!
//! * [`AccessRecord`] — the compact on-device record format,
//! * [`DeviceBuffer`] — a bounded buffer that signals when full,
//! * [`Collector`] — a [`vex_gpu::hooks::MemAccessHook`] that fills the
//!   buffer and delivers batches to a [`TraceSink`] (the analyzer),
//!   tracking flush traffic so the profiler can charge realistic
//!   overhead, and
//! * [`LaunchFilter`] — pluggable per-launch instrumentation decisions
//!   (kernel filtering and sampling plug in here; implementations live in
//!   `vex-core::sampling`), and
//! * [`transport`] — a channel-backed [`TraceSink`] that publishes record
//!   batches into bounded queues so analysis runs off the critical path.
//!
//! On top of that machinery sits the **canonical event model** every
//! consumer shares:
//!
//! * [`event`] — the [`event::Event`] enum (API events + capture
//!   snapshots, launch boundaries, record batches), the
//!   [`event::EventSink`] interface all analyses implement, and the
//!   unified [`event::EventSource`] that attaches once to a runtime and
//!   feeds them all,
//! * [`container`] — the versioned, length-framed `.vex` trace container:
//!   record an event stream to disk, replay it later through any sink,
//! * [`salvage`] — crash recovery for torn containers: recover the
//!   longest valid frame prefix of a truncated trace with a loss
//!   report, and re-encode it into a fresh valid container,
//! * [`interval`] — the §6.1 interval representation and merge
//!   algorithms the coarse pass and the container share.
//!
//! The collector serializes concurrent streams by construction: the
//! simulator runs one operation at a time, and the collector asserts that
//! launches do not interleave.

#![deny(missing_docs)]

pub mod codec;
pub mod container;
pub mod event;
pub mod index;
pub mod interval;
pub mod salvage;
pub mod summary;
pub mod transport;

use parking_lot::Mutex;
use std::sync::Arc;
use vex_gpu::exec::LaunchStats;
use vex_gpu::hooks::{AccessEvent, DeviceView, LaunchInfo, MemAccessHook};
use vex_gpu::ir::{MemSpace, Pc};

/// Compact per-access record, the simulated on-GPU buffer entry.
///
/// 32 bytes per record in the simulated device buffer, mirroring the kind
/// of packed struct a real tool writes from an instrumentation callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessRecord {
    /// Static program counter.
    pub pc: Pc,
    /// Accessed address (global) or offset (shared).
    pub addr: u64,
    /// Raw little-endian value bits.
    pub bits: u64,
    /// Access width in bytes.
    pub size: u8,
    /// True for stores.
    pub is_store: bool,
    /// Address space.
    pub space: MemSpace,
    /// Flat block index.
    pub block: u32,
    /// Flat thread index within the block.
    pub thread: u32,
    /// True when the access is half of a hardware atomic.
    pub is_atomic: bool,
}

impl AccessRecord {
    /// Size of one record in the simulated device buffer, bytes.
    pub const DEVICE_BYTES: u64 = 32;

    /// Half-open `[addr, addr + size)` interval of the access.
    pub fn interval(&self) -> (u64, u64) {
        (self.addr, self.addr + self.size as u64)
    }
}

impl From<&AccessEvent> for AccessRecord {
    fn from(ev: &AccessEvent) -> Self {
        AccessRecord {
            pc: ev.pc,
            addr: ev.addr,
            bits: ev.bits,
            size: ev.size,
            is_store: ev.is_store,
            space: ev.space,
            block: ev.block,
            thread: ev.thread,
            is_atomic: ev.is_atomic,
        }
    }
}

/// A bounded record buffer standing in for the pre-allocated GPU buffer.
#[derive(Debug)]
pub struct DeviceBuffer {
    records: Vec<AccessRecord>,
    capacity: usize,
}

impl DeviceBuffer {
    /// Creates a buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "device buffer capacity must be nonzero");
        DeviceBuffer { records: Vec::with_capacity(capacity), capacity }
    }

    /// Appends a record; returns `true` if the buffer is now full and must
    /// be flushed before the next append.
    ///
    /// # Panics
    ///
    /// Panics if called on a full buffer (the caller failed to flush).
    pub fn push(&mut self, rec: AccessRecord) -> bool {
        assert!(self.records.len() < self.capacity, "push into full device buffer");
        self.records.push(rec);
        self.records.len() == self.capacity
    }

    /// Current number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Buffer capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drains all buffered records.
    pub fn drain(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.records)
    }
}

/// Receives record batches from the collector.
///
/// `on_batch` is called whenever the device buffer fills mid-kernel and
/// once at kernel end with the remainder; `on_launch_complete` is called
/// after the final batch with post-kernel device state.
pub trait TraceSink: Send + Sync {
    /// A batch of records was flushed from the device buffer.
    fn on_batch(&self, info: &LaunchInfo, records: &[AccessRecord]);

    /// The launch finished (after the final `on_batch`).
    fn on_launch_complete(
        &self,
        _info: &LaunchInfo,
        _stats: &LaunchStats,
        _view: &dyn DeviceView,
    ) {
    }

    /// A launch ran *uninstrumented* (declined by the filter). Sinks that
    /// account coverage can note it; most ignore it.
    fn on_skipped_launch(&self, _info: &LaunchInfo, _stats: &LaunchStats) {}
}

/// Decides whether a launch is instrumented. See `vex-core::sampling` for
/// the kernel-filter and hierarchical-sampling implementations.
pub trait LaunchFilter: Send + Sync {
    /// Returns `true` to instrument this launch.
    fn accept(&self, info: &LaunchInfo) -> bool;
}

/// Instruments every launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptAll;

impl LaunchFilter for AcceptAll {
    fn accept(&self, _info: &LaunchInfo) -> bool {
        true
    }
}

/// Measurement-traffic counters used by the overhead model (Figure 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Access events recorded into the device buffer (post block
    /// sampling).
    pub events: u64,
    /// Access events the instrumentation callback inspected (including
    /// those dropped by block sampling).
    pub events_checked: u64,
    /// Device-buffer flushes triggered (full buffer or kernel end).
    pub flushes: u64,
    /// Bytes of record traffic copied device→host.
    pub bytes_flushed: u64,
    /// Launches that were instrumented.
    pub instrumented_launches: u64,
    /// Launches skipped by the filter.
    pub skipped_launches: u64,
}

struct CollectorState {
    buffer: DeviceBuffer,
    current: Option<LaunchInfo>,
    stats: CollectorStats,
}

/// The fine-grained collector: buffers per-access records in a bounded
/// device buffer and flushes batches to a [`TraceSink`].
pub struct Collector {
    state: Mutex<CollectorState>,
    sink: Arc<dyn TraceSink>,
    filter: Arc<dyn LaunchFilter>,
    /// Record only blocks `0, P, 2P, …` (§6.2 block sampling happens at
    /// collection: skipped blocks never enter the device buffer).
    block_period: u32,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Collector")
            .field("buffered", &st.buffer.len())
            .field("stats", &st.stats)
            .finish()
    }
}

impl Collector {
    /// Creates a collector with the given buffer capacity (records), sink,
    /// and launch filter.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_capacity` is zero.
    pub fn new(
        buffer_capacity: usize,
        sink: Arc<dyn TraceSink>,
        filter: Arc<dyn LaunchFilter>,
    ) -> Self {
        Collector {
            state: Mutex::new(CollectorState {
                buffer: DeviceBuffer::new(buffer_capacity),
                current: None,
                stats: CollectorStats::default(),
            }),
            sink,
            filter,
            block_period: 1,
        }
    }

    /// Enables block sampling: only record accesses from every
    /// `period`-th thread block.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_block_period(mut self, period: u32) -> Self {
        assert!(period > 0, "block sampling period must be nonzero");
        self.block_period = period;
        self
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> CollectorStats {
        self.state.lock().stats
    }

    fn flush(state: &mut CollectorState, sink: &dyn TraceSink) {
        if state.buffer.is_empty() {
            return;
        }
        let records = state.buffer.drain();
        state.stats.flushes += 1;
        state.stats.bytes_flushed += records.len() as u64 * AccessRecord::DEVICE_BYTES;
        let info = state.current.as_ref().expect("flush outside of a launch").clone();
        sink.on_batch(&info, &records);
    }
}

impl MemAccessHook for Collector {
    fn on_launch_begin(&self, info: &LaunchInfo) -> bool {
        if !self.filter.accept(info) {
            return false;
        }
        let mut st = self.state.lock();
        assert!(
            st.current.is_none(),
            "interleaved launches: collector requires serialized streams"
        );
        st.current = Some(info.clone());
        st.stats.instrumented_launches += 1;
        true
    }

    fn on_access(&self, event: &AccessEvent) {
        let mut st = self.state.lock();
        debug_assert!(st.current.is_some(), "access outside instrumented launch");
        st.stats.events_checked += 1;
        if !event.block.is_multiple_of(self.block_period) {
            return; // block sampling: never buffered, never flushed
        }
        st.stats.events += 1;
        let full = st.buffer.push(AccessRecord::from(event));
        if full {
            Self::flush(&mut st, &*self.sink);
        }
    }

    fn on_launch_end(
        &self,
        info: &LaunchInfo,
        stats: &LaunchStats,
        instrumented: bool,
        view: &dyn DeviceView,
    ) {
        if !instrumented {
            let mut st = self.state.lock();
            st.stats.skipped_launches += 1;
            drop(st);
            self.sink.on_skipped_launch(info, stats);
            return;
        }
        let mut st = self.state.lock();
        Self::flush(&mut st, &*self.sink);
        st.current = None;
        drop(st);
        self.sink.on_launch_complete(info, stats, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_gpu::dim::Dim3;
    use vex_gpu::hooks::LaunchId;
    use vex_gpu::ir::{InstrTable, InstrTableBuilder, ScalarType};
    use vex_gpu::kernel::Kernel;
    use vex_gpu::prelude::*;
    use vex_gpu::timing::DeviceSpec;

    struct CountingSink {
        batches: Mutex<Vec<usize>>,
        completed: Mutex<u64>,
        skipped: Mutex<u64>,
    }

    impl CountingSink {
        fn new() -> Self {
            CountingSink {
                batches: Mutex::new(Vec::new()),
                completed: Mutex::new(0),
                skipped: Mutex::new(0),
            }
        }
    }

    impl TraceSink for CountingSink {
        fn on_batch(&self, _info: &LaunchInfo, records: &[AccessRecord]) {
            self.batches.lock().push(records.len());
        }
        fn on_launch_complete(
            &self,
            _info: &LaunchInfo,
            _stats: &LaunchStats,
            _view: &dyn DeviceView,
        ) {
            *self.completed.lock() += 1;
        }
        fn on_skipped_launch(&self, _info: &LaunchInfo, _stats: &LaunchStats) {
            *self.skipped.lock() += 1;
        }
    }

    struct WriteN {
        base: u64,
        n: usize,
    }
    impl Kernel for WriteN {
        fn name(&self) -> &str {
            "write_n"
        }
        fn instr_table(&self) -> InstrTable {
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build()
        }
        fn execute(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i < self.n {
                ctx.store::<u32>(Pc(0), self.base + (i * 4) as u64, i as u32);
            }
        }
    }

    fn run_with_collector(
        n: usize,
        capacity: usize,
        filter: Arc<dyn LaunchFilter>,
    ) -> (Arc<CountingSink>, Arc<Collector>) {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let sink = Arc::new(CountingSink::new());
        let collector = Arc::new(Collector::new(capacity, sink.clone(), filter));
        rt.register_access_hook(collector.clone());
        let base = rt.malloc((n * 4) as u64, "buf").unwrap().addr();
        rt.launch(&WriteN { base, n }, Dim3::linear(1), Dim3::linear(n.max(1) as u32)).unwrap();
        (sink, collector)
    }

    #[test]
    fn batches_respect_capacity() {
        let (sink, collector) = run_with_collector(10, 4, Arc::new(AcceptAll));
        let batches = sink.batches.lock().clone();
        assert_eq!(batches, vec![4, 4, 2]);
        let stats = collector.stats();
        assert_eq!(stats.events, 10);
        assert_eq!(stats.flushes, 3);
        assert_eq!(stats.bytes_flushed, 10 * AccessRecord::DEVICE_BYTES);
        assert_eq!(*sink.completed.lock(), 1);
    }

    #[test]
    fn exact_multiple_has_no_empty_final_batch() {
        let (sink, _c) = run_with_collector(8, 4, Arc::new(AcceptAll));
        assert_eq!(sink.batches.lock().clone(), vec![4, 4]);
    }

    #[test]
    fn filter_skips_launches() {
        struct RejectAll;
        impl LaunchFilter for RejectAll {
            fn accept(&self, _info: &LaunchInfo) -> bool {
                false
            }
        }
        let (sink, collector) = run_with_collector(10, 4, Arc::new(RejectAll));
        assert!(sink.batches.lock().is_empty());
        assert_eq!(*sink.skipped.lock(), 1);
        let stats = collector.stats();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.skipped_launches, 1);
        assert_eq!(stats.instrumented_launches, 0);
    }

    #[test]
    fn record_roundtrip_from_event() {
        let ev = AccessEvent {
            launch: LaunchId(1),
            pc: Pc(3),
            space: MemSpace::Global,
            addr: 512,
            size: 8,
            is_store: true,
            bits: 0xDEAD_BEEF,
            block: 2,
            thread: 33,
            is_atomic: false,
        };
        let rec = AccessRecord::from(&ev);
        assert_eq!(rec.interval(), (512, 520));
        assert_eq!(rec.bits, 0xDEAD_BEEF);
        assert!(rec.is_store);
    }

    #[test]
    #[should_panic(expected = "full device buffer")]
    fn overfull_buffer_panics() {
        let mut b = DeviceBuffer::new(1);
        let rec = AccessRecord {
            pc: Pc(0),
            addr: 0,
            bits: 0,
            size: 4,
            is_store: false,
            space: MemSpace::Global,
            block: 0,
            thread: 0,
            is_atomic: false,
        };
        b.push(rec);
        b.push(rec);
    }
}
