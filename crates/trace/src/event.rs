//! The canonical event model shared by every collector consumer (§4,
//! Figure 1).
//!
//! The paper's architecture is **one** data collector feeding multiple
//! analyzers. This module is that collector: a single [`EventSource`]
//! attaches to [`vex_gpu::runtime::Runtime`] as both an
//! [`ApiHook`] and a [`MemAccessHook`], and publishes one canonical
//! [`Event`] stream — API events with coarse capture snapshots, launch
//! boundaries, and fine access-record batches — to an [`EventSink`].
//!
//! Every analysis is a sink: ValueExpert's synchronous engine, its
//! sharded pipeline, the GVProf baseline, and the trace recorder
//! (`crate::container::TraceWriter`) all implement [`EventSink`] and are
//! interchangeable. Because the stream is self-contained (captures carry
//! the device bytes the coarse pass reads; batches carry the records the
//! fine pass consumes), a recorded stream replayed from disk drives the
//! same analyses to byte-identical reports.
//!
//! ## Event order
//!
//! For one kernel launch the source emits, in order:
//!
//! 1. [`Event::LaunchBegin`] — only when the launch is instrumented for
//!    the fine pass (filter accepted),
//! 2. zero or more [`Event::Batch`]es as the device buffer fills,
//! 3. the final [`Event::Batch`] (remainder) and [`Event::LaunchEnd`],
//!    or [`Event::SkippedLaunch`] when the filter declined,
//! 4. [`Event::Api`] for the `KernelLaunch` API completion, carrying the
//!    coarse pass's interval summary and capture snapshot.
//!
//! Memory-management APIs (malloc/free/memcpy/memset) emit a single
//! [`Event::Api`] each.

pub use crate::codec::{ColumnSet, DecodedBatch};
use crate::interval::{merge_parallel, warp_compact, Interval};
use crate::{AccessRecord, CollectorStats, DeviceBuffer, LaunchFilter};
use parking_lot::Mutex;
use std::sync::Arc;
use vex_gpu::exec::LaunchStats;
use vex_gpu::hooks::{
    AccessEvent, ApiEvent, ApiHook, ApiKind, ApiPhase, CapturedView, DeviceView, LaunchInfo,
    MemAccessHook,
};
use vex_gpu::ir::MemSpace;
use vex_gpu::runtime::Runtime;

/// Per-kernel interval collection with §6.1 warp-level compaction.
///
/// Accesses arrive warp-by-warp (the simulator executes a warp at a
/// time); consecutive same-warp intervals are compacted eagerly so the
/// per-kernel working set stays proportional to the *compacted* interval
/// count.
#[derive(Debug)]
pub struct KernelIntervals {
    compaction: bool,
    /// Store intervals collected so far (compacted when enabled).
    pub writes: Vec<Interval>,
    /// Load intervals collected so far (compacted when enabled).
    pub reads: Vec<Interval>,
    pending_writes: Vec<Interval>,
    pending_reads: Vec<Interval>,
    pending_warp: Option<(u32, u32)>,
    /// Raw (pre-compaction) interval count, for traffic accounting.
    pub raw: u64,
}

impl Default for KernelIntervals {
    fn default() -> Self {
        KernelIntervals::new(true)
    }
}

impl KernelIntervals {
    /// Creates an empty collection; `compaction` toggles §6.1 warp-level
    /// compaction (off exists for the ablation study).
    pub fn new(compaction: bool) -> Self {
        KernelIntervals {
            compaction,
            writes: Vec::new(),
            reads: Vec::new(),
            pending_writes: Vec::new(),
            pending_reads: Vec::new(),
            pending_warp: None,
            raw: 0,
        }
    }

    /// Records one access interval from `(block, thread)`.
    pub fn add(&mut self, block: u32, thread: u32, interval: Interval, is_store: bool) {
        self.raw += 1;
        if !self.compaction {
            if is_store {
                self.writes.push(interval);
            } else {
                self.reads.push(interval);
            }
            return;
        }
        let warp = (block, thread / 32);
        if self.pending_warp != Some(warp) {
            self.flush_pending();
            self.pending_warp = Some(warp);
        }
        if is_store {
            self.pending_writes.push(interval);
        } else {
            self.pending_reads.push(interval);
        }
    }

    fn flush_pending(&mut self) {
        if !self.pending_writes.is_empty() {
            self.writes.extend(warp_compact(&self.pending_writes));
            self.pending_writes.clear();
        }
        if !self.pending_reads.is_empty() {
            self.reads.extend(warp_compact(&self.pending_reads));
            self.pending_reads.clear();
        }
    }

    /// Finishes the kernel: returns `(reads, writes, raw, compacted)`
    /// interval vectors and counts.
    pub fn finish(mut self) -> (Vec<Interval>, Vec<Interval>, u64, u64) {
        self.flush_pending();
        let compacted = (self.reads.len() + self.writes.len()) as u64;
        (self.reads, self.writes, self.raw, compacted)
    }
}

/// The coarse pass's per-kernel product: warp-compacted (but not yet
/// merged) access intervals, attached to the kernel's [`Event::Api`]
/// completion event. Consumers rebuild a [`KernelIntervals`] from it and
/// run the merge/split/diff machinery off the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSummary {
    /// Load intervals (compacted).
    pub reads: Vec<Interval>,
    /// Store intervals (compacted).
    pub writes: Vec<Interval>,
    /// Raw interval count before compaction.
    pub raw: u64,
}

/// One entry of the canonical collector stream.
///
/// Shared payloads ([`LaunchInfo`], record batches, captures) sit behind
/// [`Arc`] so fan-out to several sinks and channel transport never copy
/// them.
#[derive(Debug, Clone)]
pub enum Event {
    /// A runtime API call completed. For `KernelLaunch` events `kernel`
    /// carries the coarse interval summary (when the coarse pass is on);
    /// `captured` snapshots exactly the device bytes the deferred coarse
    /// analysis will read (written ranges of memset/memcpy/malloc, merged
    /// kernel write intervals).
    Api {
        /// The intercepted call.
        event: ApiEvent,
        /// Coarse interval summary for `KernelLaunch` completions.
        kernel: Option<KernelSummary>,
        /// Snapshot of the device bytes the coarse analysis reads.
        captured: Arc<CapturedView>,
    },
    /// An instrumented (fine-pass) launch is about to execute.
    LaunchBegin {
        /// Launch configuration.
        info: Arc<LaunchInfo>,
    },
    /// A device-buffer flush: one batch of access records.
    Batch {
        /// Launch the records belong to.
        info: Arc<LaunchInfo>,
        /// The flushed records, in execution order.
        records: Arc<Vec<AccessRecord>>,
    },
    /// An instrumented launch finished (after its final [`Event::Batch`]).
    LaunchEnd {
        /// Launch configuration.
        info: Arc<LaunchInfo>,
    },
    /// A launch ran uninstrumented (declined by the launch filter).
    SkippedLaunch {
        /// Launch configuration.
        info: Arc<LaunchInfo>,
    },
}

/// Consumes the canonical event stream.
///
/// Implementations must tolerate any well-formed stream — in particular
/// a stream replayed from a recorded trace, where batch boundaries
/// reflect the *recording* session's buffer capacity.
pub trait EventSink: Send + Sync {
    /// Called for every event, in stream order.
    fn on_event(&self, event: &Event);
}

/// An [`EventSink`] that is a complete analysis (as opposed to plumbing
/// like the fan-out or the trace writer): ValueExpert's engines, GVProf.
pub trait AnalysisPass: EventSink {
    /// Human-readable pass name, for diagnostics and replay banners.
    fn name(&self) -> &'static str;

    /// Columns of the fine-grained record stream this pass reads from
    /// [`Event::Batch`]. A projected decode
    /// ([`crate::container::DecodeOptions`]) zero-fills every other
    /// field, so a pass that reads only its declared columns produces
    /// byte-identical results under any covering projection. The
    /// default is full fidelity.
    fn columns(&self) -> ColumnSet {
        ColumnSet::ALL
    }
}

/// Broadcasts each event to several sinks, in registration order.
/// Lets one live run feed an analysis *and* the trace recorder.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl FanoutSink {
    /// Creates a fan-out over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn EventSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl EventSink for FanoutSink {
    fn on_event(&self, event: &Event) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }
}

/// What the [`EventSource`] collects and publishes.
#[derive(Debug, Clone)]
pub struct EventSourceConfig {
    /// Intercept runtime APIs (emit [`Event::Api`]). Required by the
    /// coarse pass and by any consumer tracking allocations.
    pub api: bool,
    /// Collect coarse per-kernel access intervals and capture snapshots.
    /// Requires `api`.
    pub coarse: bool,
    /// Collect fine-grained access records through the device buffer.
    pub fine: bool,
    /// Device-buffer capacity in records (fine pass).
    pub buffer_records: usize,
    /// §6.2 block sampling: record only blocks `0, P, 2P, …` (fine pass).
    pub block_period: u32,
    /// §6.1 warp-level interval compaction (coarse pass).
    pub warp_compaction: bool,
}

impl Default for EventSourceConfig {
    fn default() -> Self {
        EventSourceConfig {
            api: true,
            coarse: true,
            fine: false,
            buffer_records: 1 << 16,
            block_period: 1,
            warp_compaction: true,
        }
    }
}

struct SourceState {
    buffer: DeviceBuffer,
    /// Launch currently executing, shared by every event of the launch.
    current: Option<Arc<LaunchInfo>>,
    /// Whether the fine pass instruments the current launch.
    fine_active: bool,
    /// Coarse interval collection for the current kernel; taken by the
    /// `KernelLaunch` API-After event, which fires after `on_launch_end`.
    kernel: Option<KernelIntervals>,
    stats: CollectorStats,
}

/// The unified data collector: one hook registration producing the
/// canonical [`Event`] stream for any [`EventSink`].
///
/// Replaces the per-consumer hook wiring (profiler glue structs, GVProf's
/// private collector, the pipeline's publishing hooks) with a single
/// source whose output is also what [`crate::container`] persists.
pub struct EventSource {
    config: EventSourceConfig,
    filter: Arc<dyn LaunchFilter>,
    sink: Arc<dyn EventSink>,
    state: Mutex<SourceState>,
}

impl std::fmt::Debug for EventSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("EventSource")
            .field("config", &self.config)
            .field("buffered", &st.buffer.len())
            .field("stats", &st.stats)
            .finish()
    }
}

impl EventSource {
    /// Creates a source publishing to `sink`; `filter` gates the fine
    /// pass per launch (§6.2 kernel filtering / sampling).
    ///
    /// # Panics
    ///
    /// Panics if the fine pass is enabled with a zero buffer capacity or
    /// block period, or if `coarse` is requested without `api` (the
    /// coarse pass analyzes API completions).
    pub fn new(
        config: EventSourceConfig,
        filter: Arc<dyn LaunchFilter>,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        assert!(!config.coarse || config.api, "coarse collection requires API interception");
        if config.fine {
            assert!(config.buffer_records > 0, "device buffer capacity must be nonzero");
            assert!(config.block_period > 0, "block sampling period must be nonzero");
        }
        let buffer = DeviceBuffer::new(config.buffer_records.max(1));
        EventSource {
            config,
            filter,
            sink,
            state: Mutex::new(SourceState {
                buffer,
                current: None,
                fine_active: false,
                kernel: None,
                stats: CollectorStats::default(),
            }),
        }
    }

    /// Creates the source and registers it on `rt` (as an API hook when
    /// `config.api`, and always as an access hook). Serializes streams —
    /// the paper's collector requirement — and returns the source handle
    /// for [`EventSource::stats`].
    pub fn attach(
        rt: &mut Runtime,
        config: EventSourceConfig,
        filter: Arc<dyn LaunchFilter>,
        sink: Arc<dyn EventSink>,
    ) -> Arc<EventSource> {
        let source = Arc::new(EventSource::new(config, filter, sink));
        if source.config.api {
            rt.register_api_hook(source.clone());
        }
        rt.register_access_hook(source.clone());
        rt.serialize_streams(true);
        source
    }

    /// Fine-pass traffic counters accumulated so far (all zero when the
    /// fine pass is disabled).
    pub fn stats(&self) -> CollectorStats {
        self.state.lock().stats
    }

    fn flush(st: &mut SourceState, sink: &dyn EventSink) {
        if st.buffer.is_empty() {
            return;
        }
        let records = st.buffer.drain();
        st.stats.flushes += 1;
        st.stats.bytes_flushed += records.len() as u64 * AccessRecord::DEVICE_BYTES;
        let info = st.current.clone().expect("flush outside of a launch");
        sink.on_event(&Event::Batch { info, records: Arc::new(records) });
    }
}

impl ApiHook for EventSource {
    fn on_api(&self, phase: ApiPhase, event: &ApiEvent, view: &dyn DeviceView) {
        if phase != ApiPhase::After {
            return;
        }
        let mut st = self.state.lock();
        let mut captured = CapturedView::new();
        let mut kernel = None;
        if self.config.coarse {
            match &event.kind {
                ApiKind::Malloc { info } => {
                    captured.capture(view, info.addr, info.size).expect("allocation readable");
                }
                ApiKind::Memset { dst, bytes, .. }
                | ApiKind::MemcpyH2D { dst, bytes }
                | ApiKind::MemcpyD2D { dst, bytes, .. } => {
                    if let Some(obj) = view.find_allocation(dst.addr()) {
                        let end = (dst.addr() + bytes).min(obj.addr + obj.size);
                        if end > dst.addr() {
                            captured
                                .capture(view, dst.addr(), end - dst.addr())
                                .expect("write range readable");
                        }
                    }
                }
                ApiKind::KernelLaunch { .. } => {
                    if let Some(collected) = st.kernel.take() {
                        let (reads, writes, raw, _compacted) = collected.finish();
                        // Capture the merged write footprint, split along
                        // live-allocation boundaries exactly as the coarse
                        // analysis will split it.
                        for iv in &merge_parallel(&writes) {
                            let mut cursor = iv.start;
                            while cursor < iv.end {
                                match view.find_allocation(cursor) {
                                    Some(obj) => {
                                        let end = iv.end.min(obj.addr + obj.size);
                                        captured
                                            .capture(view, cursor, end - cursor)
                                            .expect("kernel write interval readable");
                                        cursor = end;
                                    }
                                    None => cursor += 1,
                                }
                            }
                        }
                        kernel = Some(KernelSummary { reads, writes, raw });
                    }
                }
                _ => {}
            }
        }
        drop(st);
        self.sink.on_event(&Event::Api {
            event: event.clone(),
            kernel,
            captured: Arc::new(captured),
        });
    }
}

impl MemAccessHook for EventSource {
    fn on_launch_begin(&self, info: &LaunchInfo) -> bool {
        let mut st = self.state.lock();
        assert!(
            st.current.is_none(),
            "interleaved launches: collector requires serialized streams"
        );
        let fine_active = self.config.fine && self.filter.accept(info);
        let accept = self.config.coarse || fine_active;
        st.fine_active = fine_active;
        if self.config.coarse {
            st.kernel = Some(KernelIntervals::new(self.config.warp_compaction));
        }
        if accept {
            st.current = Some(Arc::new(info.clone()));
        }
        if fine_active {
            st.stats.instrumented_launches += 1;
            let info = st.current.clone().expect("just set");
            drop(st);
            self.sink.on_event(&Event::LaunchBegin { info });
        }
        accept
    }

    fn on_access(&self, event: &AccessEvent) {
        let mut st = self.state.lock();
        // Shared-memory traffic never updates global snapshots.
        if event.space == MemSpace::Global {
            if let Some(k) = &mut st.kernel {
                let (s, e) = event.interval();
                k.add(event.block, event.thread, Interval::new(s, e), event.is_store);
            }
        }
        if !st.fine_active {
            return;
        }
        st.stats.events_checked += 1;
        if !event.block.is_multiple_of(self.config.block_period) {
            return; // block sampling: never buffered, never flushed
        }
        st.stats.events += 1;
        let full = st.buffer.push(AccessRecord::from(event));
        if full {
            Self::flush(&mut st, &*self.sink);
        }
    }

    fn on_launch_end(
        &self,
        info: &LaunchInfo,
        _stats: &LaunchStats,
        instrumented: bool,
        _view: &dyn DeviceView,
    ) {
        let mut st = self.state.lock();
        let fine_active = st.fine_active;
        st.fine_active = false;
        if fine_active && instrumented {
            Self::flush(&mut st, &*self.sink);
            let current = st.current.take().expect("launch in progress");
            drop(st);
            self.sink.on_event(&Event::LaunchEnd { info: current });
            return;
        }
        st.current = None;
        if self.config.fine {
            // The fine pass declined this launch (filter, or the runtime
            // ran it uninstrumented): account the skip.
            st.stats.skipped_launches += 1;
            drop(st);
            self.sink.on_event(&Event::SkippedLaunch { info: Arc::new(info.clone()) });
        }
        // `st.kernel` intentionally survives: the KernelLaunch API-After
        // event fires next and consumes it.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceptAll;
    use vex_gpu::dim::Dim3;
    use vex_gpu::ir::{InstrTableBuilder, Pc, ScalarType};
    use vex_gpu::kernel::Kernel;
    use vex_gpu::prelude::*;
    use vex_gpu::timing::DeviceSpec;

    struct Recorder {
        events: Mutex<Vec<Event>>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder { events: Mutex::new(Vec::new()) }
        }
        fn tags(&self) -> Vec<&'static str> {
            self.events
                .lock()
                .iter()
                .map(|e| match e {
                    Event::Api { .. } => "api",
                    Event::LaunchBegin { .. } => "begin",
                    Event::Batch { .. } => "batch",
                    Event::LaunchEnd { .. } => "end",
                    Event::SkippedLaunch { .. } => "skipped",
                })
                .collect()
        }
    }

    impl EventSink for Recorder {
        fn on_event(&self, event: &Event) {
            self.events.lock().push(event.clone());
        }
    }

    struct WriteN {
        base: u64,
        n: usize,
    }
    impl Kernel for WriteN {
        fn name(&self) -> &str {
            "write_n"
        }
        fn instr_table(&self) -> vex_gpu::ir::InstrTable {
            InstrTableBuilder::new().store(Pc(0), ScalarType::U32, MemSpace::Global).build()
        }
        fn execute(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i < self.n {
                ctx.store::<u32>(Pc(0), self.base + (i * 4) as u64, i as u32);
            }
        }
    }

    fn run(config: EventSourceConfig) -> (Arc<Recorder>, Arc<EventSource>) {
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let sink = Arc::new(Recorder::new());
        let source = EventSource::attach(&mut rt, config, Arc::new(AcceptAll), sink.clone());
        let base = rt.malloc(64, "buf").unwrap().addr();
        rt.launch(&WriteN { base, n: 10 }, Dim3::linear(1), Dim3::linear(16)).unwrap();
        (sink, source)
    }

    #[test]
    fn full_stream_order_and_stats() {
        let config =
            EventSourceConfig { fine: true, buffer_records: 4, ..EventSourceConfig::default() };
        let (sink, source) = run(config);
        // malloc api, launch begin, 2 full batches + remainder, end, launch api.
        assert_eq!(sink.tags(), vec!["api", "begin", "batch", "batch", "batch", "end", "api"]);
        let stats = source.stats();
        assert_eq!(stats.events, 10);
        assert_eq!(stats.flushes, 3);
        assert_eq!(stats.bytes_flushed, 10 * AccessRecord::DEVICE_BYTES);
        assert_eq!(stats.instrumented_launches, 1);
        // The kernel api event carries the coarse summary and capture.
        let events = sink.events.lock();
        let Some(Event::Api { kernel: Some(summary), captured, .. }) = events.last() else {
            panic!("expected kernel api event with summary");
        };
        assert_eq!(summary.raw, 10);
        assert!(!captured.segments().is_empty());
    }

    #[test]
    fn coarse_only_emits_no_fine_events_or_stats() {
        let (sink, source) = run(EventSourceConfig::default());
        assert_eq!(sink.tags(), vec!["api", "api"]);
        assert_eq!(source.stats(), CollectorStats::default());
    }

    #[test]
    fn declined_launches_are_skipped_with_coarse_still_collected() {
        struct RejectAll;
        impl LaunchFilter for RejectAll {
            fn accept(&self, _info: &LaunchInfo) -> bool {
                false
            }
        }
        let mut rt = Runtime::new(DeviceSpec::test_small());
        let sink = Arc::new(Recorder::new());
        let config = EventSourceConfig { fine: true, ..EventSourceConfig::default() };
        let source = EventSource::attach(&mut rt, config, Arc::new(RejectAll), sink.clone());
        let base = rt.malloc(64, "buf").unwrap().addr();
        rt.launch(&WriteN { base, n: 10 }, Dim3::linear(1), Dim3::linear(16)).unwrap();
        assert_eq!(sink.tags(), vec!["api", "skipped", "api"]);
        let stats = source.stats();
        assert_eq!(stats.skipped_launches, 1);
        assert_eq!(stats.events, 0);
        let events = sink.events.lock();
        let Some(Event::Api { kernel: Some(summary), .. }) = events.last() else {
            panic!("coarse summary expected even for fine-skipped launches");
        };
        assert_eq!(summary.raw, 10);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        let mut rt = Runtime::new(DeviceSpec::test_small());
        EventSource::attach(
            &mut rt,
            EventSourceConfig::default(),
            Arc::new(AcceptAll),
            Arc::new(fan),
        );
        rt.malloc(32, "x").unwrap();
        assert_eq!(a.tags(), vec!["api"]);
        assert_eq!(b.tags(), vec!["api"]);
    }
}
