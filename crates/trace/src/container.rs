//! The `.vex` trace container: a versioned, length-framed, streamed
//! on-disk encoding of the canonical [`Event`] stream.
//!
//! Recording the collector's output makes every analysis an *offline*
//! analysis: `vex record` writes the stream once, `vex replay` drives any
//! sink ([`crate::event::EventSink`]) from the file, and the replayed
//! report is byte-identical to the live one because the stream is
//! self-contained (captures carry device bytes, batches carry records,
//! the trailer carries call-path renderings and traffic counters).
//!
//! ## Layout
//!
//! ```text
//! header:
//!   offset  size  field
//!        0     8  magic "VEXTRACE"
//!        8     4  format version (u32, currently 2)
//!       12     4  flags (bit0 coarse captures, bit1 fine records)
//!       16     …  device preset (DeviceSpec, see below)
//! frames (repeated until the Finish frame):
//!        0     1  kind
//!        1     4  payload length N (u32)
//!        5     N  payload
//! ```
//!
//! All integers are little-endian; floats are stored as `f64::to_bits`.
//! Strings are a `u32` byte length followed by UTF-8 bytes. Frame kinds:
//!
//! ```text
//! kind  payload
//!    1  Api            seq u64, context u32, stream u32, api-kind tag +
//!                      arguments, optional kernel summary, capture segments
//!    2  LaunchBegin    full LaunchInfo (incl. instruction table)
//!    3  Batch          launch id u64, record count u32, 32-byte records
//!                      (codec::encode_record) — the v1 batch encoding
//!    4  LaunchEnd      launch id u64
//!    5  SkippedLaunch  full LaunchInfo
//!    6  Contexts       count u32, then (call-path id u32, rendered string)*
//!    7  Finish         CollectorStats (6 × u64), app time (f64 bits);
//!                      must be the last frame
//!    8  BatchColumnar  launch id varint, then the columnar record block
//!                      (codec::encode_columnar_batch) — v2 files only
//! ```
//!
//! Format v2 differs from v1 only in how record batches are encoded:
//! records are transposed into per-field columns, sorted-ish columns
//! (pc, addr, block, thread) carry zigzagged signed deltas, the value
//! bits column is XORed with its predecessor, size/flags are
//! run-length encoded, and everything is an LEB128 varint (see
//! [`codec::encode_columnar_batch`] and DESIGN.md §10). Readers accept
//! both versions — the header version selects which batch kinds are
//! legal (kind 8 only in v2 files; kind 3 in either, so a tolerant
//! reader handles mixed producers) — while [`TraceWriter`] writes the
//! version chosen by its [`FormatVersion`] knob (v2 by default).
//!
//! Launch-referencing frames (`Batch`, `LaunchEnd`) name the launch by id;
//! the reader resolves it against the preceding `LaunchBegin`. Unknown
//! format versions, unknown frame kinds, and malformed payloads are
//! rejected with the [`DecodeError`] variants added for this container —
//! decoding never panics, whatever the input bytes.

use crate::codec::{self, ColumnSet, DecodeError};
use crate::event::{Event, EventSink, KernelSummary};
use crate::interval::Interval;
use crate::{AccessRecord, CollectorStats};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::sync::Arc;
use vex_gpu::alloc::AllocationInfo;
use vex_gpu::callpath::CallPathId;
use vex_gpu::dim::Dim3;
use vex_gpu::hooks::{ApiEvent, ApiKind, CapturedView, LaunchId, LaunchInfo};
use vex_gpu::ir::{
    AccessDecl, FloatWidth, InstrTable, Instruction, IntWidth, MemSpace, Opcode, Pc, Reg,
    ScalarType,
};
use vex_gpu::memory::DevicePtr;
use vex_gpu::stream::StreamId;
use vex_gpu::timing::DeviceSpec;

/// Magic bytes opening every `.vex` trace.
pub const TRACE_MAGIC: [u8; 8] = *b"VEXTRACE";
/// Newest container format version this build reads and writes.
pub const TRACE_VERSION: u32 = 2;
/// Oldest container format version this build still reads.
pub const TRACE_VERSION_MIN: u32 = 1;

const FLAG_COARSE: u32 = 1 << 0;
const FLAG_FINE: u32 = 1 << 1;

const FRAME_API: u8 = 1;
const FRAME_LAUNCH_BEGIN: u8 = 2;
const FRAME_BATCH: u8 = 3;
const FRAME_LAUNCH_END: u8 = 4;
const FRAME_SKIPPED_LAUNCH: u8 = 5;
const FRAME_CONTEXTS: u8 = 6;
const FRAME_FINISH: u8 = 7;
const FRAME_BATCH_COLUMNAR: u8 = 8;

/// On-disk batch encoding a [`TraceWriter`] produces.
///
/// v1 stores fixed 32-byte records; v2 stores the columnar delta+varint
/// form (typically 5–10× smaller, and faster to decode). Readers accept
/// both; writing v1 remains available for tooling that compares the
/// formats or feeds older readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormatVersion {
    /// Format v1: fixed 32-byte records in `Batch` frames.
    V1,
    /// Format v2: columnar delta+varint `BatchColumnar` frames.
    #[default]
    V2,
}

impl FormatVersion {
    /// The header version number this knob writes.
    pub fn number(self) -> u32 {
        match self {
            FormatVersion::V1 => 1,
            FormatVersion::V2 => 2,
        }
    }
}

/// Which collection passes the recording session ran — determines which
/// analyses a replay can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceFlags {
    /// Coarse pass: API events carry capture snapshots and kernel
    /// interval summaries.
    pub coarse: bool,
    /// Fine pass: the stream contains access-record batches.
    pub fine: bool,
}

impl TraceFlags {
    fn to_bits(self) -> u32 {
        (if self.coarse { FLAG_COARSE } else { 0 }) | (if self.fine { FLAG_FINE } else { 0 })
    }

    fn from_bits(bits: u32) -> Result<Self, &'static str> {
        if bits & !(FLAG_COARSE | FLAG_FINE) != 0 {
            return Err("unknown trace flag bits");
        }
        Ok(TraceFlags { coarse: bits & FLAG_COARSE != 0, fine: bits & FLAG_FINE != 0 })
    }
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_intervals(out: &mut Vec<u8>, ivs: &[Interval]) {
    put_u32(out, ivs.len() as u32);
    for iv in ivs {
        put_u64(out, iv.start);
        put_u64(out, iv.end);
    }
}

fn put_alloc(out: &mut Vec<u8>, info: &AllocationInfo) {
    put_u64(out, info.id.0);
    put_u64(out, info.addr);
    put_u64(out, info.size);
    put_str(out, &info.label);
    put_u32(out, info.context.0);
    put_bool(out, info.live);
}

fn put_scalar(out: &mut Vec<u8>, t: ScalarType) {
    let tag = match t {
        ScalarType::F32 => 0,
        ScalarType::F64 => 1,
        ScalarType::S8 => 2,
        ScalarType::S16 => 3,
        ScalarType::S32 => 4,
        ScalarType::S64 => 5,
        ScalarType::U8 => 6,
        ScalarType::U16 => 7,
        ScalarType::U32 => 8,
        ScalarType::U64 => 9,
    };
    put_u8(out, tag);
}

fn put_opcode(out: &mut Vec<u8>, op: &Opcode) {
    match op {
        Opcode::Ld => put_u8(out, 1),
        Opcode::St => put_u8(out, 2),
        Opcode::FAdd(w) => {
            put_u8(out, 3);
            put_u8(out, *w as u8);
        }
        Opcode::FMul(w) => {
            put_u8(out, 4);
            put_u8(out, *w as u8);
        }
        Opcode::FFma(w) => {
            put_u8(out, 5);
            put_u8(out, *w as u8);
        }
        Opcode::IAdd(w) => {
            put_u8(out, 6);
            put_u8(out, *w as u8);
        }
        Opcode::IMad(w) => {
            put_u8(out, 7);
            put_u8(out, *w as u8);
        }
        Opcode::Lop => put_u8(out, 8),
        Opcode::Mov => put_u8(out, 9),
        Opcode::Cvt { from, to } => {
            put_u8(out, 10);
            put_scalar(out, *from);
            put_scalar(out, *to);
        }
        Opcode::Setp(t) => {
            put_u8(out, 11);
            put_scalar(out, *t);
        }
        Opcode::Bra => put_u8(out, 12),
        Opcode::Exit => put_u8(out, 13),
        // `Opcode` is #[non_exhaustive]; a new opcode needs a new format
        // version before it can be recorded.
        _ => panic!("opcode not representable in trace format v{TRACE_VERSION}"),
    }
}

fn put_launch_info(out: &mut Vec<u8>, info: &LaunchInfo) {
    put_u64(out, info.launch.0);
    put_str(out, &info.kernel_name);
    for d in [info.grid, info.block] {
        put_u32(out, d.x);
        put_u32(out, d.y);
        put_u32(out, d.z);
    }
    put_u64(out, info.shared_bytes);
    put_u32(out, info.context.0);
    put_u32(out, info.stream.0);
    put_u32(out, info.instr_table.len() as u32);
    for instr in info.instr_table.iter() {
        put_u32(out, instr.pc.0);
        put_opcode(out, &instr.op);
        match instr.dst {
            Some(r) => {
                put_bool(out, true);
                put_u16(out, r.0);
            }
            None => put_bool(out, false),
        }
        put_u32(out, instr.srcs.len() as u32);
        for r in &instr.srcs {
            put_u16(out, r.0);
        }
        match &instr.access {
            Some(a) => {
                put_bool(out, true);
                put_u8(out, a.width_bytes);
                put_u8(out, a.space as u8);
                put_bool(out, a.is_store);
                match a.ty {
                    Some(t) => {
                        put_bool(out, true);
                        put_scalar(out, t);
                    }
                    None => put_bool(out, false),
                }
                put_u8(out, a.vector);
            }
            None => put_bool(out, false),
        }
        match instr.line {
            Some(l) => {
                put_bool(out, true);
                put_u32(out, l);
            }
            None => put_bool(out, false),
        }
    }
}

fn put_spec(out: &mut Vec<u8>, spec: &DeviceSpec) {
    put_str(out, &spec.name);
    put_u32(out, spec.num_sms);
    put_f64(out, spec.mem_bandwidth_gbps);
    put_f64(out, spec.fp32_gflops);
    put_f64(out, spec.fp64_gflops);
    put_f64(out, spec.int_gops);
    put_f64(out, spec.pcie_gbps);
    put_f64(out, spec.launch_overhead_us);
    put_f64(out, spec.memop_overhead_us);
    put_u64(out, spec.memory_bytes);
    put_u32(out, spec.max_threads_per_block);
}

/// Largest capture segment the v2 word-RLE mode may describe. RLE breaks
/// the payload-proportional size bound raw segments have, so the decoder
/// refuses implausible expansions instead of allocating them; the
/// encoder stores anything larger raw.
const MAX_RLE_CAPTURE_BYTES: u64 = 1 << 31;

/// Word-run-length encodes a capture segment: `(u32-le word, varint
/// run)` pairs covering the whole 4-byte words, then the `len % 4` tail
/// bytes raw. Returns `None` when RLE would not beat storing raw.
fn capture_rle(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < 8 || bytes.len() as u64 > MAX_RLE_CAPTURE_BYTES {
        return None;
    }
    let words = bytes.len() / 4;
    let mut rle = Vec::new();
    let mut run: Option<([u8; 4], u64)> = None;
    for word in bytes[..words * 4].chunks_exact(4) {
        let word: [u8; 4] = word.try_into().expect("4 bytes");
        match &mut run {
            Some((value, len)) if *value == word => *len += 1,
            _ => {
                if let Some((value, len)) = run.take() {
                    rle.extend_from_slice(&value);
                    codec::write_uvarint(&mut rle, len);
                }
                // Bail early on incompressible data: one pending run can
                // add at most 14 more bytes.
                if rle.len() + 14 >= bytes.len() {
                    return None;
                }
                run = Some((word, 1));
            }
        }
    }
    if let Some((value, len)) = run {
        rle.extend_from_slice(&value);
        codec::write_uvarint(&mut rle, len);
    }
    rle.extend_from_slice(&bytes[words * 4..]);
    if rle.len() < bytes.len() {
        Some(rle)
    } else {
        None
    }
}

/// v2 capture segment payload: a mode byte, then either the raw bytes
/// (mode 0) or the [`capture_rle`] encoding (mode 1). Captured device
/// memory is overwhelmingly a single repeated word (memset fills,
/// uniform tensors), so mode 1 collapses megabyte segments to a few
/// bytes; anything it cannot shrink is stored raw.
fn put_capture_payload(out: &mut Vec<u8>, bytes: &[u8]) {
    match capture_rle(bytes) {
        Some(rle) => {
            put_u8(out, 1);
            out.extend_from_slice(&rle);
        }
        None => {
            put_u8(out, 0);
            out.extend_from_slice(bytes);
        }
    }
}

fn encode_event(event: &Event, version: FormatVersion) -> (u8, Vec<u8>) {
    let mut p = Vec::new();
    match event {
        Event::Api { event, kernel, captured } => {
            put_u64(&mut p, event.seq);
            put_u32(&mut p, event.context.0);
            put_u32(&mut p, event.stream.0);
            match &event.kind {
                ApiKind::Malloc { info } => {
                    put_u8(&mut p, 1);
                    put_alloc(&mut p, info);
                }
                ApiKind::Free { info } => {
                    put_u8(&mut p, 2);
                    put_alloc(&mut p, info);
                }
                ApiKind::MemcpyH2D { dst, bytes } => {
                    put_u8(&mut p, 3);
                    put_u64(&mut p, dst.addr());
                    put_u64(&mut p, *bytes);
                }
                ApiKind::MemcpyD2H { src, bytes } => {
                    put_u8(&mut p, 4);
                    put_u64(&mut p, src.addr());
                    put_u64(&mut p, *bytes);
                }
                ApiKind::MemcpyD2D { dst, src, bytes } => {
                    put_u8(&mut p, 5);
                    put_u64(&mut p, dst.addr());
                    put_u64(&mut p, src.addr());
                    put_u64(&mut p, *bytes);
                }
                ApiKind::Memset { dst, value, bytes } => {
                    put_u8(&mut p, 6);
                    put_u64(&mut p, dst.addr());
                    put_u8(&mut p, *value);
                    put_u64(&mut p, *bytes);
                }
                ApiKind::KernelLaunch { launch, name } => {
                    put_u8(&mut p, 7);
                    put_u64(&mut p, launch.0);
                    put_str(&mut p, name);
                }
                // See `put_opcode`: new API kinds need a format bump.
                _ => panic!("api kind not representable in trace format v{TRACE_VERSION}"),
            }
            match kernel {
                Some(s) => {
                    put_bool(&mut p, true);
                    put_intervals(&mut p, &s.reads);
                    put_intervals(&mut p, &s.writes);
                    put_u64(&mut p, s.raw);
                }
                None => put_bool(&mut p, false),
            }
            let segments = captured.segments();
            put_u32(&mut p, segments.len() as u32);
            for (start, bytes) in segments {
                put_u64(&mut p, *start);
                put_u64(&mut p, bytes.len() as u64);
                match version {
                    FormatVersion::V1 => p.extend_from_slice(bytes),
                    FormatVersion::V2 => put_capture_payload(&mut p, bytes),
                }
            }
            (FRAME_API, p)
        }
        Event::LaunchBegin { info } => {
            put_launch_info(&mut p, info);
            (FRAME_LAUNCH_BEGIN, p)
        }
        Event::Batch { info, records } => match version {
            FormatVersion::V1 => {
                put_u64(&mut p, info.launch.0);
                put_u32(&mut p, records.len() as u32);
                for rec in records.iter() {
                    p.extend_from_slice(&codec::encode_record(rec));
                }
                (FRAME_BATCH, p)
            }
            FormatVersion::V2 => {
                codec::write_uvarint(&mut p, info.launch.0);
                p.extend_from_slice(&codec::encode_columnar_batch(records));
                (FRAME_BATCH_COLUMNAR, p)
            }
        },
        Event::LaunchEnd { info } => {
            put_u64(&mut p, info.launch.0);
            (FRAME_LAUNCH_END, p)
        }
        Event::SkippedLaunch { info } => {
            put_launch_info(&mut p, info);
            (FRAME_SKIPPED_LAUNCH, p)
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding primitives
// ---------------------------------------------------------------------------

/// Bounded cursor over one frame payload. Every accessor validates the
/// remaining length, so malformed payloads surface as errors, never
/// panics or runaway allocations.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Payload { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        if self.remaining() < n {
            return Err("payload too short");
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, &'static str> {
        Ok(self.bytes(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, &'static str> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err("boolean byte not 0 or 1"),
        }
    }

    fn u16(&mut self) -> Result<u16, &'static str> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, &'static str> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    fn uvarint(&mut self) -> Result<u64, &'static str> {
        codec::read_uvarint(self.buf, &mut self.pos)
    }

    fn f64(&mut self) -> Result<f64, &'static str> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, &'static str> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not valid utf-8")
    }

    fn intervals(&mut self) -> Result<Vec<Interval>, &'static str> {
        let count = self.u32()? as usize;
        if self.remaining() < count * 16 {
            return Err("interval list longer than payload");
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let start = self.u64()?;
            let end = self.u64()?;
            if start >= end {
                return Err("empty or inverted interval");
            }
            out.push(Interval::new(start, end));
        }
        Ok(out)
    }

    fn alloc(&mut self) -> Result<AllocationInfo, &'static str> {
        Ok(AllocationInfo {
            id: vex_gpu::alloc::AllocId(self.u64()?),
            addr: self.u64()?,
            size: self.u64()?,
            label: self.str()?,
            context: CallPathId(self.u32()?),
            live: self.bool()?,
        })
    }

    fn scalar(&mut self) -> Result<ScalarType, &'static str> {
        Ok(match self.u8()? {
            0 => ScalarType::F32,
            1 => ScalarType::F64,
            2 => ScalarType::S8,
            3 => ScalarType::S16,
            4 => ScalarType::S32,
            5 => ScalarType::S64,
            6 => ScalarType::U8,
            7 => ScalarType::U16,
            8 => ScalarType::U32,
            9 => ScalarType::U64,
            _ => return Err("unknown scalar type tag"),
        })
    }

    fn float_width(&mut self) -> Result<FloatWidth, &'static str> {
        Ok(match self.u8()? {
            0 => FloatWidth::F32,
            1 => FloatWidth::F64,
            _ => return Err("unknown float width tag"),
        })
    }

    fn int_width(&mut self) -> Result<IntWidth, &'static str> {
        Ok(match self.u8()? {
            0 => IntWidth::I8,
            1 => IntWidth::I16,
            2 => IntWidth::I32,
            3 => IntWidth::I64,
            _ => return Err("unknown int width tag"),
        })
    }

    fn opcode(&mut self) -> Result<Opcode, &'static str> {
        Ok(match self.u8()? {
            1 => Opcode::Ld,
            2 => Opcode::St,
            3 => Opcode::FAdd(self.float_width()?),
            4 => Opcode::FMul(self.float_width()?),
            5 => Opcode::FFma(self.float_width()?),
            6 => Opcode::IAdd(self.int_width()?),
            7 => Opcode::IMad(self.int_width()?),
            8 => Opcode::Lop,
            9 => Opcode::Mov,
            10 => Opcode::Cvt { from: self.scalar()?, to: self.scalar()? },
            11 => Opcode::Setp(self.scalar()?),
            12 => Opcode::Bra,
            13 => Opcode::Exit,
            _ => return Err("unknown opcode tag"),
        })
    }

    fn launch_info(&mut self) -> Result<LaunchInfo, &'static str> {
        let launch = LaunchId(self.u64()?);
        let kernel_name = self.str()?;
        let grid = Dim3 { x: self.u32()?, y: self.u32()?, z: self.u32()? };
        let block = Dim3 { x: self.u32()?, y: self.u32()?, z: self.u32()? };
        let shared_bytes = self.u64()?;
        let context = CallPathId(self.u32()?);
        let stream = StreamId(self.u32()?);
        let count = self.u32()? as usize;
        if self.remaining() < count * 2 {
            return Err("instruction table longer than payload");
        }
        let mut table = InstrTable::new();
        let mut last_pc: Option<u32> = None;
        for _ in 0..count {
            let pc = self.u32()?;
            // PC-ordered and duplicate-free, so `InstrTable::push` (which
            // panics on duplicates) is safe to call.
            if last_pc.is_some_and(|prev| prev >= pc) {
                return Err("instruction table not in strict pc order");
            }
            last_pc = Some(pc);
            let op = self.opcode()?;
            let dst = if self.bool()? { Some(Reg(self.u16()?)) } else { None };
            let src_count = self.u32()? as usize;
            if self.remaining() < src_count * 2 {
                return Err("source register list longer than payload");
            }
            let mut srcs = Vec::with_capacity(src_count);
            for _ in 0..src_count {
                srcs.push(Reg(self.u16()?));
            }
            let access = if self.bool()? {
                Some(AccessDecl {
                    width_bytes: self.u8()?,
                    space: match self.u8()? {
                        0 => MemSpace::Global,
                        1 => MemSpace::Shared,
                        _ => return Err("unknown memory space tag"),
                    },
                    is_store: self.bool()?,
                    ty: if self.bool()? { Some(self.scalar()?) } else { None },
                    vector: self.u8()?,
                })
            } else {
                None
            };
            let line = if self.bool()? { Some(self.u32()?) } else { None };
            table.push(Instruction { pc: Pc(pc), op, dst, srcs, access, line });
        }
        Ok(LaunchInfo {
            launch,
            kernel_name,
            grid,
            block,
            shared_bytes,
            context,
            stream,
            instr_table: Arc::new(table),
        })
    }

    fn finished(&self) -> Result<(), &'static str> {
        if self.remaining() != 0 {
            return Err("trailing bytes in payload");
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct WriterState<W: Write> {
    out: W,
    error: Option<String>,
}

/// Streams the canonical event stream into a `.vex` container.
///
/// Implements [`EventSink`], so it plugs into an
/// [`crate::event::EventSource`] directly (or side-by-side with a live
/// analysis through [`crate::event::FanoutSink`]). I/O errors during
/// streaming are latched and reported by [`TraceWriter::finish`].
pub struct TraceWriter<W: Write> {
    state: Mutex<WriterState<W>>,
    version: FormatVersion,
}

impl<W: Write> std::fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("error", &self.state.lock().error)
            .finish_non_exhaustive()
    }
}

impl<W: Write> TraceWriter<W> {
    /// Writes the container header and returns the streaming writer,
    /// producing the default (newest) format version.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if writing the header fails.
    pub fn new(out: W, spec: &DeviceSpec, flags: TraceFlags) -> std::io::Result<Self> {
        Self::with_version(out, spec, flags, FormatVersion::default())
    }

    /// Like [`TraceWriter::new`], but writing the chosen format version.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if writing the header fails.
    pub fn with_version(
        mut out: W,
        spec: &DeviceSpec,
        flags: TraceFlags,
        version: FormatVersion,
    ) -> std::io::Result<Self> {
        let mut header = Vec::new();
        header.extend_from_slice(&TRACE_MAGIC);
        put_u32(&mut header, version.number());
        put_u32(&mut header, flags.to_bits());
        put_spec(&mut header, spec);
        out.write_all(&header)?;
        Ok(TraceWriter { state: Mutex::new(WriterState { out, error: None }), version })
    }

    /// The format version this writer produces.
    pub fn version(&self) -> FormatVersion {
        self.version
    }

    fn write_frame(st: &mut WriterState<W>, kind: u8, payload: &[u8]) {
        if st.error.is_some() {
            return;
        }
        let mut head = [0u8; 5];
        head[0] = kind;
        head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let result = st.out.write_all(&head).and_then(|()| st.out.write_all(payload));
        if let Err(e) = result {
            st.error = Some(e.to_string());
        }
    }

    /// Writes the context table and the trailer (traffic counters and
    /// application time), flushes, and returns the underlying writer.
    ///
    /// `contexts` should cover every interned call path of the recording
    /// session (`CallPathRecorder::render` for each id), so a replay can
    /// render contexts exactly as the live session would.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Io`] if any write (including earlier
    /// streamed frames) failed.
    pub fn finish(
        self,
        contexts: &[(CallPathId, String)],
        stats: &CollectorStats,
        app_us: f64,
    ) -> Result<W, DecodeError> {
        let mut st = self.state.into_inner();
        let mut p = Vec::new();
        put_u32(&mut p, contexts.len() as u32);
        for (id, rendered) in contexts {
            put_u32(&mut p, id.0);
            put_str(&mut p, rendered);
        }
        Self::write_frame(&mut st, FRAME_CONTEXTS, &p);

        let mut p = Vec::new();
        put_u64(&mut p, stats.events);
        put_u64(&mut p, stats.events_checked);
        put_u64(&mut p, stats.flushes);
        put_u64(&mut p, stats.bytes_flushed);
        put_u64(&mut p, stats.instrumented_launches);
        put_u64(&mut p, stats.skipped_launches);
        put_f64(&mut p, app_us);
        Self::write_frame(&mut st, FRAME_FINISH, &p);

        if st.error.is_none() {
            if let Err(e) = st.out.flush() {
                st.error = Some(e.to_string());
            }
        }
        match st.error {
            Some(message) => Err(DecodeError::Io { message }),
            None => Ok(st.out),
        }
    }
}

impl<W: Write + Send> EventSink for TraceWriter<W> {
    fn on_event(&self, event: &Event) {
        let (kind, payload) = encode_event(event, self.version);
        let mut st = self.state.lock();
        Self::write_frame(&mut st, kind, &payload);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One decoded frame, as yielded by [`TraceReader::next_frame`].
#[derive(Debug, Clone)]
pub enum TraceFrame {
    /// A stream event (API call, launch boundary, or record batch).
    Event(Event),
    /// The context table: interned call-path id → rendered string.
    Contexts(BTreeMap<CallPathId, String>),
    /// The trailer: collector traffic and application time. Always the
    /// last frame of a complete trace.
    Finish {
        /// Fine-pass traffic counters of the recording session.
        stats: CollectorStats,
        /// Application time accumulated by the recorded run, µs.
        app_us: f64,
    },
}

/// Streaming `.vex` reader: decodes the header eagerly and frames on
/// demand, resolving launch references against earlier `LaunchBegin` /
/// `SkippedLaunch` frames.
pub struct TraceReader<R: Read> {
    input: R,
    version: u32,
    spec: DeviceSpec,
    flags: TraceFlags,
    launches: HashMap<u64, Arc<LaunchInfo>>,
    offset: u64,
    batch_bytes: u64,
    finished: bool,
    /// When set, batch frames are validated structurally but their
    /// records are not decoded; [`TraceReader::records_scanned`]
    /// accumulates the counts instead.
    skip_records: bool,
    records_scanned: u64,
    /// When set, columnar batch frames are not decoded inline: their
    /// payloads queue in `deferred` (in stream order) and the `Batch`
    /// event arrives with an empty record vector for the caller to
    /// backfill after decoding the queue — the parallel decode path.
    defer_columnar: bool,
    deferred: Vec<DeferredColumnar>,
}

/// One columnar batch payload queued by a deferring [`TraceReader`]:
/// everything after the launch-id varint, plus the frame offset for
/// error reporting.
struct DeferredColumnar {
    offset: u64,
    payload: Vec<u8>,
}

impl<R: Read> std::fmt::Debug for TraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("offset", &self.offset)
            .field("flags", &self.flags)
            .finish_non_exhaustive()
    }
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the container header.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadMagic`] for non-trace input,
    /// [`DecodeError::UnsupportedVersion`] for future format versions,
    /// [`DecodeError::TruncatedFrame`] / [`DecodeError::BadFrame`] for a
    /// cut-off or malformed header.
    pub fn new(mut input: R) -> Result<Self, DecodeError> {
        let mut fixed = [0u8; 16];
        read_exact_at(&mut input, &mut fixed, 0)?;
        if fixed[0..8] != TRACE_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().expect("4 bytes"));
        if !(TRACE_VERSION_MIN..=TRACE_VERSION).contains(&version) {
            return Err(DecodeError::UnsupportedVersion {
                found: version,
                supported: TRACE_VERSION,
            });
        }
        let flags = TraceFlags::from_bits(u32::from_le_bytes(
            fixed[12..16].try_into().expect("4 bytes"),
        ))
        .map_err(|what| DecodeError::BadFrame { kind: 0, offset: 12, what })?;
        // The device spec is variable-length (name string); decode it
        // field-by-field from the stream.
        let mut spec_bytes = Vec::new();
        let spec = read_spec(&mut input, &mut spec_bytes)
            .map_err(|what| DecodeError::BadFrame { kind: 0, offset: 16, what })?;
        Ok(TraceReader {
            input,
            version,
            spec,
            flags,
            launches: HashMap::new(),
            offset: 16 + spec_bytes.len() as u64,
            batch_bytes: 0,
            finished: false,
            skip_records: false,
            records_scanned: 0,
            defer_columnar: false,
            deferred: Vec::new(),
        })
    }

    /// Device preset the trace was recorded against.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Which passes the recording session ran.
    pub fn flags(&self) -> TraceFlags {
        self.flags
    }

    /// The format version declared in the file's header.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Encoded payload bytes of every record-batch frame decoded so far
    /// (the on-disk footprint of the access records; compare against
    /// `records × 32` to get the v2 compression ratio).
    pub fn batch_bytes(&self) -> u64 {
        self.batch_bytes
    }

    /// Switches the reader into scan mode: batch frames are still
    /// validated structurally, but their records are not decoded —
    /// `Batch` events arrive with empty record vectors and
    /// [`TraceReader::records_scanned`] accumulates the counts. Scan
    /// cost then tracks the encoded (compressed) size of the trace
    /// rather than its record count, which is what makes summaries of
    /// v2 traces cheap.
    pub fn set_skip_records(&mut self, skip: bool) {
        self.skip_records = skip;
    }

    /// Records counted by batch frames scanned in skip mode so far.
    pub fn records_scanned(&self) -> u64 {
        self.records_scanned
    }

    /// Byte offset of the next frame in the stream (immediately after
    /// the last frame returned by [`TraceReader::next_frame`]). Sampling
    /// this before and after each `next_frame` call yields per-frame
    /// byte extents — the basis of [`crate::index::TraceIndex`].
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Switches the reader into deferred mode: columnar batch payloads
    /// queue internally instead of decoding inline, and their `Batch`
    /// events arrive with empty record vectors. [`read_trace_with`]
    /// drains the queue onto a worker pool and backfills the events in
    /// stream order.
    fn set_defer_columnar(&mut self, defer: bool) {
        self.defer_columnar = defer;
    }

    /// Columnar batches deferred so far.
    fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Takes the deferred batch queue (stream order).
    fn take_deferred(&mut self) -> Vec<DeferredColumnar> {
        std::mem::take(&mut self.deferred)
    }

    /// Decodes the next frame; `Ok(None)` at a clean end of stream
    /// (after the `Finish` frame).
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]; notably [`DecodeError::TruncatedFrame`] when
    /// the input ends mid-frame or before the trailer.
    pub fn next_frame(&mut self) -> Result<Option<TraceFrame>, DecodeError> {
        let frame_offset = self.offset;
        let mut head = [0u8; 5];
        let first = {
            let mut one = [0u8; 1];
            match self.input.read(&mut one) {
                Ok(0) => {
                    if self.finished {
                        return Ok(None);
                    }
                    // Clean EOF but no trailer: the recording was cut off
                    // at a frame boundary.
                    return Err(DecodeError::TruncatedFrame { offset: frame_offset });
                }
                Ok(_) => one[0],
                Err(e) => return Err(e.into()),
            }
        };
        if self.finished {
            return Err(DecodeError::BadFrame {
                kind: first,
                offset: frame_offset,
                what: "data after the Finish frame",
            });
        }
        head[0] = first;
        read_exact_at(&mut self.input, &mut head[1..5], frame_offset)?;
        let kind = head[0];
        let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes")) as usize;
        // Bounded read: allocates only what actually arrives, so a huge
        // (corrupt) length on a short file fails cleanly.
        let mut payload = Vec::new();
        let got = (&mut self.input)
            .take(len as u64)
            .read_to_end(&mut payload)
            .map_err(DecodeError::from)?;
        if got < len {
            return Err(DecodeError::TruncatedFrame { offset: frame_offset });
        }
        self.offset = frame_offset + 5 + len as u64;
        let bad = |what| DecodeError::BadFrame { kind, offset: frame_offset, what };
        let mut p = Payload::new(&payload);
        let frame = match kind {
            FRAME_API => {
                let seq = p.u64().map_err(bad)?;
                let context = CallPathId(p.u32().map_err(bad)?);
                let stream = StreamId(p.u32().map_err(bad)?);
                let api_kind = match p.u8().map_err(bad)? {
                    1 => ApiKind::Malloc { info: p.alloc().map_err(bad)? },
                    2 => ApiKind::Free { info: p.alloc().map_err(bad)? },
                    3 => ApiKind::MemcpyH2D {
                        dst: DevicePtr(p.u64().map_err(bad)?),
                        bytes: p.u64().map_err(bad)?,
                    },
                    4 => ApiKind::MemcpyD2H {
                        src: DevicePtr(p.u64().map_err(bad)?),
                        bytes: p.u64().map_err(bad)?,
                    },
                    5 => ApiKind::MemcpyD2D {
                        dst: DevicePtr(p.u64().map_err(bad)?),
                        src: DevicePtr(p.u64().map_err(bad)?),
                        bytes: p.u64().map_err(bad)?,
                    },
                    6 => ApiKind::Memset {
                        dst: DevicePtr(p.u64().map_err(bad)?),
                        value: p.u8().map_err(bad)?,
                        bytes: p.u64().map_err(bad)?,
                    },
                    7 => ApiKind::KernelLaunch {
                        launch: LaunchId(p.u64().map_err(bad)?),
                        name: p.str().map_err(bad)?,
                    },
                    _ => return Err(bad("unknown api kind tag")),
                };
                let kernel = if p.bool().map_err(bad)? {
                    Some(KernelSummary {
                        reads: p.intervals().map_err(bad)?,
                        writes: p.intervals().map_err(bad)?,
                        raw: p.u64().map_err(bad)?,
                    })
                } else {
                    None
                };
                let seg_count = p.u32().map_err(bad)? as usize;
                let mut segments = Vec::new();
                for _ in 0..seg_count {
                    let start = p.u64().map_err(bad)?;
                    let len = p.u64().map_err(bad)?;
                    let data = if self.version >= 2 {
                        read_capture_payload(&mut p, len).map_err(bad)?
                    } else {
                        if (p.remaining() as u64) < len {
                            return Err(bad("capture segment longer than payload"));
                        }
                        p.bytes(len as usize).map_err(bad)?.to_vec()
                    };
                    segments.push((start, data));
                }
                p.finished().map_err(bad)?;
                TraceFrame::Event(Event::Api {
                    event: ApiEvent { seq, kind: api_kind, context, stream },
                    kernel,
                    captured: Arc::new(CapturedView::from_segments(segments)),
                })
            }
            FRAME_LAUNCH_BEGIN | FRAME_SKIPPED_LAUNCH => {
                let info = Arc::new(p.launch_info().map_err(bad)?);
                p.finished().map_err(bad)?;
                self.launches.insert(info.launch.0, info.clone());
                if kind == FRAME_LAUNCH_BEGIN {
                    TraceFrame::Event(Event::LaunchBegin { info })
                } else {
                    TraceFrame::Event(Event::SkippedLaunch { info })
                }
            }
            FRAME_BATCH => {
                self.batch_bytes += len as u64;
                let launch = p.u64().map_err(bad)?;
                let info = self
                    .launches
                    .get(&launch)
                    .cloned()
                    .ok_or(bad("batch references an undeclared launch"))?;
                if self.skip_records {
                    let count = p.u32().map_err(bad)? as u64;
                    if p.remaining() as u64 != count * AccessRecord::DEVICE_BYTES {
                        return Err(bad("record count does not match payload length"));
                    }
                    self.records_scanned += count;
                    return Ok(Some(TraceFrame::Event(Event::Batch {
                        info,
                        records: Arc::new(Vec::new()),
                    })));
                }
                let records = decode_fixed_batch_payload(&mut p).map_err(bad)?;
                TraceFrame::Event(Event::Batch { info, records: Arc::new(records) })
            }
            FRAME_BATCH_COLUMNAR => {
                if self.version < 2 {
                    return Err(bad("columnar batch frame in a v1 trace"));
                }
                self.batch_bytes += len as u64;
                let mut pos = 0usize;
                let launch = codec::read_uvarint(&payload, &mut pos).map_err(bad)?;
                let info = self
                    .launches
                    .get(&launch)
                    .cloned()
                    .ok_or(bad("batch references an undeclared launch"))?;
                if self.skip_records {
                    let count = codec::scan_columnar_batch(&payload[pos..]).map_err(bad)?;
                    self.records_scanned += count;
                    return Ok(Some(TraceFrame::Event(Event::Batch {
                        info,
                        records: Arc::new(Vec::new()),
                    })));
                }
                if self.defer_columnar {
                    // Batch payloads are self-contained after the
                    // launch-id varint: queue the block for the worker
                    // pool and emit a placeholder to keep stream order.
                    self.deferred.push(DeferredColumnar {
                        offset: frame_offset,
                        payload: payload[pos..].to_vec(),
                    });
                    return Ok(Some(TraceFrame::Event(Event::Batch {
                        info,
                        records: Arc::new(Vec::new()),
                    })));
                }
                let records = codec::decode_columnar_batch(&payload[pos..]).map_err(bad)?;
                TraceFrame::Event(Event::Batch { info, records: Arc::new(records) })
            }
            FRAME_LAUNCH_END => {
                let launch = p.u64().map_err(bad)?;
                p.finished().map_err(bad)?;
                let info = self
                    .launches
                    .get(&launch)
                    .cloned()
                    .ok_or(bad("launch end references an undeclared launch"))?;
                TraceFrame::Event(Event::LaunchEnd { info })
            }
            FRAME_CONTEXTS => {
                let count = p.u32().map_err(bad)? as usize;
                let mut map = BTreeMap::new();
                for _ in 0..count {
                    let id = CallPathId(p.u32().map_err(bad)?);
                    map.insert(id, p.str().map_err(bad)?);
                }
                p.finished().map_err(bad)?;
                TraceFrame::Contexts(map)
            }
            FRAME_FINISH => {
                let stats = CollectorStats {
                    events: p.u64().map_err(bad)?,
                    events_checked: p.u64().map_err(bad)?,
                    flushes: p.u64().map_err(bad)?,
                    bytes_flushed: p.u64().map_err(bad)?,
                    instrumented_launches: p.u64().map_err(bad)?,
                    skipped_launches: p.u64().map_err(bad)?,
                };
                let app_us = p.f64().map_err(bad)?;
                p.finished().map_err(bad)?;
                self.finished = true;
                TraceFrame::Finish { stats, app_us }
            }
            _ => return Err(DecodeError::UnknownFrameKind { kind, offset: frame_offset }),
        };
        Ok(Some(frame))
    }
}

/// Decodes the body of a fixed-record (v1) batch frame — everything
/// after the launch id: a u32 record count, then 32-byte records.
fn decode_fixed_batch_payload(p: &mut Payload<'_>) -> Result<Vec<AccessRecord>, &'static str> {
    let count = p.u32()? as usize;
    if p.remaining() != count * AccessRecord::DEVICE_BYTES as usize {
        return Err("record count does not match payload length");
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let chunk: &[u8; 32] = p.bytes(32)?.try_into().expect("bytes(32) yields 32");
        records.push(codec::decode_record(chunk).map_err(|_| "corrupt access record")?);
    }
    Ok(records)
}

/// Reads one v2 capture segment payload of uncompressed length `len`
/// (the inverse of [`put_capture_payload`]).
fn read_capture_payload(p: &mut Payload<'_>, len: u64) -> Result<Vec<u8>, &'static str> {
    match p.u8()? {
        0 => {
            if (p.remaining() as u64) < len {
                return Err("capture segment longer than payload");
            }
            Ok(p.bytes(len as usize)?.to_vec())
        }
        1 => {
            if len > MAX_RLE_CAPTURE_BYTES {
                return Err("capture segment implausibly large");
            }
            let len = len as usize;
            let words = len / 4;
            // Capacity is only a hint capped well below `len`: a corrupt
            // length cannot force a huge up-front allocation, and growth
            // stops as soon as a run check fails.
            let mut out: Vec<u8> = Vec::with_capacity(len.min(1 << 20));
            while out.len() < words * 4 {
                let word: [u8; 4] = p.bytes(4)?.try_into().expect("4 bytes");
                let run = p.uvarint()?;
                let remaining_words = (words - out.len() / 4) as u64;
                if run == 0 || run > remaining_words {
                    return Err("capture run length out of range");
                }
                // Expand by doubling copies of what is already written.
                let n = run as usize * 4;
                let start = out.len();
                out.extend_from_slice(&word);
                while out.len() - start < n {
                    let have = out.len() - start;
                    let take = have.min(n - have);
                    out.extend_from_within(start..start + take);
                }
            }
            out.extend_from_slice(p.bytes(len - words * 4)?);
            Ok(out)
        }
        _ => Err("unknown capture segment mode"),
    }
}

fn read_exact_at<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    offset: u64,
) -> Result<(), DecodeError> {
    match input.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(DecodeError::TruncatedFrame { offset })
        }
        Err(e) => Err(e.into()),
    }
}

/// Reads a `DeviceSpec` directly from the stream (used for the header,
/// which is not length-framed). Appends consumed bytes to `consumed` so
/// the caller can track the offset.
fn spec_bytes<R: Read>(
    input: &mut R,
    consumed: &mut Vec<u8>,
    n: usize,
) -> Result<Vec<u8>, &'static str> {
    let mut buf = vec![0u8; n];
    input.read_exact(&mut buf).map_err(|_| "header cut short")?;
    consumed.extend_from_slice(&buf);
    Ok(buf)
}

fn spec_u32<R: Read>(input: &mut R, consumed: &mut Vec<u8>) -> Result<u32, &'static str> {
    Ok(u32::from_le_bytes(
        spec_bytes(input, consumed, 4)?.as_slice().try_into().expect("4 bytes"),
    ))
}

fn spec_u64<R: Read>(input: &mut R, consumed: &mut Vec<u8>) -> Result<u64, &'static str> {
    Ok(u64::from_le_bytes(
        spec_bytes(input, consumed, 8)?.as_slice().try_into().expect("8 bytes"),
    ))
}

fn spec_f64<R: Read>(input: &mut R, consumed: &mut Vec<u8>) -> Result<f64, &'static str> {
    Ok(f64::from_bits(spec_u64(input, consumed)?))
}

fn read_spec<R: Read>(
    input: &mut R,
    consumed: &mut Vec<u8>,
) -> Result<DeviceSpec, &'static str> {
    let name_len = spec_u32(input, consumed)? as usize;
    if name_len > 1 << 16 {
        return Err("device name implausibly long");
    }
    let name = String::from_utf8(spec_bytes(input, consumed, name_len)?)
        .map_err(|_| "device name not utf-8")?;
    Ok(DeviceSpec {
        name,
        num_sms: spec_u32(input, consumed)?,
        mem_bandwidth_gbps: spec_f64(input, consumed)?,
        fp32_gflops: spec_f64(input, consumed)?,
        fp64_gflops: spec_f64(input, consumed)?,
        int_gops: spec_f64(input, consumed)?,
        pcie_gbps: spec_f64(input, consumed)?,
        launch_overhead_us: spec_f64(input, consumed)?,
        memop_overhead_us: spec_f64(input, consumed)?,
        memory_bytes: spec_u64(input, consumed)?,
        max_threads_per_block: spec_u32(input, consumed)?,
    })
}

/// A fully decoded trace: everything a replay needs to reproduce the
/// live report.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// Container format version of the file the trace was decoded from.
    pub version: u32,
    /// Device preset of the recording session.
    pub spec: DeviceSpec,
    /// Which passes were recorded.
    pub flags: TraceFlags,
    /// Encoded payload bytes of the record-batch frames (on-disk record
    /// footprint; `records × 32` gives the uncompressed equivalent).
    pub batch_bytes: u64,
    /// The event stream, in collection order.
    pub events: Vec<Event>,
    /// Rendered call paths (id → string) of the recording session.
    pub contexts: BTreeMap<CallPathId, String>,
    /// Fine-pass traffic counters of the recording session.
    pub stats: CollectorStats,
    /// Application time of the recorded run, µs.
    pub app_us: f64,
}

impl RecordedTrace {
    /// Feeds every event to `sink`, in stream order.
    pub fn dispatch(&self, sink: &dyn EventSink) {
        for event in &self.events {
            sink.on_event(event);
        }
    }
}

/// Decodes a complete trace from bytes.
///
/// # Errors
///
/// Any [`DecodeError`]; a trace without its `Finish` trailer is
/// [`DecodeError::TruncatedFrame`].
pub fn read_trace(bytes: &[u8]) -> Result<RecordedTrace, DecodeError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut events = Vec::new();
    let mut contexts = BTreeMap::new();
    let mut trailer = None;
    while let Some(frame) = reader.next_frame()? {
        match frame {
            TraceFrame::Event(e) => events.push(e),
            TraceFrame::Contexts(map) => contexts = map,
            TraceFrame::Finish { stats, app_us } => trailer = Some((stats, app_us)),
        }
    }
    let (stats, app_us) = trailer.expect("reader yields None only after Finish");
    Ok(RecordedTrace {
        version: reader.version(),
        spec: reader.spec().clone(),
        flags: reader.flags(),
        batch_bytes: reader.batch_bytes(),
        events,
        contexts,
        stats,
        app_us,
    })
}

/// Reads and decodes a trace file.
///
/// # Errors
///
/// [`DecodeError::Io`] if the file cannot be read, otherwise as
/// [`read_trace`].
pub fn read_trace_file(path: &std::path::Path) -> Result<RecordedTrace, DecodeError> {
    let bytes = std::fs::read(path)?;
    read_trace(&bytes)
}

/// Options for [`read_trace_with`]: how many worker threads decode the
/// v2 columnar batch frames, and which record columns to materialize.
/// The default (`threads: 1`, [`ColumnSet::ALL`]) is exactly
/// [`read_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOptions {
    /// Worker threads decoding columnar batches. Values ≤ 1 decode on
    /// the calling thread.
    pub threads: usize,
    /// Columns to materialize from each batch; undemanded columns come
    /// back zero-filled in the [`Event::Batch`] records. Projection
    /// preserves report byte-identity for any consumer that only reads
    /// its declared columns (`AnalysisPass::columns`).
    pub columns: ColumnSet,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions { threads: 1, columns: ColumnSet::ALL }
    }
}

/// Decodes a complete trace, optionally decoding columnar batch frames
/// on a bounded worker pool and/or projecting them onto a [`ColumnSet`].
///
/// The frame walk itself stays sequential (launch references resolve
/// against earlier frames), but each v2 columnar batch payload is an
/// independent unit: in parallel mode the walk queues payloads and
/// emits placeholder events, a scoped worker pool decodes the queue
/// concurrently, and the results are backfilled in original stream
/// order — the returned [`RecordedTrace`] is indistinguishable from a
/// sequential decode, down to the `Arc<LaunchInfo>` identities events
/// share.
///
/// # Errors
///
/// Any [`DecodeError`], identical to the sequential reader's: when both
/// the walk and a batch decode fail, the error of the earliest frame in
/// the stream wins (a corrupt batch always precedes any walk error,
/// since the walk stops at its own first failure).
pub fn read_trace_with(
    bytes: &[u8],
    opts: &DecodeOptions,
) -> Result<RecordedTrace, DecodeError> {
    if opts.threads <= 1 && opts.columns == ColumnSet::ALL {
        return read_trace(bytes);
    }
    let mut reader = TraceReader::new(bytes)?;
    reader.set_defer_columnar(true);
    let mut events = Vec::new();
    let mut contexts = BTreeMap::new();
    let mut trailer = None;
    // Event index of the k-th deferred batch (each frame defers at most
    // one batch, so growth of the queue tags the event just pushed).
    let mut batch_events: Vec<usize> = Vec::new();
    let mut walk_error = None;
    loop {
        match reader.next_frame() {
            Ok(Some(TraceFrame::Event(e))) => {
                events.push(e);
                if reader.deferred_len() > batch_events.len() {
                    batch_events.push(events.len() - 1);
                }
            }
            Ok(Some(TraceFrame::Contexts(map))) => contexts = map,
            Ok(Some(TraceFrame::Finish { stats, app_us })) => trailer = Some((stats, app_us)),
            Ok(None) => break,
            Err(e) => {
                walk_error = Some(e);
                break;
            }
        }
    }

    let work = reader.take_deferred();
    debug_assert_eq!(work.len(), batch_events.len());
    let columns = opts.columns;
    let mut slots: Vec<Option<Result<Vec<AccessRecord>, DecodeError>>> =
        (0..work.len()).map(|_| None).collect();
    if !work.is_empty() {
        let threads = opts.threads.max(1).min(work.len());
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(d) = work.get(i) else { break };
                            let r = codec::decode_columnar_batch_projected(&d.payload, columns)
                                .map(codec::DecodedBatch::into_records)
                                .map_err(|what| DecodeError::BadFrame {
                                    kind: FRAME_BATCH_COLUMNAR,
                                    offset: d.offset,
                                    what,
                                });
                            out.push((i, r));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("decode worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
    }
    // Batches queue in stream order, so the first failed slot is the
    // earliest bad frame; it outranks any walk error, which necessarily
    // sits at a later offset.
    let mut decoded = Vec::with_capacity(slots.len());
    for slot in slots {
        decoded.push(slot.expect("worker pool covers every deferred batch")?);
    }
    if let Some(e) = walk_error {
        return Err(e);
    }
    for (k, recs) in decoded.into_iter().enumerate() {
        if let Event::Batch { records, .. } = &mut events[batch_events[k]] {
            *records = Arc::new(recs);
        }
    }

    let (stats, app_us) = trailer.expect("reader yields None only after Finish");
    Ok(RecordedTrace {
        version: reader.version(),
        spec: reader.spec().clone(),
        flags: reader.flags(),
        batch_bytes: reader.batch_bytes(),
        events,
        contexts,
        stats,
        app_us,
    })
}

/// Reads and decodes a trace file with [`DecodeOptions`].
///
/// # Errors
///
/// [`DecodeError::Io`] if the file cannot be read, otherwise as
/// [`read_trace_with`].
pub fn read_trace_file_with(
    path: &std::path::Path,
    opts: &DecodeOptions,
) -> Result<RecordedTrace, DecodeError> {
    let bytes = std::fs::read(path)?;
    read_trace_with(&bytes, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vex_gpu::ir::InstrTableBuilder;

    fn sample_launch_info(id: u64) -> Arc<LaunchInfo> {
        let table = InstrTableBuilder::new()
            .load(Pc(0), ScalarType::F32, MemSpace::Global)
            .store(Pc(1), ScalarType::F32, MemSpace::Global)
            .build();
        Arc::new(LaunchInfo {
            launch: LaunchId(id),
            kernel_name: format!("kernel_{id}"),
            grid: Dim3 { x: 4, y: 2, z: 1 },
            block: Dim3 { x: 32, y: 1, z: 1 },
            shared_bytes: 256,
            context: CallPathId(3),
            stream: StreamId(0),
            instr_table: Arc::new(table),
        })
    }

    fn sample_record(i: u64) -> AccessRecord {
        AccessRecord {
            pc: Pc(i as u32 % 3),
            addr: 4096 + i * 4,
            bits: i.wrapping_mul(0x9e37_79b9),
            size: 4,
            is_store: i.is_multiple_of(2),
            space: MemSpace::Global,
            block: (i / 32) as u32,
            thread: (i % 32) as u32,
            is_atomic: false,
        }
    }

    fn sample_events() -> Vec<Event> {
        let info = sample_launch_info(0);
        let alloc = AllocationInfo {
            id: vex_gpu::alloc::AllocId(1),
            addr: 4096,
            size: 1024,
            label: "buf".into(),
            context: CallPathId(1),
            live: true,
        };
        let captured = CapturedView::from_segments(vec![(4096, vec![0xAB; 64])]);
        vec![
            Event::Api {
                event: ApiEvent {
                    seq: 0,
                    kind: ApiKind::Malloc { info: alloc.clone() },
                    context: CallPathId(1),
                    stream: StreamId(0),
                },
                kernel: None,
                captured: Arc::new(CapturedView::from_segments(vec![(4096, vec![0xCD; 16])])),
            },
            Event::Api {
                event: ApiEvent {
                    seq: 1,
                    kind: ApiKind::Memset { dst: DevicePtr(4096), value: 0, bytes: 512 },
                    context: CallPathId(1),
                    stream: StreamId(0),
                },
                kernel: None,
                captured: Arc::new(CapturedView::from_segments(vec![(4096, vec![0u8; 512])])),
            },
            Event::LaunchBegin { info: info.clone() },
            Event::Batch {
                info: info.clone(),
                records: Arc::new((0..10).map(sample_record).collect()),
            },
            Event::LaunchEnd { info: info.clone() },
            Event::Api {
                event: ApiEvent {
                    seq: 2,
                    kind: ApiKind::KernelLaunch {
                        launch: LaunchId(0),
                        name: "kernel_0".into(),
                    },
                    context: CallPathId(2),
                    stream: StreamId(0),
                },
                kernel: Some(KernelSummary {
                    reads: vec![Interval::new(4096, 4100)],
                    writes: vec![Interval::new(4096, 4136)],
                    raw: 20,
                }),
                captured: Arc::new(captured),
            },
            Event::SkippedLaunch { info: sample_launch_info(1) },
            Event::Api {
                event: ApiEvent {
                    seq: 3,
                    kind: ApiKind::Free { info: AllocationInfo { live: false, ..alloc } },
                    context: CallPathId(1),
                    stream: StreamId(0),
                },
                kernel: None,
                captured: Arc::new(CapturedView::new()),
            },
        ]
    }

    fn write_sample(events: &[Event]) -> Vec<u8> {
        write_sample_v(events, FormatVersion::default())
    }

    fn write_sample_v(events: &[Event], version: FormatVersion) -> Vec<u8> {
        let spec = DeviceSpec::test_small();
        let flags = TraceFlags { coarse: true, fine: true };
        let writer = TraceWriter::with_version(Vec::new(), &spec, flags, version).unwrap();
        for e in events {
            writer.on_event(e);
        }
        let stats = CollectorStats {
            events: 10,
            events_checked: 10,
            flushes: 1,
            bytes_flushed: 320,
            instrumented_launches: 1,
            skipped_launches: 1,
        };
        writer.finish(&[(CallPathId(0), "<root>".into())], &stats, 123.5).unwrap()
    }

    fn assert_event_eq(a: &Event, b: &Event) {
        match (a, b) {
            (
                Event::Api { event: ea, kernel: ka, captured: ca },
                Event::Api { event: eb, kernel: kb, captured: cb },
            ) => {
                assert_eq!(ea, eb);
                assert_eq!(ka, kb);
                assert_eq!(ca.segments(), cb.segments());
            }
            (Event::LaunchBegin { info: a }, Event::LaunchBegin { info: b })
            | (Event::LaunchEnd { info: a }, Event::LaunchEnd { info: b })
            | (Event::SkippedLaunch { info: a }, Event::SkippedLaunch { info: b }) => {
                assert_launch_eq(a, b);
            }
            (
                Event::Batch { info: ia, records: ra },
                Event::Batch { info: ib, records: rb },
            ) => {
                assert_launch_eq(ia, ib);
                assert_eq!(ra, rb);
            }
            _ => panic!("event kind mismatch: {a:?} vs {b:?}"),
        }
    }

    fn assert_launch_eq(a: &LaunchInfo, b: &LaunchInfo) {
        assert_eq!(a.launch, b.launch);
        assert_eq!(a.kernel_name, b.kernel_name);
        assert_eq!(a.grid, b.grid);
        assert_eq!(a.block, b.block);
        assert_eq!(a.shared_bytes, b.shared_bytes);
        assert_eq!(a.context, b.context);
        assert_eq!(a.stream, b.stream);
        assert_eq!(*a.instr_table, *b.instr_table);
    }

    #[test]
    fn event_stream_roundtrip_is_bit_exact() {
        let events = sample_events();
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let bytes = write_sample_v(&events, version);
            let trace = read_trace(&bytes).unwrap();
            assert_eq!(trace.version, version.number());
            assert_eq!(trace.spec, DeviceSpec::test_small());
            assert_eq!(trace.flags, TraceFlags { coarse: true, fine: true });
            assert_eq!(trace.events.len(), events.len());
            for (a, b) in trace.events.iter().zip(&events) {
                assert_event_eq(a, b);
            }
            assert_eq!(trace.contexts[&CallPathId(0)], "<root>");
            assert_eq!(trace.stats.events, 10);
            assert_eq!(trace.app_us, 123.5);
            assert!(trace.batch_bytes > 0);
            // Batches share the LaunchBegin's Arc, like the live source.
            let (begin, batch) = (&trace.events[2], &trace.events[3]);
            if let (Event::LaunchBegin { info: a }, Event::Batch { info: b, .. }) =
                (begin, batch)
            {
                assert!(Arc::ptr_eq(a, b));
            } else {
                panic!("unexpected event order");
            }
        }
    }

    #[test]
    fn v2_batches_are_smaller_than_v1() {
        let info = sample_launch_info(0);
        let events = vec![
            Event::LaunchBegin { info: info.clone() },
            Event::Batch {
                info: info.clone(),
                records: Arc::new((0..1000).map(sample_record).collect()),
            },
            Event::LaunchEnd { info },
        ];
        let v1 = write_sample_v(&events, FormatVersion::V1);
        let v2 = write_sample_v(&events, FormatVersion::V2);
        assert!(
            v2.len() * 2 <= v1.len(),
            "v2 ({}) should be at most half of v1 ({})",
            v2.len(),
            v1.len()
        );
        let t1 = read_trace(&v1).unwrap();
        let t2 = read_trace(&v2).unwrap();
        assert!(t2.batch_bytes < t1.batch_bytes);
        assert_eq!(t1.batch_bytes, 8 + 4 + 1000 * 32); // launch id + count + records
    }

    #[test]
    fn v1_trace_reencodes_to_v2_losslessly() {
        let events = sample_events();
        let v1_bytes = write_sample_v(&events, FormatVersion::V1);
        let v1 = read_trace(&v1_bytes).unwrap();
        assert_eq!(v1.version, 1);
        // Re-encode the decoded v1 stream as v2 and compare event-by-event.
        let spec = DeviceSpec::test_small();
        let writer =
            TraceWriter::with_version(Vec::new(), &spec, v1.flags, FormatVersion::V2).unwrap();
        for e in &v1.events {
            writer.on_event(e);
        }
        let contexts: Vec<_> = v1.contexts.iter().map(|(id, s)| (*id, s.clone())).collect();
        let v2_bytes = writer.finish(&contexts, &v1.stats, v1.app_us).unwrap();
        let v2 = read_trace(&v2_bytes).unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(v1.events.len(), v2.events.len());
        for (a, b) in v1.events.iter().zip(&v2.events) {
            assert_event_eq(a, b);
        }
        assert_eq!(v1.contexts, v2.contexts);
        assert_eq!(v1.stats, v2.stats);
        assert_eq!(v1.app_us, v2.app_us);
    }

    #[test]
    fn skip_records_scan_counts_without_decoding() {
        let events = sample_events();
        let expected: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Batch { records, .. } => Some(records.len() as u64),
                _ => None,
            })
            .sum();
        assert!(expected > 0, "sample events must contain batch records");
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let bytes = write_sample_v(&events, version);
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            reader.set_skip_records(true);
            let mut batches = 0u64;
            while let Some(frame) = reader.next_frame().unwrap() {
                if let TraceFrame::Event(Event::Batch { records, .. }) = frame {
                    batches += 1;
                    assert!(records.is_empty(), "scan mode must not materialize records");
                }
            }
            assert!(batches > 0);
            assert_eq!(reader.records_scanned(), expected);
        }
    }

    #[test]
    fn columnar_frame_in_v1_file_is_rejected() {
        // A v2 file whose header claims v1: the columnar frame must be
        // refused rather than silently accepted. Api events are dropped
        // so their (also version-dependent) capture payloads don't trip
        // the reader before it reaches the columnar frame.
        let events: Vec<Event> =
            sample_events().into_iter().filter(|e| !matches!(e, Event::Api { .. })).collect();
        let mut bytes = write_sample(&events);
        assert_eq!(bytes[8..12], TRACE_VERSION.to_le_bytes());
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = read_trace(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::BadFrame { what: "columnar batch frame in a v1 trace", .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn v2_capture_segments_compress_and_roundtrip() {
        // One big uniform segment (word-RLE), one incompressible segment
        // (raw fallback), and one odd-length segment exercising the
        // non-word tail.
        let noisy: Vec<u8> =
            (0..257u32).flat_map(|i| i.wrapping_mul(2_654_435_761).to_le_bytes()).collect();
        let captured = CapturedView::from_segments(vec![
            (4096, vec![0x42u8; 1 << 16]),
            (1 << 20, noisy),
            (1 << 21, vec![7u8; 7]),
        ]);
        let events = vec![Event::Api {
            event: ApiEvent {
                seq: 0,
                kind: ApiKind::Memset { dst: DevicePtr(4096), value: 0x42, bytes: 1 << 16 },
                context: CallPathId(1),
                stream: StreamId(0),
            },
            kernel: None,
            captured: Arc::new(captured),
        }];
        let v1 = write_sample_v(&events, FormatVersion::V1);
        let v2 = write_sample_v(&events, FormatVersion::V2);
        // The uniform 64 KiB segment dominates v1 and collapses in v2.
        assert!(v2.len() * 10 <= v1.len(), "v2 {} bytes vs v1 {} bytes", v2.len(), v1.len());
        let (t1, t2) = (read_trace(&v1).unwrap(), read_trace(&v2).unwrap());
        for trace in [&t1, &t2] {
            let Event::Api { captured, .. } = &trace.events[0] else {
                panic!("expected an api event");
            };
            let Event::Api { captured: original, .. } = &events[0] else { unreachable!() };
            assert_eq!(captured.segments(), original.segments());
        }
    }

    #[test]
    fn bad_magic_and_versions_are_rejected() {
        let bytes = write_sample(&sample_events());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(read_trace(&wrong), Err(DecodeError::BadMagic)));
        let mut future = bytes.clone();
        future[8] = 99;
        assert!(matches!(
            read_trace(&future),
            Err(DecodeError::UnsupportedVersion { found: 99, supported: TRACE_VERSION })
        ));
        let mut ancient = bytes.clone();
        ancient[8] = 0;
        assert!(matches!(
            read_trace(&ancient),
            Err(DecodeError::UnsupportedVersion { found: 0, supported: TRACE_VERSION })
        ));
    }

    #[test]
    fn every_truncation_point_errors_never_panics() {
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let bytes = write_sample_v(&sample_events(), version);
            for cut in 0..bytes.len() {
                let result = read_trace(&bytes[..cut]);
                assert!(
                    result.is_err(),
                    "prefix of {cut} bytes decoded successfully (v{})",
                    version.number()
                );
            }
            assert!(read_trace(&bytes).is_ok());
        }
    }

    #[test]
    fn salvage_recovers_the_longest_valid_prefix_at_every_cut() {
        use crate::salvage::{repair_trace, salvage_trace};
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let events = sample_events();
            let bytes = write_sample_v(&events, version);
            // Frame extents of the intact trace: each entry is (end
            // offset, cumulative event count up to that frame).
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            let header = reader.offset() as usize;
            let mut extents = Vec::new();
            let mut n_events = 0usize;
            while let Some(frame) = reader.next_frame().unwrap() {
                if matches!(frame, TraceFrame::Event(_)) {
                    n_events += 1;
                }
                extents.push((reader.offset() as usize, n_events));
            }
            for cut in 0..=bytes.len() {
                if cut < header {
                    assert!(
                        salvage_trace(&bytes[..cut]).is_err(),
                        "cut {cut} inside the header salvaged (v{})",
                        version.number()
                    );
                    continue;
                }
                let s = salvage_trace(&bytes[..cut])
                    .unwrap_or_else(|e| panic!("cut {cut} unsalvageable: {e}"));
                let expect =
                    extents.iter().rev().find(|(end, _)| *end <= cut).map_or(0, |(_, n)| *n);
                assert_eq!(s.events.len(), expect, "cut {cut} (v{})", version.number());
                for (got, want) in s.events.iter().zip(events.iter()) {
                    assert_event_eq(got, want);
                }
                // The repaired container re-reads as a valid trace
                // carrying exactly the recovered prefix.
                let (repaired, report) = repair_trace(&bytes[..cut]).unwrap();
                assert_eq!(
                    report.bytes_recovered + report.bytes_discarded,
                    cut as u64,
                    "cut {cut}"
                );
                let reread = read_trace(&repaired)
                    .unwrap_or_else(|e| panic!("cut {cut} repaired trace invalid: {e}"));
                assert_eq!(reread.version, version.number());
                assert_eq!(reread.events.len(), expect, "cut {cut}");
                for (got, want) in reread.events.iter().zip(events.iter()) {
                    assert_event_eq(got, want);
                }
            }
        }
    }

    #[test]
    fn unknown_frame_kind_is_rejected_with_offset() {
        let spec = DeviceSpec::test_small();
        let writer = TraceWriter::new(Vec::new(), &spec, TraceFlags::default()).unwrap();
        let mut bytes = writer.finish(&[], &CollectorStats::default(), 0.0).unwrap();
        // Append a frame with kind 200 after the trailer would be "data
        // after Finish"; instead splice it before by rebuilding.
        let trailer_start = bytes.len();
        bytes.extend_from_slice(&[200, 0, 0, 0, 0]);
        let err = read_trace(&bytes).unwrap_err();
        assert!(
            matches!(err, DecodeError::BadFrame { kind: 200, .. })
                || matches!(err, DecodeError::UnknownFrameKind { kind: 200, .. }),
            "unexpected error {err:?} (trailer at {trailer_start})"
        );
    }

    #[test]
    fn batch_for_undeclared_launch_is_rejected() {
        let spec = DeviceSpec::test_small();
        let writer =
            TraceWriter::new(Vec::new(), &spec, TraceFlags { coarse: false, fine: true })
                .unwrap();
        let info = sample_launch_info(7);
        // Batch without a preceding LaunchBegin.
        writer.on_event(&Event::Batch { info, records: Arc::new(vec![sample_record(0)]) });
        let bytes = writer.finish(&[], &CollectorStats::default(), 0.0).unwrap();
        let err = read_trace(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::BadFrame { what: "batch references an undeclared launch", .. }
            ),
            "{err:?}"
        );
    }

    proptest! {
        #[test]
        fn prop_record_batches_roundtrip(
            records in prop::collection::vec(
                (any::<u32>(), any::<u64>(), any::<u64>(), 1u8..=8, any::<bool>(),
                 any::<bool>(), any::<u32>(), any::<u32>(), any::<bool>()),
                0..100,
            ),
            v2 in any::<bool>(),
        ) {
            let records: Vec<AccessRecord> = records
                .into_iter()
                .map(|(pc, addr, bits, size, store, shared, block, thread, atomic)| AccessRecord {
                    pc: Pc(pc),
                    addr,
                    bits,
                    size,
                    is_store: store,
                    space: if shared { MemSpace::Shared } else { MemSpace::Global },
                    block,
                    thread,
                    is_atomic: atomic,
                })
                .collect();
            let info = sample_launch_info(0);
            let events = vec![
                Event::LaunchBegin { info: info.clone() },
                Event::Batch { info: info.clone(), records: Arc::new(records.clone()) },
                Event::LaunchEnd { info },
            ];
            let version = if v2 { FormatVersion::V2 } else { FormatVersion::V1 };
            let bytes = write_sample_v(&events, version);
            let trace = read_trace(&bytes).unwrap();
            let Event::Batch { records: decoded, .. } = &trace.events[1] else {
                panic!("expected batch");
            };
            prop_assert_eq!(decoded.as_ref(), &records);
        }

        #[test]
        fn prop_corrupt_bytes_never_panic(
            index in 0usize..4096,
            value in any::<u8>(),
            cut in 0usize..8192,
            v2 in any::<bool>(),
        ) {
            let version = if v2 { FormatVersion::V2 } else { FormatVersion::V1 };
            let mut bytes = write_sample_v(&sample_events(), version);
            let index = index % bytes.len();
            bytes[index] = value;
            // Upper half of the range means "no cut".
            if cut < 4096 {
                bytes.truncate(cut % (bytes.len() + 1));
            }
            // Success or a clean error, never a panic.
            let _ = read_trace(&bytes);
        }
    }
}
